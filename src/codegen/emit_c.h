// C code generation: converts a performance skeleton into a standalone,
// portable MPI C program (paper section 3.3, step 4: "converted to synthetic
// C code by generating corresponding synthetic loops, MPI calls, and compute
// operations").
//
// The generated program is an SPMD source with one function per rank.
// Compute phases become calibrated busy loops; message payloads are
// uninitialized scratch buffers (only sizes matter).  The in-simulator
// replay (skeleton::skeleton_program) executes the same call sequence; the
// C artifact exists so the skeleton can run on real clusters.
#pragma once

#include <string>

#include "skeleton/skeleton.h"

namespace psk::codegen {

struct EmitOptions {
  /// Symbol prefix for generated functions and globals.
  std::string prefix = "psk";
  /// Busy-loop iterations that consume one work-second on the target CPU
  /// (the generated program also accepts -DPSK_CALIBRATION=<n> to override).
  double calibration_iters_per_second = 2.0e8;
  /// Emit per-event provenance comments.
  bool comments = true;
};

/// Renders the complete C translation unit.
std::string emit_c_program(const skeleton::Skeleton& skeleton,
                           const EmitOptions& options = {});

/// Writes the program to a file; throws ConfigError on I/O failure.
void write_c_program(const std::string& path,
                     const skeleton::Skeleton& skeleton,
                     const EmitOptions& options = {});

}  // namespace psk::codegen
