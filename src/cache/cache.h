// Content-addressed result cache for simulation measurements.
//
// Every measurement in this repo is a seeded, deterministic simulation: the
// same (signature, scaling, scenario, sim config, seed) cell always computes
// the same doubles, bit for bit.  That makes results safe to memoize by
// *content*: a cache key is the canonical little-endian serialization of
// everything that determines the measurement (see cache/keys.h for the
// domain builders), addressed by its 64-bit FNV-1a fingerprint.
//
// Two tiers:
//   - a thread-safe in-memory LRU (capacity counted in entries), and
//   - an optional on-disk store (one file per key under `disk_dir`).
//
// Both tiers echo the full key next to the value and verify it on every
// lookup, so a 64-bit hash collision degrades to a miss (counted in
// verify_failures), never to a wrong result.  Disk writes go through a
// temp file + atomic rename: a crashed run cannot leave a torn entry, and
// a torn/corrupt file found on disk is ignored as a miss.
//
// Values are opaque byte strings; encode_values()/decode_values() provide
// the standard codec for the common double-vector payload.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psk::obs {
class MetricsRegistry;
}

namespace psk::cache {

/// A content-addressed key: the canonical serialized form of everything
/// that determines a measurement, plus its 64-bit fingerprint.  The full
/// bytes travel with the key so both tiers can verify against collisions.
struct CacheKey {
  std::uint64_t hash = 0;
  std::string bytes;
};

/// Builds a CacheKey from typed fields.  The domain tag (e.g. "app-run/1")
/// namespaces key families and carries their layout version: bump it
/// whenever the field sequence changes and stale entries silently miss.
class KeyBuilder {
 public:
  explicit KeyBuilder(std::string_view domain);

  KeyBuilder& f64(double value);
  KeyBuilder& u64(std::uint64_t value);
  KeyBuilder& i64(std::int64_t value);
  KeyBuilder& flag(bool value);
  /// Length-prefixed text field.
  KeyBuilder& text(std::string_view value);
  /// Appends pre-encoded canonical bytes (archive::encode output),
  /// length-prefixed so adjacent fields cannot alias.
  KeyBuilder& raw(std::string_view canonical_bytes);

  CacheKey finish() &&;

 private:
  std::string bytes_;
};

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;            // served from the memory tier
  std::uint64_t disk_hits = 0;       // served from disk (then promoted)
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;       // LRU entries dropped at capacity
  std::uint64_t verify_failures = 0; // key-echo mismatch or corrupt entry
  /// Disk-tier writes that failed (ENOSPC, EACCES, ...).  The first failure
  /// disables further disk writes for this cache -- the sweep continues on
  /// the memory tier alone -- so this is normally 0 or 1.
  std::uint64_t disk_write_failures = 0;

  std::uint64_t total_hits() const { return hits + disk_hits; }
  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(total_hits()) /
                              static_cast<double>(lookups);
  }
};

struct CacheOptions {
  /// Memory-tier capacity in entries; 0 disables the memory tier.
  std::size_t memory_entries = 4096;
  /// On-disk store directory (created if missing); empty disables disk.
  std::string disk_dir;
};

class ResultCache {
 public:
  using Options = CacheOptions;

  explicit ResultCache(Options options = {});

  /// Returns the cached value, or nullopt on miss.  Thread-safe.
  std::optional<std::string> lookup(const CacheKey& key);

  /// Inserts/overwrites in both tiers.  Thread-safe.
  void store(const CacheKey& key, std::string_view value);

  CacheStats stats() const;

  /// Publishes the stats as obs counters (cache.hit, cache.disk_hit,
  /// cache.miss, cache.store, cache.evict, cache.verify_fail,
  /// cache.hit_rate).
  void publish(obs::MetricsRegistry& metrics) const;

  const Options& options() const { return options_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string key_bytes;
    std::string value;
  };
  using LruList = std::list<Entry>;

  /// Memory-tier lookup; assumes lock held.  Promotes on hit.
  const Entry* find_in_memory(const CacheKey& key);
  void insert_in_memory(const CacheKey& key, std::string_view value);
  std::string entry_path(std::uint64_t hash) const;
  std::optional<std::string> read_disk(const CacheKey& key);
  /// Returns false when the entry could not be persisted (disk full,
  /// permissions revoked mid-run, ...).
  bool write_disk(const CacheKey& key, std::string_view value);

  Options options_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  CacheStats stats_;
  /// Set after the first failed disk write: the disk tier stays readable
  /// (existing entries keep hitting) but no further writes are attempted.
  bool disk_writes_disabled_ = false;
};

/// Publishes a stats snapshot into a registry (same counters as
/// ResultCache::publish).
void publish_stats(obs::MetricsRegistry& metrics, const CacheStats& stats);

/// Deterministic key=value rendering of the stats (the obs counter dump),
/// suitable for a --cache-stats artifact file.
std::string stats_kv(const CacheStats& stats);

// ----------------------------------------------------------- value codec

/// Canonical encoding of a double-vector payload (count + IEEE-754 bits).
std::string encode_values(const std::vector<double>& values);
/// Decodes; nullopt when `bytes` is not a well-formed value payload.
std::optional<std::vector<double>> decode_values(std::string_view bytes);

// ------------------------------------------------------------ sweep cells

/// Canonical key for a free-form sweep cell under a caller-chosen domain
/// string.  The domain keeps unrelated sweeps (or incompatible versions of
/// the same sweep) from colliding in a shared cache; journaled_sweep keys
/// its journal lines by the hash of this key.
CacheKey sweep_cell_key(std::string_view domain, std::string_view cell);
std::uint64_t sweep_cell_hash(std::string_view domain, std::string_view cell);

/// Get-or-compute for the ubiquitous single-double measurement.  A null
/// cache degenerates to calling `compute` directly, so call sites stay
/// branch-free.  `Fn` is any callable returning double.
template <typename Fn>
double memoize_scalar(ResultCache* cache, const CacheKey& key, Fn&& compute) {
  if (cache != nullptr) {
    if (std::optional<std::string> hit = cache->lookup(key)) {
      if (std::optional<std::vector<double>> values = decode_values(*hit);
          values && values->size() == 1) {
        return (*values)[0];
      }
    }
  }
  const double value = compute();
  if (cache != nullptr) cache->store(key, encode_values({value}));
  return value;
}

}  // namespace psk::cache
