#include "cache/keys.h"

#include "archive/codec.h"
#include "archive/wire.h"

namespace psk::cache {

namespace {

void add_context(KeyBuilder& builder, const scenario::Scenario& scenario,
                 const RunContext& context) {
  std::string scenario_bytes;
  archive::encode(scenario_bytes, scenario);
  std::string cluster_bytes;
  archive::encode(cluster_bytes, *context.cluster);
  std::string mpi_bytes;
  archive::encode(mpi_bytes, *context.mpi);
  builder.raw(scenario_bytes)
      .raw(cluster_bytes)
      .raw(mpi_bytes)
      .i64(context.ranks)
      .u64(context.dedicated_seed)
      .u64(context.scenario_seed)
      .u64(context.seed_offset)
      .f64(context.run_time_limit);
}

}  // namespace

CacheKey app_run_key(std::string_view app, std::string_view app_class,
                     const scenario::Scenario& scenario,
                     const RunContext& context) {
  KeyBuilder builder("app-run/1");
  builder.text(app).text(app_class);
  add_context(builder, scenario, context);
  return std::move(builder).finish();
}

CacheKey skeleton_run_key(const skeleton::Skeleton& skeleton,
                          const scenario::Scenario& scenario,
                          const skeleton::ReplayOptions& replay,
                          const RunContext& context) {
  KeyBuilder builder("skeleton-run/1");
  std::string skeleton_bytes;
  archive::encode(skeleton_bytes, skeleton);
  builder.raw(skeleton_bytes)
      .flag(replay.sample_compute_distribution)
      .u64(replay.sample_seed);
  add_context(builder, scenario, context);
  return std::move(builder).finish();
}

}  // namespace psk::cache
