#include "cache/cache.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "archive/wire.h"
#include "obs/metrics.h"
#include "util/log.h"

namespace psk::cache {

namespace {

// On-disk entry layout (all integers little-endian):
//   magic "PSKCACH1", u16 entry version, u32 key size, key bytes,
//   u32 value size, value bytes, u64 FNV-1a over everything between the
//   version field and the checksum.
constexpr std::string_view kEntryMagic = "PSKCACH1";
constexpr std::uint16_t kEntryVersion = 1;

std::string encode_entry(const CacheKey& key, std::string_view value) {
  std::string out;
  out.reserve(kEntryMagic.size() + 2 + 4 + key.bytes.size() + 4 +
              value.size() + 8);
  out.append(kEntryMagic);
  archive::put_u16(out, kEntryVersion);
  archive::put_string(out, key.bytes);
  archive::put_string(out, value);
  archive::put_u64(out, archive::fingerprint64(
                            std::string_view(out).substr(kEntryMagic.size())));
  return out;
}

/// Decodes a disk entry, verifying framing, checksum and the echoed key.
/// Returns the value, or nullopt with `*verify_failed = true` when the
/// entry is torn/corrupt or echoes a different key (hash collision).
std::optional<std::string> decode_entry(std::string_view bytes,
                                        const CacheKey& key,
                                        bool* verify_failed) {
  *verify_failed = true;  // every early-out below is a verification failure
  if (bytes.substr(0, kEntryMagic.size()) != kEntryMagic) return std::nullopt;
  if (bytes.size() < kEntryMagic.size() + 8) return std::nullopt;
  const std::string_view body =
      bytes.substr(kEntryMagic.size(), bytes.size() - kEntryMagic.size() - 8);
  archive::Cursor tail(bytes.substr(kEntryMagic.size() + body.size()));
  if (tail.u64() != archive::fingerprint64(body)) return std::nullopt;
  archive::Cursor in(body);
  if (in.u16() != kEntryVersion) return std::nullopt;
  const std::string echoed_key = in.string();
  std::string value = in.string();
  if (!in.ok() || !in.at_end()) return std::nullopt;
  if (echoed_key != key.bytes) return std::nullopt;  // collision caught
  *verify_failed = false;
  return value;
}

}  // namespace

// ------------------------------------------------------------ KeyBuilder

KeyBuilder::KeyBuilder(std::string_view domain) {
  archive::put_string(bytes_, domain);
}

KeyBuilder& KeyBuilder::f64(double value) {
  archive::put_f64(bytes_, value);
  return *this;
}

KeyBuilder& KeyBuilder::u64(std::uint64_t value) {
  archive::put_u64(bytes_, value);
  return *this;
}

KeyBuilder& KeyBuilder::i64(std::int64_t value) {
  archive::put_i64(bytes_, value);
  return *this;
}

KeyBuilder& KeyBuilder::flag(bool value) {
  archive::put_bool(bytes_, value);
  return *this;
}

KeyBuilder& KeyBuilder::text(std::string_view value) {
  archive::put_string(bytes_, value);
  return *this;
}

KeyBuilder& KeyBuilder::raw(std::string_view canonical_bytes) {
  archive::put_string(bytes_, canonical_bytes);
  return *this;
}

CacheKey KeyBuilder::finish() && {
  CacheKey key;
  key.hash = archive::fingerprint64(bytes_);
  key.bytes = std::move(bytes_);
  return key;
}

// ------------------------------------------------------------ ResultCache

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
    if (ec) options_.disk_dir.clear();  // unusable directory: disk tier off
  }
}

const ResultCache::Entry* ResultCache::find_in_memory(const CacheKey& key) {
  auto it = index_.find(key.hash);
  if (it == index_.end()) return nullptr;
  if (it->second->key_bytes != key.bytes) {
    ++stats_.verify_failures;  // 64-bit collision in the memory tier
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return &*it->second;
}

void ResultCache::insert_in_memory(const CacheKey& key,
                                   std::string_view value) {
  if (options_.memory_entries == 0) return;
  auto it = index_.find(key.hash);
  if (it != index_.end()) {
    it->second->key_bytes = key.bytes;
    it->second->value = std::string(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key.hash, key.bytes, std::string(value)});
  index_.emplace(key.hash, lru_.begin());
  while (lru_.size() > options_.memory_entries) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::string ResultCache::entry_path(std::uint64_t hash) const {
  return options_.disk_dir + "/" + archive::fingerprint_hex(hash) + ".pskc";
}

std::optional<std::string> ResultCache::read_disk(const CacheKey& key) {
  std::ifstream in(entry_path(key.hash), std::ios::binary);
  if (!in) return std::nullopt;  // plain miss: no entry on disk
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  const std::string bytes = buffer.str();
  bool verify_failed = false;
  std::optional<std::string> value = decode_entry(bytes, key, &verify_failed);
  if (verify_failed) ++stats_.verify_failures;
  return value;
}

bool ResultCache::write_disk(const CacheKey& key, std::string_view value) {
  const std::string path = entry_path(key.hash);
  const std::string tmp = path + ".tmp";
  const std::string bytes = encode_entry(key, value);
  {
    errno = 0;
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      const int write_errno = errno;  // keep the root cause, not remove()'s
      std::remove(tmp.c_str());
      errno = write_errno;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;
    std::remove(tmp.c_str());
    errno = rename_errno;
    return false;
  }
  return true;
}

std::optional<std::string> ResultCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  if (const Entry* entry = find_in_memory(key)) {
    ++stats_.hits;
    return entry->value;
  }
  if (!options_.disk_dir.empty()) {
    if (std::optional<std::string> value = read_disk(key)) {
      ++stats_.disk_hits;
      insert_in_memory(key, *value);  // promote for the next lookup
      return value;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::store(const CacheKey& key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  insert_in_memory(key, value);
  if (options_.disk_dir.empty() || disk_writes_disabled_) return;
  if (write_disk(key, value)) return;
  // Mid-sweep disk trouble (ENOSPC, permissions revoked, dead mount) must
  // not abort hours of measurements: degrade to memory-only, once, loudly.
  // The disk tier stays readable -- entries already persisted keep hitting.
  ++stats_.disk_write_failures;
  disk_writes_disabled_ = true;
  const int saved_errno = errno;
  util::log_warn() << "cache: disk write to " << options_.disk_dir
                   << " failed ("
                   << (saved_errno != 0 ? std::strerror(saved_errno)
                                        : "unknown error")
                   << "); continuing memory-only";
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ResultCache::publish(obs::MetricsRegistry& metrics) const {
  publish_stats(metrics, stats());
}

void publish_stats(obs::MetricsRegistry& metrics, const CacheStats& stats) {
  metrics.counter("cache.lookup").add(static_cast<double>(stats.lookups));
  metrics.counter("cache.hit").add(static_cast<double>(stats.hits));
  metrics.counter("cache.disk_hit").add(static_cast<double>(stats.disk_hits));
  metrics.counter("cache.miss").add(static_cast<double>(stats.misses));
  metrics.counter("cache.store").add(static_cast<double>(stats.stores));
  metrics.counter("cache.evict").add(static_cast<double>(stats.evictions));
  metrics.counter("cache.verify_fail")
      .add(static_cast<double>(stats.verify_failures));
  metrics.counter("cache.disk_write_fail")
      .add(static_cast<double>(stats.disk_write_failures));
  metrics.counter("cache.hit_rate").add(stats.hit_rate());
}

std::string stats_kv(const CacheStats& stats) {
  obs::MetricsRegistry metrics;
  publish_stats(metrics, stats);
  return metrics.to_kv(0.0);
}

// ------------------------------------------------------------ sweep cells

CacheKey sweep_cell_key(std::string_view domain, std::string_view cell) {
  KeyBuilder builder("sweep-cell/1");
  builder.text(domain).text(cell);
  return std::move(builder).finish();
}

std::uint64_t sweep_cell_hash(std::string_view domain,
                              std::string_view cell) {
  return sweep_cell_key(domain, cell).hash;
}

// ----------------------------------------------------------- value codec

std::string encode_values(const std::vector<double>& values) {
  std::string out;
  out.reserve(4 + values.size() * 8);
  archive::put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (const double value : values) archive::put_f64(out, value);
  return out;
}

std::optional<std::vector<double>> decode_values(std::string_view bytes) {
  archive::Cursor in(bytes);
  const std::uint32_t count = in.u32();
  if (!in.ok() || in.remaining() != static_cast<std::size_t>(count) * 8) {
    return std::nullopt;
  }
  std::vector<double> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) values.push_back(in.f64());
  if (!in.ok() || !in.at_end()) return std::nullopt;
  return values;
}

}  // namespace psk::cache
