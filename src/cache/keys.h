// Domain cache-key builders: the canonical serialization of everything
// that determines a measurement result.
//
// Soundness contract: a key must include every input the simulation reads
// -- the workload identity (benchmark + class, or the full skeleton bytes),
// the scenario descriptor (fault profiles included: caching is never sound
// across differing fault scenarios, so the scenario's canonical bytes are
// part of the key), the cluster and MPI configs, and the complete seed
// derivation material (dedicated/scenario seeds plus the per-measurement
// offset).  Anything missing would alias distinct measurements; anything
// extra only costs hit rate.
//
// These builders live apart from cache.h so the cache core stays free of
// domain dependencies (runner links the core; only core/bench need these).
#pragma once

#include <cstdint>
#include <string_view>

#include "cache/cache.h"
#include "mpi/types.h"
#include "scenario/scenario.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"

namespace psk::cache {

/// Measurement-environment key material shared by every run kind.
struct RunContext {
  const sim::ClusterConfig* cluster = nullptr;
  const mpi::MpiConfig* mpi = nullptr;
  int ranks = 0;
  std::uint64_t dedicated_seed = 0;
  std::uint64_t scenario_seed = 0;
  std::uint64_t seed_offset = 0;
  double run_time_limit = 0;
};

/// Key for a measured application run: the workload is identified by
/// (benchmark name, NAS class) -- a deterministic generator -- so those
/// two strings stand in for the program.
CacheKey app_run_key(std::string_view app, std::string_view app_class,
                     const scenario::Scenario& scenario,
                     const RunContext& context);

/// Key for a measured skeleton run: the skeleton's canonical archive bytes
/// are self-describing (scaled per-rank sequences + construction metadata),
/// so the key is sound regardless of how the skeleton was built.
CacheKey skeleton_run_key(const skeleton::Skeleton& skeleton,
                          const scenario::Scenario& scenario,
                          const skeleton::ReplayOptions& replay,
                          const RunContext& context);

}  // namespace psk::cache
