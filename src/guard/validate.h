// Semantic validation of traces, signatures and skeletons.
//
// The format readers (trace::io, sig::io, archive::codec) only check that
// input *parses*; a well-formed file can still describe a program that is
// impossible or would deadlock at replay: duplicate rank ids, negative
// computation gaps, peers outside the world, unmatched send/recv channels,
// zero-iteration loops.  validate_* walks the parsed value and returns a
// structured ValidationReport listing every such issue with a location
// string, so the CLI can refuse bad input up front (--validate=strict)
// instead of failing mid-simulation with a confusing error.
#pragma once

#include <string>
#include <vector>

#include "sig/signature.h"
#include "skeleton/skeleton.h"
#include "trace/event.h"
#include "util/error.h"

namespace psk::guard {

/// One finding.  Errors make the subject unusable; warnings are suspicious
/// but simulable (salvage mode downgrades what it can to warnings).
struct Issue {
  enum class Severity { kWarning, kError };

  Severity severity = Severity::kError;
  /// Location within the subject, e.g. "rank 3 event 17" or "channel 0->2".
  std::string where;
  std::string message;
};

struct ValidationReport {
  /// What was validated, e.g. "trace 'lu.A.8'" (used in renderings).
  std::string subject;
  std::vector<Issue> issues;
  /// Issues beyond the per-report cap are counted here, not stored.
  std::size_t suppressed = 0;

  bool ok() const;  // true when no issue has Severity::kError
  std::size_t error_count() const;
  std::size_t warning_count() const;

  /// Multi-line human-readable rendering (also the exception message).
  std::string render() const;
};

/// Thrown by require_valid for a report with errors.  Distinct from
/// FormatError (the input parsed fine; its *meaning* is broken) so the CLI
/// can map both to the validation exit code explicitly.
class ValidationError : public Error {
 public:
  explicit ValidationError(ValidationReport report);
  const ValidationReport& report() const { return report_; }

 private:
  ValidationReport report_;
};

ValidationReport validate_trace(const trace::Trace& trace);
ValidationReport validate_signature(const sig::Signature& signature);
ValidationReport validate_skeleton(const skeleton::Skeleton& skeleton);

/// Throws ValidationError when the report contains errors.
void require_valid(const ValidationReport& report);

}  // namespace psk::guard
