// Deterministic deadlock detection for simulated MPI programs.
//
// A replayed skeleton can deadlock -- an unmatched Recv, a circular wait --
// and before this layer existed the simulation would burn simulated time
// until Engine's coarse time limit (daemon events such as load flutter keep
// the event queue busy forever) or trip the wall-clock watchdog hours later.
//
// DeadlockMonitor implements sim::QuiescenceMonitor over one mpi::World:
// the engine consults it after every event, and at the exact simulated
// instant where every unfinished rank is suspended in an MPI wait, no
// progress event is pending and no transfer is in flight, the monitor
// raises DeadlockDetected carrying a structured DeadlockReport (blocked
// ranks, their pending ops, and the wait-for cycle).  Detection is a pure
// function of simulated state, so it fires at the same simulated time on
// every run regardless of --jobs or wall-clock speed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mpi/world.h"
#include "sim/engine.h"
#include "sim/time.h"
#include "util/error.h"

namespace psk::guard {

/// Structured description of a detected deadlock.
struct DeadlockReport {
  /// Simulated time at which the simulation went globally idle.
  sim::Time time = 0.0;
  /// World size (blocked.size() of them are suspended).
  int total_ranks = 0;
  /// One entry per blocked rank: the pending op it is suspended on.
  std::vector<mpi::MessageEngine::PendingWait> blocked;
  /// The wait-for cycle (each rank waits on the next, last waits on first);
  /// empty when the waits chain to a peer that never posted (lost-peer
  /// deadlock, e.g. an unmatched Recv from a finished rank).
  std::vector<int> cycle;

  /// Multi-line human-readable rendering (also the exception message).
  std::string render() const;
};

/// Thrown by DeadlockMonitor::report_deadlock.  Derives from DeadlockError
/// so existing catch sites (sweep executors, the CLI) keep working; callers
/// that want the structure catch DeadlockDetected first.
class DeadlockDetected : public DeadlockError {
 public:
  explicit DeadlockDetected(DeadlockReport report);
  const DeadlockReport& report() const { return report_; }

 private:
  DeadlockReport report_;
};

/// Builds a report from the world's current blocked state (normally called
/// by DeadlockMonitor at the moment of detection).
DeadlockReport build_deadlock_report(mpi::World& world);

/// RAII monitor: registers with the world's engine on construction,
/// deregisters on destruction.  Attach one per World before running; keep
/// it alive for the duration of engine.run()/world.run().
class DeadlockMonitor : public sim::QuiescenceMonitor {
 public:
  explicit DeadlockMonitor(mpi::World& world);
  ~DeadlockMonitor() override;

  DeadlockMonitor(const DeadlockMonitor&) = delete;
  DeadlockMonitor& operator=(const DeadlockMonitor&) = delete;

  std::size_t blocked_tasks() const override;
  bool quiescent() const override;
  [[noreturn]] void report_deadlock() override;

 private:
  mpi::World& world_;
};

}  // namespace psk::guard
