#include "guard/validate.h"

#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "skeleton/validate.h"

namespace psk::guard {

namespace {

// Reports are capped so a hostile input with a million bad events cannot
// balloon the report (and the exception message) without bound.
constexpr std::size_t kMaxIssues = 32;

// Matches the loop-nest depth cap of the sig text reader: anything deeper
// is either corrupt or would have been rejected at parse time anyway.
constexpr int kMaxNodeDepth = 256;

/// True for finite, non-negative values; false for negatives, NaN, and
/// infinities (which would otherwise poison downstream sim arithmetic).
bool nonneg(double value) { return std::isfinite(value) && value >= 0; }

class Checker {
 public:
  explicit Checker(std::string subject) { report_.subject = std::move(subject); }

  void error(const std::string& where, const std::string& message) {
    add(Issue::Severity::kError, where, message);
  }
  void warning(const std::string& where, const std::string& message) {
    add(Issue::Severity::kWarning, where, message);
  }

  /// Error unless `value` is finite and >= 0.
  void check_nonneg(const std::string& where, const char* field,
                    double value) {
    if (!nonneg(value)) {
      std::ostringstream msg;
      msg << field << " is " << value << " (must be finite and >= 0)";
      error(where, msg.str());
    }
  }

  ValidationReport take() { return std::move(report_); }

 private:
  void add(Issue::Severity severity, const std::string& where,
           const std::string& message) {
    if (report_.issues.size() >= kMaxIssues) {
      ++report_.suppressed;
      return;
    }
    report_.issues.push_back(Issue{severity, where, message});
  }

  ValidationReport report_;
};

std::string rank_where(int rank) {
  return "rank " + std::to_string(rank);
}

std::string event_where(int rank, std::size_t event) {
  return "rank " + std::to_string(rank) + " event " + std::to_string(event);
}

/// (src, dst, tag) -> message count, for send/recv pairing.
using ChannelCounts = std::map<std::tuple<int, int, int>, long long>;

void count_channel_ops(int rank, const trace::TraceEvent& event,
                       ChannelCounts& sends, ChannelCounts& recvs) {
  using mpi::CallType;
  switch (event.type) {
    case CallType::kSend:
    case CallType::kIsend:
      ++sends[{rank, event.peer, event.tag}];
      return;
    case CallType::kRecv:
    case CallType::kIrecv:
      ++recvs[{event.peer, rank, event.tag}];
      return;
    case CallType::kSendrecv:
    case CallType::kExchange:
      // Direction per part: outgoing means this rank sends to part.peer.
      for (const mpi::PeerBytes& part : event.parts) {
        if (part.outgoing) {
          ++sends[{rank, part.peer, part.tag}];
        } else {
          ++recvs[{part.peer, rank, part.tag}];
        }
      }
      return;
    default:
      return;  // collectives and waits carry no p2p channel
  }
}

void check_channel_balance(Checker& check, const ChannelCounts& sends,
                           const ChannelCounts& recvs) {
  for (const auto& [channel, sent] : sends) {
    const auto it = recvs.find(channel);
    const long long received = it == recvs.end() ? 0 : it->second;
    if (sent != received) {
      const auto& [src, dst, tag] = channel;
      std::ostringstream where;
      where << "channel " << src << "->" << dst << " tag " << tag;
      std::ostringstream msg;
      msg << sent << " send(s) vs " << received
          << " recv(s): replay would deadlock";
      check.error(where.str(), msg.str());
    }
  }
  for (const auto& [channel, received] : recvs) {
    if (sends.find(channel) != sends.end()) continue;
    const auto& [src, dst, tag] = channel;
    std::ostringstream where;
    where << "channel " << src << "->" << dst << " tag " << tag;
    std::ostringstream msg;
    msg << "0 send(s) vs " << received << " recv(s): replay would deadlock";
    check.error(where.str(), msg.str());
  }
}

/// Peer must be a valid rank for p2p ops; rooted collectives allow -1
/// (rootless) as well.  Waits carry no peer.
void check_peer(Checker& check, const std::string& where, mpi::CallType type,
                int peer, int nranks) {
  using mpi::CallType;
  const bool p2p = type == CallType::kSend || type == CallType::kRecv ||
                   type == CallType::kIsend || type == CallType::kIrecv ||
                   type == CallType::kSendrecv;
  if (p2p) {
    if (peer < 0 || peer >= nranks) {
      check.error(where, "peer " + std::to_string(peer) +
                             " outside world of " + std::to_string(nranks) +
                             " rank(s)");
    }
    return;
  }
  if (peer < -1 || peer >= nranks) {
    check.error(where, "root " + std::to_string(peer) +
                           " outside world of " + std::to_string(nranks) +
                           " rank(s)");
  }
}

template <typename Part>  // mpi::PeerBytes or sig::SigEvent::Part
void check_parts(Checker& check, const std::string& where,
                 const std::vector<Part>& parts, int nranks) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].peer < 0 || parts[i].peer >= nranks) {
      check.error(where, "part " + std::to_string(i) + " peer " +
                             std::to_string(parts[i].peer) +
                             " outside world of " + std::to_string(nranks) +
                             " rank(s)");
    }
  }
}

// ------------------------------------------------------------ signatures

void check_sig_node(Checker& check, const std::string& where,
                    const sig::SigNode& node, int nranks, int depth) {
  if (depth > kMaxNodeDepth) {
    check.error(where, "loop nest deeper than " +
                           std::to_string(kMaxNodeDepth));
    return;
  }
  if (node.kind == sig::SigNode::Kind::kLoop) {
    if (node.iterations == 0) {
      check.error(where, "loop with 0 iterations");
    }
    if (node.body.empty()) {
      check.warning(where, "loop with empty body");
    }
    for (std::size_t i = 0; i < node.body.size(); ++i) {
      check_sig_node(check, where + " loop[" + std::to_string(i) + "]",
                     node.body[i], nranks, depth + 1);
    }
    return;
  }
  const sig::SigEvent& event = node.event;
  check_peer(check, where, event.type, event.peer, nranks);
  check_parts(check, where, event.parts, nranks);
  check.check_nonneg(where, "bytes", event.bytes);
  check.check_nonneg(where, "pre_compute", event.pre_compute);
  check.check_nonneg(where, "interior_compute", event.interior_compute);
  check.check_nonneg(where, "mean_duration", event.mean_duration);
  check.check_nonneg(where, "pre_mem_bytes", event.pre_mem_bytes);
  check.check_nonneg(where, "interior_mem_bytes", event.interior_mem_bytes);
  if (event.observations == 0) {
    check.warning(where, "event with 0 observations");
  }
}

void check_rank_signatures(Checker& check,
                           const std::vector<sig::RankSignature>& ranks) {
  const int nranks = static_cast<int>(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const sig::RankSignature& rank = ranks[i];
    const std::string where = rank_where(rank.rank);
    if (rank.rank != static_cast<int>(i)) {
      check.error("rank index " + std::to_string(i),
                  "rank id " + std::to_string(rank.rank) +
                      " does not match its position");
      continue;
    }
    check.check_nonneg(where, "total_time", rank.total_time);
    check.check_nonneg(where, "final_compute", rank.final_compute);
    for (std::size_t r = 0; r < rank.roots.size(); ++r) {
      check_sig_node(check,
                     where + " root[" + std::to_string(r) + "]",
                     rank.roots[r], nranks, 0);
    }
  }
}

void check_skeleton_consistency(Checker& check,
                                const skeleton::Skeleton& skeleton) {
  const skeleton::ConsistencyReport consistency =
      skeleton::check_consistency(skeleton);
  if (!consistency.consistent) {
    check.error("channels",
                std::to_string(consistency.mismatched_channels) +
                    " mismatched channel(s): " + consistency.detail);
  }
}

std::string subject_name(const char* kind, const std::string& app) {
  std::string subject = kind;
  if (!app.empty()) subject += " '" + app + "'";
  return subject;
}

}  // namespace

bool ValidationReport::ok() const { return error_count() == 0; }

std::size_t ValidationReport::error_count() const {
  std::size_t count = suppressed;  // conservative: suppressed may be errors
  for (const Issue& issue : issues) {
    if (issue.severity == Issue::Severity::kError) ++count;
  }
  return count;
}

std::size_t ValidationReport::warning_count() const {
  std::size_t count = 0;
  for (const Issue& issue : issues) {
    if (issue.severity == Issue::Severity::kWarning) ++count;
  }
  return count;
}

std::string ValidationReport::render() const {
  std::ostringstream out;
  out << subject << ": " << error_count() << " error(s), "
      << warning_count() << " warning(s)";
  for (const Issue& issue : issues) {
    out << "\n  "
        << (issue.severity == Issue::Severity::kError ? "error" : "warning")
        << " [" << issue.where << "]: " << issue.message;
  }
  if (suppressed > 0) {
    out << "\n  ... " << suppressed << " further issue(s) suppressed";
  }
  return out.str();
}

ValidationError::ValidationError(ValidationReport report)
    : Error(report.render()), report_(std::move(report)) {}

void require_valid(const ValidationReport& report) {
  if (!report.ok()) throw ValidationError(report);
}

ValidationReport validate_trace(const trace::Trace& trace) {
  Checker check(subject_name("trace", trace.app_name));
  const int nranks = trace.rank_count();
  ChannelCounts sends;
  ChannelCounts recvs;
  // Collective invocation counts per rank, keyed by call type: every rank
  // must call each collective the same number of times or replay hangs.
  std::map<mpi::CallType, std::vector<long long>> collectives;
  for (std::size_t i = 0; i < trace.ranks.size(); ++i) {
    const trace::RankTrace& rank = trace.ranks[i];
    if (rank.rank != static_cast<int>(i)) {
      check.error("rank index " + std::to_string(i),
                  "rank id " + std::to_string(rank.rank) +
                      " does not match its position");
      continue;
    }
    const std::string where = rank_where(rank.rank);
    check.check_nonneg(where, "total_time", rank.total_time);
    check.check_nonneg(where, "final_compute", rank.final_compute);
    for (std::size_t e = 0; e < rank.events.size(); ++e) {
      const trace::TraceEvent& event = rank.events[e];
      const std::string ewhere = event_where(rank.rank, e);
      if (!(event.t_end >= event.t_start)) {
        std::ostringstream msg;
        msg << "t_end " << event.t_end << " before t_start "
            << event.t_start;
        check.error(ewhere, msg.str());
      }
      check.check_nonneg(ewhere, "pre_compute", event.pre_compute);
      check.check_nonneg(ewhere, "interior_compute", event.interior_compute);
      check.check_nonneg(ewhere, "pre_mem_bytes", event.pre_mem_bytes);
      check.check_nonneg(ewhere, "interior_mem_bytes",
                         event.interior_mem_bytes);
      check_peer(check, ewhere, event.type, event.peer, nranks);
      check_parts(check, ewhere, event.parts, nranks);
      count_channel_ops(rank.rank, event, sends, recvs);
      if (mpi::is_collective(event.type)) {
        auto& counts = collectives[event.type];
        counts.resize(trace.ranks.size(), 0);
        ++counts[i];
      }
    }
  }
  check_channel_balance(check, sends, recvs);
  for (const auto& [type, counts] : collectives) {
    for (std::size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] != counts[0]) {
        check.error(rank_where(static_cast<int>(i)),
                    "calls " + mpi::call_type_name(type) + " " +
                        std::to_string(counts[i]) + " time(s) vs " +
                        std::to_string(counts[0]) + " on rank 0");
      }
    }
  }
  return check.take();
}

ValidationReport validate_signature(const sig::Signature& signature) {
  Checker check(subject_name("signature", signature.app_name));
  check.check_nonneg("header", "threshold", signature.threshold);
  check.check_nonneg("header", "compression_ratio",
                     signature.compression_ratio);
  check_rank_signatures(check, signature.ranks);
  // Channel balance: reuse the skeleton consistency checker over the same
  // rank forest (scaling_factor 1 leaves counts untouched).
  skeleton::Skeleton shim;
  shim.app_name = signature.app_name;
  shim.ranks = signature.ranks;
  check_skeleton_consistency(check, shim);
  return check.take();
}

ValidationReport validate_skeleton(const skeleton::Skeleton& skeleton) {
  Checker check(subject_name("skeleton", skeleton.app_name));
  if (!(skeleton.scaling_factor >= 1.0)) {
    std::ostringstream msg;
    msg << "scaling_factor is " << skeleton.scaling_factor
        << " (must be >= 1)";
    check.error("header", msg.str());
  }
  check.check_nonneg("header", "intended_time", skeleton.intended_time);
  check.check_nonneg("header", "min_good_time", skeleton.min_good_time);
  check_rank_signatures(check, skeleton.ranks);
  check_skeleton_consistency(check, skeleton);
  return check.take();
}

}  // namespace psk::guard
