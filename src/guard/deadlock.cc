#include "guard/deadlock.h"

#include <cstdio>
#include <utility>

namespace psk::guard {

namespace {

std::string format_time(sim::Time t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", t);
  return buffer;
}

/// Finds a cycle in the wait-for graph.  Every blocked rank has exactly one
/// outgoing edge (the peer its pending op names), so the graph is
/// functional: walk each unvisited chain and the first node revisited
/// within the current walk starts the cycle.
std::vector<int> find_cycle(
    const std::vector<mpi::MessageEngine::PendingWait>& blocked,
    int total_ranks) {
  std::vector<int> waits_for(static_cast<std::size_t>(total_ranks), -1);
  for (const auto& wait : blocked) {
    if (wait.rank >= 0 && wait.rank < total_ranks && wait.peer >= 0 &&
        wait.peer < total_ranks) {
      waits_for[static_cast<std::size_t>(wait.rank)] = wait.peer;
    }
  }
  // 0 = unvisited, 1 = on the current walk, 2 = exhausted (no cycle here).
  std::vector<int> state(static_cast<std::size_t>(total_ranks), 0);
  for (int start = 0; start < total_ranks; ++start) {
    if (state[static_cast<std::size_t>(start)] != 0) continue;
    std::vector<int> path;
    int at = start;
    while (at >= 0 && state[static_cast<std::size_t>(at)] == 0) {
      state[static_cast<std::size_t>(at)] = 1;
      path.push_back(at);
      at = waits_for[static_cast<std::size_t>(at)];
    }
    if (at >= 0 && state[static_cast<std::size_t>(at)] == 1) {
      // `at` is on the current walk: the cycle is the path suffix from it.
      std::vector<int> cycle;
      bool in_cycle = false;
      for (int rank : path) {
        if (rank == at) in_cycle = true;
        if (in_cycle) cycle.push_back(rank);
      }
      return cycle;
    }
    for (int rank : path) state[static_cast<std::size_t>(rank)] = 2;
  }
  return {};
}

}  // namespace

std::string DeadlockReport::render() const {
  std::string out = "deadlock detected at t=" + format_time(time) + ": " +
                    std::to_string(blocked.size()) + " of " +
                    std::to_string(total_ranks) +
                    " ranks blocked in MPI waits";
  for (const auto& wait : blocked) {
    out += "\n  rank " + std::to_string(wait.rank) + ": waiting on ";
    if (wait.is_send) {
      out += "send of " + std::to_string(wait.bytes) + " bytes to rank " +
             std::to_string(wait.peer);
    } else {
      out += "recv from rank " + std::to_string(wait.peer);
    }
    out += " (tag " + std::to_string(wait.tag) + ", request " +
           std::to_string(wait.request) + ")";
  }
  if (cycle.empty()) {
    out += "\n  wait-for cycle: none (waits lead to a rank that never "
           "posted the matching op)";
  } else {
    out += "\n  wait-for cycle: ";
    for (int rank : cycle) out += std::to_string(rank) + " -> ";
    out += std::to_string(cycle.front());
  }
  return out;
}

DeadlockDetected::DeadlockDetected(DeadlockReport report)
    : DeadlockError(report.render()), report_(std::move(report)) {}

DeadlockReport build_deadlock_report(mpi::World& world) {
  DeadlockReport report;
  report.time = world.machine().engine().now();
  report.total_ranks = world.size();
  report.blocked = world.message_engine().pending_waits();
  report.cycle = find_cycle(report.blocked, report.total_ranks);
  return report;
}

DeadlockMonitor::DeadlockMonitor(mpi::World& world) : world_(world) {
  world_.machine().engine().add_quiescence_monitor(this);
}

DeadlockMonitor::~DeadlockMonitor() {
  world_.machine().engine().remove_quiescence_monitor(this);
}

std::size_t DeadlockMonitor::blocked_tasks() const {
  return world_.message_engine().waiting_rank_count();
}

bool DeadlockMonitor::quiescent() const {
  return world_.machine().network().transfers_pending() == 0;
}

void DeadlockMonitor::report_deadlock() {
  throw DeadlockDetected(build_deadlock_report(world_));
}

}  // namespace psk::guard
