#include "guard/salvage.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "archive/archive.h"
#include "sig/io.h"
#include "skeleton/io.h"
#include "trace/io.h"
#include "util/error.h"

namespace psk::guard {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::require(in.good(), "salvage: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ' ')) fields.push_back(field);
  return fields;
}

bool starts_with(const std::string& line, const char* prefix) {
  return line.rfind(prefix, 0) == 0;
}

// Mirror the caps in sig/io.cc and archive/codec.cc.
constexpr std::uint64_t kMaxRanks = 1u << 16;
constexpr std::uint64_t kMaxEvents = 1ull << 32;

// Parses a declared count field ("ranks N", per-rank event counts).
// stoull alone is too permissive for salvage: it wraps negatives ("-1"
// becomes 2^64-1) and stops at the first non-digit ("12garbage" parses as
// 12), so require an exact round-trip and a plausible magnitude.
std::optional<std::uint64_t> parse_count(const std::string& field,
                                         std::uint64_t max) {
  if (field.empty() || !std::isdigit(static_cast<unsigned char>(field[0]))) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  std::size_t consumed = 0;
  try {
    value = std::stoull(field, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed != field.size() || value > max) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_ranks_count(const std::string& field) {
  return parse_count(field, kMaxRanks);
}

/// Lines of a text document plus the byte offset where each line starts.
struct TextDoc {
  std::vector<std::string> lines;
  std::vector<std::size_t> offsets;
  std::size_t total_bytes = 0;
};

TextDoc split_lines(const std::string& text) {
  TextDoc doc;
  doc.total_bytes = text.size();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      if (pos < text.size()) {
        doc.offsets.push_back(pos);
        doc.lines.push_back(text.substr(pos));
      }
      break;
    }
    doc.offsets.push_back(pos);
    doc.lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return doc;
}

// ------------------------------------------------------- archive salvage
//
// The container header is parsed by hand (24 bytes: magic, u16 container
// version, u16 kind, u32 payload version, u64 payload size) because
// archive::read_frame rejects any file whose trailing checksum is damaged
// -- which is exactly the torn file salvage exists for.  The payload is
// then decoded leniently with the codec's prefix decoders.

struct ArchiveHeader {
  bool usable = false;
  archive::PayloadKind kind = archive::PayloadKind::kTrace;
  std::uint32_t payload_version = 0;
  std::string_view payload;  // declared size clamped to available bytes
  std::string detail;        // why the header is unusable
};

std::uint64_t read_le(std::string_view bytes, std::size_t offset,
                      std::size_t width) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  }
  return value;
}

ArchiveHeader probe_archive(std::string_view bytes) {
  constexpr std::size_t kHeaderSize = 24;
  ArchiveHeader header;
  if (bytes.size() < kHeaderSize) {
    header.detail = "archive header truncated";
    return header;
  }
  const auto container_version =
      static_cast<std::uint16_t>(read_le(bytes, 8, 2));
  if (container_version != archive::kContainerVersion) {
    header.detail = "unknown container version " +
                    std::to_string(container_version);
    return header;
  }
  const auto raw_kind = static_cast<std::uint16_t>(read_le(bytes, 10, 2));
  if (raw_kind < 1 || raw_kind > 3) {
    header.detail = "unknown payload kind " + std::to_string(raw_kind);
    return header;
  }
  header.kind = static_cast<archive::PayloadKind>(raw_kind);
  header.payload_version = static_cast<std::uint32_t>(read_le(bytes, 12, 4));
  const std::uint64_t declared = read_le(bytes, 16, 8);
  const std::size_t available = bytes.size() - kHeaderSize;
  const std::size_t size =
      declared < available ? static_cast<std::size_t>(declared) : available;
  header.payload = bytes.substr(kHeaderSize, size);
  header.usable = true;
  return header;
}

void apply_prefix_stats(const archive::PrefixStats& stats,
                        SalvageReport& report) {
  constexpr std::size_t kHeaderSize = 24;
  report.ranks_expected = stats.ranks_expected;
  report.ranks_kept = stats.ranks_kept;
  report.events_expected = stats.events_expected;
  report.events_kept = stats.events_kept;
  report.byte_offset = kHeaderSize + stats.bytes_consumed;
  if (!stats.detail.empty()) report.detail = stats.detail;
}

// ----------------------------------------------------- text trace salvage

std::optional<trace::Trace> salvage_trace_text(const std::string& text,
                                               SalvageReport& report) {
  const TextDoc doc = split_lines(text);
  std::size_t idx = 0;
  const auto stop_at = [&](std::size_t line_index, const std::string& why) {
    report.line = line_index + 1;
    report.byte_offset = line_index < doc.offsets.size()
                             ? doc.offsets[line_index]
                             : doc.total_bytes;
    report.detail = why;
  };
  if (doc.lines.empty() || doc.lines[0] != "psk-trace 1") {
    stop_at(0, "missing 'psk-trace 1' header");
    return std::nullopt;
  }
  ++idx;
  trace::Trace trace;
  {
    if (idx >= doc.lines.size()) {
      stop_at(idx, "missing app line");
      return std::nullopt;
    }
    const auto fields = split_fields(doc.lines[idx]);
    if (fields.size() != 2 || fields[0] != "app") {
      stop_at(idx, "missing app line");
      return std::nullopt;
    }
    trace.app_name = fields[1] == "-" ? "" : fields[1];
    ++idx;
  }
  std::uint64_t declared_ranks = 0;
  {
    if (idx >= doc.lines.size()) {
      stop_at(idx, "missing ranks line");
      return std::nullopt;
    }
    const auto fields = split_fields(doc.lines[idx]);
    if (fields.size() != 2 || fields[0] != "ranks") {
      stop_at(idx, "missing ranks line");
      return std::nullopt;
    }
    const std::optional<std::uint64_t> parsed = parse_ranks_count(fields[1]);
    if (!parsed) {
      stop_at(idx, "bad ranks count '" + fields[1] + "'");
      return std::nullopt;
    }
    declared_ranks = *parsed;
    ++idx;
  }
  report.ranks_expected = declared_ranks;
  bool stopped = false;
  for (std::uint64_t r = 0; r < declared_ranks && !stopped; ++r) {
    if (idx >= doc.lines.size()) {
      stop_at(idx, "rank " + std::to_string(r) + " header missing");
      break;
    }
    const auto fields = split_fields(doc.lines[idx]);
    if (fields.size() != 5 || fields[0] != "rank") {
      stop_at(idx, "rank " + std::to_string(r) + " header unparsable");
      break;
    }
    trace::RankTrace rank;
    std::uint64_t declared_events = 0;
    try {
      rank.rank = std::stoi(fields[1]);
      rank.total_time = std::stod(fields[2]);
      rank.final_compute = std::stod(fields[3]);
      const std::optional<std::uint64_t> events =
          parse_count(fields[4], kMaxEvents);
      if (!events) throw FormatError("bad event count");
      declared_events = *events;
    } catch (const std::exception&) {
      stop_at(idx, "rank " + std::to_string(r) + " header unparsable");
      break;
    }
    ++idx;
    ++report.ranks_kept;
    report.events_expected += declared_events;
    for (std::uint64_t e = 0; e < declared_events; ++e) {
      if (idx >= doc.lines.size()) {
        stop_at(idx, "rank " + std::to_string(r) + " truncated after " +
                         std::to_string(e) + " of " +
                         std::to_string(declared_events) + " event(s)");
        stopped = true;
        break;
      }
      try {
        rank.events.push_back(trace::parse_trace_event_line(doc.lines[idx]));
      } catch (const FormatError& error) {
        stop_at(idx, error.what());
        stopped = true;
        break;
      }
      ++idx;
      ++report.events_kept;
    }
    trace.ranks.push_back(std::move(rank));
  }
  if (report.detail.empty() && idx < doc.lines.size()) {
    stop_at(idx, "trailing data after last rank");
  }
  if (report.ranks_kept == 0) return std::nullopt;
  return trace;
}

// --------------------------------------------- text sig/skeleton salvage
//
// Signature and skeleton text documents are a fixed header followed by a
// "ranks N" line and N rank blocks, each starting with a "rank ..." line.
// A rank's loop forest is useless half-read, so salvage is rank-granular:
// re-parse the document with the damaged tail of rank blocks removed (and
// the ranks count rewritten), keeping the longest prefix that parses.
template <typename Value, typename ParseFn>
std::optional<Value> salvage_rank_blocks(const std::string& text,
                                         ParseFn parse,
                                         SalvageReport& report) {
  const TextDoc doc = split_lines(text);
  std::size_t ranks_line = doc.lines.size();
  for (std::size_t i = 0; i < doc.lines.size(); ++i) {
    if (starts_with(doc.lines[i], "ranks ")) {
      ranks_line = i;
      break;
    }
  }
  if (ranks_line == doc.lines.size()) {
    report.detail = "ranks line missing";
    return std::nullopt;
  }
  // A file torn mid-"ranks N" can leave just "ranks " (no count field),
  // so check the field count before touching fields[1].
  const auto ranks_fields = split_fields(doc.lines[ranks_line]);
  const std::optional<std::uint64_t> parsed =
      ranks_fields.size() == 2 ? parse_ranks_count(ranks_fields[1])
                               : std::nullopt;
  if (!parsed) {
    report.line = ranks_line + 1;
    report.byte_offset = doc.offsets[ranks_line];
    report.detail = "bad ranks count";
    return std::nullopt;
  }
  const std::uint64_t declared = *parsed;
  report.ranks_expected = declared;
  std::vector<std::size_t> rank_starts;
  for (std::size_t i = ranks_line + 1; i < doc.lines.size(); ++i) {
    if (starts_with(doc.lines[i], "rank ")) rank_starts.push_back(i);
  }
  const std::uint64_t max_keep =
      declared < rank_starts.size() ? declared : rank_starts.size();
  for (std::uint64_t keep = max_keep; keep > 0; --keep) {
    std::ostringstream rebuilt;
    for (std::size_t i = 0; i < ranks_line; ++i) {
      rebuilt << doc.lines[i] << "\n";
    }
    rebuilt << "ranks " << keep << "\n";
    const std::size_t end =
        keep < rank_starts.size() ? rank_starts[keep] : doc.lines.size();
    for (std::size_t i = rank_starts[0]; i < end; ++i) {
      rebuilt << doc.lines[i] << "\n";
    }
    try {
      Value value = parse(rebuilt.str());
      report.ranks_kept = keep;
      if (keep < declared || !report.detail.empty()) {
        const std::size_t first_dropped =
            keep < rank_starts.size() ? rank_starts[keep] : doc.lines.size();
        report.line = first_dropped + 1;
        report.byte_offset = first_dropped < doc.offsets.size()
                                 ? doc.offsets[first_dropped]
                                 : doc.total_bytes;
      }
      return value;
    } catch (const FormatError&) {
      continue;  // damage reaches into this block too; drop one more rank
    }
  }
  return std::nullopt;
}

std::string render_units(std::uint64_t kept, std::uint64_t expected,
                         const char* unit) {
  return std::to_string(kept) + " of " + std::to_string(expected) + " " +
         unit;
}

// ------------------------------------------- lenient paths, shared by the
// file salvors (after the strict loader has refused) and the in-memory
// entry points (which have no strict fast-path).

std::optional<trace::Trace> salvage_trace_damaged(const std::string& bytes,
                                                  SalvageReport& report) {
  if (archive::looks_like_archive(bytes)) {
    const ArchiveHeader header = probe_archive(bytes);
    if (!header.usable) {
      report.detail = header.detail;
      return std::nullopt;
    }
    if (header.kind != archive::PayloadKind::kTrace) {
      report.detail = std::string("archive holds a ") +
                      archive::payload_kind_name(header.kind) +
                      ", not a trace";
      return std::nullopt;
    }
    archive::PrefixStats stats;
    archive::Result<trace::Trace> partial = archive::decode_trace_prefix(
        header.payload, header.payload_version, stats);
    if (!partial.ok()) {
      report.detail = partial.error().message;
      return std::nullopt;
    }
    apply_prefix_stats(stats, report);
    if (stats.ranks_kept == 0) return std::nullopt;
    report.recovered = true;
    return partial.take();
  }
  if (bytes.rfind("PSKTRB01", 0) == 0) {
    // The legacy binary format has host-endian fields and no framing to
    // resynchronize on; a truncated file is not salvageable.  Archives are.
    report.detail = "truncated legacy binary trace (re-save as archive)";
    return std::nullopt;
  }
  std::optional<trace::Trace> trace = salvage_trace_text(bytes, report);
  report.recovered = trace.has_value();
  return trace;
}

std::optional<sig::Signature> salvage_signature_damaged(
    const std::string& bytes, SalvageReport& report) {
  if (archive::looks_like_archive(bytes)) {
    const ArchiveHeader header = probe_archive(bytes);
    if (!header.usable) {
      report.detail = header.detail;
      return std::nullopt;
    }
    if (header.kind != archive::PayloadKind::kSignature) {
      report.detail = std::string("archive holds a ") +
                      archive::payload_kind_name(header.kind) +
                      ", not a signature";
      return std::nullopt;
    }
    archive::PrefixStats stats;
    archive::Result<sig::Signature> partial = archive::decode_signature_prefix(
        header.payload, header.payload_version, stats);
    if (!partial.ok()) {
      report.detail = partial.error().message;
      return std::nullopt;
    }
    apply_prefix_stats(stats, report);
    if (stats.ranks_kept == 0) return std::nullopt;
    report.recovered = true;
    return partial.take();
  }
  std::optional<sig::Signature> value = salvage_rank_blocks<sig::Signature>(
      bytes, [](const std::string& text) {
        return sig::signature_from_string(text);
      },
      report);
  report.recovered = value.has_value();
  return value;
}

std::optional<skeleton::Skeleton> salvage_skeleton_damaged(
    const std::string& bytes, SalvageReport& report) {
  if (archive::looks_like_archive(bytes)) {
    const ArchiveHeader header = probe_archive(bytes);
    if (!header.usable) {
      report.detail = header.detail;
      return std::nullopt;
    }
    if (header.kind != archive::PayloadKind::kSkeleton) {
      report.detail = std::string("archive holds a ") +
                      archive::payload_kind_name(header.kind) +
                      ", not a skeleton";
      return std::nullopt;
    }
    archive::PrefixStats stats;
    archive::Result<skeleton::Skeleton> partial = archive::decode_skeleton_prefix(
        header.payload, header.payload_version, stats);
    if (!partial.ok()) {
      report.detail = partial.error().message;
      return std::nullopt;
    }
    apply_prefix_stats(stats, report);
    if (stats.ranks_kept == 0) return std::nullopt;
    report.recovered = true;
    return partial.take();
  }
  std::optional<skeleton::Skeleton> value =
      salvage_rank_blocks<skeleton::Skeleton>(
          bytes, [](const std::string& text) {
            return skeleton::skeleton_from_string(text);
          },
          report);
  report.recovered = value.has_value();
  return value;
}

}  // namespace

std::string SalvageReport::render() const {
  std::ostringstream out;
  out << path << ": ";
  if (clean) {
    out << "intact (" << render_units(ranks_kept, ranks_expected, "rank(s)");
    if (events_expected > 0) {
      out << ", " << render_units(events_kept, events_expected, "event(s)");
    }
    out << ")";
    return out.str();
  }
  if (!recovered) {
    out << "unrecoverable";
    if (!detail.empty()) out << " (" << detail << ")";
    return out.str();
  }
  out << "salvaged " << render_units(ranks_kept, ranks_expected, "rank(s)");
  if (events_expected > 0) {
    out << ", " << render_units(events_kept, events_expected, "event(s)");
  }
  if (line > 0) out << "; damage starts at line " << line;
  if (byte_offset > 0) out << " (byte " << byte_offset << ")";
  if (!detail.empty()) out << "; " << detail;
  return out.str();
}

std::optional<trace::Trace> salvage_trace_file(const std::string& path,
                                               SalvageReport& report) {
  report = SalvageReport{};
  report.path = path;
  const std::string bytes = read_file(path);
  if (const archive::Result<trace::Trace> strict = archive::load_trace(path);
      strict.ok()) {
    const trace::Trace& trace = strict.value();
    report.clean = report.recovered = true;
    report.ranks_expected = report.ranks_kept = trace.ranks.size();
    report.events_expected = report.events_kept = trace.event_count();
    return trace;
  } else {
    report.detail = strict.error().message;
  }
  return salvage_trace_damaged(bytes, report);
}

std::optional<trace::Trace> salvage_trace_bytes(const std::string& bytes,
                                                SalvageReport& report) {
  report = SalvageReport{};
  report.path = "<memory>";
  return salvage_trace_damaged(bytes, report);
}

std::optional<sig::Signature> salvage_signature_file(const std::string& path,
                                                     SalvageReport& report) {
  report = SalvageReport{};
  report.path = path;
  const std::string bytes = read_file(path);
  if (const archive::Result<sig::Signature> strict = archive::load_signature(path);
      strict.ok()) {
    report.clean = report.recovered = true;
    report.ranks_expected = report.ranks_kept = strict.value().ranks.size();
    return strict.value();
  } else {
    report.detail = strict.error().message;
  }
  return salvage_signature_damaged(bytes, report);
}

std::optional<sig::Signature> salvage_signature_bytes(const std::string& bytes,
                                                      SalvageReport& report) {
  report = SalvageReport{};
  report.path = "<memory>";
  return salvage_signature_damaged(bytes, report);
}

std::optional<skeleton::Skeleton> salvage_skeleton_file(
    const std::string& path, SalvageReport& report) {
  report = SalvageReport{};
  report.path = path;
  const std::string bytes = read_file(path);
  if (const archive::Result<skeleton::Skeleton> strict = archive::load_skeleton(path);
      strict.ok()) {
    report.clean = report.recovered = true;
    report.ranks_expected = report.ranks_kept = strict.value().ranks.size();
    return strict.value();
  } else {
    report.detail = strict.error().message;
  }
  return salvage_skeleton_damaged(bytes, report);
}

std::optional<skeleton::Skeleton> salvage_skeleton_bytes(
    const std::string& bytes, SalvageReport& report) {
  report = SalvageReport{};
  report.path = "<memory>";
  return salvage_skeleton_damaged(bytes, report);
}

}  // namespace psk::guard
