// Recovery of truncated or torn trace / signature / skeleton files.
//
// A crashed tracer, a full disk, or a partial copy leaves a file whose
// prefix is perfectly good data.  The strict loaders reject it outright;
// salvage_* instead recovers everything up to the last verifiable unit --
// whole events for text traces, whole events/ranks for archive payloads --
// and reports exactly what was kept and where the damage starts (line
// number for text, byte offset for binary), so `--validate=salvage` can
// proceed on the recovered prefix while telling the user what was lost.
#pragma once

#include <optional>
#include <string>

#include "sig/signature.h"
#include "skeleton/skeleton.h"
#include "trace/event.h"

namespace psk::guard {

/// What a salvage pass recovered from one file.
struct SalvageReport {
  std::string path;
  /// True when a usable value was produced (possibly the whole file).
  bool recovered = false;
  /// True when the file was intact and no salvage was needed.
  bool clean = false;
  /// Unit accounting: declared vs kept.  Events are tracked for traces
  /// only; ranks for every kind.
  std::uint64_t ranks_expected = 0;
  std::uint64_t ranks_kept = 0;
  std::uint64_t events_expected = 0;
  std::uint64_t events_kept = 0;
  /// Text inputs: 1-based line number of the first unusable line (0 when
  /// not applicable or the file was clean).
  std::size_t line = 0;
  /// Binary inputs: file offset of the first byte that could not be used
  /// (0 when not applicable or the file was clean).
  std::size_t byte_offset = 0;
  /// Why salvage stopped, empty when clean.
  std::string detail;

  /// One-paragraph human-readable rendering.
  std::string render() const;
};

/// Each salvor first tries the strict loader; on success the report is
/// `clean`.  On a format error it recovers the longest verifiable prefix.
/// Returns nullopt (with report.recovered == false) when nothing usable
/// survives -- e.g. the header itself is gone.  I/O errors (missing file)
/// still throw, as there is nothing to salvage.
std::optional<trace::Trace> salvage_trace_file(const std::string& path,
                                               SalvageReport& report);
std::optional<sig::Signature> salvage_signature_file(const std::string& path,
                                                     SalvageReport& report);
std::optional<skeleton::Skeleton> salvage_skeleton_file(
    const std::string& path, SalvageReport& report);

/// Salvage directly from an in-memory buffer.  These skip the strict
/// fast-path (so an intact buffer is reported `recovered`, never `clean`)
/// and never touch the filesystem; the fuzz harnesses use them to drive
/// the lenient decoders with arbitrary bytes.
std::optional<trace::Trace> salvage_trace_bytes(const std::string& bytes,
                                                SalvageReport& report);
std::optional<sig::Signature> salvage_signature_bytes(const std::string& bytes,
                                                      SalvageReport& report);
std::optional<skeleton::Skeleton> salvage_skeleton_bytes(
    const std::string& bytes, SalvageReport& report);

}  // namespace psk::guard
