// Deterministic fault injection for simulated clusters.
//
// A FaultSchedule describes, in simulated time, when resources go down and
// come back: whole-node crash/restart windows, link black-outs (including
// fast "flapping" via a short period), and transient CPU stalls.  install()
// arms the schedule on a Machine as self-rescheduling engine events -- the
// same daemon idiom the sharing scenarios use for flutter -- so a single
// seeded engine drives all timing and runs stay bit-reproducible.
//
// Failure semantics are "fail-stall, memory preserved": a crashed node stops
// computing and its link carries nothing, but jobs and in-flight messages
// are paused rather than lost, and resume when the node comes back.  The
// *cost* of real-world state loss is modelled separately by the coordinated
// checkpoint/restart layer below: with checkpointing enabled, every restart
// charges a global rollback stall of restart_cost plus the work executed
// since the last checkpoint (re-execution), and periodic checkpoints charge
// a global freeze of checkpoint_cost each.
#pragma once

#include <memory>
#include <vector>

#include "sim/machine.h"
#include "sim/time.h"

namespace psk::fault {

/// One node crashes at `first_at`, stays down for `downtime`, then restarts.
/// With `period > 0` the crash recurs every period (measured from the
/// previous crash); `period_jitter` perturbs each period multiplicatively
/// using the machine's seeded RNG, so different seeds explore different
/// alignments while a fixed seed stays bit-identical.
struct CrashSpec {
  int node = 0;
  sim::Time first_at = 0.0;
  sim::Time downtime = 0.0;
  sim::Time period = 0.0;       // 0 = one-shot
  double period_jitter = 0.0;   // multiplicative uniform amplitude
};

/// One node's link (both directions) carries zero bytes for `duration`
/// starting at `first_at`.  A short period + short duration models a
/// flapping link.  The node keeps computing; messages are delayed, not lost.
struct LinkOutageSpec {
  int node = 0;
  sim::Time first_at = 0.0;
  sim::Time duration = 0.0;
  sim::Time period = 0.0;
  double period_jitter = 0.0;
};

/// One node's CPUs freeze for `duration` (OS hiccup, thermal throttle, RAS
/// scrub): jobs pause and resume, the link stays up.
struct CpuStallSpec {
  int node = 0;
  sim::Time first_at = 0.0;
  sim::Time duration = 0.0;
  sim::Time period = 0.0;
  double period_jitter = 0.0;
};

/// Coordinated (blocking) checkpoint/restart model.  Every `interval`
/// simulated seconds all nodes freeze for `checkpoint_cost` to take a
/// consistent snapshot; checkpoints are skipped while any node is crashed.
/// When a crashed node restarts, all nodes freeze for
///     restart_cost + (crash_time - last_checkpoint)
/// charging both the restart protocol and the re-execution of work done
/// since the last consistent cut.
struct CheckpointConfig {
  bool enabled = false;
  sim::Time interval = 0.0;
  sim::Time checkpoint_cost = 0.0;
  sim::Time restart_cost = 0.0;
};

struct FaultSchedule {
  std::vector<CrashSpec> crashes;
  std::vector<LinkOutageSpec> outages;
  std::vector<CpuStallSpec> stalls;
  CheckpointConfig checkpoint;

  bool empty() const {
    return crashes.empty() && outages.empty() && stalls.empty() &&
           !checkpoint.enabled;
  }
};

/// Counters accumulated while the schedule runs; read them after the
/// simulation completes (the events share ownership, so the pointer stays
/// valid even if the machine outlives the caller's interest).
struct FaultStats {
  int crashes = 0;
  int restarts = 0;
  int outages = 0;
  int stalls = 0;
  int checkpoints = 0;
  int rollbacks = 0;
  /// Simulated seconds of progress re-executed after rollbacks (the
  /// crash-to-last-checkpoint gaps).
  double reexecuted = 0.0;
};

/// Arms `schedule` on `machine` as daemon events and returns the live stats.
/// Call before Engine::run(); validates node indices and durations.
std::shared_ptr<const FaultStats> install(sim::Machine& machine,
                                          const FaultSchedule& schedule);

}  // namespace psk::fault
