#include "fault/fault.h"

#include <algorithm>
#include <string>

#include "util/error.h"

namespace psk::fault {

namespace {

/// Shared between all armed events of one install() call.  Events capture a
/// shared_ptr, so the state outlives both the caller's FaultSchedule and any
/// early engine teardown.
struct InstallState {
  FaultStats stats;
  CheckpointConfig checkpoint;
  sim::Time last_checkpoint = 0.0;
  int active_crashes = 0;
};

using StatePtr = std::shared_ptr<InstallState>;

sim::Time next_period(sim::Machine& machine, sim::Time period, double jitter) {
  if (jitter > 0) return period * machine.engine().rng().jitter(jitter);
  return period;
}

void check_spec(const sim::Machine& machine, int node, sim::Time first_at,
                sim::Time length, sim::Time period, const char* what) {
  util::require(node >= 0 && node < machine.node_count(),
                std::string(what) + ": node " + std::to_string(node) +
                    " out of range [0," +
                    std::to_string(machine.node_count()) + ")");
  util::require(first_at >= 0, std::string(what) + ": first_at must be >= 0");
  util::require(length > 0, std::string(what) + ": duration must be > 0");
  util::require(period >= 0, std::string(what) + ": period must be >= 0");
}

// The three injectors below are self-rescheduling free functions (the
// scenario-flutter idiom): each firing performs the down transition,
// schedules the matching up transition, and -- for periodic specs -- arms
// the next firing relative to this one.
//
// Every event armed here is a *daemon* event: fault machinery keeps the
// queue busy forever, but by itself never completes an MPI request, so it
// must not count as pending progress (that would mask deadlock detection).
// Up-transitions are safe as daemons because in-flight work they resume is
// visible elsewhere -- paused flows via Network::transfers_pending(),
// stalled compute via tasks that are unfinished yet not MPI-blocked.

void arm_crash(sim::Machine& machine, const StatePtr& state, CrashSpec spec,
               sim::Time delay);

void arm_outage(sim::Machine& machine, const StatePtr& state,
                LinkOutageSpec spec, sim::Time delay);

void arm_stall(sim::Machine& machine, const StatePtr& state, CpuStallSpec spec,
               sim::Time delay);

void arm_crash(sim::Machine& machine, const StatePtr& state, CrashSpec spec,
               sim::Time delay) {
  machine.engine().daemon_after(delay, [&machine, state, spec] {
    const sim::Time crash_time = machine.engine().now();
    machine.crash_node(spec.node);
    ++state->stats.crashes;
    ++state->active_crashes;
    machine.engine().daemon_after(
        spec.downtime, [&machine, state, crash_time, node = spec.node] {
          // Restart.  Under checkpointing the whole machine additionally
          // rolls back: restart protocol plus re-execution of everything
          // since the last consistent cut, charged as a global stall.  The
          // recovered state is itself a consistent cut, so it resets
          // last_checkpoint.
          machine.restore_node(node);
          ++state->stats.restarts;
          --state->active_crashes;
          if (state->checkpoint.enabled) {
            ++state->stats.rollbacks;
            const sim::Time lost =
                std::max(0.0, crash_time - state->last_checkpoint);
            state->stats.reexecuted += lost;
            state->last_checkpoint = machine.engine().now();
            const sim::Time recovery = state->checkpoint.restart_cost + lost;
            if (recovery > 0) {
              machine.stall_all_nodes();
              machine.engine().daemon_after(
                  recovery, [&machine] { machine.resume_all_nodes(); });
            }
          }
        });
    if (spec.period > 0) {
      arm_crash(machine, state, spec,
                next_period(machine, spec.period, spec.period_jitter));
    }
  });
}

void arm_outage(sim::Machine& machine, const StatePtr& state,
                LinkOutageSpec spec, sim::Time delay) {
  machine.engine().daemon_after(delay, [&machine, state, spec] {
    machine.network().push_link_fault(spec.node);
    ++state->stats.outages;
    machine.engine().daemon_after(spec.duration, [&machine, node = spec.node] {
      machine.network().pop_link_fault(node);
    });
    if (spec.period > 0) {
      arm_outage(machine, state, spec,
                 next_period(machine, spec.period, spec.period_jitter));
    }
  });
}

void arm_stall(sim::Machine& machine, const StatePtr& state, CpuStallSpec spec,
               sim::Time delay) {
  machine.engine().daemon_after(delay, [&machine, state, spec] {
    machine.node(spec.node).push_stall();
    ++state->stats.stalls;
    machine.engine().daemon_after(spec.duration,
                                  [&machine, node = spec.node] {
                                    machine.node(node).pop_stall();
                                  });
    if (spec.period > 0) {
      arm_stall(machine, state, spec,
                next_period(machine, spec.period, spec.period_jitter));
    }
  });
}

void arm_checkpoints(sim::Machine& machine, const StatePtr& state) {
  machine.engine().daemon_after(state->checkpoint.interval,
                                [&machine, state] {
    // Skip (do not even count) checkpoints attempted while a node is down:
    // a coordinated protocol cannot reach a crashed participant.  The
    // interval clock keeps ticking either way.
    if (state->active_crashes == 0) {
      ++state->stats.checkpoints;
      state->last_checkpoint = machine.engine().now();
      if (state->checkpoint.checkpoint_cost > 0) {
        machine.stall_all_nodes();
        machine.engine().daemon_after(
            state->checkpoint.checkpoint_cost,
            [&machine] { machine.resume_all_nodes(); });
      }
    }
    arm_checkpoints(machine, state);
  });
}

}  // namespace

std::shared_ptr<const FaultStats> install(sim::Machine& machine,
                                          const FaultSchedule& schedule) {
  for (const CrashSpec& spec : schedule.crashes) {
    check_spec(machine, spec.node, spec.first_at, spec.downtime, spec.period,
               "fault::install crash");
  }
  for (const LinkOutageSpec& spec : schedule.outages) {
    check_spec(machine, spec.node, spec.first_at, spec.duration, spec.period,
               "fault::install outage");
  }
  for (const CpuStallSpec& spec : schedule.stalls) {
    check_spec(machine, spec.node, spec.first_at, spec.duration, spec.period,
               "fault::install stall");
  }
  if (schedule.checkpoint.enabled) {
    util::require(schedule.checkpoint.interval > 0,
                  "fault::install: checkpoint interval must be > 0");
    util::require(schedule.checkpoint.checkpoint_cost >= 0 &&
                      schedule.checkpoint.restart_cost >= 0,
                  "fault::install: checkpoint costs must be >= 0");
  }

  auto state = std::make_shared<InstallState>();
  state->checkpoint = schedule.checkpoint;
  for (const CrashSpec& spec : schedule.crashes) {
    arm_crash(machine, state, spec, spec.first_at);
  }
  for (const LinkOutageSpec& spec : schedule.outages) {
    arm_outage(machine, state, spec, spec.first_at);
  }
  for (const CpuStallSpec& spec : schedule.stalls) {
    arm_stall(machine, state, spec, spec.first_at);
  }
  if (schedule.checkpoint.enabled) arm_checkpoints(machine, state);
  return std::shared_ptr<const FaultStats>(state, &state->stats);
}

}  // namespace psk::fault
