// Small, fast, reproducible pseudo-random number generators.
//
// Simulations must be bit-reproducible across runs and platforms, so we use
// our own xoshiro256** implementation (seeded via splitmix64) instead of the
// implementation-defined std:: distributions.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace psk::util {

/// splitmix64 step; used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEFULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Multiplicative jitter factor in [1-amplitude, 1+amplitude].
  double jitter(double amplitude) {
    return 1.0 + uniform(-amplitude, amplitude);
  }

  /// Gaussian sample (Box-Muller; one fresh pair per call, second value
  /// discarded for simplicity).
  double normal(double mean, double stddev) {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * radius * std::cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace psk::util
