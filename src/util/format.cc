#include "util/format.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace psk::util {

std::string fixed(double value, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return buf.data();
}

std::string human_bytes(std::uint64_t bytes) {
  constexpr std::array<const char*, 5> units = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < units.size()) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return std::to_string(bytes) + " B";
  return fixed(value, value < 10 ? 2 : 1) + " " + units[unit];
}

std::string human_seconds(double seconds) {
  if (seconds < 0) return "-" + human_seconds(-seconds);
  if (seconds < 1e-3) return fixed(seconds * 1e6, 1) + " us";
  if (seconds < 1.0) return fixed(seconds * 1e3, 2) + " ms";
  if (seconds < 120.0) return fixed(seconds, 2) + " s";
  const auto mins = static_cast<long>(seconds / 60.0);
  const double rem = seconds - static_cast<double>(mins) * 60.0;
  return std::to_string(mins) + "m" + fixed(rem, 0) + "s";
}

std::string percent(double fraction) { return fixed(fraction * 100.0, 1) + "%"; }

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string indexed(const std::string& name, std::size_t i) {
  return name + "[" + std::to_string(i) + "]";
}

}  // namespace psk::util
