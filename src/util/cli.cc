#include "util/cli.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace psk::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& token = it->second;
  char* parsed_end = nullptr;
  const double value = std::strtod(token.c_str(), &parsed_end);
  require(!token.empty() && parsed_end == token.c_str() + token.size(),
          "--" + name + ": cannot parse '" + token + "' as a number");
  return value;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& token = it->second;
  char* parsed_end = nullptr;
  const std::int64_t value = std::strtoll(token.c_str(), &parsed_end, 10);
  require(!token.empty() && parsed_end == token.c_str() + token.size(),
          "--" + name + ": cannot parse '" + token + "' as an integer");
  return value;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

void Cli::require_known(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const auto& candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (found) continue;
    std::string valid;
    for (const auto& candidate : known) {
      if (!valid.empty()) valid += ", ";
      valid += "--" + candidate;
    }
    throw ConfigError("unknown flag --" + name + " (valid flags: " + valid +
                      ")");
  }
}

std::vector<double> parse_positive_doubles(const std::string& text,
                                           const std::string& what) {
  require(!text.empty(), what + ": expected a comma-separated list");
  std::vector<double> values;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    require(!token.empty(),
            what + ": empty element in list '" + text + "'");
    char* parsed_end = nullptr;
    const double value = std::strtod(token.c_str(), &parsed_end);
    require(parsed_end == token.c_str() + token.size(),
            what + ": cannot parse '" + token + "' as a number");
    require(std::isfinite(value) && value > 0,
            what + ": value '" + token + "' must be positive and finite");
    values.push_back(value);
    begin = end + 1;
  }
  return values;
}

}  // namespace psk::util
