// ASCII table and bar-chart rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables/figures as plain
// text; these helpers keep the output layout consistent across binaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace psk::util {

/// Column-aligned ASCII table with a header row and optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row must have as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `decimals` digits.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int decimals);

  /// Renders with box-drawing separators.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal ASCII bar chart: one labelled bar per entry, scaled so the
/// longest bar is `width` characters.
struct BarChart {
  struct Entry {
    std::string label;
    double value = 0.0;
  };

  std::string title;
  std::vector<Entry> entries;
  std::size_t width = 50;
  int decimals = 1;
  std::string unit;

  std::string render() const;
};

/// Grouped series chart rendered as a table plus per-group bars; mirrors the
/// paper's grouped-bar figures (e.g. error per benchmark per skeleton size).
struct GroupedSeries {
  std::string title;
  std::vector<std::string> group_labels;           // x-axis groups
  std::vector<std::string> series_labels;          // one bar per series
  std::vector<std::vector<double>> values;         // [series][group]
  int decimals = 1;
  std::string unit;

  std::string render() const;
};

}  // namespace psk::util
