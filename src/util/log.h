// Minimal leveled logging to stderr.
//
// The libraries are quiet by default; benches and examples raise the level
// for progress output.  Thread-safe: each simulation is single-threaded,
// but the runner pool executes many simulations concurrently and their
// progress lines must not interleave mid-line, so log_line performs one
// formatted write under a mutex.
#pragma once

#include <sstream>
#include <string>

namespace psk::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line "[level] message" to stderr when enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace psk::util
