// Streaming and batch statistics helpers used by the experiment harnesses.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace psk::util {

/// Welford streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sequence; 0 for an empty sequence.
double mean_of(std::span<const double> xs);

/// Population min / max / mean summary of a sequence.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation over an
/// ascending-sorted sample.  Callers querying several percentiles of one
/// sample (p50/p95/p99) should sort once and use this; the by-value
/// overload below re-sorts on every call.
double percentile_sorted(std::span<const double> sorted_xs, double p);

/// p-th percentile (0..100) by linear interpolation; xs need not be sorted
/// (sorts its copy, then delegates to percentile_sorted).
double percentile(std::vector<double> xs, double p);

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are 0.
double rel_diff(double a, double b);

}  // namespace psk::util
