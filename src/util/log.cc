#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace psk::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level() || message.empty()) return;
  // One formatted write per line so concurrent pool workers never
  // interleave their output mid-line.
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace psk::util
