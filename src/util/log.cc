#include "util/log.h"

#include <cstdio>

namespace psk::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level || message.empty()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace psk::util
