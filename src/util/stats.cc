#include "util/stats.h"

#include <algorithm>
#include <cstdlib>

namespace psk::util {

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}

double percentile_sorted(std::span<const double> sorted_xs, double p) {
  if (sorted_xs.empty()) return 0.0;
  if (sorted_xs.size() == 1) return sorted_xs[0];
  const double pos = std::clamp(p, 0.0, 100.0) / 100.0 *
                     static_cast<double>(sorted_xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_xs[lo] + (sorted_xs[hi] - sorted_xs[lo]) * frac;
}

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

double rel_diff(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 0.0;
  return std::abs(a - b) / denom;
}

}  // namespace psk::util
