// Plain-text formatting helpers for reports, tables and trace dumps.
#pragma once

#include <cstdint>
#include <string>

namespace psk::util {

/// Fixed-point decimal, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double value, int decimals);

/// Human-readable byte count: "512 B", "1.5 KB", "2.3 MB".
std::string human_bytes(std::uint64_t bytes);

/// Human-readable duration in seconds: "950 us", "1.25 s", "12m34s".
std::string human_seconds(double seconds);

/// Percentage with one decimal: "42.0%".
std::string percent(double fraction);

/// Left/right padding to a fixed width (truncates when too long).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// "name[i]" style indexed label.
std::string indexed(const std::string& name, std::size_t i);

}  // namespace psk::util
