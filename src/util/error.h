// Error types shared across the perfskel libraries.
//
// The library throws exceptions derived from psk::Error for unrecoverable
// conditions (mis-configured topologies, deadlocked replays, malformed trace
// files).  Recoverable "soft" conditions are reported through return values.
#pragma once

#include <stdexcept>
#include <string>

namespace psk {

/// Base class for all exceptions thrown by the perfskel libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A simulated program stopped making progress: the event queue drained while
/// one or more rank coroutines were still suspended (e.g. a Recv whose
/// matching Send never arrives in a mis-compressed skeleton).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Invalid argument or configuration detected at API boundaries.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Malformed or inconsistent trace / signature input.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// An operation exceeded its configured deadline: a timed MPI wait ran out
/// of retries (the peer's node stayed down), or a simulation blew its
/// wall-clock watchdog budget.  Sweep executors record these as `timeout`
/// cells instead of failing the whole run.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

namespace util {

/// Throws ConfigError with `what` when `cond` is false.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw ConfigError(what);
}

}  // namespace util
}  // namespace psk
