// Tiny command-line flag parser for examples and bench binaries.
//
// Supports "--name=value" and boolean "--name" forms; everything else is a
// positional argument.  Numeric getters validate the whole token and throw
// ConfigError on junk ("--jobs=abc"), and require_known() rejects typo'd
// flag names ("--job=4") with the list of flags the tool understands.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psk::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;

  /// Numeric getters parse the full flag value; partial or unparsable
  /// tokens ("abc", "4x", "") throw ConfigError naming the flag, rather
  /// than silently yielding 0 as raw strtod/strtoll would.
  double get_double(const std::string& name, double def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Throws ConfigError if any parsed --flag is not in `known`, listing
  /// the valid flags so a typo ("--resum") fails loudly instead of being
  /// ignored.  Call once after constructing, with every flag the tool
  /// consults.
  void require_known(const std::vector<std::string>& known) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Parses a comma-separated list of strictly positive numbers ("10,5,0.5").
/// Throws ConfigError naming `what` (e.g. "--sizes") on an empty list,
/// empty element, unparsable or trailing text, or a non-positive value --
/// instead of the uncatchable std::stod abort a raw conversion would give.
std::vector<double> parse_positive_doubles(const std::string& text,
                                           const std::string& what);

}  // namespace psk::util
