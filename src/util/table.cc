#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/format.h"

namespace psk::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "Table: row width does not match header width");
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int decimals) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fixed(v, decimals));
  add_row(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + pad_left(row[c], widths[c]) + " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  out << rule() << render_row(header_) << rule();
  for (const auto& row : rows_) out << render_row(row);
  out << rule();
  return out.str();
}

std::string BarChart::render() const {
  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& e : entries) {
    max_value = std::max(max_value, e.value);
    label_width = std::max(label_width, e.label.size());
  }
  for (const auto& e : entries) {
    const std::size_t bars =
        max_value > 0
            ? static_cast<std::size_t>(e.value / max_value *
                                       static_cast<double>(width))
            : 0;
    out << pad_right(e.label, label_width) << " | "
        << pad_right(std::string(bars, '#'), width) << " " << fixed(e.value, decimals);
    if (!unit.empty()) out << " " << unit;
    out << "\n";
  }
  return out.str();
}

std::string GroupedSeries::render() const {
  std::ostringstream out;
  if (!title.empty()) out << title << "\n\n";

  // Numeric table: rows = groups, columns = series.
  std::vector<std::string> header{""};
  header.insert(header.end(), series_labels.begin(), series_labels.end());
  Table table(header);
  for (std::size_t g = 0; g < group_labels.size(); ++g) {
    std::vector<double> row;
    row.reserve(series_labels.size());
    for (std::size_t s = 0; s < series_labels.size(); ++s) {
      row.push_back(values.at(s).at(g));
    }
    table.add_row_numeric(group_labels[g], row, decimals);
  }
  out << table.render() << "\n";

  // Per-group bar view.
  for (std::size_t g = 0; g < group_labels.size(); ++g) {
    BarChart chart;
    chart.title = group_labels[g];
    chart.decimals = decimals;
    chart.unit = unit;
    for (std::size_t s = 0; s < series_labels.size(); ++s) {
      chart.entries.push_back({series_labels[s], values.at(s).at(g)});
    }
    out << chart.render() << "\n";
  }
  return out.str();
}

}  // namespace psk::util
