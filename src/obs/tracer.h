// Simulated-time span tracer with Chrome trace_event export.
//
// Components record activity spans in simulated seconds on (pid, tid)
// tracks; write_chrome_json() emits the Chrome trace_event JSON array
// format, so any run opens directly in chrome://tracing or Perfetto.
// Timestamps are exported in microseconds of *simulated* time.
//
// Spans are appended in simulation event order by a single-threaded engine,
// so the export is deterministic for a fixed seed regardless of how many
// runner-pool workers execute *other* simulations concurrently.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace psk::obs {

class Tracer {
 public:
  using SpanId = std::size_t;
  static constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

  /// Opens a span; close it with end().  Spans still open at export time
  /// are closed at the export's end_time (a fault window that never cleared
  /// spans to the end of the run).
  SpanId begin(int pid, int tid, std::string name, std::string category,
               double t);
  void end(SpanId id, double t);

  /// Records a closed span in one call (the common case for MPI ops).
  void complete(int pid, int tid, std::string name, std::string category,
                double t_start, double t_end);

  /// Track labels shown by the trace viewer.
  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, int tid, std::string name);

  std::size_t span_count() const { return spans_.size(); }

  void write_chrome_json(std::ostream& out, double end_time) const;
  std::string to_chrome_json(double end_time) const;

 private:
  struct Span {
    int pid = 0;
    int tid = 0;
    std::string name;
    std::string category;
    double t_start = 0;
    double t_end = 0;
    bool open = false;
  };

  std::vector<Span> spans_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
};

}  // namespace psk::obs
