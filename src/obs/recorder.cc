#include "obs/recorder.h"

#include <fstream>

#include "util/error.h"

namespace psk::obs {

void Recorder::write_metrics_file(const std::string& path,
                                  double end_time) const {
  std::ofstream out(path);
  util::require(out.good(), "obs: cannot open metrics file " + path);
  metrics_.write_kv(out, end_time);
  util::require(out.good(), "obs: failed writing metrics file " + path);
}

void Recorder::write_trace_file(const std::string& path,
                                double end_time) const {
  std::ofstream out(path);
  util::require(out.good(), "obs: cannot open trace file " + path);
  tracer_.write_chrome_json(out, end_time);
  util::require(out.good(), "obs: failed writing trace file " + path);
}

}  // namespace psk::obs
