#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/error.h"

namespace psk::obs {

void Gauge::set(double t, double value) {
  if (t > last_t_) {
    integral_ += last_value_ * (t - last_t_);
    last_t_ = t;
  }
  last_value_ = value;
  max_ = std::max(max_, value);
}

double Gauge::integral(double end_time) const {
  double total = integral_;
  if (end_time > last_t_) total += last_value_ * (end_time - last_t_);
  return total;
}

double Gauge::mean(double end_time) const {
  if (end_time <= 0) return 0;
  return integral(end_time) / end_time;
}

TimeHistogram::TimeHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      seconds_(bounds_.size() + 1, 0.0) {
  util::require(std::is_sorted(bounds_.begin(), bounds_.end()),
                "TimeHistogram: upper bounds must be sorted ascending");
}

std::size_t TimeHistogram::bucket_of(double value) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void TimeHistogram::observe(double t, double value) {
  if (t > last_t_) {
    seconds_[bucket_of(last_value_)] += t - last_t_;
    last_t_ = t;
  }
  last_value_ = value;
}

std::vector<double> TimeHistogram::bucket_seconds(double end_time) const {
  std::vector<double> result = seconds_;
  if (end_time > last_t_) {
    result[bucket_of(last_value_)] += end_time - last_t_;
  }
  return result;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

TimeHistogram& MetricsRegistry::histogram(const std::string& name,
                                          std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, TimeHistogram(std::move(upper_bounds)))
      .first->second;
}

void MetricsRegistry::set_info(const std::string& key,
                               const std::string& value) {
  info_[key] = value;
}

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void MetricsRegistry::write_kv(std::ostream& out, double end_time) const {
  // One sorted key space: info lines first (they sort under "info."), then
  // the instruments.  std::map iteration keeps everything deterministic.
  for (const auto& [key, value] : info_) {
    out << "info." << key << "=" << value << "\n";
  }
  for (const auto& [name, counter] : counters_) {
    out << name << "=" << format_value(counter.value()) << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << ".mean=" << format_value(gauge.mean(end_time)) << "\n";
    out << name << ".max=" << format_value(gauge.max()) << "\n";
    out << name << ".last=" << format_value(gauge.last()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::vector<double> seconds = histogram.bucket_seconds(end_time);
    const std::vector<double>& bounds = histogram.upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << name << ".le_" << format_value(bounds[i]) << "="
          << format_value(seconds[i]) << "\n";
    }
    out << name << ".inf=" << format_value(seconds.back()) << "\n";
  }
}

std::string MetricsRegistry::to_kv(double end_time) const {
  std::ostringstream out;
  write_kv(out, end_time);
  return out.str();
}

}  // namespace psk::obs
