#include "obs/phase.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace psk::obs {

void PhaseProfiler::add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Phase& phase = phases_[name];
  phase.seconds += seconds;
  phase.calls += 1;
}

std::map<std::string, PhaseProfiler::Phase> PhaseProfiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

std::string PhaseProfiler::render() const {
  const std::map<std::string, Phase> phases = snapshot();
  std::vector<std::pair<std::string, Phase>> rows(phases.begin(),
                                                  phases.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.seconds > b.second.seconds;
  });
  std::string out = "phase           calls     wall s\n";
  for (const auto& [name, phase] : rows) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-15s %5llu %10.3f\n", name.c_str(),
                  static_cast<unsigned long long>(phase.calls),
                  phase.seconds);
    out += line;
  }
  return out;
}

}  // namespace psk::obs
