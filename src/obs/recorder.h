// Recorder: one observability context for one simulated run.
//
// Bundles the metrics registry and the span tracer that the sim / MPI
// layers feed.  Attach one Recorder to one sim::Machine before the run
// (Machine::attach_obs); mpi::World picks it up automatically.  A Recorder
// must not be shared by concurrent runs -- parallel sweeps give each
// instrumented run its own Recorder (or, like the experiment driver, record
// a dedicated serial run so the dump is identical for any --jobs value).
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace psk::obs {

class Recorder {
 public:
  /// Trace track (pid) conventions shared by the instrumented layers.
  static constexpr int kRankPid = 0;  // per-rank MPI activity spans
  static constexpr int kNodePid = 1;  // per-node CPU stall / fault windows
  static constexpr int kNetPid = 2;   // per-node link fault windows

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Writes the flat key=value metrics dump / the Chrome trace_event JSON;
  /// `end_time` (simulated seconds, typically the run's elapsed time)
  /// closes time-weighted instruments and still-open spans.
  void write_metrics_file(const std::string& path, double end_time) const;
  void write_trace_file(const std::string& path, double end_time) const;

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace psk::obs
