// Lightweight metrics registry for simulation observability.
//
// Three instrument kinds:
//   Counter        accumulated double (bytes moved, busy core-seconds, ...)
//   Gauge          value tracked over simulated time with a time-weighted
//                  integral (runnable jobs, active flows)
//   TimeHistogram  time-weighted occupancy histogram: how long the tracked
//                  quantity sat in each value bucket
//
// Hot-path discipline: instruments are resolved ONCE from the registry (an
// ordered-map lookup) when a component attaches; the component then updates
// them through raw pointers -- no lookups, no virtual dispatch, no
// allocation.  A component whose instrument pointer is null skips all
// bookkeeping, so that single null check is the entire cost of disabled
// instrumentation.
//
// Dumps are deterministic: instruments live in ordered maps and values are
// formatted with a fixed precision, so runs computing identical doubles
// produce byte-identical files regardless of thread count.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace psk::obs {

class Counter {
 public:
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// A value over simulated time.  set(t, v) closes the segment since the
/// previous set at the previous value; integral/mean interpret the value as
/// held constant between sets (and 0 before the first set).
class Gauge {
 public:
  void set(double t, double value);
  double last() const { return last_value_; }
  double max() const { return max_; }
  /// Integral of the gauge over [0, end_time].
  double integral(double end_time) const;
  /// Time-weighted mean over [0, end_time]; 0 when end_time <= 0.
  double mean(double end_time) const;

 private:
  double last_value_ = 0;
  double last_t_ = 0;
  double integral_ = 0;
  double max_ = 0;
};

/// Time-weighted histogram: bucket i covers values <= upper_bounds[i] (one
/// implicit overflow bucket above the last bound).  observe(t, v) charges
/// the time since the previous observation to the previous value's bucket.
class TimeHistogram {
 public:
  explicit TimeHistogram(std::vector<double> upper_bounds);

  void observe(double t, double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket occupancy seconds over [0, end_time] (last value held to
  /// end_time); size is upper_bounds().size() + 1.
  std::vector<double> bucket_seconds(double end_time) const;

 private:
  std::size_t bucket_of(double value) const;

  std::vector<double> bounds_;
  std::vector<double> seconds_;
  double last_value_ = 0;
  double last_t_ = 0;
};

class MetricsRegistry {
 public:
  /// Instrument handles are stable for the registry's lifetime (node-based
  /// map storage); resolve once at attach time, update through the pointer.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  TimeHistogram& histogram(const std::string& name,
                           std::vector<double> upper_bounds);

  /// Free-form run labels (scenario name, app name) included in the dump.
  void set_info(const std::string& key, const std::string& value);

  /// Flat `key=value` lines, keys sorted, one instrument per line family:
  /// counters dump their value; gauges dump .mean/.max/.last; histograms
  /// dump .le_<bound>/.inf occupancy seconds.  `end_time` closes all
  /// time-weighted instruments.  Deterministic for identical inputs.
  void write_kv(std::ostream& out, double end_time) const;
  std::string to_kv(double end_time) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, TimeHistogram> histograms_;
  std::map<std::string, std::string> info_;
};

/// Fixed-precision number formatting shared by the kv and trace dumps
/// ("%.12g": deterministic for identical doubles, readable in diffs).
std::string format_value(double value);

}  // namespace psk::obs
