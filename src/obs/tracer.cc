#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "util/error.h"

namespace psk::obs {

namespace {

/// Minimal JSON string escape (names here are ASCII identifiers, but keep
/// the export valid for anything a caller passes).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string micros(double seconds) {
  return format_value(seconds * 1e6);
}

}  // namespace

Tracer::SpanId Tracer::begin(int pid, int tid, std::string name,
                             std::string category, double t) {
  Span span;
  span.pid = pid;
  span.tid = tid;
  span.name = std::move(name);
  span.category = std::move(category);
  span.t_start = t;
  span.open = true;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Tracer::end(SpanId id, double t) {
  util::require(id < spans_.size(), "Tracer::end: invalid span id");
  Span& span = spans_[id];
  util::require(span.open, "Tracer::end: span already closed");
  span.t_end = t;
  span.open = false;
}

void Tracer::complete(int pid, int tid, std::string name,
                      std::string category, double t_start, double t_end) {
  Span span;
  span.pid = pid;
  span.tid = tid;
  span.name = std::move(name);
  span.category = std::move(category);
  span.t_start = t_start;
  span.t_end = t_end;
  spans_.push_back(std::move(span));
}

void Tracer::set_process_name(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void Tracer::set_thread_name(int pid, int tid, std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

void Tracer::write_chrome_json(std::ostream& out, double end_time) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    separator();
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& [key, name] : thread_names_) {
    separator();
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first
        << ",\"tid\":" << key.second << ",\"args\":{\"name\":\""
        << json_escape(name) << "\"}}";
  }
  for (const Span& span : spans_) {
    const double t_end = span.open ? end_time : span.t_end;
    separator();
    out << "{\"ph\":\"X\",\"name\":\"" << json_escape(span.name)
        << "\",\"cat\":\"" << json_escape(span.category)
        << "\",\"pid\":" << span.pid << ",\"tid\":" << span.tid
        << ",\"ts\":" << micros(span.t_start)
        << ",\"dur\":" << micros(std::max(0.0, t_end - span.t_start)) << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string Tracer::to_chrome_json(double end_time) const {
  std::ostringstream out;
  write_chrome_json(out, end_time);
  return out.str();
}

}  // namespace psk::obs
