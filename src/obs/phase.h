// Wall-clock phase profiler for the construction pipeline.
//
// Answers "where does the tool's own time go": record, fold, cluster,
// compress, scale, codegen, measure.  Phases accumulate wall seconds and
// call counts under a mutex, so pool workers may report concurrently; the
// report is therefore wall-clock truth for this run but NOT deterministic
// across machines -- which is why phase timings are rendered separately and
// never written into the deterministic --metrics-out dump.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace psk::obs {

class PhaseProfiler {
 public:
  struct Phase {
    double seconds = 0;
    std::uint64_t calls = 0;
  };

  void add(const std::string& name, double seconds);

  /// RAII timer: charges the elapsed wall time to `name` on destruction.
  /// A null profiler makes the scope a no-op, so call sites need no branch.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, std::string name)
        : profiler_(profiler),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      if (profiler_ == nullptr) return;
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      profiler_->add(name_, elapsed.count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler* profiler_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  std::map<std::string, Phase> snapshot() const;

  /// Human-readable table (phase, calls, total seconds), longest first.
  std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Phase> phases_;
};

}  // namespace psk::obs
