// FT: 3D FFT PDE solver (extended suite; not part of the paper's six).
//
// Structure (NPB 2.x FT, transpose algorithm): per timestep, local FFTs
// along the in-processor dimensions, then a global transpose implemented as
// a large all-to-all, then the remaining 1D FFTs, plus a checksum reduction
// every step.  The most alltoall-bound code in NPB -- a stress test for the
// skeleton's handling of huge collective payloads.
#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct FtParams {
  int steps;
  mpi::Bytes transpose_bytes;  // alltoall payload per peer pair
  double fft_work;             // per-step local FFT computation
  double init_work;
};

FtParams ft_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {6, 32 * 1024, 0.004, 0.004};
    case NasClass::kW:
      return {6, 512 * 1024, 0.06, 0.05};
    case NasClass::kA:
      return {6, 8 * 1024 * 1024, 1.0, 0.8};
    case NasClass::kB:
      return {20, 24ull * 1024 * 1024, 2.4, 2.0};
  }
  return {};
}

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 3.8e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_ft(NasClass cls) {
  const FtParams p = ft_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    co_await comm.bcast(0, 64);
    co_await comm.compute(p.init_work, mem_of(p.init_work));  // warm-up
    co_await comm.alltoall(p.transpose_bytes);  // initial transform

    for (int step = 0; step < p.steps; ++step) {
      const double v = vary(step, 0.05, 1.1);
      const double in_proc = p.fft_work * 0.55 * v;
      co_await comm.compute(in_proc, mem_of(in_proc));  // evolve + cffts
      co_await comm.alltoall(p.transpose_bytes);     // global transpose
      const double final_ffts = p.fft_work * 0.45 * v;
      co_await comm.compute(final_ffts, mem_of(final_ffts));
      co_await comm.allreduce(16);                   // checksum
    }

    co_await comm.reduce(0, 16);
  };
}

}  // namespace psk::apps
