#include "apps/common.h"

#include <cmath>
#include <string>

namespace psk::apps {

namespace {
int int_sqrt(int n) {
  int root = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  while (root * root > n) --root;
  while ((root + 1) * (root + 1) <= n) ++root;
  return root;
}
}  // namespace

Grid2D::Grid2D(int ranks) {
  util::require(ranks >= 1, "Grid2D: need at least one rank");
  // Largest factorization rows x cols with rows <= cols (NPB's setup).
  rows_ = int_sqrt(ranks);
  while (ranks % rows_ != 0) --rows_;
  cols_ = ranks / rows_;
}

int Grid2D::at(int row, int col) const {
  const int r = ((row % rows_) + rows_) % rows_;
  const int c = ((col % cols_) + cols_) % cols_;
  return r * cols_ + c;
}

int Grid2D::north_open(int rank) const {
  const int r = row_of(rank);
  return r > 0 ? at(r - 1, col_of(rank)) : -1;
}

int Grid2D::south_open(int rank) const {
  const int r = row_of(rank);
  return r + 1 < rows_ ? at(r + 1, col_of(rank)) : -1;
}

int Grid2D::west_open(int rank) const {
  const int c = col_of(rank);
  return c > 0 ? at(row_of(rank), c - 1) : -1;
}

int Grid2D::east_open(int rank) const {
  const int c = col_of(rank);
  return c + 1 < cols_ ? at(row_of(rank), c + 1) : -1;
}

int Grid2D::transpose(int rank) const {
  util::require(rows_ == cols_,
                "Grid2D::transpose requires a square grid, got " +
                    std::to_string(rows_) + "x" + std::to_string(cols_));
  return at(col_of(rank), row_of(rank));
}

sim::Task neighbor_exchange(mpi::Comm& comm, std::vector<NeighborXfer> xfers,
                            double interior_work) {
  std::vector<mpi::Request> requests;
  requests.reserve(xfers.size() * 2);
  for (const NeighborXfer& xfer : xfers) {
    if (xfer.recv_from >= 0) {
      requests.push_back(comm.irecv(xfer.recv_from, xfer.bytes, xfer.tag));
    }
  }
  if (interior_work > 0) co_await comm.compute(interior_work);
  for (const NeighborXfer& xfer : xfers) {
    if (xfer.send_to >= 0) {
      requests.push_back(comm.isend(xfer.send_to, xfer.bytes, xfer.tag));
    }
  }
  co_await comm.waitall(std::move(requests));
}

}  // namespace psk::apps
