// LU: SSOR solver with a 2D wavefront pipeline.
//
// Structure per timestep (NPB 2.x LU on a 2D non-periodic grid): an RHS
// computation with a nonblocking face exchange (exchange_3), then the two
// SSOR sweeps.  Each sweep pipelines the k-planes of the grid: for each
// plane block, receive the boundary rows from the upstream neighbours
// (north/west on the lower sweep), compute, and forward downstream
// (south/east).  This produces LU's signature stream of many small blocking
// messages, the latency-sensitive behaviour the paper discusses.
#include <vector>

#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct LuParams {
  int steps;
  int k_blocks;           // pipeline stages per sweep
  mpi::Bytes pipe_bytes;  // per-block boundary message (small, eager)
  mpi::Bytes exch3_bytes; // RHS face exchange (large)
  double rhs_work;        // per-step RHS computation
  double sweep_work;      // per-step total sweep computation (both sweeps)
  int norm_every;         // steps between residual-norm allreduces
};

LuParams lu_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {50, 6, 1536, 16 * 1024, 0.0008, 0.002, 10};
    case NasClass::kW:
      return {300, 16, 8 * 1024, 128 * 1024, 0.03, 0.09, 50};
    case NasClass::kA:
      return {250, 32, 20 * 1024, 512 * 1024, 0.16, 0.5, 50};
    case NasClass::kB:
      return {250, 50, 40 * 1024, 1024 * 1024, 0.30, 0.90, 50};
  }
  return {};
}

constexpr int kTagExch3 = 300;
constexpr int kTagLower = 310;
constexpr int kTagUpper = 311;

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 2.4e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_lu(NasClass cls) {
  const LuParams p = lu_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    const Grid2D grid(comm.size());
    const int me = comm.rank();
    const int north = grid.north_open(me);
    const int south = grid.south_open(me);
    const int west = grid.west_open(me);
    const int east = grid.east_open(me);

    co_await comm.bcast(0, 64);
    co_await comm.compute(p.rhs_work * 4, mem_of(p.rhs_work * 4));

    const double block_work =
        p.sweep_work / (2.0 * static_cast<double>(p.k_blocks));

    for (int step = 0; step < p.steps; ++step) {
      // Fast-oscillating (mean-stationary) variation: LU's per-step work
      // wobbles but does not drift, as in the real SSOR iteration counts.
      const double v = vary(step, 0.10, 1.9);

      // RHS with exchange_3 on all existing neighbours.
      std::vector<NeighborXfer> faces;
      faces.push_back({north, south, p.exch3_bytes, kTagExch3});
      faces.push_back({south, north, p.exch3_bytes, kTagExch3 + 1});
      faces.push_back({west, east, p.exch3_bytes, kTagExch3 + 2});
      faces.push_back({east, west, p.exch3_bytes, kTagExch3 + 3});
      co_await neighbor_exchange(comm, std::move(faces), p.rhs_work * v);

      // Lower-triangular sweep: wavefront flows from (0,0) to (R,C).
      for (int kb = 0; kb < p.k_blocks; ++kb) {
        if (north >= 0) co_await comm.recv(north, p.pipe_bytes, kTagLower);
        if (west >= 0) co_await comm.recv(west, p.pipe_bytes, kTagLower);
        co_await comm.compute(block_work * v, mem_of(block_work * v));
        if (south >= 0) co_await comm.send(south, p.pipe_bytes, kTagLower);
        if (east >= 0) co_await comm.send(east, p.pipe_bytes, kTagLower);
      }

      // Upper-triangular sweep: wavefront flows back from (R,C) to (0,0).
      for (int kb = 0; kb < p.k_blocks; ++kb) {
        if (south >= 0) co_await comm.recv(south, p.pipe_bytes, kTagUpper);
        if (east >= 0) co_await comm.recv(east, p.pipe_bytes, kTagUpper);
        co_await comm.compute(block_work * v, mem_of(block_work * v));
        if (north >= 0) co_await comm.send(north, p.pipe_bytes, kTagUpper);
        if (west >= 0) co_await comm.send(west, p.pipe_bytes, kTagUpper);
      }

      if ((step + 1) % p.norm_every == 0) {
        co_await comm.allreduce(40);  // residual norms
      }
    }

    co_await comm.allreduce(40);
    co_await comm.reduce(0, 40);  // verification
  };
}

}  // namespace psk::apps
