// IS: Integer Sort.
//
// Structure per iteration (NPB 2.x IS): local key ranking, an allreduce of
// bucket-size counts, an alltoall of send counts, then the dominant
// operation -- a large alltoallv redistributing all keys -- followed by the
// local sort of received keys.  IS is the most communication-intensive code
// in the suite; its "smallest good skeleton" must contain one full
// alltoallv (section 3.4 of the paper).
#include <vector>

#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct IsParams {
  int iterations;
  mpi::Bytes bucket_bytes;  // allreduce of bucket counts
  mpi::Bytes key_bytes;     // alltoallv payload per peer
  double rank_work;         // local key ranking
  double sort_work;         // local sort of received keys
};

IsParams is_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {10, 256, 4 * 1024, 0.0012, 0.0005};
    case NasClass::kW:
      return {10, 1024, 512 * 1024, 0.03, 0.012};
    case NasClass::kA:
      return {10, 2048, 6 * 1024 * 1024, 0.35, 0.13};
    case NasClass::kB:
      return {10, 4096, 24ull * 1024 * 1024, 1.4, 0.5};
  }
  return {};
}

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 3.4e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_is(NasClass cls) {
  const IsParams p = is_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    const int ranks = comm.size();
    co_await comm.bcast(0, 64);
    co_await comm.compute(p.rank_work * 0.5, mem_of(p.rank_work * 0.5));

    for (int iter = 0; iter < p.iterations; ++iter) {
      const double rank_work = p.rank_work * vary(iter, 0.08, 0.9);
      co_await comm.compute(rank_work, mem_of(rank_work));
      co_await comm.allreduce(p.bucket_bytes);
      co_await comm.alltoall(16);  // per-peer send counts

      // Key redistribution: sizes wobble per iteration and per peer as the
      // random keys land in different buckets.
      std::vector<mpi::Bytes> counts(static_cast<std::size_t>(ranks));
      for (int peer = 0; peer < ranks; ++peer) {
        const double wobble =
            vary(iter * ranks + peer, 0.06, 1.3);
        counts[static_cast<std::size_t>(peer)] = static_cast<mpi::Bytes>(
            static_cast<double>(p.key_bytes) * wobble);
      }
      co_await comm.alltoallv(std::move(counts));

      const double sort_work = p.sort_work * vary(iter, 0.1, 0.6);
      co_await comm.compute(sort_work, mem_of(sort_work));
    }

    // Full verification.
    co_await comm.allreduce(8);
    co_await comm.reduce(0, 8);
  };
}

}  // namespace psk::apps
