// MG: Multigrid V-cycles.
//
// Structure per iteration (NPB 2.x MG): a V-cycle descending through the
// grid hierarchy and back up.  Every level performs a periodic boundary
// exchange with the four torus neighbours; message sizes shrink by 4x per
// level down (surface area) and computation by 8x (volume).  The wide
// spread of message sizes makes MG the main exercise for the signature
// compressor's similarity clustering.
#include <algorithm>
#include <vector>

#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct MgParams {
  int iterations;
  int levels;
  mpi::Bytes top_face_bytes;  // finest-level face message
  double cycle_work;          // total computation of one V-cycle
  double init_work;
};

MgParams mg_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {4, 5, 4 * 1024, 0.004, 0.004};
    case NasClass::kW:
      return {40, 6, 64 * 1024, 0.10, 0.08};
    case NasClass::kA:
      return {4, 8, 512 * 1024, 1.3, 1.0};
    case NasClass::kB:
      return {20, 8, 1024 * 1024, 1.5, 1.2};
  }
  return {};
}

constexpr int kTagMg = 400;
constexpr mpi::Bytes kMinFace = 128;

mpi::Bytes level_bytes(const MgParams& p, int level) {
  // level 0 = finest.  Faces shrink 4x per coarsening.
  const mpi::Bytes shrunk = p.top_face_bytes >> (2 * level);
  return std::max(shrunk, kMinFace);
}

double level_work(const MgParams& p, int level) {
  // Volumes shrink 8x per coarsening; normalize so levels sum to ~1.
  return p.cycle_work * 0.875 / static_cast<double>(1ull << (3 * level));
}

sim::Task level_exchange(mpi::Comm& comm, const Grid2D& grid,
                         mpi::Bytes bytes, int tag) {
  const int me = comm.rank();
  std::vector<NeighborXfer> xfers;
  xfers.push_back({grid.east(me), grid.west(me), bytes, tag});
  xfers.push_back({grid.west(me), grid.east(me), bytes, tag + 1});
  xfers.push_back({grid.south(me), grid.north(me), bytes, tag + 2});
  xfers.push_back({grid.north(me), grid.south(me), bytes, tag + 3});
  co_await neighbor_exchange(comm, std::move(xfers));
}

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 4.6e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_mg(NasClass cls) {
  const MgParams p = mg_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    const Grid2D grid(comm.size());

    co_await comm.bcast(0, 64);
    co_await comm.compute(p.init_work, mem_of(p.init_work));
    co_await level_exchange(comm, grid, level_bytes(p, 0), kTagMg);

    for (int iter = 0; iter < p.iterations; ++iter) {
      const double v = vary(iter, 0.08, 0.8);

      // Descend: restrict residuals to coarser grids.
      for (int level = 0; level < p.levels; ++level) {
        const double down_work = level_work(p, level) * 0.45 * v;
        co_await comm.compute(down_work, mem_of(down_work));
        co_await level_exchange(comm, grid, level_bytes(p, level),
                                kTagMg + 8 * level);
      }
      // Ascend: interpolate corrections back to finer grids.
      for (int level = p.levels - 1; level >= 0; --level) {
        const double up_work = level_work(p, level) * 0.55 * v;
        co_await comm.compute(up_work, mem_of(up_work));
        co_await level_exchange(comm, grid, level_bytes(p, level),
                                kTagMg + 8 * level + 4);
      }

      co_await comm.allreduce(8);  // residual norm
    }

    co_await comm.allreduce(16);  // final norm + verification
    co_await comm.reduce(0, 16);
  };
}

}  // namespace psk::apps
