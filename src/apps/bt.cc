// BT: Block Tridiagonal solver.
//
// Structure per timestep (NPB 2.x BT on a square process grid):
//   copy_faces  -- nonblocking face exchange with the four torus neighbours
//   x_solve / y_solve / z_solve -- heavy block solves; the decomposed
//                  directions exchange boundary planes with their neighbour
//                  pair, the undecomposed z direction is pure computation.
// BT is the most compute-bound code of the suite (~10% MPI at class B).
#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct BtParams {
  int steps;
  mpi::Bytes face_bytes;   // copy_faces message per neighbour
  mpi::Bytes solve_bytes;  // per-direction boundary plane
  double step_work;        // work-seconds of computation per timestep
  double init_work;
};

BtParams bt_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {60, 24 * 1024, 10 * 1024, 0.004, 0.01};
    case NasClass::kW:
      return {200, 256 * 1024, 120 * 1024, 0.11, 0.2};
    case NasClass::kA:
      return {200, 1024 * 1024, 480 * 1024, 0.8, 1.0};
    case NasClass::kB:
      return {200, 2560 * 1024, 1228 * 1024, 2.8, 2.5};
  }
  return {};
}

constexpr int kTagFaceX = 100;
constexpr int kTagFaceY = 101;
constexpr int kTagSolveX = 110;
constexpr int kTagSolveY = 111;

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 1.6e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_bt(NasClass cls) {
  const BtParams p = bt_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    const Grid2D grid(comm.size());
    const int me = comm.rank();
    const int west = grid.west(me);
    const int east = grid.east(me);
    const int north = grid.north(me);
    const int south = grid.south(me);

    // Setup: read/broadcast problem parameters, initialize fields.
    co_await comm.bcast(0, 64);
    co_await comm.compute(p.init_work, mem_of(p.init_work));

    for (int step = 0; step < p.steps; ++step) {
      const double v = vary(step, 0.10, 0.7);

      // copy_faces: all four faces at once, with boundary packing.
      std::vector<NeighborXfer> faces;
      faces.push_back({east, west, p.face_bytes, kTagFaceX});
      faces.push_back({west, east, p.face_bytes, kTagFaceX + 1});
      faces.push_back({south, north, p.face_bytes, kTagFaceY});
      faces.push_back({north, south, p.face_bytes, kTagFaceY + 1});
      co_await neighbor_exchange(comm, std::move(faces),
                                 p.step_work * 0.02 * v);

      // x_solve: sweep along x, exchanging with the x-neighbour pair.
      co_await comm.compute(p.step_work * 0.30 * v,
                            mem_of(p.step_work * 0.30 * v));
      std::vector<NeighborXfer> xsweep;
      xsweep.push_back({east, west, p.solve_bytes, kTagSolveX});
      xsweep.push_back({west, east, p.solve_bytes, kTagSolveX + 1});
      co_await neighbor_exchange(comm, std::move(xsweep));

      // y_solve.
      co_await comm.compute(p.step_work * 0.30 * v,
                            mem_of(p.step_work * 0.30 * v));
      std::vector<NeighborXfer> ysweep;
      ysweep.push_back({south, north, p.solve_bytes, kTagSolveY});
      ysweep.push_back({north, south, p.solve_bytes, kTagSolveY + 1});
      co_await neighbor_exchange(comm, std::move(ysweep));

      // z_solve: z is not decomposed on a 2D grid -- computation only.
      co_await comm.compute(p.step_work * 0.38 * v,
                            mem_of(p.step_work * 0.38 * v));
    }

    // Verification: gather solution norms at rank 0.
    co_await comm.reduce(0, 40);
  };
}

}  // namespace psk::apps
