// EP: Embarrassingly Parallel (extended suite; not part of the paper's six).
//
// Structure (NPB 2.x EP): each rank generates its share of Gaussian pairs
// with essentially no communication -- one long computation bracketed by a
// broadcast of parameters and three small allreduces of the counts/sums.
// The extreme compute-bound case: its skeleton is almost pure busy-work and
// predicts CPU scenarios nearly exactly while carrying no information about
// links.
#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct EpParams {
  int batches;        // the generation loop is traced in batches
  double batch_work;  // work-seconds per batch
};

EpParams ep_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {16, 0.012};
    case NasClass::kW:
      return {16, 0.19};
    case NasClass::kA:
      return {16, 3.0};
    case NasClass::kB:
      return {16, 12.0};
  }
  return {};
}

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 0.1e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_ep(NasClass cls) {
  const EpParams p = ep_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    co_await comm.bcast(0, 64);
    for (int batch_index = 0; batch_index < p.batches; ++batch_index) {
      const double batch = p.batch_work * vary(batch_index, 0.04, 1.3);
      co_await comm.compute(batch, mem_of(batch));
      // NPB EP prints progress per batch but communicates nothing here; the
      // barrier-free structure is the point.
    }
    // Combine the counts: sx, sy, and the 10 annulus counts.
    co_await comm.allreduce(8);
    co_await comm.allreduce(8);
    co_await comm.allreduce(80);
    co_await comm.reduce(0, 16);
  };
}

}  // namespace psk::apps
