// NAS-like benchmark registry.
//
// Six communication-faithful reimplementations of the NAS Parallel
// Benchmarks 2.x MPI codes used in the paper's evaluation: BT, CG, IS, LU,
// MG and SP.  Each benchmark is a factory producing an SPMD rank program
// for a given problem class.
//
// Class B parameters are calibrated so that dedicated 4-rank runs land in
// the paper's reported 30..900 second range with realistic compute/MPI
// ratios; class S runs in under a second (used as the manually built
// "Class S skeleton" baseline of Figure 7).  Classes W and A interpolate.
#pragma once

#include <span>
#include <string>

#include "mpi/world.h"

namespace psk::apps {

enum class NasClass { kS, kW, kA, kB };

const char* class_name(NasClass cls);
NasClass class_from_name(const std::string& name);

/// Factory functions; the returned program adapts to the world's rank count
/// (tuned for the paper's 4-rank runs; BT/SP/CG need a square grid count,
/// LU/MG a 2D-factorable count).
mpi::RankMain make_bt(NasClass cls);
mpi::RankMain make_cg(NasClass cls);
mpi::RankMain make_is(NasClass cls);
mpi::RankMain make_lu(NasClass cls);
mpi::RankMain make_mg(NasClass cls);
mpi::RankMain make_sp(NasClass cls);
/// Extended suite (not in the paper's evaluation): EP and FT.
mpi::RankMain make_ep(NasClass cls);
mpi::RankMain make_ft(NasClass cls);

struct BenchmarkDef {
  const char* name;
  const char* description;
  mpi::RankMain (*make)(NasClass cls);
};

/// The full suite in the paper's order: BT, CG, IS, LU, MG, SP.
std::span<const BenchmarkDef> suite();

/// The paper's six plus EP and FT.
std::span<const BenchmarkDef> extended_suite();

/// Lookup by (case-sensitive) name; throws ConfigError when unknown.
const BenchmarkDef& find_benchmark(const std::string& name);

}  // namespace psk::apps
