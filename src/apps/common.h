// Shared building blocks for the NAS-like benchmark implementations.
//
// The benchmarks reproduce the externally visible behaviour of the NAS
// Parallel Benchmarks 2.x MPI codes -- process topologies, message patterns,
// sizes and phase structure -- which is everything the skeleton framework
// observes.  Numerical payloads are replaced by calibrated compute phases.
#pragma once

#include <cmath>
#include <vector>

#include "mpi/comm.h"
#include "sim/task.h"
#include "util/error.h"

namespace psk::apps {

/// Square process grid with wraparound (the BT/SP/CG/MG layout; 4 ranks ->
/// 2x2).  Rank r sits at (row, col) = (r / cols, r % cols).
class Grid2D {
 public:
  explicit Grid2D(int ranks);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int row_of(int rank) const { return rank / cols_; }
  int col_of(int rank) const { return rank % cols_; }
  int at(int row, int col) const;  // wraps both coordinates

  /// Torus neighbours of `rank`.
  int north(int rank) const { return at(row_of(rank) - 1, col_of(rank)); }
  int south(int rank) const { return at(row_of(rank) + 1, col_of(rank)); }
  int west(int rank) const { return at(row_of(rank), col_of(rank) - 1); }
  int east(int rank) const { return at(row_of(rank), col_of(rank) + 1); }

  /// Non-periodic neighbours: -1 outside the grid (the LU pipeline layout).
  int north_open(int rank) const;
  int south_open(int rank) const;
  int west_open(int rank) const;
  int east_open(int rank) const;

  /// Transpose partner: rank at (col, row); requires a square grid.
  int transpose(int rank) const;

 private:
  int rows_;
  int cols_;
};

/// Deterministic per-iteration workload variation.  Real solvers do not do
/// identical work every timestep; this low-frequency modulation is what the
/// signature compressor's "average duration across iterations" rule loses,
/// reproducing the paper's main approximation error.
inline double vary(int iteration, double amplitude = 0.1,
                   double frequency = 0.7) {
  return 1.0 + amplitude * std::sin(frequency * static_cast<double>(iteration));
}

/// One directed transfer of a face exchange.
struct NeighborXfer {
  int send_to = -1;    // -1: skip the send (open boundary)
  int recv_from = -1;  // -1: skip the receive
  mpi::Bytes bytes = 0;
  int tag = 0;
};

/// The canonical NAS exchange: post all receives, pack boundaries
/// (`interior_work`), post all sends, wait for everything.
sim::Task neighbor_exchange(mpi::Comm& comm, std::vector<NeighborXfer> xfers,
                            double interior_work = 0.0);

}  // namespace psk::apps
