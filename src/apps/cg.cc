// CG: Conjugate Gradient.
//
// Structure (NPB 2.x CG on a square process grid): 75 outer iterations of
// 25 inner CG iterations; each inner iteration performs a sparse
// matrix-vector product whose communication is an exchange with the
// transpose partner followed by a row-sum allreduce, plus dot-product
// allreduces.  On a 2x2 grid the diagonal ranks' transpose partner is
// themselves (a fast local copy), the off-diagonal ranks exchange -- the
// paper's unbalanced-communication code.
#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct CgParams {
  int outer;
  int inner;
  mpi::Bytes vec_bytes;  // transpose exchange per matvec
  double matvec_work;
  double outer_work;
  double init_work;
};

CgParams cg_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {15, 25, 3 * 1024, 0.0008, 0.003, 0.005};
    case NasClass::kW:
      return {15, 25, 70 * 1024, 0.012, 0.05, 0.05};
    case NasClass::kA:
      return {15, 25, 300 * 1024, 0.05, 0.2, 0.3};
    case NasClass::kB:
      return {75, 25, 600 * 1024, 0.052, 0.25, 1.0};
  }
  return {};
}

constexpr int kTagTranspose = 200;

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 4.2e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_cg(NasClass cls) {
  const CgParams p = cg_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    const Grid2D grid(comm.size());
    const int partner = grid.transpose(comm.rank());

    co_await comm.bcast(0, 64);
    co_await comm.compute(p.init_work, mem_of(p.init_work));  // makea

    for (int outer = 0; outer < p.outer; ++outer) {
      for (int inner = 0; inner < p.inner; ++inner) {
        // Sparse matvec: local part, transpose exchange, row reduction.
        const double matvec =
            p.matvec_work * vary(outer * p.inner + inner, 0.08, 0.45);
        co_await comm.compute(matvec, mem_of(matvec));
        co_await comm.sendrecv(partner, p.vec_bytes, partner, p.vec_bytes,
                               kTagTranspose);
        co_await comm.allreduce(8);  // dot products rho / alpha
      }
      // Norm of the residual, reported once per outer iteration.
      const double norm_work = p.outer_work * vary(outer, 0.05, 1.1);
      co_await comm.compute(norm_work, mem_of(norm_work));
      co_await comm.allreduce(16);
    }

    co_await comm.reduce(0, 16);  // zeta verification
  };
}

}  // namespace psk::apps
