#include <array>

#include "apps/nas.h"
#include "util/error.h"

namespace psk::apps {

const char* class_name(NasClass cls) {
  switch (cls) {
    case NasClass::kS: return "S";
    case NasClass::kW: return "W";
    case NasClass::kA: return "A";
    case NasClass::kB: return "B";
  }
  return "?";
}

NasClass class_from_name(const std::string& name) {
  if (name == "S") return NasClass::kS;
  if (name == "W") return NasClass::kW;
  if (name == "A") return NasClass::kA;
  if (name == "B") return NasClass::kB;
  throw ConfigError("unknown NAS class: " + name);
}

namespace {
constexpr std::array<BenchmarkDef, 8> kExtendedSuite = {{
    {"BT", "Block Tridiagonal solver", &make_bt},
    {"CG", "Conjugate Gradient", &make_cg},
    {"IS", "Integer Sort", &make_is},
    {"LU", "LU (SSOR) solver", &make_lu},
    {"MG", "Multigrid", &make_mg},
    {"SP", "Scalar Pentadiagonal solver", &make_sp},
    {"EP", "Embarrassingly Parallel", &make_ep},
    {"FT", "3D FFT PDE solver", &make_ft},
}};
}  // namespace

std::span<const BenchmarkDef> suite() {
  return std::span<const BenchmarkDef>(kExtendedSuite.data(), 6);
}

std::span<const BenchmarkDef> extended_suite() { return kExtendedSuite; }

const BenchmarkDef& find_benchmark(const std::string& name) {
  for (const BenchmarkDef& def : kExtendedSuite) {
    if (name == def.name) return def;
  }
  throw ConfigError("unknown benchmark: " + name +
                    " (expected BT, CG, IS, LU, MG, SP, EP or FT)");
}

}  // namespace psk::apps
