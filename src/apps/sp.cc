// SP: Scalar Pentadiagonal solver.
//
// Structurally a sibling of BT (same multipartition layout, same per-step
// phase sequence) with twice the timesteps and lighter per-step computation
// and messages -- which is exactly how the two codes differ in NPB 2.x.
#include "apps/common.h"
#include "apps/nas.h"

namespace psk::apps {

namespace {

struct SpParams {
  int steps;
  mpi::Bytes face_bytes;
  mpi::Bytes solve_bytes;
  double step_work;
  double init_work;
};

SpParams sp_params(NasClass cls) {
  switch (cls) {
    case NasClass::kS:
      return {100, 16 * 1024, 8 * 1024, 0.0015, 0.006};
    case NasClass::kW:
      return {400, 128 * 1024, 64 * 1024, 0.042, 0.1};
    case NasClass::kA:
      return {400, 512 * 1024, 256 * 1024, 0.28, 0.6};
    case NasClass::kB:
      return {400, 1228 * 1024, 614 * 1024, 1.05, 1.2};
  }
  return {};
}

constexpr int kTagFaceX = 500;
constexpr int kTagFaceY = 501;
constexpr int kTagSolveX = 510;
constexpr int kTagSolveY = 511;

}  // namespace

namespace {
/// Memory intensity of the solver's computation in bytes per work-second
/// (relative to the node's 6 GB/s bus; see sim::ClusterConfig).
constexpr double kMemBytesPerWork = 1.8e9;

mpi::Bytes mem_of(double work) {
  return static_cast<mpi::Bytes>(work * kMemBytesPerWork);
}
}  // namespace

mpi::RankMain make_sp(NasClass cls) {
  const SpParams p = sp_params(cls);
  return [p](mpi::Comm& comm) -> sim::Task {
    const Grid2D grid(comm.size());
    const int me = comm.rank();
    const int west = grid.west(me);
    const int east = grid.east(me);
    const int north = grid.north(me);
    const int south = grid.south(me);

    co_await comm.bcast(0, 64);
    co_await comm.compute(p.init_work, mem_of(p.init_work));

    for (int step = 0; step < p.steps; ++step) {
      const double v = vary(step, 0.09, 0.55);

      std::vector<NeighborXfer> faces;
      faces.push_back({east, west, p.face_bytes, kTagFaceX});
      faces.push_back({west, east, p.face_bytes, kTagFaceX + 1});
      faces.push_back({south, north, p.face_bytes, kTagFaceY});
      faces.push_back({north, south, p.face_bytes, kTagFaceY + 1});
      co_await neighbor_exchange(comm, std::move(faces),
                                 p.step_work * 0.03 * v);

      co_await comm.compute(p.step_work * 0.28 * v,
                            mem_of(p.step_work * 0.28 * v));
      std::vector<NeighborXfer> xsweep;
      xsweep.push_back({east, west, p.solve_bytes, kTagSolveX});
      xsweep.push_back({west, east, p.solve_bytes, kTagSolveX + 1});
      co_await neighbor_exchange(comm, std::move(xsweep));

      co_await comm.compute(p.step_work * 0.28 * v,
                            mem_of(p.step_work * 0.28 * v));
      std::vector<NeighborXfer> ysweep;
      ysweep.push_back({south, north, p.solve_bytes, kTagSolveY});
      ysweep.push_back({north, south, p.solve_bytes, kTagSolveY + 1});
      co_await neighbor_exchange(comm, std::move(ysweep));

      co_await comm.compute(p.step_work * 0.41 * v,
                            mem_of(p.step_work * 0.41 * v));
    }

    co_await comm.reduce(0, 40);
  };
}

}  // namespace psk::apps
