// Per-connection session: one client's framed byte stream into the shared
// service.
//
// Each accepted socket gets a Session running a blocking read loop on its
// own thread.  The session owns the connection-scoped state the pipe mode
// kept globally: the incremental frame parse buffer, the validate
// override, the cancel flags of everything this client still has in
// flight, and a per-session in-flight cap (fair admission -- one greedy
// connection sheds against its own cap with kOverloaded before it can
// monopolise the shared queue).
//
// Responses are routed back through a per-request Deliver closure holding
// a shared_ptr to the session, so the session outlives its socket until
// the last queued response has been answered.  Disconnect -- EOF, a read
// error, or an unparsable stream -- trips every outstanding cancel flag:
// the service answers those requests kCanceled (never silence), and only
// that connection's requests are affected.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "svc/frame.h"
#include "svc/service.h"

namespace psk::svc {

struct SessionOptions {
  /// Frame body cap for this connection's parser (pskd --max-frame-mb).
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Server-side override of every request's validate mode (pskd
  /// --validate); nullopt honours the request.
  std::optional<ValidateMode> validate_override;
  /// Fair admission: requests in flight beyond this cap shed immediately
  /// with kOverloaded, before touching the shared queue, so one connection
  /// cannot crowd every other session out of admission.
  std::size_t max_inflight = 32;
  /// Fault injection (null in production): read delays, short writes and
  /// mid-frame disconnects come from here.
  ChaosSchedule* chaos = nullptr;
};

/// Why a session's read loop ended; pskd maps these onto its exit ladder.
enum class SessionEnd {
  kClean,        // EOF at a frame boundary
  kMidFrame,     // EOF inside a frame: the client died mid-send
  kBadStream,    // unparsable bytes; the stream cannot be resynchronised
  kWriteFailed,  // the client stopped reading (broken pipe on a response)
};

struct SessionStats {
  std::uint64_t requests = 0;   // request frames decoded (well-formed or not)
  std::uint64_t responses = 0;  // response frames written (or attempted
                                // after a write failure; never silent)
  std::uint64_t shed_inflight = 0;  // kOverloaded at the session cap
  std::uint64_t canceled = 0;       // cancel flags tripped at teardown
  std::uint64_t health_probes = 0;  // kHealth frames answered
};

class Session : public std::enable_shared_from_this<Session> {
 public:
  /// Takes ownership of `fd` (closed on destruction).  `service` must be
  /// in live mode and outlive every response this session has in flight.
  Session(int fd, Service& service, SessionOptions options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Blocking read loop: parse frames, submit requests, until the peer
  /// disconnects or the stream goes bad.  On return every outstanding
  /// request of this session has been canceled (it will still be answered
  /// kCanceled through the service).  Call once, from the session thread.
  SessionEnd run();

  /// Forces run() to end from another thread by shutting the socket down
  /// both ways (server stop).  The loop then tears down as a disconnect.
  void abort();

  /// One diagnostic line for the server log, e.g. "session 3: 17
  /// request(s), 17 response(s), clean".
  SessionStats stats() const;

 private:
  void handle_request(const std::string& body);
  void send_response(const ResponseHeader& response);
  void send_health();
  void send_frame(FrameKind kind, std::string_view body);
  void cancel_outstanding();

  const int fd_;
  Service& service_;
  const SessionOptions options_;

  /// Serialises writes: immediate responses (shed, undecodable) come from
  /// the session thread while executed ones come from the dispatcher.
  std::mutex write_mutex_;
  bool write_failed_ = false;

  mutable std::mutex state_mutex_;
  std::vector<std::shared_ptr<std::atomic<bool>>> cancels_;
  std::size_t inflight_ = 0;
  SessionStats stats_;
};

}  // namespace psk::svc
