// The pskd prediction service: admission control, bounded queueing and
// deterministic execution of uploaded skeletons.
//
// Robustness contract (the reason this layer exists):
//   - Every submitted request produces exactly one response with a definite
//     StatusCode.  Overload sheds with kOverloaded at admission time; it
//     never silently drops.
//   - The queue is bounded (ServiceOptions::queue_capacity); depth and
//     shed counts are observable through stats()/publish().
//   - Per-request deadlines are enforced twice: a request whose budget
//     expired while queued fails fast with kTimeout before any simulation
//     work, and the remaining budget is propagated into the framework's
//     wall-clock watchdog so a request cannot overrun mid-execution.
//     Timed-out requests never return partial values.
//   - Cooperative cancellation: a request carries an optional cancel flag
//     (set by the session layer when the client disconnects); canceled
//     requests complete with kCanceled instead of burning simulation time.
//   - Graceful degradation: when a strict upload fails to parse and
//     salvage_fallback is on, the service recovers the usable prefix via
//     psk::guard and answers with `degraded = true` instead of failing.
//
// Two drive modes sharing one execution path:
//   - Batch mode (submit() + drain()): admission decisions happen at
//     submit() against the current queue depth, so for a fixed
//     submit/drain schedule the admit/shed pattern -- and, because every
//     measurement is a seeded simulation, every response byte -- is
//     identical at any worker count.  pskd's pipe mode and the
//     deterministic tests use this.
//   - Live mode (start() + submit() + stop()): a dispatcher thread drains
//     the queue continuously and delivers responses through a callback;
//     the load-generating benchmark uses this.  Modes must not be mixed:
//     the underlying fork-join pool has a single-driver constraint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "obs/metrics.h"
#include "runner/pool.h"
#include "svc/frame.h"
#include "svc/reservoir.h"
#include "svc/store.h"

namespace psk::svc {

/// Response sink: how a completed request's answer leaves the service.
using Deliver = std::function<void(const ResponseHeader&)>;

struct ServiceOptions {
  /// Bound on requests admitted but not yet executed.  Submissions beyond
  /// it shed with kOverloaded.
  std::size_t queue_capacity = 64;
  /// Worker threads for the execution pool; 0 = hardware concurrency.
  int workers = 0;
  /// Deadline applied when a request does not carry one; 0 disables the
  /// server-side default (requests then only time out if they ask to).
  double default_deadline_seconds = 30.0;
  /// Recover the usable prefix of an unparseable strict upload instead of
  /// rejecting it (the response is marked degraded).
  bool salvage_fallback = true;
  /// Bounds on the hot-skeleton store (svc/store.h): entry count and total
  /// retained canonical bytes.  0 entries disables retention; predict-by-
  /// hash then always answers kNotFound.
  std::size_t skeleton_store_entries = 256;
  std::size_t skeleton_store_bytes = 256u << 20;
  /// Per-status latency reservoir size for publish()'s percentiles.  The
  /// reservoir is seeded and deterministic for a fixed completion order.
  std::size_t latency_reservoir_capacity = 1u << 16;
  /// Template for per-request frameworks: cluster, ranks, seeds, result
  /// cache.  Per-request wall deadlines overlay onto a copy of this.
  core::FrameworkOptions framework;
};

/// One unit of work submitted to the service.
struct Request {
  RequestHeader header;
  /// Optional cooperative cancel flag; the service checks it at dequeue
  /// and between repetitions.  Null = not cancelable.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Optional per-request response sink.  In live mode a set deliver
  /// overrides the service-wide callback -- this is how socket sessions
  /// route each response back to the connection that asked (the closure
  /// keeps the session alive until its last response is out).
  Deliver deliver;
};

/// Monotonic counters describing service behaviour since construction.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;        // kOverloaded at admission
  std::uint64_t completed = 0;   // responses produced, shed included
  std::uint64_t by_status[static_cast<int>(kLastStatusCode) + 1] = {};
  std::uint64_t degraded = 0;    // responses answered via salvage fallback
  std::size_t queue_depth = 0;   // current
  std::size_t queue_high_water = 0;
};

class Service {
 public:
  using Deliver = svc::Deliver;

  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const ServiceOptions& options() const { return options_; }

  /// Submits one request.  Returns the immediate shed response
  /// (kOverloaded) when the queue is full, nullopt when admitted.  In live
  /// mode a shed response is also delivered through the callback, so the
  /// caller can ignore the return value there.
  std::optional<ResponseHeader> submit(Request request);

  /// Batch mode: executes everything admitted since the last drain on the
  /// worker pool and returns the responses in arrival order.  The caller
  /// thread participates as a worker.  Must not be called while live mode
  /// is running.
  std::vector<ResponseHeader> drain();

  /// Live mode: spawns a dispatcher thread that drains the queue
  /// continuously, delivering each response through `deliver` in arrival
  /// order (of its batch).  `deliver` is called from the dispatcher thread
  /// -- and from the submitting thread for shed responses.
  void start(Deliver deliver);
  /// Drains outstanding requests, then stops the dispatcher.  Idempotent.
  void stop();

  ServiceStats stats() const;

  /// The hot-skeleton store backing predict-by-hash reuse.  Shared by all
  /// sessions submitting into this service.
  SkeletonStore& skeleton_store() { return store_; }
  const SkeletonStore& skeleton_store() const { return store_; }

  /// Publishes stats as obs instruments (svc.* counters, queue depth,
  /// per-status latency percentiles and svc.store.* reuse counters).
  /// Call on a fresh registry.
  void publish(obs::MetricsRegistry& metrics) const;

 private:
  struct Pending {
    Request request;
    /// Wall-clock admission time (steady clock seconds).
    double admitted_at = 0;
    /// Seconds of budget from admission; <= 0 means no deadline.
    double budget_seconds = 0;
  };

  ResponseHeader execute(const Pending& pending);
  ResponseHeader predict(const Pending& pending);
  ResponseHeader construct(const Pending& pending);
  /// Parses, salvages (per validate mode) and canonicalises an uploaded
  /// skeleton container; fills degraded/message/skeleton_hash on
  /// `response` and retains the canonical bytes in the store.  Returns
  /// nullopt after setting a definite failure status on `response`.
  std::optional<skeleton::Skeleton> resolve_skeleton(const Pending& pending,
                                                    ResponseHeader& response);
  std::vector<ResponseHeader> run_batch(std::vector<Pending>& batch);
  void record_response(const ResponseHeader& response, double latency_ms);
  void dispatcher_main();

  ServiceOptions options_;
  runner::ThreadPool pool_;
  SkeletonStore store_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<Pending> queue_;
  bool live_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;
  Deliver deliver_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  /// Completion latencies in milliseconds, per status code, for the
  /// percentile lines in publish().  Seeded reservoirs: bounded forever,
  /// yet late samples still move the percentiles (unlike first-N
  /// retention, which freezes on startup traffic).
  std::vector<LatencyReservoir> latencies_ms_;
};

}  // namespace psk::svc
