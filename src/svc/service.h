// The pskd prediction service: admission control, bounded queueing and
// deterministic execution of uploaded skeletons.
//
// Robustness contract (the reason this layer exists):
//   - Every submitted request produces exactly one response with a definite
//     StatusCode.  Overload sheds with kOverloaded at admission time; it
//     never silently drops.  A per-request answered flag makes the
//     exactly-once property explicit: whichever of worker and supervisor
//     answers first wins, the loser's result is discarded and counted.
//   - The queue is bounded (ServiceOptions::queue_capacity); depth and
//     shed counts are observable through stats()/publish(), and a
//     health() snapshot (queue depth, inflight, uptime) is served to
//     clients for backoff via the kHealth frame -- bypassing admission,
//     so it works precisely when the service is overloaded.
//   - Per-request deadlines are enforced three times: a request whose
//     budget expired while queued fails fast with kTimeout before any
//     simulation work; the remaining budget is propagated into the
//     framework's wall-clock watchdog; and in live mode a *supervisor*
//     thread watches for workers that overrun the deadline anyway (a hung
//     simulation, a chaos-injected stall) -- it answers the request
//     kTimeout, isolates the hung worker (it takes no further work) and
//     spawns a replacement so pool capacity self-heals.
//   - Cooperative cancellation: a request carries an optional cancel flag
//     (set by the session layer when the client disconnects); canceled
//     requests complete with kCanceled instead of burning simulation time.
//   - Graceful degradation: when a strict upload fails to parse and
//     salvage_fallback is on, the service recovers the usable prefix via
//     psk::guard and answers with `degraded = true` instead of failing.
//   - Fault injection (ServiceOptions::chaos, null in production) drives
//     worker stalls and store failures deterministically from a seed, so
//     all of the above is exercised by tests and the ext_chaos soak.
//
// Two drive modes sharing one execution path:
//   - Batch mode (submit() + drain()): admission decisions happen at
//     submit() against the current queue depth, so for a fixed
//     submit/drain schedule the admit/shed pattern -- and, because every
//     measurement is a seeded simulation, every response byte -- is
//     identical at any worker count.  pskd's pipe mode and the
//     deterministic tests use this.
//   - Live mode (start() + submit() + stop()): supervised worker threads
//     pull requests continuously and deliver responses through a callback
//     (from a worker thread) as each completes; the socket transport and
//     the load benchmarks use this.  Modes must not be mixed: the
//     underlying fork-join pool has a single-driver constraint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "obs/metrics.h"
#include "runner/pool.h"
#include "svc/chaos.h"
#include "svc/frame.h"
#include "svc/reservoir.h"
#include "svc/store.h"

namespace psk::svc {

/// Response sink: how a completed request's answer leaves the service.
using Deliver = std::function<void(const ResponseHeader&)>;

struct ServiceOptions {
  /// Bound on requests admitted but not yet executed.  Submissions beyond
  /// it shed with kOverloaded.
  std::size_t queue_capacity = 64;
  /// Worker threads for the execution pool; 0 = hardware concurrency.
  int workers = 0;
  /// Deadline applied when a request does not carry one; 0 disables the
  /// server-side default (requests then only time out if they ask to).
  double default_deadline_seconds = 30.0;
  /// Recover the usable prefix of an unparseable strict upload instead of
  /// rejecting it (the response is marked degraded).
  bool salvage_fallback = true;
  /// Bounds on the hot-skeleton store (svc/store.h): entry count and total
  /// retained canonical bytes.  0 entries disables retention; predict-by-
  /// hash then always answers kNotFound.
  std::size_t skeleton_store_entries = 256;
  std::size_t skeleton_store_bytes = 256u << 20;
  /// Durable tier for the skeleton store (pskd --store-dir); empty keeps
  /// the store memory-only.  With a directory set, retained skeletons
  /// survive daemon restart (see svc/store.h for the integrity contract).
  std::string store_dir;
  std::size_t store_disk_bytes = 1024u << 20;
  /// Per-status latency reservoir size for publish()'s percentiles.  The
  /// reservoir is seeded and deterministic for a fixed completion order.
  std::size_t latency_reservoir_capacity = 1u << 16;
  /// Live mode self-healing: how far past its deadline a request may run
  /// inside a worker before the supervisor declares the worker hung,
  /// answers kTimeout and replaces the worker; and how often the
  /// supervisor looks.
  double supervisor_grace_seconds = 0.25;
  double supervisor_poll_seconds = 0.02;
  /// Seeded fault injection (svc/chaos.h); null = off, with zero overhead
  /// beyond one pointer test per injection site.
  ChaosSchedule* chaos = nullptr;
  /// Template for per-request frameworks: cluster, ranks, seeds, result
  /// cache.  Per-request wall deadlines overlay onto a copy of this.
  core::FrameworkOptions framework;
};

/// One unit of work submitted to the service.
struct Request {
  RequestHeader header;
  /// Optional cooperative cancel flag; the service checks it at dequeue
  /// and between repetitions.  Null = not cancelable.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Optional per-request response sink.  In live mode a set deliver
  /// overrides the service-wide callback -- this is how socket sessions
  /// route each response back to the connection that asked (the closure
  /// keeps the session alive until its last response is out).
  Deliver deliver;
};

/// Monotonic counters describing service behaviour since construction.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;        // kOverloaded at admission
  std::uint64_t completed = 0;   // responses produced, shed included
  std::uint64_t by_status[static_cast<int>(kLastStatusCode) + 1] = {};
  std::uint64_t degraded = 0;    // responses answered via salvage fallback
  std::size_t queue_depth = 0;   // current
  std::size_t queue_high_water = 0;
  // Supervisor self-healing (live mode).
  std::uint64_t hung_detected = 0;    // deadline overruns inside a worker
  std::uint64_t workers_replaced = 0; // hung workers isolated + replaced
  std::uint64_t late_results_discarded = 0;  // a hung worker finished after
                                             // the supervisor answered
};

class Service {
 public:
  using Deliver = svc::Deliver;

  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const ServiceOptions& options() const { return options_; }

  /// Submits one request.  Returns the immediate shed response
  /// (kOverloaded) when the queue is full, nullopt when admitted.  In live
  /// mode a shed response is also delivered through the callback, so the
  /// caller can ignore the return value there.
  std::optional<ResponseHeader> submit(Request request);

  /// Batch mode: executes everything admitted since the last drain on the
  /// worker pool and returns the responses in arrival order.  The caller
  /// thread participates as a worker.  Must not be called while live mode
  /// is running.
  std::vector<ResponseHeader> drain();

  /// Live mode: spawns supervised worker threads that pull from the queue
  /// continuously, delivering each response through `deliver` (or the
  /// request's own sink) as it completes, from a worker or supervisor
  /// thread -- and from the submitting thread for shed responses.
  void start(Deliver deliver);
  /// Drains outstanding requests, then stops workers and supervisor.
  /// Idempotent.  Waits for stalled workers to finish (their results are
  /// discarded if the supervisor already answered).
  void stop();

  ServiceStats stats() const;

  /// Liveness snapshot served to clients through the kHealth frame.
  /// Cheap, lock-bounded, safe to call from any thread at any time.
  HealthInfo health() const;

  /// The hot-skeleton store backing predict-by-hash reuse.  Shared by all
  /// sessions submitting into this service.
  SkeletonStore& skeleton_store() { return store_; }
  const SkeletonStore& skeleton_store() const { return store_; }

  /// Publishes stats as obs instruments (svc.* counters, queue depth,
  /// per-status latency percentiles, svc.store.* two-tier counters,
  /// svc.supervisor.* self-healing counters and -- when fault injection is
  /// on -- svc.chaos.<site>.{consulted,injected}).  Call on a fresh
  /// registry.
  void publish(obs::MetricsRegistry& metrics) const;

 private:
  struct Pending {
    Request request;
    /// Wall-clock admission time (steady clock seconds).
    double admitted_at = 0;
    /// Seconds of budget from admission; <= 0 means no deadline.
    double budget_seconds = 0;
  };

  /// One in-flight request: the exactly-once answer gate shared between
  /// the executing worker and the supervisor.
  struct Inflight {
    Pending pending;
    /// Absolute steady-clock deadline; 0 = none.
    double deadline_at = 0;
    std::atomic<bool> answered{false};
  };

  /// A supervised worker slot.  `generation` changes when the supervisor
  /// replaces a hung worker; the stale thread notices and exits without
  /// taking further work (isolation).
  struct WorkerSlot {
    std::thread thread;
    std::uint64_t generation = 0;
    std::shared_ptr<Inflight> current;
  };

  ResponseHeader execute(const Pending& pending);
  ResponseHeader predict(const Pending& pending);
  ResponseHeader construct(const Pending& pending);
  std::optional<skeleton::Skeleton> resolve_skeleton(const Pending& pending,
                                                    ResponseHeader& response);
  std::vector<ResponseHeader> run_batch(std::vector<Pending>& batch);
  void record_response(const ResponseHeader& response, double latency_ms);
  /// Exactly-once answer: wins the inflight's answered flag, records and
  /// delivers.  Returns false (counting a discarded late result) when the
  /// other side answered first.
  bool answer(Inflight& work, const ResponseHeader& response,
              double latency_ms);
  void worker_main(std::size_t slot, std::uint64_t generation);
  void supervisor_main();

  ServiceOptions options_;
  runner::ThreadPool pool_;
  SkeletonStore store_;
  const double constructed_at_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable supervisor_cv_;
  /// Pending requests: vector plus head index, not a deque.  Pending is
  /// larger than libstdc++'s 512-byte deque block, so a deque degenerates
  /// to one allocation per element; here pop-front is head++, batch drain
  /// is an O(1) swap, and the dead prefix is compacted once it dominates.
  std::vector<Pending> queue_;
  std::size_t queue_head_ = 0;
  bool live_ = false;
  bool stopping_ = false;
  bool supervisor_stop_ = false;
  std::vector<WorkerSlot> workers_;
  /// Threads of replaced (hung) workers; joined at stop() once their
  /// stalls end.
  std::vector<std::thread> retired_;
  std::thread supervisor_;
  Deliver deliver_;
  std::atomic<std::uint32_t> executing_{0};

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  /// Completion latencies in milliseconds, per status code, for the
  /// percentile lines in publish().  Seeded reservoirs: bounded forever,
  /// yet late samples still move the percentiles (unlike first-N
  /// retention, which freezes on startup traffic).
  std::vector<LatencyReservoir> latencies_ms_;
};

}  // namespace psk::svc
