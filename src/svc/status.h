// Definite request outcomes of the pskd prediction service.
//
// Every request admitted to (or shed by) the service terminates in exactly
// one of these statuses -- there is no silent-drop path.  The split between
// retryable and terminal statuses is the client-side retry contract:
// kOverloaded and kTimeout describe the *service's* state and are worth
// retrying with backoff; kBadInput describes the *request* and will fail
// identically forever.
#pragma once

#include <cstdint>

namespace psk::svc {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// Terminal: the upload failed to decode/validate, the scenario name is
  /// unknown, or the skeleton deadlocks at replay.  Retrying cannot help.
  kBadInput = 1,
  /// Retryable: the admission queue was full and the request was shed
  /// explicitly instead of queued into unbounded latency.
  kOverloaded = 2,
  /// Retryable: the per-request deadline expired (before execution, or the
  /// simulation blew its propagated wall budget).  Never carries a partial
  /// result.
  kTimeout = 3,
  /// Terminal for this session: the client disconnected / cancelled while
  /// the request was queued or between repetitions.
  kCanceled = 4,
  /// Server-side failure executing a well-formed request.
  kInternal = 5,
  /// Terminal for this request: a predict-by-hash named a skeleton the
  /// server no longer retains (evicted, or never uploaded).  The fix is a
  /// re-upload, not a retry of the same request.
  kNotFound = 6,
};

inline constexpr std::uint8_t kLastStatusCode =
    static_cast<std::uint8_t>(StatusCode::kNotFound);

const char* status_name(StatusCode code);

/// The retry classification: true for statuses a client should retry with
/// backoff (kOverloaded, kTimeout), false for terminal ones.
bool is_retryable(StatusCode code);

/// Deterministic exponential backoff schedule for retryable statuses.
struct RetryPolicy {
  int max_attempts = 4;
  double initial_backoff_seconds = 0.01;
  double multiplier = 2.0;
  double max_backoff_seconds = 1.0;

  /// Backoff to sleep after failed attempt `attempt` (0-based):
  /// min(initial * multiplier^attempt, max).
  double backoff_seconds(int attempt) const;
};

}  // namespace psk::svc
