#include "svc/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "archive/wire.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::svc {

namespace {

constexpr const char* kAddressForms = "unix:<path> or tcp:<host>:<port>";

std::uint16_t parse_port(const std::string& text) {
  if (text.empty() || text.size() > 5 ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    throw ConfigError("--listen: port '" + text + "' is not a number in "
                      "[0, 65535]");
  }
  const unsigned long value = std::stoul(text);
  if (value > 65535) {
    throw ConfigError("--listen: port " + text + " is out of [0, 65535]");
  }
  return static_cast<std::uint16_t>(value);
}

/// Numeric IPv4 (or "localhost"/"" = loopback) to network order.
in_addr_t resolve_host(const std::string& host) {
  if (host.empty() || host == "localhost") return htonl(INADDR_LOOPBACK);
  in_addr parsed{};
  if (inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
    throw ConfigError("--listen: host '" + host +
                      "' is not a numeric IPv4 address or 'localhost'");
  }
  return parsed.s_addr;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw ConfigError(what + ": " + std::strerror(errno));
}

}  // namespace

ListenAddress parse_listen_address(const std::string& text) {
  ListenAddress address;
  if (text.rfind("unix:", 0) == 0) {
    address.kind = ListenAddress::Kind::kUnix;
    address.path = text.substr(5);
    if (address.path.empty()) {
      throw ConfigError("--listen: unix socket path is empty (want " +
                        std::string(kAddressForms) + ")");
    }
    if (address.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw ConfigError("--listen: unix socket path longer than " +
                        std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) +
                        " bytes");
    }
    return address;
  }
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw ConfigError("--listen: tcp address '" + rest +
                        "' is missing a port (want " +
                        std::string(kAddressForms) + ")");
    }
    address.kind = ListenAddress::Kind::kTcp;
    address.host = rest.substr(0, colon);
    address.port = parse_port(rest.substr(colon + 1));
    resolve_host(address.host);  // fail at parse time, not bind time
    return address;
  }
  throw ConfigError("--listen: '" + text + "' (want " +
                    std::string(kAddressForms) + ")");
}

std::string listen_address_name(const ListenAddress& address) {
  if (address.kind == ListenAddress::Kind::kUnix) {
    return "unix:" + address.path;
  }
  return "tcp:" + (address.host.empty() ? "localhost" : address.host) + ":" +
         std::to_string(address.port);
}

// ------------------------------------------------------------ SocketServer

SocketServer::SocketServer(ListenAddress address, Service& service,
                           SessionOptions session_options)
    : address_(std::move(address)),
      service_(service),
      session_options_(std::move(session_options)) {
  if (address_.kind == ListenAddress::Kind::kUnix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("--listen: socket");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, address_.path.c_str(),
                 sizeof(sun.sun_path) - 1);
    // Take the path over: a stale socket file from a crashed daemon would
    // otherwise make every restart fail with EADDRINUSE.
    ::unlink(address_.path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) <
        0) {
      ::close(listen_fd_);
      throw_errno("--listen: bind " + address_.path);
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("--listen: socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = resolve_host(address_.host);
    sin.sin_port = htons(address_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) <
        0) {
      ::close(listen_fd_);
      throw_errno("--listen: bind " + listen_address_name(address_));
    }
    if (address_.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                        &len) == 0) {
        address_.port = ntohs(bound.sin_port);
      }
    }
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw_errno("--listen: listen " + listen_address_name(address_));
  }
}

SocketServer::~SocketServer() {
  stop();
  {
    // serve() may never have run; join anything it left behind.
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }
  if (address_.kind == ListenAddress::Kind::kUnix) {
    ::unlink(address_.path.c_str());
  }
}

AcceptAction classify_accept_errno(int error) {
  switch (error) {
    case EINTR:
    case ECONNABORTED:
      return AcceptAction::kRetry;
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return AcceptAction::kRetryBackoff;
    default:
      return AcceptAction::kFatal;
  }
}

void SocketServer::serve(std::size_t max_connections) {
  std::size_t accepted = 0;
  // Bounded backoff for resource-exhaustion accept failures: doubling from
  // 10ms, capped, reset by any successful accept.
  constexpr auto kBackoffFloor = std::chrono::milliseconds(10);
  constexpr auto kBackoffCeiling = std::chrono::milliseconds(500);
  auto backoff = kBackoffFloor;
  while (max_connections == 0 || accepted < max_connections) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int error = errno;
      const AcceptAction action = classify_accept_errno(error);
      // stop() closed the listener out from under us; everything looks
      // fatal then, and the loop must end either way.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) break;
      }
      if (action == AcceptAction::kFatal) break;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.accept_retries;
      }
      util::log_warn() << "pskd: accept on "
                       << listen_address_name(address_) << ": "
                       << std::strerror(error)
                       << (action == AcceptAction::kRetryBackoff
                               ? "; backing off"
                               : "; retrying");
      if (action == AcceptAction::kRetryBackoff) {
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, kBackoffCeiling);
      }
      continue;
    }
    backoff = kBackoffFloor;
    ++accepted;
    auto session =
        std::make_shared<Session>(fd, service_, session_options_);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.accepted;
    active_.push_back(session);
    threads_.emplace_back(
        [this, session = std::move(session)]() mutable {
          run_session(std::move(session));
        });
  }
  // Wait for every accepted connection to finish its read loop.  Responses
  // their requests still owe are delivered by the service afterwards (the
  // deliver closures keep the sessions alive).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& thread : threads) thread.join();
}

void SocketServer::run_session(std::shared_ptr<Session> session) {
  const SessionEnd end = session->run();
  std::lock_guard<std::mutex> lock(mutex_);
  switch (end) {
    case SessionEnd::kClean: ++stats_.clean; break;
    case SessionEnd::kMidFrame: ++stats_.mid_frame; break;
    case SessionEnd::kBadStream: ++stats_.bad_stream; break;
    case SessionEnd::kWriteFailed: ++stats_.write_failed; break;
  }
  for (std::size_t i = 0; i < active_.size();) {
    if (active_[i].expired() || active_[i].lock() == session) {
      active_[i] = active_.back();
      active_.pop_back();
    } else {
      ++i;
    }
  }
}

void SocketServer::stop() {
  std::vector<std::shared_ptr<Session>> to_abort;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (const auto& weak : active_) {
      if (auto session = weak.lock()) to_abort.push_back(std::move(session));
    }
  }
  // Closing the listener unblocks accept(); aborting the sessions unblocks
  // their reads so serve() can join them.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (const auto& session : to_abort) session->abort();
}

SocketServerStats SocketServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ------------------------------------------------------------ SocketClient

SocketClient::SocketClient(const ListenAddress& address) {
  if (address.kind == ListenAddress::Kind::kUnix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("connect: socket");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, address.path.c_str(), sizeof(sun.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      ::close(fd_);
      fd_ = -1;
      throw_errno("connect " + listen_address_name(address));
    }
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("connect: socket");
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = resolve_host(address.host);
    sin.sin_port = htons(address.port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) < 0) {
      ::close(fd_);
      fd_ = -1;
      throw_errno("connect " + listen_address_name(address));
    }
  }
}

SocketClient::~SocketClient() { close(); }

void SocketClient::send_frame(FrameKind kind, std::string_view body) {
  std::string framed;
  append_frame(framed, kind, body).or_throw();
  send_bytes(framed);
}

void SocketClient::send_request(const RequestHeader& request) {
  std::string body;
  encode_request(body, request);
  send_frame(FrameKind::kRequest, body);
}

void SocketClient::send_bytes(std::string_view bytes) {
  std::size_t sent = 0;
  while (fd_ >= 0 && sent < bytes.size()) {
    const ssize_t wrote = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

bool SocketClient::read_frame(Frame& frame) {
  while (fd_ >= 0) {
    std::size_t consumed = 0;
    archive::Error error;
    switch (try_parse_frame(buffer_, kMaxFrameBytes, frame, consumed, error)) {
      case ParseProgress::kFrame:
        buffer_.erase(0, consumed);
        return true;
      case ParseProgress::kBad:
        return false;
      case ParseProgress::kNeedMore:
        break;
    }
    char chunk[1 << 16];
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  return false;
}

bool SocketClient::read_response(ResponseHeader& response) {
  if (!pending_.empty()) {
    response = std::move(pending_.front());
    pending_.pop_front();
    return true;
  }
  Frame frame;
  if (!read_frame(frame)) return false;
  if (frame.kind != FrameKind::kResponse) return false;
  archive::Result<ResponseHeader> decoded = decode_response(frame.body);
  if (!decoded.ok()) return false;
  response = decoded.take();
  return true;
}

std::optional<HealthInfo> SocketClient::query_health() {
  send_frame(FrameKind::kHealth, {});
  Frame frame;
  while (read_frame(frame)) {
    if (frame.kind == FrameKind::kHealth) {
      archive::Result<HealthInfo> decoded = decode_health(frame.body);
      if (!decoded.ok()) return std::nullopt;
      return decoded.take();
    }
    if (frame.kind != FrameKind::kResponse) return std::nullopt;
    // An in-flight request completed while the probe was on the wire; keep
    // its response for the next read_response().
    archive::Result<ResponseHeader> decoded = decode_response(frame.body);
    if (!decoded.ok()) return std::nullopt;
    pending_.push_back(decoded.take());
  }
  return std::nullopt;
}

void SocketClient::shutdown_send() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void SocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------- RetryingClient

RetryingClient::RetryingClient(ListenAddress address, RetryPolicy policy)
    : address_(std::move(address)), policy_(policy) {}

bool RetryingClient::ensure_connected() {
  if (client_) return true;
  try {
    client_ = std::make_unique<SocketClient>(address_);
    ++stats_.connects;
    return true;
  } catch (const ConfigError&) {
    return false;  // server down or restarting; the caller backs off
  }
}

ResponseHeader RetryingClient::call(const RequestHeader& request) {
  ++stats_.requests;
  const std::uint64_t upload_fp =
      request.archive_bytes.empty()
          ? 0
          : archive::fingerprint64(request.archive_bytes);
  for (int attempt = 0;; ++attempt) {
    RequestHeader wire = request;
    // Idempotent replay by content hash: when the server has already
    // retained this exact upload, name it instead of resending the bytes.
    bool replayed_by_hash = false;
    if (request.op == RequestOp::kPredict && request.skeleton_hash == 0 &&
        upload_fp != 0) {
      const auto known = known_hashes_.find(upload_fp);
      if (known != known_hashes_.end()) {
        wire.skeleton_hash = known->second;
        wire.archive_bytes.clear();
        replayed_by_hash = true;
        ++stats_.replays_by_hash;
      }
    }
    ResponseHeader response;
    bool transported = false;
    try {
      if (ensure_connected()) {
        client_->send_request(wire);
        transported = client_->read_response(response);
      }
    } catch (const ConfigError&) {
      transported = false;  // the connection died mid-send
    }
    if (!transported) {
      client_.reset();
      if (attempt + 1 >= policy_.max_attempts) {
        response = ResponseHeader{};
        response.id = request.id;
        response.status = StatusCode::kInternal;
        response.message = "transport failed after " +
                           std::to_string(policy_.max_attempts) +
                           " attempt(s) to " + listen_address_name(address_);
        return response;
      }
      ++stats_.retries;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(policy_.backoff_seconds(attempt)));
      continue;
    }
    if (replayed_by_hash && response.status == StatusCode::kNotFound) {
      // The server lost its store (restart, eviction): forget the hash and
      // resend the container immediately -- this is recovery, not backoff.
      known_hashes_.erase(upload_fp);
      ++stats_.reuploads;
      continue;
    }
    if (upload_fp != 0 && response.skeleton_hash != 0) {
      known_hashes_[upload_fp] = response.skeleton_hash;
    }
    if (is_retryable(response.status) && attempt + 1 < policy_.max_attempts) {
      ++stats_.retries;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(policy_.backoff_seconds(attempt)));
      continue;
    }
    return response;
  }
}

std::optional<HealthInfo> RetryingClient::query_health() {
  try {
    if (!ensure_connected()) return std::nullopt;
    std::optional<HealthInfo> health = client_->query_health();
    if (!health) client_.reset();
    return health;
  } catch (const ConfigError&) {
    client_.reset();
    return std::nullopt;
  }
}

}  // namespace psk::svc
