// Wire protocol of the pskd prediction service.
//
// A session is a byte stream (stdin/stdout pipe or a local socket) carrying
// length-prefixed frames in both directions.  Frame layout (all integers
// explicit little-endian, like the PSKARCH1 container):
//
//   offset  size  field
//   0       4     magic "PSKF"
//   4       1     protocol version (currently 2)
//   5       1     frame kind (FrameKind)
//   6       4     body size N in bytes
//   10      N     body
//   10+N    8     FNV-1a fingerprint of the body
//
// The declared body size is validated against a hard cap *before* any
// buffer is allocated: a hostile length field costs the parser nothing.
// Request bodies carry a fixed header followed by an embedded PSKARCH1
// container -- a skeleton for kPredict, a folded trace for kConstruct --
// or, instead of a container, the content hash of a skeleton the server
// already retains (hot-skeleton reuse).  Response bodies carry a definite
// status -- every request submitted to the service produces exactly one
// response frame, including shed (kOverloaded) and expired (kTimeout)
// ones.  See docs/FORMATS.md for the field-by-field body layout.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "archive/wire.h"
#include "svc/status.h"

namespace psk::svc {

inline constexpr std::string_view kFrameMagic = "PSKF";
inline constexpr std::uint8_t kProtocolVersion = 3;

/// Hard cap on a frame body.  Anything larger is rejected at the length
/// field, before allocation (uploads are skeletons, not bulk traces).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Cap on per-request repetitions, so one request cannot monopolise the
/// service with an absurd repetition count.
inline constexpr std::uint32_t kMaxRepetitions = 64;

enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  /// Client asks the server to execute everything queued on this session
  /// and write the responses (pipe-mode batch boundary).  Empty body.
  kFlush = 3,
  /// Health exchange: a client sends an empty-body kHealth frame and the
  /// server answers immediately with a kHealth frame carrying a HealthInfo
  /// body -- *bypassing* admission, so the probe works (and reports queue
  /// depth for client backoff) even when the service is overloaded.
  kHealth = 4,
};

struct Frame {
  FrameKind kind = FrameKind::kRequest;
  std::string body;
};

/// Largest body the u32 length field can carry.  append_frame refuses
/// anything bigger: encoding it would silently truncate the length and
/// desync the stream at the next checksum.
inline constexpr std::size_t kMaxEncodableBody = 0xFFFFFFFFu;

/// Rejects (kTruncated) body sizes the frame length field cannot
/// represent.  Split out of append_frame so the 4 GiB boundary is testable
/// without allocating 4 GiB.
archive::Status check_frame_body_size(std::size_t size);

/// Appends one framed message to `out`.  Fails (leaving `out` untouched)
/// when the body exceeds kMaxEncodableBody.
archive::Status append_frame(std::string& out, FrameKind kind,
                             std::string_view body);

enum class ParseProgress {
  kFrame,     // one complete frame parsed and consumed
  kNeedMore,  // buffer holds a valid proper prefix; feed more bytes
  kBad,       // the stream is unusable (bad magic/version/size/checksum)
};

/// Incremental frame parser over a growing buffer.  On kFrame, `frame` is
/// filled and `consumed` says how many buffer bytes to discard.  On kBad,
/// `error` says why; the stream cannot be resynchronised.  `max_body`
/// bounds the declared body size (allocation happens only after the whole
/// body arrived and the size passed the cap).
ParseProgress try_parse_frame(std::string_view buffer, std::size_t max_body,
                              Frame& frame, std::size_t& consumed,
                              archive::Error& error);

// ------------------------------------------------------------- request

enum class RequestOp : std::uint8_t {
  /// Liveness probe: no payload, responds kOk immediately (still queued
  /// through admission, so a ping observes overload like any request).
  kPing = 0,
  /// Run the uploaded skeleton under a named scenario and return the
  /// measured times, one per repetition.  The upload is either an embedded
  /// skeleton container or, when `skeleton_hash` is nonzero, the content
  /// hash of a skeleton the server retains from an earlier upload.
  kPredict = 1,
  /// Upload a folded execution trace and run the construction pipeline
  /// (fold -> cluster -> compress -> scale at K = target_k) server-side.
  /// The response returns the constructed skeleton container and its
  /// content hash; the server retains the skeleton for predict-by-hash.
  kConstruct = 2,
};

enum class ValidateMode : std::uint8_t {
  kStrict = 0,
  kSalvage = 1,
  kOff = 2,
};

/// Parses a --validate flag value; throws ConfigError listing the valid
/// modes on anything else (mirrors the unknown-scenario-name behaviour).
ValidateMode parse_validate_mode(const std::string& text);
const char* validate_mode_name(ValidateMode mode);

/// Cap on kConstruct's scaling factor K, so a hostile request cannot ask
/// for an absurd compression target.
inline constexpr double kMaxTargetK = 1.0e6;

struct RequestHeader {
  std::uint32_t id = 0;
  RequestOp op = RequestOp::kPredict;
  ValidateMode validate = ValidateMode::kStrict;
  /// Wall-clock budget in seconds from admission; 0 = server default.
  double deadline_seconds = 0;
  /// Measurement seed base; repetition r runs at seed + r.
  std::uint64_t seed = 0;
  std::uint32_t repetitions = 1;
  /// kConstruct: scaling factor K for the construction pipeline
  /// (compression targets Q = K / divisor, the paper's K/2).  Must be in
  /// (0, kMaxTargetK].  Ignored by kPing/kPredict.
  double target_k = 10.0;
  /// kPredict: when nonzero, the content hash of a retained skeleton
  /// (hot-skeleton reuse); `archive_bytes` must then be empty.  A miss
  /// answers kNotFound and the client re-uploads the container.
  std::uint64_t skeleton_hash = 0;
  std::string scenario = "dedicated";
  /// Embedded PSKARCH1 container bytes: the uploaded skeleton (kPredict)
  /// or folded trace (kConstruct).  Empty for predict-by-hash.
  std::string archive_bytes;
};

void encode_request(std::string& out, const RequestHeader& request);
archive::Result<RequestHeader> decode_request(std::string_view body);

// ------------------------------------------------------------ response

struct ResponseHeader {
  std::uint32_t id = 0;
  StatusCode status = StatusCode::kInternal;
  /// True when the service degraded to produce this answer (salvaged a
  /// rejected upload, downgraded validation errors to warnings).
  bool degraded = false;
  /// Diagnostic, empty on success.  Deterministic for identical requests.
  std::string message;
  /// Content hash (archive::fingerprint64 over the canonical skeleton
  /// container bytes) of the skeleton this response used or constructed;
  /// the server retains it for predict-by-hash.  0 when no skeleton was
  /// involved (ping, shed, undecodable upload).
  std::uint64_t skeleton_hash = 0;
  /// Canonical PSKARCH1 skeleton container bytes; non-empty only on a
  /// successful kConstruct response.
  std::string skeleton_bytes;
  /// Measured skeleton times, one per repetition; empty unless kOk.
  std::vector<double> values;
};

void encode_response(std::string& out, const ResponseHeader& response);
archive::Result<ResponseHeader> decode_response(std::string_view body);

// -------------------------------------------------------------- health

/// Body of a server kHealth frame: the liveness snapshot clients use for
/// backoff decisions (a deep queue or high inflight count means "retry
/// later", long before a request would shed).  See docs/FORMATS.md.
struct HealthInfo {
  /// Seconds since the service was constructed.
  double uptime_seconds = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t queue_capacity = 0;
  /// Requests executing on workers right now.
  std::uint32_t inflight = 0;
  std::uint32_t workers = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  /// Supervisor self-healing counters: hung requests answered kTimeout and
  /// worker threads isolated + replaced because of them.
  std::uint64_t hung_detected = 0;
  std::uint64_t workers_replaced = 0;
};

void encode_health(std::string& out, const HealthInfo& health);
archive::Result<HealthInfo> decode_health(std::string_view body);

}  // namespace psk::svc
