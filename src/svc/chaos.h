// Seeded deterministic fault injection for the pskd service stack.
//
// `psk::fault` injects failures into the *simulated* cluster; this layer
// injects them into the service itself -- the socket transport, the
// per-connection sessions, the skeleton store's disk tier and the worker
// pool -- so the recovery machinery around them (supervisor watchdog,
// quarantine, retry/replay clients) is exercised by tests and the
// `ext_chaos` soak instead of waiting for production to find the gaps.
//
// Determinism contract: every injection site draws from its own seeded
// counter stream (splitmix64 over (seed, site, n)), so the n-th
// consultation of a given site always makes the same decision for a given
// seed, independent of how threads interleave *across* sites.  A failing
// soak is replayable from its (seed, profile) pair alone.
//
// Overhead contract: components hold a raw `ChaosSchedule*` that is null
// in production (the `psk::obs` idiom).  Disabled chaos costs exactly one
// null check per site -- no locks, no RNG draws, no allocation -- and the
// code path taken is bit-identical to a build without the hooks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace psk::svc {

/// Injection sites threaded through the service stack.  Each has its own
/// deterministic decision stream and its own injected/consulted counters.
enum class ChaosSite : std::uint8_t {
  kSessionReadDelay = 0,  // delay + fragment an inbound socket read
  kSessionShortWrite,     // cap one outbound send() to a few bytes
  kSessionDisconnect,     // kill the connection mid-response-write
  kStoreWriteFail,        // ENOSPC/EIO on a disk-tier store write
  kStoreCorrupt,          // flip a byte in a disk-tier entry as written
  kWorkerStall,           // stall a worker mid-request (hung-worker shape)
};

inline constexpr std::size_t kChaosSiteCount = 6;
const char* chaos_site_name(ChaosSite site);

/// Rate knobs in [0, 1] per site, plus magnitudes for the timed faults.
/// All rates default to 0: a default profile injects nothing.
struct ChaosProfile {
  double read_delay_rate = 0;
  double read_delay_ms = 2.0;
  double short_write_rate = 0;
  /// Largest chunk a short-write-limited send() may move at once.
  std::size_t short_write_bytes = 7;
  double disconnect_rate = 0;
  double store_write_fail_rate = 0;
  double store_corrupt_rate = 0;
  double worker_stall_rate = 0;
  double worker_stall_ms = 50.0;
};

/// Parses a --chaos-profile value: a named preset (`light`, `heavy`,
/// `disk`, `network`) or a comma list of `knob=value` pairs using the
/// field names above (e.g. "worker_stall_rate=0.2,worker_stall_ms=80").
/// Throws ConfigError listing the presets and knobs on anything else.
ChaosProfile parse_chaos_profile(const std::string& text);

/// One line per site: consulted vs injected counts since construction.
struct ChaosStats {
  std::array<std::uint64_t, kChaosSiteCount> consulted = {};
  std::array<std::uint64_t, kChaosSiteCount> injected = {};
};

class ChaosSchedule {
 public:
  ChaosSchedule(std::uint64_t seed, ChaosProfile profile)
      : seed_(seed), profile_(profile) {}

  ChaosSchedule(const ChaosSchedule&) = delete;
  ChaosSchedule& operator=(const ChaosSchedule&) = delete;

  const ChaosProfile& profile() const { return profile_; }
  std::uint64_t seed() const { return seed_; }

  /// True when the next consultation of `site` should inject (site rate
  /// looked up from the profile).  Thread-safe; each site's decision
  /// sequence depends only on (seed, site, consultation index).
  bool fire(ChaosSite site);

  /// Milliseconds of read delay / worker stall for a fired timed site.
  /// Deterministic per site like fire(), jittered in [0.5x, 1.5x] of the
  /// profile magnitude so stalls are not all identical.
  double read_delay_ms();
  double worker_stall_ms();

  ChaosStats stats() const;

 private:
  double rate_for(ChaosSite site) const;
  /// The n-th draw of `site`, mapped to [0, 1).
  double unit_draw(ChaosSite site, std::uint64_t n) const;

  const std::uint64_t seed_;
  const ChaosProfile profile_;
  std::array<std::atomic<std::uint64_t>, kChaosSiteCount> consulted_ = {};
  std::array<std::atomic<std::uint64_t>, kChaosSiteCount> injected_ = {};
  /// Separate draw streams for fault magnitudes, so a magnitude draw never
  /// shifts a later fire() decision.
  std::array<std::atomic<std::uint64_t>, kChaosSiteCount> magnitude_n_ = {};
};

}  // namespace psk::svc
