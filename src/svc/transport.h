// Local-socket / TCP transport for the pskd prediction service.
//
// Pipe mode (PR 7) serves exactly one client per process; this layer turns
// the same framed protocol into a deployment surface: a listener accepts
// connections and gives each one a Session (svc/session.h) on its own
// thread, all submitting into one shared admission-controlled Service.
//
//   pskd --listen=unix:/tmp/pskd.sock
//   pskd --listen=tcp:127.0.0.1:7071
//
// Address syntax is `unix:<path>` or `tcp:<host>:<port>` (IPv4 numeric or
// `localhost`; port 0 binds an ephemeral port, readable back from
// bound_address() -- tests use that).  Binding a unix path takes it over:
// a stale socket file from a crashed daemon is unlinked.
//
// SocketClient is the matching blocking client used by the tests, the
// socket smoke and the load bench; real deployments can speak the frame
// protocol from any language.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/frame.h"
#include "svc/session.h"

namespace psk::svc {

struct ListenAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  /// unix: filesystem path of the socket.
  std::string path;
  /// tcp: numeric IPv4 host (or "localhost") and port; port 0 = ephemeral.
  std::string host;
  std::uint16_t port = 0;
};

/// Parses `unix:<path>` / `tcp:<host>:<port>`; throws ConfigError naming
/// the accepted forms on anything else.
ListenAddress parse_listen_address(const std::string& text);

/// Canonical rendering, e.g. "unix:/tmp/pskd.sock" or "tcp:127.0.0.1:7071".
std::string listen_address_name(const ListenAddress& address);

struct SocketServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t clean = 0;         // sessions that ended at a frame boundary
  std::uint64_t mid_frame = 0;     // client died mid-send
  std::uint64_t bad_stream = 0;    // unparsable bytes
  std::uint64_t write_failed = 0;  // client stopped reading
  std::uint64_t accept_retries = 0;  // transient accept() failures survived
};

/// How the accept loop should react to an accept() errno.  A connection
/// that died in the backlog (ECONNABORTED) or an interrupted call costs
/// nothing to retry immediately; resource exhaustion (EMFILE/ENFILE/
/// ENOBUFS/ENOMEM) is usually transient -- sessions closing return fds --
/// so the loop backs off instead of killing the whole listener; anything
/// else means the listener itself is dead.
enum class AcceptAction {
  kRetry,         // transient, retry immediately
  kRetryBackoff,  // resource exhaustion, retry after bounded backoff
  kFatal,         // the listening socket is unusable
};

AcceptAction classify_accept_errno(int error);

/// Accepts connections on a bound address and runs one Session per
/// connection.  The listening socket is bound at construction (so an
/// ephemeral TCP port is known before serve()); serve() runs the accept
/// loop on the calling thread.
class SocketServer {
 public:
  /// Binds and listens; throws ConfigError on bind/listen failure.  The
  /// service must be in live mode (start() called) before serve().
  SocketServer(ListenAddress address, Service& service,
               SessionOptions session_options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound address -- identical to the constructor's except that an
  /// ephemeral TCP port (0) is resolved to the real one.
  const ListenAddress& bound_address() const { return address_; }

  /// Accept loop.  Returns after `max_connections` accepted connections
  /// have fully ended (0 = serve until stop()), with all session threads
  /// joined.  Responses still queued in the service when a session ends
  /// are delivered as the service drains them; Session lifetimes extend
  /// past the join via the per-request deliver closures.
  void serve(std::size_t max_connections = 0);

  /// Unblocks serve() from another thread: stops accepting and shuts the
  /// read side of every active session so their loops end.  Idempotent.
  void stop();

  SocketServerStats stats() const;

 private:
  void run_session(std::shared_ptr<Session> session);

  ListenAddress address_;
  Service& service_;
  SessionOptions session_options_;
  int listen_fd_ = -1;

  mutable std::mutex mutex_;
  bool stopping_ = false;
  std::vector<std::weak_ptr<Session>> active_;
  std::vector<std::thread> threads_;
  SocketServerStats stats_;
};

/// Blocking client for tests and benches: connect, write frames, read
/// back responses.
class SocketClient {
 public:
  /// Connects; throws ConfigError when the endpoint does not resolve or
  /// refuses.
  explicit SocketClient(const ListenAddress& address);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  void send_frame(FrameKind kind, std::string_view body);
  void send_request(const RequestHeader& request);
  /// Sends raw bytes as-is -- tests use it to die mid-frame on purpose.
  void send_bytes(std::string_view bytes);

  /// Blocks for the next frame of any kind; false on EOF or a bad stream.
  bool read_frame(Frame& frame);

  /// Blocks for the next response frame; false on EOF or a bad stream.
  /// Response frames stashed aside by query_health() are returned first.
  bool read_response(ResponseHeader& response);

  /// Health exchange: sends a kHealth probe and blocks for the server's
  /// kHealth answer.  Response frames that arrive first (in-flight
  /// requests completing) are stashed for read_response().  nullopt when
  /// the connection died or the answer failed to decode.
  std::optional<HealthInfo> query_health();

  /// Half-close: signals EOF to the server while leaving the read side
  /// open for remaining responses.
  void shutdown_send();
  /// Hard close both directions (the abrupt-disconnect shape).
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
  std::deque<ResponseHeader> pending_;
};

struct RetryStats {
  std::uint64_t requests = 0;        // call() invocations
  std::uint64_t connects = 0;        // connections established (first + re)
  std::uint64_t retries = 0;         // backoff retries (transport loss or a
                                     // retryable status)
  std::uint64_t replays_by_hash = 0; // predicts sent as hash instead of bytes
  std::uint64_t reuploads = 0;       // hash replays the server answered
                                     // kNotFound (restart); container resent
};

/// Self-healing request client: one call() per request, with automatic
/// reconnect on a dead connection, deterministic exponential backoff on
/// retryable statuses (kOverloaded/kTimeout), and idempotent replay keyed
/// by content hash -- an upload the server has already retained is resent
/// as a ~100-byte predict-by-hash, and a kNotFound on that replay (the
/// server restarted with a fresh store) transparently falls back to
/// re-uploading the container.  Retrying is safe because every request is
/// a seeded deterministic computation: executing it twice returns the same
/// bytes.  Single-threaded: one outstanding call() at a time.
class RetryingClient {
 public:
  RetryingClient(ListenAddress address, RetryPolicy policy = {});

  /// Sends the request and blocks for its response, reconnecting and
  /// retrying per the policy.  Always returns a definite response: when
  /// every attempt died on transport, a synthesized kInternal one.
  ResponseHeader call(const RequestHeader& request);

  /// Health probe over the current connection (reconnecting if needed);
  /// nullopt when the server is unreachable.
  std::optional<HealthInfo> query_health();

  const RetryStats& stats() const { return stats_; }

 private:
  bool ensure_connected();

  const ListenAddress address_;
  const RetryPolicy policy_;
  std::unique_ptr<SocketClient> client_;
  /// fingerprint64(uploaded container) -> the skeleton_hash the server
  /// advertised for it: the replay-by-hash key cache.
  std::unordered_map<std::uint64_t, std::uint64_t> known_hashes_;
  RetryStats stats_;
};

}  // namespace psk::svc
