#include "svc/store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "guard/salvage.h"
#include "util/log.h"

namespace psk::svc {

namespace {

using archive::Error;
using archive::ErrorCode;

constexpr std::size_t kEntryHeaderSize = 5 + 8 + 4;  // magic + hash + size
constexpr std::size_t kEntryChecksumSize = 8;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return bytes;
}

}  // namespace

std::string encode_store_entry(std::uint64_t hash, std::string_view payload) {
  std::string out;
  out.reserve(kEntryHeaderSize + payload.size() + kEntryChecksumSize);
  out.append(kStoreEntryMagic);
  archive::put_u64(out, hash);
  archive::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  archive::put_u64(out, archive::fingerprint64(out));
  return out;
}

archive::Result<StoreEntry> decode_store_entry(std::string_view bytes) {
  if (bytes.size() < kEntryHeaderSize + kEntryChecksumSize) {
    return Error{ErrorCode::kTruncated,
                 "store entry of " + std::to_string(bytes.size()) +
                     " byte(s) is shorter than its fixed framing"};
  }
  if (bytes.substr(0, kStoreEntryMagic.size()) != kStoreEntryMagic) {
    return Error{ErrorCode::kBadMagic, "not a PSKS1 store entry"};
  }
  archive::Cursor header(bytes.substr(kStoreEntryMagic.size()));
  StoreEntry entry;
  entry.hash = header.u64();
  const std::uint32_t declared = header.u32();
  // Validate the declared size against the bytes actually present before
  // allocating anything for the payload.
  if (bytes.size() != kEntryHeaderSize + declared + kEntryChecksumSize) {
    return Error{ErrorCode::kTruncated,
                 "store entry declares " + std::to_string(declared) +
                     " payload byte(s) but the file holds " +
                     std::to_string(bytes.size()) + " total"};
  }
  const std::string_view body = bytes.substr(0, bytes.size() - kEntryChecksumSize);
  archive::Cursor tail(bytes.substr(bytes.size() - kEntryChecksumSize));
  if (tail.u64() != archive::fingerprint64(body)) {
    return Error{ErrorCode::kCorrupt, "store entry checksum mismatch"};
  }
  entry.payload.assign(bytes.substr(kEntryHeaderSize, declared));
  // The content-address invariant: the filed hash must BE the payload's
  // fingerprint, or a lookup would serve bytes under the wrong name.
  if (entry.hash != archive::fingerprint64(entry.payload)) {
    return Error{ErrorCode::kCorrupt,
                 "store entry hash does not match its payload fingerprint"};
  }
  return entry;
}

SkeletonStore::SkeletonStore(StoreOptions options)
    : options_(std::move(options)) {
  if (options_.capacity_entries == 0) options_.disk_dir.clear();
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
    if (ec) {
      util::log_warn() << "store: cannot create disk tier at "
                       << options_.disk_dir << " (" << ec.message()
                       << "); running memory-only";
      options_.disk_dir.clear();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  restore_disk_index_locked();
}

SkeletonStore::SkeletonStore(std::size_t capacity_entries,
                             std::size_t capacity_bytes)
    : SkeletonStore([&] {
        StoreOptions options;
        options.capacity_entries = capacity_entries;
        options.capacity_bytes = capacity_bytes;
        return options;
      }()) {}

std::string SkeletonStore::entry_path(std::uint64_t hash) const {
  if (options_.disk_dir.empty()) return "";
  return options_.disk_dir + "/" + archive::fingerprint_hex(hash) + ".psks";
}

void SkeletonStore::restore_disk_index_locked() {
  if (options_.disk_dir.empty()) return;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& dir_entry :
       std::filesystem::directory_iterator(options_.disk_dir, ec)) {
    if (dir_entry.path().extension() == ".psks") {
      files.push_back(dir_entry.path());
    }
  }
  // Deterministic index order regardless of readdir order.
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    // Index from the header alone (magic + hash); full verification runs
    // on first get(), before anything is served.
    std::ifstream in(path, std::ios::binary);
    std::string header(kEntryHeaderSize, '\0');
    if (!in.read(header.data(), static_cast<std::streamsize>(header.size()))) {
      continue;  // too short to ever verify; get() would miss anyway
    }
    if (std::string_view(header).substr(0, kStoreEntryMagic.size()) !=
        kStoreEntryMagic) {
      continue;
    }
    archive::Cursor cursor(std::string_view(header).substr(
        kStoreEntryMagic.size()));
    const std::uint64_t hash = cursor.u64();
    std::error_code size_ec;
    const auto size = std::filesystem::file_size(path, size_ec);
    if (size_ec || disk_index_.count(hash) != 0) continue;
    disk_index_.emplace(hash, static_cast<std::size_t>(size));
    disk_order_.push_back(hash);
    disk_position_.emplace(hash, std::prev(disk_order_.end()));
    stats_.disk_bytes += static_cast<std::size_t>(size);
    ++stats_.restored;
  }
  stats_.disk_entries = disk_index_.size();
}

std::uint64_t SkeletonStore::put(std::string bytes) {
  const std::uint64_t hash = archive::fingerprint64(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.capacity_entries == 0) {
    // Retention disabled: the protocol still works, every predict-by-hash
    // for this skeleton just answers kNotFound.
    return hash;
  }
  if (const auto it = entries_.find(hash); it != entries_.end()) {
    order_.splice(order_.begin(), order_, it->second.position);
    ++stats_.refreshed;
    return hash;
  }
  spill_locked(hash, bytes);
  if (bytes.size() > options_.capacity_bytes) {
    // Too large for the memory tier; the disk tier (when on) still holds
    // it, so predict-by-hash keeps working at one file read per use.
    return hash;
  }
  order_.push_front(hash);
  stats_.bytes += bytes.size();
  entries_.emplace(hash, Entry{std::move(bytes), order_.begin()});
  ++stats_.inserted;
  stats_.entries = entries_.size();
  evict_to_fit_locked();
  return hash;
}

void SkeletonStore::spill_locked(std::uint64_t hash, const std::string& bytes) {
  if (options_.disk_dir.empty() || disk_index_.count(hash) != 0) return;
  if (options_.chaos && options_.chaos->fire(ChaosSite::kStoreWriteFail)) {
    // Simulated ENOSPC/EIO: the entry degrades to memory-only, counted,
    // exactly like the real failure below.
    ++stats_.disk_write_fail;
    return;
  }
  std::string entry = encode_store_entry(hash, bytes);
  if (options_.chaos && options_.chaos->fire(ChaosSite::kStoreCorrupt)) {
    // Torn/corrupt write: flip one payload byte.  The checksum must catch
    // this at read time and route the entry into quarantine.
    entry[kEntryHeaderSize + entry.size() / 3] ^= 0x40;
  }
  const std::string path = entry_path(hash);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out ||
        !out.write(entry.data(), static_cast<std::streamsize>(entry.size())) ||
        !out.flush()) {
      out.close();
      std::remove(tmp.c_str());
      if (++stats_.disk_write_fail == 1) {
        util::log_warn() << "store: disk write to " << options_.disk_dir
                         << " failed; entry stays memory-only";
      }
      return;
    }
  }
  // Atomic publish: the final name either holds a complete entry or does
  // not exist.  A crash between write and rename leaves only a .tmp that
  // the restart scan ignores.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    ++stats_.disk_write_fail;
    return;
  }
  disk_index_.emplace(hash, entry.size());
  disk_order_.push_back(hash);
  disk_position_.emplace(hash, std::prev(disk_order_.end()));
  stats_.disk_bytes += entry.size();
  stats_.disk_entries = disk_index_.size();
  while (stats_.disk_bytes > options_.disk_capacity_bytes &&
         !disk_order_.empty()) {
    const std::uint64_t victim = disk_order_.front();
    drop_disk_entry_locked(victim);
    std::remove(entry_path(victim).c_str());
    ++stats_.disk_evicted;
  }
}

void SkeletonStore::drop_disk_entry_locked(std::uint64_t hash) {
  const auto it = disk_index_.find(hash);
  if (it == disk_index_.end()) return;
  stats_.disk_bytes -= it->second;
  disk_index_.erase(it);
  const auto pos = disk_position_.find(hash);
  if (pos != disk_position_.end()) {
    disk_order_.erase(pos->second);
    disk_position_.erase(pos);
  }
  stats_.disk_entries = disk_index_.size();
}

void SkeletonStore::quarantine_locked(std::uint64_t hash,
                                      const std::string& reason) {
  const std::string path = entry_path(hash);
  // Keep the damaged bytes for triage under a name the index scan skips;
  // if even the rename fails, remove the file so it cannot be re-read.
  if (std::rename(path.c_str(), (path + ".quar").c_str()) != 0) {
    std::remove(path.c_str());
  }
  drop_disk_entry_locked(hash);
  ++stats_.quarantined;
  util::log_warn() << "store: quarantined corrupt entry "
                   << archive::fingerprint_hex(hash) << " (" << reason << ")";
}

std::optional<std::string> SkeletonStore::disk_get_locked(std::uint64_t hash) {
  if (disk_index_.count(hash) == 0) return std::nullopt;
  const std::string path = entry_path(hash);
  std::optional<std::string> bytes = read_file(path);
  if (!bytes) {
    // The file vanished under us (operator cleanup); drop the index entry.
    drop_disk_entry_locked(hash);
    return std::nullopt;
  }
  archive::Result<StoreEntry> entry = decode_store_entry(*bytes);
  if (!entry.ok()) {
    // Verification failed: quarantine, never serve.  Salvage tells the
    // operator whether the payload prefix was still a usable skeleton --
    // diagnostic only, the answer to the client stays a miss either way.
    std::string reason = entry.error().render();
    if (bytes->size() > kEntryHeaderSize) {
      guard::SalvageReport report;
      const std::string payload_prefix = bytes->substr(kEntryHeaderSize);
      if (guard::salvage_skeleton_bytes(payload_prefix, report)) {
        reason += "; salvage would recover " +
                  std::to_string(report.ranks_kept) + " of " +
                  std::to_string(report.ranks_expected) + " rank(s)";
      } else {
        reason += "; salvage recovers nothing";
      }
    }
    quarantine_locked(hash, reason);
    return std::nullopt;
  }
  if (entry.value().hash != hash) {
    quarantine_locked(hash, "entry filed under the wrong hash");
    return std::nullopt;
  }
  return std::move(entry.value().payload);
}

std::optional<std::string> SkeletonStore::get(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(hash); it != entries_.end()) {
    order_.splice(order_.begin(), order_, it->second.position);
    ++stats_.hits;
    return it->second.bytes;
  }
  if (std::optional<std::string> payload = disk_get_locked(hash)) {
    ++stats_.disk_hits;
    // Promote back into the memory LRU so repeat traffic stays off disk.
    if (options_.capacity_entries > 0 &&
        payload->size() <= options_.capacity_bytes) {
      order_.push_front(hash);
      stats_.bytes += payload->size();
      entries_.emplace(hash, Entry{*payload, order_.begin()});
      stats_.entries = entries_.size();
      evict_to_fit_locked();
    }
    return payload;
  }
  ++stats_.misses;
  return std::nullopt;
}

StoreStats SkeletonStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SkeletonStore::evict_to_fit_locked() {
  while (entries_.size() > options_.capacity_entries ||
         stats_.bytes > options_.capacity_bytes) {
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    const auto it = entries_.find(victim);
    stats_.bytes -= it->second.bytes.size();
    entries_.erase(it);
    ++stats_.evicted;
  }
  stats_.entries = entries_.size();
}

}  // namespace psk::svc
