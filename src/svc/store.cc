#include "svc/store.h"

#include <utility>

#include "archive/wire.h"

namespace psk::svc {

SkeletonStore::SkeletonStore(std::size_t capacity_entries,
                             std::size_t capacity_bytes)
    : capacity_entries_(capacity_entries), capacity_bytes_(capacity_bytes) {}

std::uint64_t SkeletonStore::put(std::string bytes) {
  const std::uint64_t hash = archive::fingerprint64(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(hash); it != entries_.end()) {
    order_.splice(order_.begin(), order_, it->second.position);
    ++stats_.refreshed;
    return hash;
  }
  if (capacity_entries_ == 0 || bytes.size() > capacity_bytes_) {
    // Unretainable: the protocol still works, every predict-by-hash for
    // this skeleton just answers kNotFound.
    return hash;
  }
  order_.push_front(hash);
  stats_.bytes += bytes.size();
  entries_.emplace(hash, Entry{std::move(bytes), order_.begin()});
  ++stats_.inserted;
  stats_.entries = entries_.size();
  evict_to_fit_locked();
  return hash;
}

std::optional<std::string> SkeletonStore::get(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  order_.splice(order_.begin(), order_, it->second.position);
  ++stats_.hits;
  return it->second.bytes;
}

StoreStats SkeletonStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SkeletonStore::evict_to_fit_locked() {
  while (entries_.size() > capacity_entries_ ||
         stats_.bytes > capacity_bytes_) {
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    const auto it = entries_.find(victim);
    stats_.bytes -= it->second.bytes.size();
    entries_.erase(it);
    ++stats_.evicted;
  }
  stats_.entries = entries_.size();
}

}  // namespace psk::svc
