#include "svc/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "archive/wire.h"

namespace psk::svc {

Session::Session(int fd, Service& service, SessionOptions options)
    : fd_(fd), service_(service), options_(std::move(options)) {}

Session::~Session() { ::close(fd_); }

SessionEnd Session::run() {
  std::string buffer;
  char chunk[1 << 16];
  SessionEnd end = SessionEnd::kClean;
  bool stop = false;
  while (!stop) {
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      // A dead connection is a disconnect, not a protocol error; whatever
      // is queued answers kCanceled below.
      end = buffer.empty() ? SessionEnd::kClean : SessionEnd::kMidFrame;
      break;
    }
    if (got == 0) {
      end = buffer.empty() ? SessionEnd::kClean : SessionEnd::kMidFrame;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
    // Chaos read delay: the bytes sit unparsed for a moment, as if the
    // client were trickling them (slow-loris shape from the server side).
    if (options_.chaos &&
        options_.chaos->fire(ChaosSite::kSessionReadDelay)) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.chaos->read_delay_ms()));
    }
    bool progressed = true;
    while (progressed && !stop) {
      Frame frame;
      std::size_t consumed = 0;
      archive::Error error;
      switch (try_parse_frame(buffer, options_.max_frame_bytes, frame,
                              consumed, error)) {
        case ParseProgress::kFrame:
          buffer.erase(0, consumed);
          if (frame.kind == FrameKind::kRequest) {
            handle_request(frame.body);
          } else if (frame.kind == FrameKind::kFlush) {
            // Socket sessions are live: execution is continuous, so the
            // pipe-mode batch boundary is accepted and ignored.
          } else if (frame.kind == FrameKind::kHealth) {
            // Answered inline, bypassing admission: the probe must work
            // precisely when the queue is full.
            send_health();
          } else {
            end = SessionEnd::kBadStream;
            stop = true;
          }
          break;
        case ParseProgress::kNeedMore:
          progressed = false;
          break;
        case ParseProgress::kBad:
          end = SessionEnd::kBadStream;
          stop = true;
          break;
      }
    }
    if (!stop) {
      std::lock_guard<std::mutex> lock(write_mutex_);
      if (write_failed_) {
        end = SessionEnd::kWriteFailed;
        stop = true;
      }
    }
  }
  // Teardown: whatever this connection still has queued answers kCanceled
  // through its per-request deliver -- other sessions are untouched.
  cancel_outstanding();
  return end;
}

void Session::handle_request(const std::string& body) {
  archive::Result<RequestHeader> decoded = decode_request(body);
  if (!decoded.ok()) {
    ResponseHeader response;
    // The id is the first field; when even that is missing it stays 0.
    if (body.size() >= 4) {
      archive::Cursor in(body);
      response.id = in.u32();
    }
    response.status = StatusCode::kBadInput;
    response.message = "bad request: " + decoded.error().render();
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++stats_.requests;
    }
    send_response(response);
    return;
  }

  Request request;
  request.header = decoded.take();
  if (options_.validate_override) {
    request.header.validate = *options_.validate_override;
  }
  request.cancel = std::make_shared<std::atomic<bool>>(false);

  bool shed_at_cap = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.requests;
    if (inflight_ >= options_.max_inflight) {
      ++stats_.shed_inflight;
      shed_at_cap = true;
    } else {
      ++inflight_;
      // Prune flags the service has already released (answered requests),
      // so a long-lived session's cancel list stays bounded.
      std::size_t kept = 0;
      for (auto& cancel : cancels_) {
        if (cancel.use_count() > 1) cancels_[kept++] = std::move(cancel);
      }
      cancels_.resize(kept);
      cancels_.push_back(request.cancel);
    }
  }
  if (shed_at_cap) {
    // Fair admission: this connection alone is past its in-flight budget.
    // Shed with the same loud, retryable status as queue overload, without
    // letting it occupy shared queue capacity.
    ResponseHeader response;
    response.id = request.header.id;
    response.status = StatusCode::kOverloaded;
    response.message = "session in-flight cap (" +
                       std::to_string(options_.max_inflight) + ") reached";
    send_response(response);
    return;
  }

  request.deliver = [self = shared_from_this()](const ResponseHeader& r) {
    {
      std::lock_guard<std::mutex> lock(self->state_mutex_);
      if (self->inflight_ > 0) --self->inflight_;
    }
    self->send_response(r);
  };
  // Shed-at-admission responses also arrive through the deliver closure,
  // so the return value is intentionally ignored.
  service_.submit(std::move(request));
}

void Session::send_response(const ResponseHeader& response) {
  std::string body;
  encode_response(body, response);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.responses;
  }
  send_frame(FrameKind::kResponse, body);
}

void Session::send_health() {
  std::string body;
  encode_health(body, service_.health());
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.health_probes;
  }
  send_frame(FrameKind::kHealth, body);
}

void Session::send_frame(FrameKind kind, std::string_view body) {
  std::string framed;
  const archive::Status framed_ok = append_frame(framed, kind, body);
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (!framed_ok.ok()) {
    // An unencodable response (body past the u32 length field) cannot be
    // sent; poison the connection rather than desync the stream.
    write_failed_ = true;
    return;
  }
  if (write_failed_) return;  // peer already gone; accounted, not silent
  ChaosSchedule* const chaos = options_.chaos;
  if (chaos && chaos->fire(ChaosSite::kSessionDisconnect)) {
    // Mid-frame disconnect: push out a torn prefix of the frame, then kill
    // the connection.  The client must treat the tail as a dead peer, not
    // as a short response.
    const std::size_t torn = framed.size() / 2;
    std::size_t sent = 0;
    while (sent < torn) {
      const ssize_t wrote =
          ::send(fd_, framed.data() + sent, torn - sent, MSG_NOSIGNAL);
      if (wrote < 0 && errno == EINTR) continue;
      if (wrote <= 0) break;
      sent += static_cast<std::size_t>(wrote);
    }
    ::shutdown(fd_, SHUT_RDWR);
    write_failed_ = true;
    return;
  }
  // Chaos short write: dribble the frame out a few bytes per send(), the
  // shape a full socket buffer produces.  Exercises both this loop and the
  // client's frame reassembly; the frame still arrives intact.
  std::size_t chunk_cap = framed.size();
  if (chaos && chaos->fire(ChaosSite::kSessionShortWrite)) {
    chunk_cap = std::max<std::size_t>(1, chaos->profile().short_write_bytes);
  }
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t wrote =
        ::send(fd_, framed.data() + sent,
               std::min(chunk_cap, framed.size() - sent), MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      write_failed_ = true;
      return;
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

void Session::abort() { ::shutdown(fd_, SHUT_RDWR); }

void Session::cancel_outstanding() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (const auto& cancel : cancels_) {
    if (cancel.use_count() > 1 && !cancel->exchange(true)) {
      ++stats_.canceled;
    }
  }
  cancels_.clear();
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

}  // namespace psk::svc
