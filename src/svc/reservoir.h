// Bounded, deterministic reservoir sampling for latency percentiles.
//
// The service keeps per-status completion latencies for the p50/p99/p999
// lines in Service::publish().  Keeping the *first* N samples would freeze
// a long-lived daemon's percentiles on its startup traffic; an unbounded
// buffer would grow forever.  This is the standard fix: Vitter's
// algorithm R over a fixed-size reservoir, so after n adds every sample
// ever seen has probability capacity/n of being retained -- late samples
// keep influencing the percentiles at any uptime.
//
// The replacement stream is a seeded splitmix64 sequence keyed only by the
// constructor seed and the add() count, so a fixed sequence of adds yields
// a fixed reservoir: publish() stays reproducible in tests, with no global
// RNG state and no time dependence.
#pragma once

#include <cstdint>
#include <vector>

namespace psk::svc {

class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 1u << 16,
                            std::uint64_t seed = 0)
      : capacity_(capacity), state_(seed ^ 0x9e3779b97f4a7c15ull) {}

  void add(double sample) {
    ++count_;
    if (samples_.size() < capacity_) {
      samples_.push_back(sample);
      return;
    }
    if (capacity_ == 0) return;
    // Algorithm R: the n-th sample replaces a uniformly chosen slot with
    // probability capacity/n, else is dropped.
    const std::uint64_t slot = next_u64() % count_;
    if (slot < capacity_) samples_[static_cast<std::size_t>(slot)] = sample;
  }

  /// Samples retained so far, in reservoir (not arrival) order.
  const std::vector<double>& samples() const { return samples_; }
  /// Total adds ever, retained or not.
  std::uint64_t count() const { return count_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::uint64_t next_u64() {
    // splitmix64: tiny, seedable, plenty for replacement-slot selection.
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::size_t capacity_;
  std::uint64_t state_;
  std::uint64_t count_ = 0;
  std::vector<double> samples_;
};

}  // namespace psk::svc
