#include "svc/frame.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace psk::svc {

using archive::Cursor;
using archive::Error;
using archive::ErrorCode;
using archive::Result;

namespace {

constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 4;
constexpr std::size_t kChecksumSize = 8;

constexpr auto kLastFrameKind = static_cast<std::uint8_t>(FrameKind::kHealth);
constexpr auto kLastRequestOp =
    static_cast<std::uint8_t>(RequestOp::kConstruct);
constexpr auto kLastValidateMode =
    static_cast<std::uint8_t>(ValidateMode::kOff);

}  // namespace

const char* status_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBadInput: return "bad-input";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kCanceled: return "canceled";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kNotFound: return "not-found";
  }
  return "unknown";
}

bool is_retryable(StatusCode code) {
  return code == StatusCode::kOverloaded || code == StatusCode::kTimeout;
}

double RetryPolicy::backoff_seconds(int attempt) const {
  double backoff = initial_backoff_seconds;
  for (int i = 0; i < attempt && backoff < max_backoff_seconds; ++i) {
    backoff *= multiplier;
  }
  return std::min(backoff, max_backoff_seconds);
}

ValidateMode parse_validate_mode(const std::string& text) {
  if (text == "strict" || text == "true") return ValidateMode::kStrict;
  if (text == "salvage") return ValidateMode::kSalvage;
  if (text == "off") return ValidateMode::kOff;
  throw ConfigError("--validate must be one of strict|salvage|off (got '" +
                    text + "')");
}

const char* validate_mode_name(ValidateMode mode) {
  switch (mode) {
    case ValidateMode::kStrict: return "strict";
    case ValidateMode::kSalvage: return "salvage";
    case ValidateMode::kOff: return "off";
  }
  return "unknown";
}

archive::Status check_frame_body_size(std::size_t size) {
  if (size > kMaxEncodableBody) {
    return Error{ErrorCode::kTruncated,
                 "frame body of " + std::to_string(size) +
                     " byte(s) does not fit the u32 length field (max " +
                     std::to_string(kMaxEncodableBody) + ")"};
  }
  return {};
}

archive::Status append_frame(std::string& out, FrameKind kind,
                             std::string_view body) {
  // A body past the u32 length field would encode a wrapped length and
  // desync the stream at the next checksum; refuse it before writing.
  if (archive::Status size_ok = check_frame_body_size(body.size());
      !size_ok.ok()) {
    return size_ok;
  }
  out.append(kFrameMagic);
  archive::put_u8(out, kProtocolVersion);
  archive::put_u8(out, static_cast<std::uint8_t>(kind));
  archive::put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.append(body);
  archive::put_u64(out, archive::fingerprint64(body));
  return {};
}

ParseProgress try_parse_frame(std::string_view buffer, std::size_t max_body,
                              Frame& frame, std::size_t& consumed,
                              Error& error) {
  consumed = 0;
  // Validate every header field that has arrived so far, so a bad stream
  // fails at the first wrong byte instead of after a long blocking read.
  const std::size_t magic_have = std::min(buffer.size(), kFrameMagic.size());
  if (buffer.substr(0, magic_have) != kFrameMagic.substr(0, magic_have)) {
    error = Error{ErrorCode::kBadMagic, "not a pskd frame"};
    return ParseProgress::kBad;
  }
  if (buffer.size() > 4) {
    const auto version = static_cast<std::uint8_t>(buffer[4]);
    if (version != kProtocolVersion) {
      error = Error{ErrorCode::kBadVersion,
                    "frame protocol version " + std::to_string(version)};
      return ParseProgress::kBad;
    }
  }
  if (buffer.size() > 5) {
    const auto raw_kind = static_cast<std::uint8_t>(buffer[5]);
    if (raw_kind < static_cast<std::uint8_t>(FrameKind::kRequest) ||
        raw_kind > kLastFrameKind) {
      error = Error{ErrorCode::kCorrupt,
                    "unknown frame kind " + std::to_string(raw_kind)};
      return ParseProgress::kBad;
    }
  }
  if (buffer.size() < kHeaderSize) return ParseProgress::kNeedMore;

  Cursor header(buffer.substr(kFrameMagic.size() + 2));
  const std::uint32_t body_size = header.u32();
  // The cap is enforced on the *declared* size, before any body bytes are
  // buffered or copied: a hostile length field cannot drive allocation.
  if (body_size > max_body) {
    error = Error{ErrorCode::kTruncated,
                  "frame body of " + std::to_string(body_size) +
                      " byte(s) exceeds the " + std::to_string(max_body) +
                      "-byte cap"};
    return ParseProgress::kBad;
  }
  const std::size_t total = kHeaderSize + body_size + kChecksumSize;
  if (buffer.size() < total) return ParseProgress::kNeedMore;

  const std::string_view body = buffer.substr(kHeaderSize, body_size);
  Cursor tail(buffer.substr(kHeaderSize + body_size, kChecksumSize));
  if (tail.u64() != archive::fingerprint64(body)) {
    error = Error{ErrorCode::kCorrupt, "frame body checksum mismatch"};
    return ParseProgress::kBad;
  }
  frame.kind = static_cast<FrameKind>(buffer[5]);
  frame.body.assign(body);
  consumed = total;
  return ParseProgress::kFrame;
}

void encode_request(std::string& out, const RequestHeader& request) {
  archive::put_u32(out, request.id);
  archive::put_u8(out, static_cast<std::uint8_t>(request.op));
  archive::put_u8(out, static_cast<std::uint8_t>(request.validate));
  archive::put_f64(out, request.deadline_seconds);
  archive::put_u64(out, request.seed);
  archive::put_u32(out, request.repetitions);
  archive::put_f64(out, request.target_k);
  archive::put_u64(out, request.skeleton_hash);
  archive::put_string(out, request.scenario);
  out.append(request.archive_bytes);
}

Result<RequestHeader> decode_request(std::string_view body) {
  Cursor in(body);
  RequestHeader request;
  request.id = in.u32();
  const std::uint8_t op = in.u8();
  if (in.ok() && op > kLastRequestOp) {
    in.fail("unknown request op " + std::to_string(op));
  }
  request.op = static_cast<RequestOp>(op);
  const std::uint8_t validate = in.u8();
  if (in.ok() && validate > kLastValidateMode) {
    in.fail("unknown validate mode " + std::to_string(validate));
  }
  request.validate = static_cast<ValidateMode>(validate);
  request.deadline_seconds = in.f64();
  request.seed = in.u64();
  request.repetitions = in.u32();
  if (in.ok() &&
      (request.repetitions == 0 || request.repetitions > kMaxRepetitions)) {
    in.fail("repetitions must be in [1, " + std::to_string(kMaxRepetitions) +
            "], got " + std::to_string(request.repetitions));
  }
  request.target_k = in.f64();
  request.skeleton_hash = in.u64();
  request.scenario = in.string();
  if (!in.ok()) return in.error();
  if (!(request.deadline_seconds >= 0) ||
      request.deadline_seconds != request.deadline_seconds) {
    return Error{ErrorCode::kCorrupt, "negative or NaN deadline"};
  }
  if (!(request.target_k > 0) || !(request.target_k <= kMaxTargetK)) {
    return Error{ErrorCode::kCorrupt,
                 "target_k must be in (0, " + std::to_string(kMaxTargetK) +
                     "]"};
  }
  request.archive_bytes.assign(body.substr(body.size() - in.remaining()));
  if (request.skeleton_hash != 0) {
    // Predict-by-hash names a retained skeleton; an embedded container at
    // the same time would be ambiguous, and the other ops have no use for
    // a hash at all.
    if (request.op != RequestOp::kPredict) {
      return Error{ErrorCode::kCorrupt,
                   "skeleton_hash is only valid on predict requests"};
    }
    if (!request.archive_bytes.empty()) {
      return Error{ErrorCode::kCorrupt,
                   "predict-by-hash must not also embed a container"};
    }
  }
  return request;
}

void encode_response(std::string& out, const ResponseHeader& response) {
  archive::put_u32(out, response.id);
  archive::put_u8(out, static_cast<std::uint8_t>(response.status));
  archive::put_u8(out, response.degraded ? 1 : 0);
  archive::put_string(out, response.message);
  archive::put_u64(out, response.skeleton_hash);
  archive::put_string(out, response.skeleton_bytes);
  archive::put_u32(out, static_cast<std::uint32_t>(response.values.size()));
  for (const double value : response.values) archive::put_f64(out, value);
}

Result<ResponseHeader> decode_response(std::string_view body) {
  Cursor in(body);
  ResponseHeader response;
  response.id = in.u32();
  const std::uint8_t status = in.u8();
  if (in.ok() && status > kLastStatusCode) {
    in.fail("unknown status code " + std::to_string(status));
  }
  response.status = static_cast<StatusCode>(status);
  response.degraded = in.boolean();
  response.message = in.string();
  response.skeleton_hash = in.u64();
  response.skeleton_bytes = in.string();
  const std::uint32_t count = in.u32();
  if (in.ok() && count > kMaxRepetitions) {
    in.fail("implausible value count " + std::to_string(count));
  }
  for (std::uint32_t i = 0; i < count && in.ok(); ++i) {
    response.values.push_back(in.f64());
  }
  if (!in.ok()) return in.error();
  if (!in.at_end()) {
    return Error{ErrorCode::kCorrupt, "trailing bytes after response body"};
  }
  return response;
}

void encode_health(std::string& out, const HealthInfo& health) {
  archive::put_f64(out, health.uptime_seconds);
  archive::put_u32(out, health.queue_depth);
  archive::put_u32(out, health.queue_capacity);
  archive::put_u32(out, health.inflight);
  archive::put_u32(out, health.workers);
  archive::put_u64(out, health.completed);
  archive::put_u64(out, health.shed);
  archive::put_u64(out, health.hung_detected);
  archive::put_u64(out, health.workers_replaced);
}

Result<HealthInfo> decode_health(std::string_view body) {
  Cursor in(body);
  HealthInfo health;
  health.uptime_seconds = in.f64();
  health.queue_depth = in.u32();
  health.queue_capacity = in.u32();
  health.inflight = in.u32();
  health.workers = in.u32();
  health.completed = in.u64();
  health.shed = in.u64();
  health.hung_detected = in.u64();
  health.workers_replaced = in.u64();
  if (!in.ok()) return in.error();
  if (!in.at_end()) {
    return Error{ErrorCode::kCorrupt, "trailing bytes after health body"};
  }
  if (!(health.uptime_seconds >= 0) ||
      !std::isfinite(health.uptime_seconds)) {
    return Error{ErrorCode::kCorrupt, "negative, infinite or NaN uptime"};
  }
  return health;
}

}  // namespace psk::svc
