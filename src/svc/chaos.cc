#include "svc/chaos.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace psk::svc {

namespace {

/// splitmix64 finalizer: a full-avalanche mix of one 64-bit word.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double parse_knob_value(const std::string& knob, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // NaN/inf parse but defeat every range check below (NaN compares false
  // against anything), so finiteness is part of "is a number" here.
  if (end != text.c_str() + text.size() || text.empty() ||
      !std::isfinite(value)) {
    throw ConfigError("--chaos-profile: " + knob + "=" + text +
                      " is not a number");
  }
  return value;
}

constexpr const char* kProfileHelp =
    "a preset (light|heavy|disk|network) or knob=value pairs from: "
    "read_delay_rate, read_delay_ms, short_write_rate, short_write_bytes, "
    "disconnect_rate, store_write_fail_rate, store_corrupt_rate, "
    "worker_stall_rate, worker_stall_ms";

ChaosProfile preset(const std::string& name) {
  ChaosProfile profile;
  if (name == "light") {
    profile.read_delay_rate = 0.02;
    profile.short_write_rate = 0.05;
    profile.store_write_fail_rate = 0.02;
    profile.worker_stall_rate = 0.01;
    profile.worker_stall_ms = 20.0;
  } else if (name == "heavy") {
    profile.read_delay_rate = 0.10;
    profile.short_write_rate = 0.25;
    profile.disconnect_rate = 0.02;
    profile.store_write_fail_rate = 0.10;
    profile.store_corrupt_rate = 0.05;
    profile.worker_stall_rate = 0.05;
    profile.worker_stall_ms = 60.0;
  } else if (name == "disk") {
    profile.store_write_fail_rate = 0.25;
    profile.store_corrupt_rate = 0.15;
  } else if (name == "network") {
    profile.read_delay_rate = 0.15;
    profile.short_write_rate = 0.50;
    profile.disconnect_rate = 0.03;
  } else {
    throw ConfigError("--chaos-profile: unknown preset '" + name + "'; want " +
                      std::string(kProfileHelp));
  }
  return profile;
}

}  // namespace

const char* chaos_site_name(ChaosSite site) {
  switch (site) {
    case ChaosSite::kSessionReadDelay: return "session_read_delay";
    case ChaosSite::kSessionShortWrite: return "session_short_write";
    case ChaosSite::kSessionDisconnect: return "session_disconnect";
    case ChaosSite::kStoreWriteFail: return "store_write_fail";
    case ChaosSite::kStoreCorrupt: return "store_corrupt";
    case ChaosSite::kWorkerStall: return "worker_stall";
  }
  return "unknown";
}

ChaosProfile parse_chaos_profile(const std::string& text) {
  if (text.find('=') == std::string::npos) return preset(text);
  ChaosProfile profile;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string pair =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("--chaos-profile: '" + pair + "' is not knob=value; "
                        "want " + std::string(kProfileHelp));
    }
    const std::string knob = pair.substr(0, eq);
    const double value = parse_knob_value(knob, pair.substr(eq + 1));
    const bool is_rate = knob.size() > 5 &&
                         knob.compare(knob.size() - 5, 5, "_rate") == 0;
    if (is_rate && (value < 0 || value > 1)) {
      throw ConfigError("--chaos-profile: " + knob + " must be in [0, 1]");
    }
    if (!is_rate && value < 0) {
      throw ConfigError("--chaos-profile: " + knob + " must be >= 0");
    }
    if (knob == "read_delay_rate") profile.read_delay_rate = value;
    else if (knob == "read_delay_ms") profile.read_delay_ms = value;
    else if (knob == "short_write_rate") profile.short_write_rate = value;
    else if (knob == "short_write_bytes") {
      profile.short_write_bytes = value < 1 ? 1 : static_cast<std::size_t>(value);
    } else if (knob == "disconnect_rate") profile.disconnect_rate = value;
    else if (knob == "store_write_fail_rate") {
      profile.store_write_fail_rate = value;
    } else if (knob == "store_corrupt_rate") profile.store_corrupt_rate = value;
    else if (knob == "worker_stall_rate") profile.worker_stall_rate = value;
    else if (knob == "worker_stall_ms") profile.worker_stall_ms = value;
    else {
      throw ConfigError("--chaos-profile: unknown knob '" + knob + "'; want " +
                        std::string(kProfileHelp));
    }
  }
  return profile;
}

double ChaosSchedule::rate_for(ChaosSite site) const {
  switch (site) {
    case ChaosSite::kSessionReadDelay: return profile_.read_delay_rate;
    case ChaosSite::kSessionShortWrite: return profile_.short_write_rate;
    case ChaosSite::kSessionDisconnect: return profile_.disconnect_rate;
    case ChaosSite::kStoreWriteFail: return profile_.store_write_fail_rate;
    case ChaosSite::kStoreCorrupt: return profile_.store_corrupt_rate;
    case ChaosSite::kWorkerStall: return profile_.worker_stall_rate;
  }
  return 0;
}

double ChaosSchedule::unit_draw(ChaosSite site, std::uint64_t n) const {
  const std::uint64_t word =
      mix64(seed_ ^ mix64(static_cast<std::uint64_t>(site) << 32 ^ n));
  // 53 high bits -> [0, 1) exactly representable in a double.
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

bool ChaosSchedule::fire(ChaosSite site) {
  const double rate = rate_for(site);
  if (rate <= 0) return false;
  const auto index = static_cast<std::size_t>(site);
  const std::uint64_t n =
      consulted_[index].fetch_add(1, std::memory_order_relaxed);
  if (unit_draw(site, n) >= rate) return false;
  injected_[index].fetch_add(1, std::memory_order_relaxed);
  return true;
}

double ChaosSchedule::read_delay_ms() {
  const auto index = static_cast<std::size_t>(ChaosSite::kSessionReadDelay);
  const std::uint64_t n =
      magnitude_n_[index].fetch_add(1, std::memory_order_relaxed);
  return profile_.read_delay_ms *
         (0.5 + unit_draw(ChaosSite::kSessionReadDelay, ~n));
}

double ChaosSchedule::worker_stall_ms() {
  const auto index = static_cast<std::size_t>(ChaosSite::kWorkerStall);
  const std::uint64_t n =
      magnitude_n_[index].fetch_add(1, std::memory_order_relaxed);
  return profile_.worker_stall_ms *
         (0.5 + unit_draw(ChaosSite::kWorkerStall, ~n));
}

ChaosStats ChaosSchedule::stats() const {
  ChaosStats stats;
  for (std::size_t i = 0; i < kChaosSiteCount; ++i) {
    stats.consulted[i] = consulted_[i].load(std::memory_order_relaxed);
    stats.injected[i] = injected_[i].load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace psk::svc
