// Hot-skeleton store: the server-side half of predict-by-hash reuse.
//
// Every skeleton that enters the service -- uploaded with a predict, or
// constructed server-side from a trace -- is re-encoded to its *canonical*
// PSKARCH1 container bytes and retained here under
// archive::fingerprint64(bytes).  Clients then name the skeleton by hash
// instead of re-sending the container on every request, which is the
// difference between a ~100-byte request and re-uploading megabytes.
//
// The store is a bounded LRU on two axes (entry count and total retained
// bytes), so a long-lived daemon cannot grow without limit; eviction is
// silent and safe because a miss has an explicit protocol answer
// (StatusCode::kNotFound) telling the client to re-upload.  Content
// addressing makes concurrent inserts of the same skeleton idempotent:
// equal canonical bytes always map to the same hash.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace psk::svc {

struct StoreStats {
  std::uint64_t inserted = 0;   // puts that created a new entry
  std::uint64_t refreshed = 0;  // puts that hit an existing entry
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evicted = 0;
  std::size_t entries = 0;  // current
  std::size_t bytes = 0;    // current retained canonical bytes
};

/// Thread-safe bounded LRU of canonical skeleton container bytes, keyed by
/// their content hash.  Both get() and put() count as a "use" for LRU
/// ordering.
class SkeletonStore {
 public:
  /// `capacity_entries` == 0 disables retention entirely (every put is
  /// dropped, every get misses); `capacity_bytes` bounds the sum of
  /// retained container sizes.  A single container larger than
  /// `capacity_bytes` is never retained.
  SkeletonStore(std::size_t capacity_entries, std::size_t capacity_bytes);

  /// Retains `bytes` under their content hash and returns that hash.
  /// Evicts least-recently-used entries until both capacity axes hold.
  std::uint64_t put(std::string bytes);

  /// The retained canonical bytes for `hash`, bumping it to
  /// most-recently-used; nullopt on a miss (evicted or never uploaded).
  std::optional<std::string> get(std::uint64_t hash);

  StoreStats stats() const;

 private:
  void evict_to_fit_locked();

  const std::size_t capacity_entries_;
  const std::size_t capacity_bytes_;

  mutable std::mutex mutex_;
  /// Most-recently-used at the front.
  std::list<std::uint64_t> order_;
  struct Entry {
    std::string bytes;
    std::list<std::uint64_t>::iterator position;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  StoreStats stats_;
};

}  // namespace psk::svc
