// Hot-skeleton store: the server-side half of predict-by-hash reuse.
//
// Every skeleton that enters the service -- uploaded with a predict, or
// constructed server-side from a trace -- is re-encoded to its *canonical*
// PSKARCH1 container bytes and retained here under
// archive::fingerprint64(bytes).  Clients then name the skeleton by hash
// instead of re-sending the container on every request, which is the
// difference between a ~100-byte request and re-uploading megabytes.
//
// Two tiers:
//   - Memory: a bounded LRU on two axes (entry count and total retained
//     bytes), so a long-lived daemon cannot grow without limit.
//   - Disk (optional, `StoreOptions::disk_dir`): every retained skeleton
//     is also spilled to `<hash>.psks`, written atomically (tmp file +
//     rename) so a crash can never leave a half-written entry under its
//     final name.  On restart the directory is re-indexed and previously
//     uploaded skeletons keep serving -- a daemon crash no longer turns
//     into a kNotFound re-upload storm.
//
// Integrity contract: a disk entry is decoded and checksum-verified
// (PSKS1 framing, see docs/FORMATS.md) before a single byte is served.  An
// entry that fails verification is *quarantined* -- renamed to
// `<hash>.psks.quar`, counted, inspected via guard::salvage_skeleton_bytes
// for the operator log -- and the lookup misses.  The store never returns
// bytes that fail their checksum.  Disk write failures (ENOSPC, EIO,
// chaos-injected or real) are counted and degrade that entry to
// memory-only; eviction from memory is silent and safe because a miss has
// an explicit protocol answer (StatusCode::kNotFound).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "archive/wire.h"
#include "svc/chaos.h"

namespace psk::svc {

// ----------------------------------------------------- disk entry codec

/// Magic of one on-disk store entry file (`<hash>.psks`).
inline constexpr std::string_view kStoreEntryMagic = "PSKS1";

/// A decoded disk entry: the content hash it was filed under and the
/// canonical PSKARCH1 skeleton container bytes.
struct StoreEntry {
  std::uint64_t hash = 0;
  std::string payload;
};

/// Encodes one entry: magic, hash, payload size, payload, then an FNV-1a
/// fingerprint over everything before it.  `hash` must be
/// archive::fingerprint64(payload) -- decode enforces it.
std::string encode_store_entry(std::uint64_t hash, std::string_view payload);

/// Decodes and fully verifies one entry: magic, declared size against the
/// bytes actually present (before any allocation), file checksum, and the
/// content-address invariant hash == fingerprint64(payload).  Any failure
/// is a typed error -- callers quarantine, they never serve.
archive::Result<StoreEntry> decode_store_entry(std::string_view bytes);

// ----------------------------------------------------------------- store

struct StoreStats {
  std::uint64_t inserted = 0;   // puts that created a new entry
  std::uint64_t refreshed = 0;  // puts that hit an existing entry
  std::uint64_t hits = 0;       // memory-tier get hits
  std::uint64_t misses = 0;     // gets both tiers missed
  std::uint64_t evicted = 0;    // memory-tier evictions
  std::size_t entries = 0;      // current memory entries
  std::size_t bytes = 0;        // current retained canonical bytes (memory)
  // Disk tier.
  std::uint64_t disk_hits = 0;        // served after a memory miss
  std::uint64_t disk_write_fail = 0;  // ENOSPC/EIO/...; entry memory-only
  std::uint64_t disk_evicted = 0;     // disk-budget evictions (files removed)
  std::uint64_t quarantined = 0;      // corrupt entries renamed, never served
  std::uint64_t restored = 0;         // entries re-indexed at startup
  std::size_t disk_entries = 0;       // current indexed disk entries
  std::size_t disk_bytes = 0;         // current on-disk entry bytes
};

struct StoreOptions {
  /// Memory-tier caps; `capacity_entries` == 0 disables retention entirely
  /// (every put is dropped, every get misses, nothing touches disk).  A
  /// single container larger than `capacity_bytes` skips the memory tier
  /// but still spills to disk.
  std::size_t capacity_entries = 256;
  std::size_t capacity_bytes = 256u << 20;
  /// Durable tier directory; empty = memory-only (the PR 8 behaviour).
  /// Created if missing; an uncreatable directory disables the tier with
  /// one counted warning rather than failing the daemon.
  std::string disk_dir;
  /// Cap on total on-disk entry bytes; least-recently-indexed files are
  /// removed past it.
  std::size_t disk_capacity_bytes = 1024u << 20;
  /// Fault injection (null in production): store-write failures and
  /// corruption-on-write come from here.
  ChaosSchedule* chaos = nullptr;
};

/// Thread-safe two-tier store of canonical skeleton container bytes, keyed
/// by their content hash.  Both get() and put() count as a "use" for
/// memory LRU ordering.
class SkeletonStore {
 public:
  explicit SkeletonStore(StoreOptions options);
  /// Memory-only convenience (the historical signature).
  SkeletonStore(std::size_t capacity_entries, std::size_t capacity_bytes);

  /// Retains `bytes` under their content hash and returns that hash.
  /// Evicts least-recently-used memory entries until both capacity axes
  /// hold; spills to the disk tier when configured.
  std::uint64_t put(std::string bytes);

  /// The retained canonical bytes for `hash`: memory tier first, then a
  /// verified disk read (promoted back into memory on success); nullopt on
  /// a miss (evicted, never uploaded, or quarantined).
  std::optional<std::string> get(std::uint64_t hash);

  StoreStats stats() const;
  const StoreOptions& options() const { return options_; }

  /// The disk path an entry for `hash` lives at (tests and the soak use it
  /// to damage entries on purpose); empty when the disk tier is off.
  std::string entry_path(std::uint64_t hash) const;

 private:
  void evict_to_fit_locked();
  void restore_disk_index_locked();
  void spill_locked(std::uint64_t hash, const std::string& bytes);
  std::optional<std::string> disk_get_locked(std::uint64_t hash);
  void quarantine_locked(std::uint64_t hash, const std::string& reason);
  void drop_disk_entry_locked(std::uint64_t hash);

  StoreOptions options_;

  mutable std::mutex mutex_;
  /// Most-recently-used at the front.
  std::list<std::uint64_t> order_;
  struct Entry {
    std::string bytes;
    std::list<std::uint64_t>::iterator position;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  /// Disk index: hash -> on-disk entry file size.  Values are only served
  /// after decode_store_entry verifies the bytes.
  std::unordered_map<std::uint64_t, std::size_t> disk_index_;
  /// Disk eviction order: least-recently-seen at the front.
  std::list<std::uint64_t> disk_order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      disk_position_;
  StoreStats stats_;
};

}  // namespace psk::svc
