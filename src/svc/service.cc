#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <thread>
#include <utility>

#include "archive/archive.h"
#include "archive/codec.h"
#include "guard/salvage.h"
#include "guard/validate.h"
#include "scenario/scenario.h"
#include "util/error.h"

namespace psk::svc {

namespace {

/// Wall clock in seconds on the steady (monotonic) clock.
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The canonical wire form of a skeleton: payload codec + PSKARCH1 frame.
/// Equal skeletons encode to equal bytes (the archive layer's canonical
/// property), so fingerprint64 over these bytes is a true content hash.
std::string canonical_skeleton_bytes(const skeleton::Skeleton& skeleton) {
  std::string payload;
  archive::encode(payload, skeleton);
  std::string canonical;
  archive::write_frame(canonical, archive::PayloadKind::kSkeleton,
                       archive::kSkeletonVersion, payload);
  return canonical;
}

/// Nearest-rank percentile of `samples` (copied and sorted); 0 when empty.
double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const auto index = static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.workers),
      store_(StoreOptions{options_.skeleton_store_entries,
                          options_.skeleton_store_bytes, options_.store_dir,
                          options_.store_disk_bytes, options_.chaos}),
      constructed_at_(now_seconds()) {
  latencies_ms_.reserve(static_cast<std::size_t>(kLastStatusCode) + 1);
  for (int code = 0; code <= static_cast<int>(kLastStatusCode); ++code) {
    // Per-status seeds keep the reservoirs independent yet reproducible
    // for a fixed completion order.
    latencies_ms_.emplace_back(options_.latency_reservoir_capacity,
                               0x70736b64u + static_cast<std::uint64_t>(code));
  }
}

Service::~Service() { stop(); }

std::optional<ResponseHeader> Service::submit(Request request) {
  Pending pending;
  pending.admitted_at = now_seconds();
  pending.budget_seconds = request.header.deadline_seconds > 0
                               ? request.header.deadline_seconds
                               : options_.default_deadline_seconds;
  pending.request = std::move(request);

  Deliver deliver_shed;
  std::optional<ResponseHeader> shed;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() - queue_head_ >= options_.queue_capacity) {
      ResponseHeader response;
      response.id = pending.request.header.id;
      response.status = StatusCode::kOverloaded;
      response.message =
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) + ")";
      shed = std::move(response);
      if (pending.request.deliver) {
        deliver_shed = pending.request.deliver;
      } else if (live_) {
        deliver_shed = deliver_;
      }
    } else {
      queue_.push_back(std::move(pending));
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.submitted;
        ++stats_.admitted;
        stats_.queue_depth = queue_.size() - queue_head_;
        stats_.queue_high_water =
            std::max(stats_.queue_high_water, stats_.queue_depth);
      }
      if (live_) work_cv_.notify_one();
      return std::nullopt;
    }
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.submitted;
    ++stats_.shed;
  }
  // Shed responses complete instantly; they still flow through the same
  // accounting (and live delivery) as executed ones -- no silent drops.
  record_response(*shed, 0.0);
  if (deliver_shed) deliver_shed(*shed);
  return shed;
}

std::vector<ResponseHeader> Service::drain() {
  std::vector<Pending> batch;
  std::size_t head = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (live_) {
      throw ConfigError("Service::drain() must not race live-mode workers");
    }
    batch.swap(queue_);  // O(1): the ping path is throughput-gated
    head = queue_head_;
    queue_head_ = 0;
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.queue_depth = 0;
  }
  // A dead prefix only exists if live mode ran earlier on this service.
  if (head > 0) {
    batch.erase(batch.begin(),
                batch.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return run_batch(batch);
}

void Service::start(Deliver deliver) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (live_) throw ConfigError("Service::start() called twice");
  deliver_ = std::move(deliver);
  live_ = true;
  stopping_ = false;
  supervisor_stop_ = false;
  int workers = options_.workers > 0
                    ? options_.workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers <= 0) workers = 1;
  workers_ = std::vector<WorkerSlot>(static_cast<std::size_t>(workers));
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    workers_[slot].generation = 1;
    workers_[slot].thread =
        std::thread([this, slot] { worker_main(slot, 1); });
  }
  supervisor_ = std::thread([this] { supervisor_main(); });
}

void Service::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!live_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  // Join workers one at a time, taking each handle under the lock: with
  // stopping_ set the supervisor no longer retires or replaces threads, so
  // the remaining handles are stable -- but it keeps answering overrun
  // requests, so the drain stays live even if a worker is stalled.
  while (true) {
    std::thread victim;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (WorkerSlot& slot : workers_) {
        if (slot.thread.joinable()) {
          victim = std::move(slot.thread);
          break;
        }
      }
      if (!victim.joinable() && !retired_.empty()) {
        victim = std::move(retired_.back());
        retired_.pop_back();
      }
    }
    if (!victim.joinable()) break;
    // A retired (hung) worker finishes once its stall ends; its result is
    // discarded by the answered flag, so waiting here is safe.
    victim.join();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    supervisor_stop_ = true;
  }
  supervisor_cv_.notify_all();
  supervisor_.join();
  std::unique_lock<std::mutex> lock(mutex_);
  workers_.clear();
  live_ = false;
  deliver_ = nullptr;
}

bool Service::answer(Inflight& work, const ResponseHeader& response,
                     double latency_ms) {
  // Exactly-once gate: worker and supervisor both call this; the flag
  // picks one winner no matter how the race interleaves.
  if (work.answered.exchange(true, std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.late_results_discarded;
    return false;
  }
  record_response(response, latency_ms);
  // deliver_ is written only by start()/stop(), strictly before workers
  // exist / after they are joined, so the unlocked read is safe.
  const Deliver& sink =
      work.pending.request.deliver ? work.pending.request.deliver : deliver_;
  if (sink) sink(response);
  return true;
}

void Service::worker_main(std::size_t slot, std::uint64_t generation) {
  while (true) {
    std::shared_ptr<Inflight> work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || queue_head_ != queue_.size() ||
               workers_[slot].generation != generation;
      });
      if (workers_[slot].generation != generation) return;  // replaced
      if (queue_head_ == queue_.size()) {
        if (stopping_) return;
        continue;
      }
      work = std::make_shared<Inflight>();
      work->pending = std::move(queue_[queue_head_++]);
      if (queue_head_ == queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      } else if (queue_head_ >= 64 && queue_head_ * 2 >= queue_.size()) {
        // Compact once the dead prefix dominates; amortized O(1) per pop.
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
        queue_head_ = 0;
      }
      work->deadline_at =
          work->pending.budget_seconds > 0
              ? work->pending.admitted_at + work->pending.budget_seconds
              : 0;
      workers_[slot].current = work;
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.queue_depth = queue_.size() - queue_head_;
    }
    const double started = now_seconds();
    executing_.fetch_add(1, std::memory_order_relaxed);
    const ResponseHeader response = execute(work->pending);
    executing_.fetch_sub(1, std::memory_order_relaxed);
    answer(*work, response, (now_seconds() - started) * 1e3);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (workers_[slot].generation != generation) {
        // The supervisor declared this worker hung while it was executing
        // and already replaced it: isolate -- take no further work.
        return;
      }
      workers_[slot].current.reset();
    }
  }
}

void Service::supervisor_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!supervisor_stop_) {
    supervisor_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.supervisor_poll_seconds),
        [&] { return supervisor_stop_; });
    if (supervisor_stop_) return;
    const double now = now_seconds();
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      const std::shared_ptr<Inflight> work = workers_[slot].current;
      if (!work || work->deadline_at <= 0) continue;
      if (now < work->deadline_at + options_.supervisor_grace_seconds) {
        continue;
      }
      if (work->answered.load(std::memory_order_acquire)) continue;
      // The request overran its deadline inside a worker (a hung
      // simulation, a chaos stall): answer kTimeout on the worker's
      // behalf so the client is never left waiting.
      ResponseHeader response;
      response.id = work->pending.request.header.id;
      response.status = StatusCode::kTimeout;
      response.message =
          "deadline overrun inside a worker; answered by the supervisor";
      lock.unlock();  // delivery can block on a slow client
      const bool won =
          answer(*work, response, (now - work->pending.admitted_at) * 1e3);
      lock.lock();
      if (!won) continue;  // the worker finished inside the race window
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.hung_detected;
      }
      // Isolate and replace the hung worker so pool capacity self-heals.
      // Skipped during shutdown (the stalled thread drains on its own) and
      // when the worker recovered while the lock was dropped.
      if (stopping_ || workers_[slot].current != work) continue;
      ++workers_[slot].generation;
      retired_.push_back(std::move(workers_[slot].thread));
      workers_[slot].current.reset();
      const std::uint64_t generation = workers_[slot].generation;
      workers_[slot].thread = std::thread(
          [this, slot, generation] { worker_main(slot, generation); });
      work_cv_.notify_all();
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.workers_replaced;
    }
  }
}

std::vector<ResponseHeader> Service::run_batch(std::vector<Pending>& batch) {
  // Batch mode leaves executing_ alone: only live-mode workers maintain
  // the inflight gauge, and the ping path is throughput-gated.
  std::vector<ResponseHeader> responses(batch.size());
  if (batch.empty()) return responses;
  pool_.parallel_for(batch.size(), [&](std::size_t index) {
    const double started = now_seconds();
    responses[index] = execute(batch[index]);
    record_response(responses[index], (now_seconds() - started) * 1e3);
  });
  return responses;
}

ResponseHeader Service::execute(const Pending& pending) {
  ResponseHeader response;
  response.id = pending.request.header.id;
  if (pending.request.cancel &&
      pending.request.cancel->load(std::memory_order_relaxed)) {
    response.status = StatusCode::kCanceled;
    response.message = "request canceled before execution";
    return response;
  }
  if (pending.budget_seconds > 0 &&
      now_seconds() - pending.admitted_at >= pending.budget_seconds) {
    response.status = StatusCode::kTimeout;
    response.message = "deadline expired while queued";
    return response;
  }
  // Chaos worker stall: simulates a handler that hangs mid-request.  In
  // live mode a stall past the deadline is what trips the supervisor.
  if (options_.chaos && options_.chaos->fire(ChaosSite::kWorkerStall)) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.chaos->worker_stall_ms()));
  }
  if (pending.request.header.op == RequestOp::kPing) {
    response.status = StatusCode::kOk;
    return response;
  }
  if (pending.request.header.op == RequestOp::kConstruct) {
    return construct(pending);
  }
  return predict(pending);
}

std::optional<skeleton::Skeleton> Service::resolve_skeleton(
    const Pending& pending, ResponseHeader& response) {
  const RequestHeader& header = pending.request.header;

  // Hot-skeleton reuse: the request names a previously retained skeleton
  // by content hash instead of re-sending the container.  A miss is an
  // explicit, terminal answer -- the client re-uploads, it does not retry.
  if (header.skeleton_hash != 0) {
    std::optional<std::string> canonical = store_.get(header.skeleton_hash);
    if (!canonical) {
      response.status = StatusCode::kNotFound;
      response.message = "skeleton " +
                         archive::fingerprint_hex(header.skeleton_hash) +
                         " is not resident (evicted or never uploaded); "
                         "re-upload the container";
      return std::nullopt;
    }
    // The store holds bytes our own encoder produced; failing to decode
    // them is a server bug, not a client one.
    archive::Result<archive::Frame> frame = archive::read_frame(*canonical);
    if (frame.ok() && frame.value().kind == archive::PayloadKind::kSkeleton) {
      archive::Result<skeleton::Skeleton> decoded = archive::decode_skeleton(
          frame.value().payload, frame.value().payload_version);
      if (decoded.ok()) {
        response.skeleton_hash = header.skeleton_hash;
        return decoded.take();
      }
    }
    response.status = StatusCode::kInternal;
    response.message = "retained skeleton bytes failed to decode";
    return std::nullopt;
  }

  // Parse the uploaded container.  A strict parse failure is recoverable:
  // in salvage mode (or strict mode with the salvage_fallback degradation
  // enabled) the guard layer recovers the usable prefix and the response
  // is marked degraded instead of failing the request.
  skeleton::Skeleton skeleton;
  archive::Result<archive::Frame> frame =
      archive::read_frame(header.archive_bytes);
  std::string parse_failure;
  if (frame.ok()) {
    if (frame.value().kind != archive::PayloadKind::kSkeleton) {
      response.message =
          std::string("uploaded archive holds a ") +
          archive::payload_kind_name(frame.value().kind) +
          ", wanted a skeleton";
      return std::nullopt;
    }
    archive::Result<skeleton::Skeleton> decoded = archive::decode_skeleton(
        frame.value().payload, frame.value().payload_version);
    if (decoded.ok()) {
      skeleton = decoded.take();
    } else {
      parse_failure = decoded.error().render();
    }
  } else {
    parse_failure = frame.error().render();
  }
  if (!parse_failure.empty()) {
    const bool try_salvage =
        header.validate == ValidateMode::kSalvage ||
        (header.validate == ValidateMode::kStrict && options_.salvage_fallback);
    if (!try_salvage) {
      response.message = "upload rejected: " + parse_failure;
      return std::nullopt;
    }
    guard::SalvageReport report;
    std::optional<skeleton::Skeleton> recovered =
        guard::salvage_skeleton_bytes(header.archive_bytes, report);
    if (!recovered) {
      response.message = "upload rejected: " + parse_failure +
                         " (salvage recovered nothing)";
      return std::nullopt;
    }
    skeleton = std::move(*recovered);
    response.degraded = true;
    response.message = "salvaged upload: kept " +
                       std::to_string(report.ranks_kept) + " of " +
                       std::to_string(report.ranks_expected) + " rank(s)";
  }

  // Retain the canonical re-encoding under its content hash so follow-up
  // predicts can name it by hash; the response advertises the hash either
  // way.  Content addressing makes concurrent identical uploads converge
  // on one entry.
  response.skeleton_hash = store_.put(canonical_skeleton_bytes(skeleton));
  return skeleton;
}

ResponseHeader Service::predict(const Pending& pending) {
  const RequestHeader& header = pending.request.header;
  ResponseHeader response;
  response.id = header.id;
  response.status = StatusCode::kBadInput;

  std::optional<skeleton::Skeleton> resolved =
      resolve_skeleton(pending, response);
  if (!resolved) return response;
  skeleton::Skeleton skeleton = std::move(*resolved);

  // Semantic validation.  Strict uploads are refused on errors; salvage
  // mode (and a strict upload already degraded by the salvage fallback)
  // proceeds anyway -- the replay guards (run_time_limit / DeadlockError)
  // turn genuinely broken skeletons into kBadInput rather than a hang.
  if (header.validate == ValidateMode::kStrict && !response.degraded) {
    const guard::ValidationReport report = guard::validate_skeleton(skeleton);
    if (!report.ok()) {
      response.message = report.render();
      return response;
    }
  }

  std::vector<double> values;
  values.reserve(header.repetitions);
  try {
    const scenario::Scenario& scenario = scenario::find_scenario(header.scenario);
    for (std::uint32_t rep = 0; rep < header.repetitions; ++rep) {
      if (pending.request.cancel &&
          pending.request.cancel->load(std::memory_order_relaxed)) {
        response.status = StatusCode::kCanceled;
        response.message = "request canceled during execution";
        return response;
      }
      core::FrameworkOptions options = options_.framework;
      // Follow the upload, not the configured world size: a salvaged
      // skeleton may have fewer ranks and must still replay.
      options.ranks = skeleton.rank_count();
      if (pending.budget_seconds > 0) {
        const double remaining =
            pending.budget_seconds - (now_seconds() - pending.admitted_at);
        if (remaining <= 0) {
          // Partial repetitions are discarded: kTimeout never carries a
          // partial result.
          response.status = StatusCode::kTimeout;
          response.message = "deadline exceeded during execution";
          return response;
        }
        options.wall_deadline_seconds =
            options.wall_deadline_seconds > 0
                ? std::min(options.wall_deadline_seconds, remaining)
                : remaining;
      }
      const core::SkeletonFramework framework(options);
      values.push_back(
          framework.run_skeleton(skeleton, scenario, header.seed + rep));
    }
  } catch (const TimeoutError&) {
    response.status = StatusCode::kTimeout;
    response.message = "deadline exceeded during execution";
    return response;
  } catch (const DeadlockError& e) {
    response.message = std::string("skeleton deadlocked at replay: ") + e.what();
    return response;
  } catch (const guard::ValidationError& e) {
    response.message = e.what();
    return response;
  } catch (const FormatError& e) {
    response.message = e.what();
    return response;
  } catch (const ConfigError& e) {
    response.message = e.what();
    return response;
  } catch (const std::exception& e) {
    response.status = StatusCode::kInternal;
    response.message = std::string("internal error: ") + e.what();
    return response;
  }

  response.status = StatusCode::kOk;
  response.values = std::move(values);
  return response;
}

ResponseHeader Service::construct(const Pending& pending) {
  const RequestHeader& header = pending.request.header;
  ResponseHeader response;
  response.id = header.id;
  response.status = StatusCode::kBadInput;

  // The upload is a folded execution trace (psk trace's output container),
  // not a skeleton.  There is no salvage path for traces: a torn trace
  // would silently construct a skeleton of a different application prefix,
  // which is worse than an explicit rejection.
  archive::Result<archive::Frame> frame =
      archive::read_frame(header.archive_bytes);
  if (!frame.ok()) {
    response.message = "trace upload rejected: " + frame.error().render();
    return response;
  }
  if (frame.value().kind != archive::PayloadKind::kTrace) {
    response.message = std::string("uploaded archive holds a ") +
                       archive::payload_kind_name(frame.value().kind) +
                       ", wanted a trace";
    return response;
  }
  archive::Result<trace::Trace> decoded = archive::decode_trace(
      frame.value().payload, frame.value().payload_version);
  if (!decoded.ok()) {
    response.message = "trace upload rejected: " + decoded.error().render();
    return response;
  }

  try {
    const core::SkeletonFramework framework(options_.framework);
    // Full server-side construction: cluster + loop-compress at Q = K /
    // divisor, scale by K, and retry compression thresholds until the
    // scaled skeleton validates across ranks.
    const skeleton::Skeleton skeleton =
        framework.make_consistent_skeleton(decoded.value(), header.target_k);
    std::string canonical = canonical_skeleton_bytes(skeleton);
    response.skeleton_hash = store_.put(canonical);
    response.skeleton_bytes = std::move(canonical);
    response.status = StatusCode::kOk;
  } catch (const guard::ValidationError& e) {
    response.message = e.what();
  } catch (const FormatError& e) {
    response.message = e.what();
  } catch (const ConfigError& e) {
    response.message = e.what();
  } catch (const std::exception& e) {
    response.status = StatusCode::kInternal;
    response.message = std::string("internal error: ") + e.what();
  }
  return response;
}

void Service::record_response(const ResponseHeader& response,
                              double latency_ms) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.completed;
  ++stats_.by_status[static_cast<int>(response.status)];
  if (response.degraded) ++stats_.degraded;
  latencies_ms_[static_cast<int>(response.status)].add(latency_ms);
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

HealthInfo Service::health() const {
  HealthInfo health;
  health.uptime_seconds = std::max(0.0, now_seconds() - constructed_at_);
  health.queue_capacity =
      static_cast<std::uint32_t>(options_.queue_capacity);
  health.inflight = executing_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    health.queue_depth =
        static_cast<std::uint32_t>(queue_.size() - queue_head_);
    health.workers = static_cast<std::uint32_t>(workers_.size());
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  health.completed = stats_.completed;
  health.shed = stats_.shed;
  health.hung_detected = stats_.hung_detected;
  health.workers_replaced = stats_.workers_replaced;
  return health;
}

void Service::publish(obs::MetricsRegistry& metrics) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  metrics.counter("svc.submitted").add(static_cast<double>(stats_.submitted));
  metrics.counter("svc.admitted").add(static_cast<double>(stats_.admitted));
  metrics.counter("svc.shed").add(static_cast<double>(stats_.shed));
  metrics.counter("svc.completed").add(static_cast<double>(stats_.completed));
  metrics.counter("svc.degraded").add(static_cast<double>(stats_.degraded));
  metrics.counter("svc.queue_depth.now")
      .add(static_cast<double>(stats_.queue_depth));
  metrics.counter("svc.queue_depth.high_water")
      .add(static_cast<double>(stats_.queue_high_water));
  metrics.counter("svc.supervisor.hung_detected")
      .add(static_cast<double>(stats_.hung_detected));
  metrics.counter("svc.supervisor.workers_replaced")
      .add(static_cast<double>(stats_.workers_replaced));
  metrics.counter("svc.supervisor.late_results_discarded")
      .add(static_cast<double>(stats_.late_results_discarded));
  const StoreStats store = store_.stats();
  metrics.counter("svc.store.inserted")
      .add(static_cast<double>(store.inserted));
  metrics.counter("svc.store.refreshed")
      .add(static_cast<double>(store.refreshed));
  metrics.counter("svc.store.hits").add(static_cast<double>(store.hits));
  metrics.counter("svc.store.misses").add(static_cast<double>(store.misses));
  metrics.counter("svc.store.evicted").add(static_cast<double>(store.evicted));
  metrics.counter("svc.store.entries").add(static_cast<double>(store.entries));
  metrics.counter("svc.store.bytes").add(static_cast<double>(store.bytes));
  metrics.counter("svc.store.disk_hits")
      .add(static_cast<double>(store.disk_hits));
  metrics.counter("svc.store.disk_write_fail")
      .add(static_cast<double>(store.disk_write_fail));
  metrics.counter("svc.store.disk_evicted")
      .add(static_cast<double>(store.disk_evicted));
  metrics.counter("svc.store.quarantined")
      .add(static_cast<double>(store.quarantined));
  metrics.counter("svc.store.restored")
      .add(static_cast<double>(store.restored));
  metrics.counter("svc.store.disk_entries")
      .add(static_cast<double>(store.disk_entries));
  metrics.counter("svc.store.disk_bytes")
      .add(static_cast<double>(store.disk_bytes));
  if (options_.chaos) {
    const ChaosStats chaos = options_.chaos->stats();
    for (std::size_t site = 0; site < kChaosSiteCount; ++site) {
      const std::string prefix =
          std::string("svc.chaos.") +
          chaos_site_name(static_cast<ChaosSite>(site));
      metrics.counter(prefix + ".consulted")
          .add(static_cast<double>(chaos.consulted[site]));
      metrics.counter(prefix + ".injected")
          .add(static_cast<double>(chaos.injected[site]));
    }
  }
  for (int code = 0; code <= static_cast<int>(kLastStatusCode); ++code) {
    const char* name = status_name(static_cast<StatusCode>(code));
    metrics.counter(std::string("svc.status.") + name)
        .add(static_cast<double>(stats_.by_status[code]));
    const std::vector<double>& samples =
        latencies_ms_[static_cast<std::size_t>(code)].samples();
    if (samples.empty()) continue;
    metrics.counter(std::string("svc.latency_ms.") + name + ".p50")
        .add(percentile(samples, 0.50));
    metrics.counter(std::string("svc.latency_ms.") + name + ".p99")
        .add(percentile(samples, 0.99));
    metrics.counter(std::string("svc.latency_ms.") + name + ".p999")
        .add(percentile(samples, 0.999));
  }
}

}  // namespace psk::svc
