#include "scenario/synthetic.h"

#include <chrono>

#include "mpi/world.h"

namespace psk::scenario {

SyntheticResult run_synthetic_bsp(const sim::ClusterConfig& cluster,
                                  int ranks, const SyntheticSpec& spec,
                                  const mpi::MpiConfig& mpi) {
  sim::Machine machine(cluster);
  mpi::World world(machine, ranks, mpi);
  world.launch([&spec](mpi::Comm& comm) -> sim::Task {
    const int p = comm.size();
    for (int iter = 0; iter < spec.iterations; ++iter) {
      if (spec.compute_seconds > 0) {
        co_await comm.compute(spec.compute_seconds);
      }
      if (spec.exchange_bytes > 0 && p > 1) {
        const int next = (comm.rank() + 1) % p;
        const int prev = (comm.rank() - 1 + p) % p;
        co_await comm.sendrecv(next, spec.exchange_bytes, prev,
                               spec.exchange_bytes);
      }
      if (spec.allreduce_bytes > 0) {
        co_await comm.allreduce(spec.allreduce_bytes);
      }
    }
  });

  const auto wall_start = std::chrono::steady_clock::now();
  SyntheticResult result;
  result.simulated_seconds = world.run();
  const auto wall_end = std::chrono::steady_clock::now();
  result.host_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.events_dispatched = machine.engine().events_dispatched();
  result.ranks = ranks;
  return result;
}

}  // namespace psk::scenario
