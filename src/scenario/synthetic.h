// Synthetic BSP workload for scale benchmarking.
//
// A parameterized bulk-synchronous program (compute, ring neighbor
// exchange, allreduce, repeat) that exists to measure the *simulator's*
// host-time scaling with rank count and topology -- no skeleton pipeline
// involved.  It deliberately exercises the pieces that dominate large-world
// runs: many concurrent point-to-point flows, log-depth collectives, and
// per-iteration global synchronization.  Used by bench/ext_scale and the
// scale metrics in tools/bench_record.
#pragma once

#include <cstdint>

#include "mpi/types.h"
#include "sim/machine.h"

namespace psk::scenario {

struct SyntheticSpec {
  int iterations = 10;
  /// Per-rank work-seconds per iteration.
  double compute_seconds = 1.0e-3;
  /// Ring neighbor exchange payload per iteration (rank r -> r+1 mod p).
  mpi::Bytes exchange_bytes = 64 * 1024;
  /// Allreduce buffer per iteration (the BSP reduction step).
  mpi::Bytes allreduce_bytes = 64;
};

struct SyntheticResult {
  /// Parallel completion time inside the simulation.
  double simulated_seconds = 0.0;
  /// Wall-clock cost of running it, the quantity ext_scale tracks.
  double host_seconds = 0.0;
  std::uint64_t events_dispatched = 0;
  int ranks = 0;
};

/// Builds a Machine from `cluster`, runs the BSP program on `ranks` ranks
/// and reports simulated and host time.  Deterministic for fixed inputs.
SyntheticResult run_synthetic_bsp(const sim::ClusterConfig& cluster,
                                  int ranks, const SyntheticSpec& spec,
                                  const mpi::MpiConfig& mpi = {});

}  // namespace psk::scenario
