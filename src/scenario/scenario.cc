#include "scenario/scenario.h"

#include <array>
#include <string>

#include "fault/fault.h"
#include "util/error.h"

namespace psk::scenario {

namespace {

/// Periodically resamples the scheduler-unfairness factor of a loaded node.
void schedule_cpu_flutter(sim::Machine& machine, int node,
                          const Scenario& scenario) {
  sim::Engine& engine = machine.engine();
  machine.node(node).set_contention_unfairness(
      engine.rng().jitter(scenario.cpu_flutter));
  if (scenario.cpu_flutter_period <= 0) return;
  const double amp = scenario.cpu_flutter;
  const double period = scenario.cpu_flutter_period;
  const double delay = engine.rng().uniform(0.5, 1.5) * period;
  // Daemon event: flutter reschedules itself forever and must not count as
  // pending progress, or it would mask deadlock detection.
  engine.daemon_after(delay, [&machine, node, amp, period] {
    Scenario next;
    next.cpu_flutter = amp;
    next.cpu_flutter_period = period;
    schedule_cpu_flutter(machine, node, next);
  });
}

/// Periodically resamples the effective bandwidth of a shaped link.
void schedule_net_flutter(sim::Machine& machine, int node,
                          const Scenario& scenario) {
  sim::Engine& engine = machine.engine();
  machine.network().set_link_bandwidth(
      node,
      scenario.shaped_bandwidth_bps * engine.rng().jitter(scenario.net_flutter));
  if (scenario.net_flutter_period <= 0) return;
  Scenario next = scenario;
  const double delay =
      engine.rng().uniform(0.5, 1.5) * scenario.net_flutter_period;
  engine.daemon_after(delay, [&machine, node, next] {
    schedule_net_flutter(machine, node, next);
  });
}

}  // namespace

void Scenario::apply(sim::Machine& machine) const {
  const int nodes = machine.node_count();
  util::require(affected_node >= 0 && affected_node < nodes,
                "Scenario: affected node out of range");
  if (machine.obs() != nullptr) {
    machine.obs()->metrics().set_info("scenario", name);
  }
  switch (kind) {
    case Kind::kDedicated:
      break;
    case Kind::kCpuOneNode:
      machine.node(affected_node).add_load(load_processes);
      schedule_cpu_flutter(machine, affected_node, *this);
      break;
    case Kind::kCpuAllNodes:
      for (int n = 0; n < nodes; ++n) {
        machine.node(n).add_load(load_processes);
        schedule_cpu_flutter(machine, n, *this);
      }
      break;
    case Kind::kNetOneLink:
      schedule_net_flutter(machine, affected_node, *this);
      break;
    case Kind::kNetAllLinks:
      for (int n = 0; n < nodes; ++n) {
        schedule_net_flutter(machine, n, *this);
      }
      break;
    case Kind::kCpuAndNet:
      machine.node(affected_node).add_load(load_processes);
      schedule_cpu_flutter(machine, affected_node, *this);
      schedule_net_flutter(machine, affected_node, *this);
      break;
    case Kind::kMemOneNode:
      machine.node(affected_node)
          .add_load(load_processes, load_mem_bytes_per_work);
      schedule_cpu_flutter(machine, affected_node, *this);
      break;
  }
  if (has_fault()) {
    fault::FaultSchedule schedule;
    switch (fault.kind) {
      case FaultKind::kNone:
        break;
      case FaultKind::kCrashNode:
        schedule.crashes.push_back({affected_node, fault.first_at,
                                    fault.downtime, fault.period,
                                    fault.period_jitter});
        break;
      case FaultKind::kLinkOutage:
        schedule.outages.push_back({affected_node, fault.first_at,
                                    fault.downtime, fault.period,
                                    fault.period_jitter});
        break;
      case FaultKind::kCpuStall:
        schedule.stalls.push_back({affected_node, fault.first_at,
                                   fault.downtime, fault.period,
                                   fault.period_jitter});
        break;
    }
    if (fault.checkpoint_interval > 0) {
      schedule.checkpoint.enabled = true;
      schedule.checkpoint.interval = fault.checkpoint_interval;
      schedule.checkpoint.checkpoint_cost = fault.checkpoint_cost;
      schedule.checkpoint.restart_cost = fault.restart_cost;
    }
    // The armed events share ownership of the stats block; callers who want
    // the counters can call fault::install themselves.
    fault::install(machine, schedule);
  }
}

namespace {
constexpr Scenario kDedicatedScenario{
    Kind::kDedicated, "dedicated", "no competing load or traffic",
    2, 0.0, 1.25e6, 0, 0.0, 0.0, 0.0, 0.0, {}};

constexpr std::array<Scenario, 5> kPaperScenarios = {{
    {Kind::kCpuOneNode, "cpu-one-node",
     "two competing compute processes on one node", 2, 0.0, 1.25e6, 0, 0.18,
     3.0, 0.30, 25.0, {}},
    {Kind::kCpuAllNodes, "cpu-all-nodes",
     "two competing compute processes on every node", 2, 0.0, 1.25e6, 0,
     0.18, 3.0, 0.30, 25.0, {}},
    {Kind::kNetOneLink, "net-one-link", "one link shaped to 10 Mbps", 2, 0.0,
     1.25e6, 0, 0.18, 3.0, 0.30, 25.0, {}},
    {Kind::kNetAllLinks, "net-all-links", "every link shaped to 10 Mbps", 2, 0.0,
     1.25e6, 0, 0.18, 3.0, 0.30, 25.0, {}},
    {Kind::kCpuAndNet, "cpu-and-net",
     "competing processes on one node and traffic on one link", 2, 0.0,
     1.25e6, 0, 0.18, 3.0, 0.30, 25.0, {}},
}};
}  // namespace

namespace {
constexpr Scenario kMemoryHogScenario{
    Kind::kMemOneNode, "mem-one-node",
    "one memory-bound competitor on one node", 1, 5.0e9, 1.25e6, 0, 0.18,
    3.0, 0.30, 25.0, {}};

// Fault profiles are recurring (MTBF-style) rather than one-shot so that
// both a long application run and a short skeleton run sample them; the
// skeleton typically sees fewer windows, and that sampling gap is exactly
// the graceful-degradation story the ext_faults bench measures.
constexpr FaultProfile kCrashProfile{FaultKind::kCrashNode, 20.0, 10.0, 60.0,
                                     0.10};
constexpr FaultProfile kFlapProfile{FaultKind::kLinkOutage, 5.0, 1.5, 7.0,
                                    0.20};
constexpr FaultProfile kStallProfile{FaultKind::kCpuStall, 5.0, 2.0, 15.0,
                                     0.20};
constexpr FaultProfile kCheckpointedCrashProfile{
    FaultKind::kCrashNode, 20.0, 10.0, 60.0, 0.10, 30.0, 1.0, 2.0};

constexpr std::array<Scenario, 6> kFaultScenarios = {{
    {Kind::kDedicated, "crash-one-node",
     "one node crashes ~every 60s and restarts 10s later", 2, 0.0, 1.25e6, 0,
     0.0, 0.0, 0.0, 0.0, kCrashProfile},
    {Kind::kDedicated, "flap-one-link",
     "one link flaps: 1.5s black-outs ~every 7s", 2, 0.0, 1.25e6, 0, 0.0,
     0.0, 0.0, 0.0, kFlapProfile},
    {Kind::kDedicated, "crash-checkpointed",
     "crash-one-node under 30s coordinated checkpoints with rollback", 2,
     0.0, 1.25e6, 0, 0.0, 0.0, 0.0, 0.0, kCheckpointedCrashProfile},
    {Kind::kDedicated, "stall-one-node",
     "one node's CPUs freeze 2s ~every 15s (link stays up)", 2, 0.0, 1.25e6,
     0, 0.0, 0.0, 0.0, 0.0, kStallProfile},
    {Kind::kCpuOneNode, "crash-plus-cpu",
     "crash-one-node plus two competing processes on the same node", 2, 0.0,
     1.25e6, 0, 0.18, 3.0, 0.30, 25.0, kCrashProfile},
    {Kind::kNetOneLink, "flap-plus-net",
     "flap-one-link plus the same link shaped to 10 Mbps", 2, 0.0, 1.25e6, 0,
     0.18, 3.0, 0.30, 25.0, kFlapProfile},
}};
}  // namespace

std::span<const Scenario> paper_scenarios() { return kPaperScenarios; }

const Scenario& dedicated() { return kDedicatedScenario; }

const Scenario& memory_hog() { return kMemoryHogScenario; }

std::span<const Scenario> fault_scenarios() { return kFaultScenarios; }

const Scenario& find_scenario(const std::string& name) {
  if (name == kDedicatedScenario.name) return kDedicatedScenario;
  if (name == kMemoryHogScenario.name) return kMemoryHogScenario;
  for (const Scenario& scenario : kPaperScenarios) {
    if (name == scenario.name) return scenario;
  }
  for (const Scenario& scenario : kFaultScenarios) {
    if (name == scenario.name) return scenario;
  }
  std::string valid = kDedicatedScenario.name;
  for (const Scenario& scenario : kPaperScenarios) {
    valid += ", ";
    valid += scenario.name;
  }
  valid += ", ";
  valid += kMemoryHogScenario.name;
  for (const Scenario& scenario : kFaultScenarios) {
    valid += ", ";
    valid += scenario.name;
  }
  throw ConfigError("unknown scenario: " + name + " (valid: " + valid + ")");
}

}  // namespace psk::scenario
