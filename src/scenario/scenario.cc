#include "scenario/scenario.h"

#include <array>

#include "util/error.h"

namespace psk::scenario {

namespace {

/// Periodically resamples the scheduler-unfairness factor of a loaded node.
void schedule_cpu_flutter(sim::Machine& machine, int node,
                          const Scenario& scenario) {
  sim::Engine& engine = machine.engine();
  machine.node(node).set_contention_unfairness(
      engine.rng().jitter(scenario.cpu_flutter));
  if (scenario.cpu_flutter_period <= 0) return;
  const double amp = scenario.cpu_flutter;
  const double period = scenario.cpu_flutter_period;
  const double delay = engine.rng().uniform(0.5, 1.5) * period;
  engine.after(delay, [&machine, node, amp, period] {
    Scenario next;
    next.cpu_flutter = amp;
    next.cpu_flutter_period = period;
    schedule_cpu_flutter(machine, node, next);
  });
}

/// Periodically resamples the effective bandwidth of a shaped link.
void schedule_net_flutter(sim::Machine& machine, int node,
                          const Scenario& scenario) {
  sim::Engine& engine = machine.engine();
  machine.network().set_link_bandwidth(
      node,
      scenario.shaped_bandwidth_bps * engine.rng().jitter(scenario.net_flutter));
  if (scenario.net_flutter_period <= 0) return;
  Scenario next = scenario;
  const double delay =
      engine.rng().uniform(0.5, 1.5) * scenario.net_flutter_period;
  engine.after(delay, [&machine, node, next] {
    schedule_net_flutter(machine, node, next);
  });
}

}  // namespace

void Scenario::apply(sim::Machine& machine) const {
  const int nodes = machine.node_count();
  util::require(affected_node >= 0 && affected_node < nodes,
                "Scenario: affected node out of range");
  switch (kind) {
    case Kind::kDedicated:
      break;
    case Kind::kCpuOneNode:
      machine.node(affected_node).add_load(load_processes);
      schedule_cpu_flutter(machine, affected_node, *this);
      break;
    case Kind::kCpuAllNodes:
      for (int n = 0; n < nodes; ++n) {
        machine.node(n).add_load(load_processes);
        schedule_cpu_flutter(machine, n, *this);
      }
      break;
    case Kind::kNetOneLink:
      schedule_net_flutter(machine, affected_node, *this);
      break;
    case Kind::kNetAllLinks:
      for (int n = 0; n < nodes; ++n) {
        schedule_net_flutter(machine, n, *this);
      }
      break;
    case Kind::kCpuAndNet:
      machine.node(affected_node).add_load(load_processes);
      schedule_cpu_flutter(machine, affected_node, *this);
      schedule_net_flutter(machine, affected_node, *this);
      break;
    case Kind::kMemOneNode:
      machine.node(affected_node)
          .add_load(load_processes, load_mem_bytes_per_work);
      schedule_cpu_flutter(machine, affected_node, *this);
      break;
  }
}

namespace {
constexpr Scenario kDedicatedScenario{
    Kind::kDedicated, "dedicated", "no competing load or traffic",
    2, 0.0, 1.25e6, 0, 0.0, 0.0, 0.0, 0.0};

constexpr std::array<Scenario, 5> kPaperScenarios = {{
    {Kind::kCpuOneNode, "cpu-one-node",
     "two competing compute processes on one node", 2, 0.0, 1.25e6, 0, 0.18,
     3.0, 0.30, 25.0},
    {Kind::kCpuAllNodes, "cpu-all-nodes",
     "two competing compute processes on every node", 2, 0.0, 1.25e6, 0,
     0.18, 3.0, 0.30, 25.0},
    {Kind::kNetOneLink, "net-one-link", "one link shaped to 10 Mbps", 2, 0.0,
     1.25e6, 0, 0.18, 3.0, 0.30, 25.0},
    {Kind::kNetAllLinks, "net-all-links", "every link shaped to 10 Mbps", 2, 0.0,
     1.25e6, 0, 0.18, 3.0, 0.30, 25.0},
    {Kind::kCpuAndNet, "cpu-and-net",
     "competing processes on one node and traffic on one link", 2, 0.0,
     1.25e6, 0, 0.18, 3.0, 0.30, 25.0},
}};
}  // namespace

namespace {
constexpr Scenario kMemoryHogScenario{
    Kind::kMemOneNode, "mem-one-node",
    "one memory-bound competitor on one node", 1, 5.0e9, 1.25e6, 0, 0.18,
    3.0, 0.30, 25.0};
}  // namespace

std::span<const Scenario> paper_scenarios() { return kPaperScenarios; }

const Scenario& dedicated() { return kDedicatedScenario; }

const Scenario& memory_hog() { return kMemoryHogScenario; }

const Scenario& find_scenario(const std::string& name) {
  if (name == kDedicatedScenario.name) return kDedicatedScenario;
  if (name == kMemoryHogScenario.name) return kMemoryHogScenario;
  for (const Scenario& scenario : kPaperScenarios) {
    if (name == scenario.name) return scenario;
  }
  throw ConfigError("unknown scenario: " + name);
}

}  // namespace psk::scenario
