// The paper's resource-sharing scenarios (section 4.2), plus fault
// extensions.
//
// Five sharing configurations plus the dedicated baseline:
//   S1  two competing compute processes on one node
//   S2  two competing compute processes on every node
//   S3  one node's link shaped to 10 Mbps
//   S4  every link shaped to 10 Mbps
//   S5  S1 + S3 (one loaded node, one shaped link)
// "At least two processes are required to create significant CPU contention
// on dual processor nodes."
//
// The fault extensions go beyond the paper: resources do not merely degrade,
// they go away and come back (node crash/restart windows, link black-outs
// and flaps, transient CPU stalls, optionally under a coordinated
// checkpoint/restart model):
//   F1  one node crashes mid-run and restarts
//   F2  one link flaps (periodic short black-outs)
//   F3  F1 under periodic coordinated checkpoints with rollback on restart
// plus a transient CPU-stall scenario and fault x sharing composites.  A
// fault profile composes with the sharing Kind, so a composite is just a
// sharing scenario that also carries a fault.
#pragma once

#include <span>
#include <string>

#include "sim/machine.h"

namespace psk::scenario {

enum class Kind {
  kDedicated,
  kCpuOneNode,
  kCpuAllNodes,
  kNetOneLink,
  kNetAllLinks,
  kCpuAndNet,
  /// Extension (not one of the paper's five): a memory-bound competitor on
  /// one node -- cores stay free, the memory bus contends.
  kMemOneNode,
};

/// What kind of fault the scenario injects (orthogonal to the sharing Kind).
enum class FaultKind {
  kNone,
  /// The affected node crashes, stays down, and restarts (recurring with
  /// `period` so short skeleton runs can sample it too).
  kCrashNode,
  /// The affected node's link carries zero bytes for `downtime` at a time
  /// (a short period models a flapping link).
  kLinkOutage,
  /// The affected node's CPUs freeze transiently; its link stays up.
  kCpuStall,
};

/// Constexpr-friendly fault description; expanded to a fault::FaultSchedule
/// by Scenario::apply().  Times are simulated seconds.
struct FaultProfile {
  FaultKind kind = FaultKind::kNone;
  sim::Time first_at = 0.0;
  sim::Time downtime = 0.0;
  sim::Time period = 0.0;       // 0 = one-shot
  double period_jitter = 0.0;   // multiplicative, drawn from the machine RNG
  /// Coordinated checkpoint/restart knobs (enabled when interval > 0).
  sim::Time checkpoint_interval = 0.0;
  sim::Time checkpoint_cost = 0.0;
  sim::Time restart_cost = 0.0;
};

struct Scenario {
  Kind kind = Kind::kDedicated;
  const char* name = "dedicated";
  const char* description = "no competing load or traffic";
  /// Competing compute processes per affected node.
  int load_processes = 2;
  /// Memory intensity of the competing processes (bytes per work-second;
  /// 0 = cache-resident spinners, as in the paper's CPU scenarios).
  double load_mem_bytes_per_work = 0;
  /// Shaped bandwidth for affected links (10 Mbps in bytes/second).
  double shaped_bandwidth_bps = 1.25e6;
  /// The node whose CPU / link is affected in the one-node scenarios.
  int affected_node = 0;

  /// Contention is not steady in real systems: the scheduler does not
  /// split cycles perfectly evenly, and shaped links carry bursty cross
  /// traffic.  Affected resources resample a multiplicative disturbance
  /// around their nominal value (seeded by the machine's RNG, so
  /// measurements at different times disagree -- the reason short skeleton
  /// runs predict less accurately than long ones).  Scheduler noise
  /// fluctuates on second scales; cross-traffic is dominated by long-lived
  /// bulk ("elephant") flows, so the network disturbance has a much longer
  /// correlation time -- which is why scenarios with competing traffic are
  /// harder to predict (paper section 4.4).
  double cpu_flutter = 0.18;
  double cpu_flutter_period = 3.0;
  double net_flutter = 0.30;
  double net_flutter_period = 25.0;

  /// Fault injected on top of the sharing configuration (kNone for the
  /// paper's scenarios).
  FaultProfile fault;

  bool has_fault() const { return fault.kind != FaultKind::kNone; }

  /// Applies the sharing configuration (and fault schedule, if any) to a
  /// freshly built machine.
  void apply(sim::Machine& machine) const;
};

/// The five sharing scenarios, in the paper's order.
std::span<const Scenario> paper_scenarios();

/// The dedicated (no sharing) baseline.
const Scenario& dedicated();

/// Extension scenario: one memory-bound competitor on one node (leaves a
/// core free; contends only for the memory bus).
const Scenario& memory_hog();

/// The fault scenarios: F1 crash-one-node, F2 flap-one-link, F3
/// crash-checkpointed, stall-one-node, and the fault x sharing composites
/// crash-plus-cpu and flap-plus-net.
std::span<const Scenario> fault_scenarios();

/// Lookup by name ("cpu-one-node", "crash-one-node", ...); throws
/// ConfigError listing the valid names when unknown.
const Scenario& find_scenario(const std::string& name);

}  // namespace psk::scenario
