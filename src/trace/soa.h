// Struct-of-arrays view over a rank's event stream.
//
// The clustering / folding / compression inner loops are dominated by
// structural-compatibility rejections: most (event, prototype) pairs differ
// in type, peer, tag, or parts shape and are discarded immediately.  With
// the AoS TraceEvent (~150 bytes plus two heap vectors) every rejection
// strides over a cache line or two of payload it never reads.  EventColumns
// extracts the decision-carrying scalars into contiguous columns so those
// loops scan dense arrays and only touch the full structs on a hit.
//
// The columns are a *view*: they add information derived from the events
// but never replace the exact comparisons, so consumers stay bit-identical
// to the AoS code paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/event.h"

namespace psk::trace {

/// Column-wise copy of the fields the signature pipeline's inner loops
/// consult, indexed like the source event vector.
struct EventColumns {
  /// Structural-compatibility fingerprint (see compat_fingerprint).
  std::vector<std::uint64_t> compat;
  /// Call type, as the underlying integer of mpi::CallType.
  std::vector<std::uint8_t> type;
  std::vector<double> bytes;
  std::vector<double> pre_compute;
  std::vector<double> interior_compute;

  std::size_t size() const { return compat.size(); }
  bool empty() const { return compat.empty(); }
};

/// Structural-compatibility fingerprint: a pure function of the fields that
/// decide whether two events may share a cluster (type, peer, tag, and the
/// parts structure -- per-part peer/direction/tag, not byte counts).
/// Structurally compatible events therefore always carry equal
/// fingerprints, so *unequal* fingerprints prove incompatibility and reject
/// a pair without touching either struct.  Equal fingerprints prove nothing
/// (hashes collide); callers must still verify with the exact comparison.
std::uint64_t compat_fingerprint(const TraceEvent& event);

/// Builds the column view of `events`.
EventColumns make_columns(const std::vector<TraceEvent>& events);

}  // namespace psk::trace
