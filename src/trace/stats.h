// Trace analysis: communication matrix, message-size histogram and per-call
// profile.  Used by `psk info --trace` and the examples to understand what
// the compressor will consume.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpi/types.h"
#include "trace/event.h"

namespace psk::trace {

/// Point-to-point traffic between rank pairs (collectives excluded: their
/// internal routing is a property of the MPI implementation, not the
/// application).  Each logical transfer is counted once, at its sender.
struct CommMatrix {
  int ranks = 0;
  /// [src][dst] payload bytes / message counts.
  std::vector<std::vector<double>> bytes;
  std::vector<std::vector<std::uint64_t>> messages;

  double total_bytes() const;
  std::uint64_t total_messages() const;
  std::string render() const;
};

CommMatrix communication_matrix(const Trace& trace);

/// Power-of-two histogram of point-to-point message sizes.
struct SizeHistogram {
  /// bucket b counts messages with size in [2^b, 2^(b+1)).
  std::map<int, std::uint64_t> buckets;
  std::string render() const;
};

SizeHistogram message_size_histogram(const Trace& trace);

/// Aggregate per call type: how often, how many bytes, how much time.
struct CallProfile {
  struct Entry {
    std::uint64_t count = 0;
    double bytes = 0;
    double time = 0;  // summed call durations across ranks
  };
  std::map<mpi::CallType, Entry> entries;
  std::string render() const;
};

CallProfile call_profile(const Trace& trace);

}  // namespace psk::trace
