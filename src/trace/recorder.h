// Recorder: the profiling library.
//
// Attach to a World before launch; afterwards take_trace() yields the
// per-rank execution traces.  Mirrors the paper's PMPI-style tracer: each
// MPI call with its parameters and start/end time, computation measured as
// the gap between consecutive calls.
#pragma once

#include <string>
#include <vector>

#include "mpi/types.h"
#include "mpi/world.h"
#include "trace/event.h"

namespace psk::trace {

class Recorder : public mpi::CallObserver {
 public:
  explicit Recorder(int rank_count);

  void on_call(int rank, const mpi::CallRecord& record) override;

  /// Finalizes the trace after World::run(): stamps per-rank wall times and
  /// the trailing computation segment.
  Trace take_trace(const mpi::World& world, const std::string& app_name);

 private:
  std::vector<RankTrace> ranks_;
  std::vector<double> last_call_end_;
};

/// Convenience: runs `rank_main` on a world with tracing attached and
/// returns the finalized trace.  The world must not have been launched.
Trace record_run(mpi::World& world, const mpi::RankMain& rank_main,
                 const std::string& app_name);

}  // namespace psk::trace
