// Nonblocking-region folding.
//
// The paper (section 3.2): "We identify the non blocking calls and
// associated MPI_Wait() to determine the corresponding overlapped region."
// This pass rewrites each run of Isend/Irecv/Wait/Waitall events whose
// requests are fully opened *and* completed inside the run into one
// composite Exchange event carrying the per-peer transfer list.  Exchange
// events are safe to cluster and loop-fold as units, and replay as
// irecv*/isend*/waitall.
//
// Leftover raw nonblocking events (a request completed across a blocking
// call, or never waited) are conservatively rewritten into their blocking
// equivalents so that downstream stages never see request ids: an Isend
// becomes a Send at its call site; an Irecv is dropped and its matching
// Wait becomes a Recv from the Irecv's peer.  An Irecv whose Wait never
// appears at all (e.g. a truncated trace) is flushed as a trailing blocking
// Recv at end-of-trace so its bytes survive folding.  SPMD applications
// are rewritten symmetrically on all ranks, preserving match counts.
#pragma once

#include <cstddef>

#include "trace/event.h"

namespace psk::trace {

struct FoldStats {
  std::size_t regions_created = 0;
  std::size_t events_folded = 0;      // raw events absorbed into regions
  std::size_t fallback_rewrites = 0;  // leftover nonblocking ops rewritten
  std::size_t pending_recvs_flushed = 0;  // Irecvs with no Wait in the trace,
                                          // emitted as trailing Recvs

  FoldStats& operator+=(const FoldStats& other) {
    regions_created += other.regions_created;
    events_folded += other.events_folded;
    fallback_rewrites += other.fallback_rewrites;
    pending_recvs_flushed += other.pending_recvs_flushed;
    return *this;
  }
};

/// Folds one rank's events in place; returns what was changed.
FoldStats fold_nonblocking(RankTrace& rank);

/// Folds every rank of `trace`; returns aggregate stats.
FoldStats fold_nonblocking(Trace& trace);

/// True if no raw nonblocking event (Isend/Irecv/Wait/Waitall) remains.
bool is_fully_folded(const RankTrace& rank);
bool is_fully_folded(const Trace& trace);

}  // namespace psk::trace
