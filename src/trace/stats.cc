#include "trace/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/format.h"
#include "util/table.h"

namespace psk::trace {

namespace {

/// Visits every outgoing point-to-point transfer of an event exactly once
/// (at the sender).
template <typename Visit>
void for_each_outgoing(const RankTrace& rank, const TraceEvent& event,
                       Visit&& visit) {
  using mpi::CallType;
  switch (event.type) {
    case CallType::kSend:
    case CallType::kIsend:
      visit(rank.rank, event.peer, static_cast<double>(event.bytes));
      break;
    case CallType::kSendrecv:
      if (!event.parts.empty() && event.parts[0].outgoing) {
        visit(rank.rank, event.parts[0].peer,
              static_cast<double>(event.parts[0].bytes));
      }
      break;
    case CallType::kExchange:
      for (const mpi::PeerBytes& part : event.parts) {
        if (part.outgoing) {
          visit(rank.rank, part.peer, static_cast<double>(part.bytes));
        }
      }
      break;
    default:
      break;
  }
}

}  // namespace

double CommMatrix::total_bytes() const {
  double total = 0;
  for (const auto& row : bytes) {
    for (double cell : row) total += cell;
  }
  return total;
}

std::uint64_t CommMatrix::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& row : messages) {
    for (std::uint64_t cell : row) total += cell;
  }
  return total;
}

std::string CommMatrix::render() const {
  std::vector<std::string> header{"src\\dst"};
  for (int dst = 0; dst < ranks; ++dst) {
    header.push_back("to " + std::to_string(dst));
  }
  util::Table table(header);
  for (int src = 0; src < ranks; ++src) {
    std::vector<std::string> row{"rank " + std::to_string(src)};
    for (int dst = 0; dst < ranks; ++dst) {
      const double cell = bytes[static_cast<std::size_t>(src)]
                               [static_cast<std::size_t>(dst)];
      row.push_back(cell > 0 ? util::human_bytes(static_cast<std::uint64_t>(
                                   std::llround(cell)))
                             : "-");
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

CommMatrix communication_matrix(const Trace& trace) {
  CommMatrix matrix;
  matrix.ranks = trace.rank_count();
  matrix.bytes.assign(static_cast<std::size_t>(matrix.ranks),
                      std::vector<double>(
                          static_cast<std::size_t>(matrix.ranks), 0.0));
  matrix.messages.assign(
      static_cast<std::size_t>(matrix.ranks),
      std::vector<std::uint64_t>(static_cast<std::size_t>(matrix.ranks), 0));
  for (const RankTrace& rank : trace.ranks) {
    for (const TraceEvent& event : rank.events) {
      for_each_outgoing(rank, event, [&](int src, int dst, double bytes) {
        if (src < 0 || dst < 0 || src >= matrix.ranks || dst >= matrix.ranks) {
          return;
        }
        matrix.bytes[static_cast<std::size_t>(src)]
                    [static_cast<std::size_t>(dst)] += bytes;
        matrix.messages[static_cast<std::size_t>(src)]
                       [static_cast<std::size_t>(dst)] += 1;
      });
    }
  }
  return matrix;
}

std::string SizeHistogram::render() const {
  std::uint64_t max_count = 0;
  for (const auto& [bucket, count] : buckets) {
    max_count = std::max(max_count, count);
  }
  std::ostringstream out;
  for (const auto& [bucket, count] : buckets) {
    const auto low = static_cast<std::uint64_t>(1) << bucket;
    const std::size_t bars =
        max_count > 0 ? static_cast<std::size_t>(40.0 * static_cast<double>(count) /
                                                 static_cast<double>(max_count))
                      : 0;
    out << util::pad_left(util::human_bytes(low), 9) << " | "
        << util::pad_right(std::string(bars, '#'), 40) << " " << count
        << "\n";
  }
  return out.str();
}

SizeHistogram message_size_histogram(const Trace& trace) {
  SizeHistogram histogram;
  for (const RankTrace& rank : trace.ranks) {
    for (const TraceEvent& event : rank.events) {
      for_each_outgoing(rank, event, [&](int, int, double bytes) {
        const int bucket =
            bytes < 1 ? 0 : static_cast<int>(std::floor(std::log2(bytes)));
        histogram.buckets[bucket] += 1;
      });
    }
  }
  return histogram;
}

std::string CallProfile::render() const {
  util::Table table({"call", "count", "bytes", "time"});
  for (const auto& [type, entry] : entries) {
    table.add_row({mpi::call_type_name(type), std::to_string(entry.count),
                   util::human_bytes(static_cast<std::uint64_t>(
                       std::llround(entry.bytes))),
                   util::human_seconds(entry.time)});
  }
  return table.render();
}

CallProfile call_profile(const Trace& trace) {
  CallProfile profile;
  for (const RankTrace& rank : trace.ranks) {
    for (const TraceEvent& event : rank.events) {
      CallProfile::Entry& entry = profile.entries[event.type];
      entry.count += 1;
      entry.bytes += static_cast<double>(event.bytes);
      entry.time += event.mpi_time();
    }
  }
  return profile;
}

}  // namespace psk::trace
