#include "trace/recorder.h"

#include <utility>

#include "util/error.h"

namespace psk::trace {

Recorder::Recorder(int rank_count) {
  util::require(rank_count >= 1, "Recorder: need at least one rank");
  ranks_.resize(static_cast<std::size_t>(rank_count));
  for (int r = 0; r < rank_count; ++r) {
    ranks_[static_cast<std::size_t>(r)].rank = r;
  }
  last_call_end_.assign(static_cast<std::size_t>(rank_count), 0.0);
}

void Recorder::on_call(int rank, const mpi::CallRecord& record) {
  auto& rank_trace = ranks_[static_cast<std::size_t>(rank)];
  TraceEvent event;
  event.type = record.type;
  event.peer = record.peer;
  event.bytes = record.bytes;
  event.tag = record.tag;
  event.parts = record.parts;
  event.request = record.request;
  event.requests = record.requests;
  event.t_start = record.t_start;
  event.t_end = record.t_end;
  event.pre_mem_bytes = record.pre_mem_bytes;
  const double gap =
      record.t_start - last_call_end_[static_cast<std::size_t>(rank)];
  event.pre_compute = gap > 0 ? gap : 0;
  last_call_end_[static_cast<std::size_t>(rank)] = record.t_end;
  rank_trace.events.push_back(std::move(event));
}

Trace Recorder::take_trace(const mpi::World& world,
                           const std::string& app_name) {
  Trace trace;
  trace.app_name = app_name;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankTrace rank_trace = std::move(ranks_[r]);
    rank_trace.total_time = world.rank_end_time(static_cast<int>(r));
    const double tail = rank_trace.total_time - last_call_end_[r];
    rank_trace.final_compute = tail > 0 ? tail : 0;
    trace.ranks.push_back(std::move(rank_trace));
    // Leave the recorder reusable-looking but empty.
    ranks_[r] = RankTrace{};
    ranks_[r].rank = static_cast<int>(r);
    last_call_end_[r] = 0;
  }
  return trace;
}

Trace record_run(mpi::World& world, const mpi::RankMain& rank_main,
                 const std::string& app_name) {
  Recorder recorder(world.size());
  world.set_observer(&recorder);
  world.launch(rank_main);
  world.run();
  world.set_observer(nullptr);
  return recorder.take_trace(world, app_name);
}

}  // namespace psk::trace
