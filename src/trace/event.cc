#include "trace/event.h"

#include <algorithm>

namespace psk::trace {

double RankTrace::compute_time() const {
  double total = final_compute;
  for (const TraceEvent& event : events) {
    total += event.pre_compute + event.interior_compute;
  }
  return total;
}

double RankTrace::mpi_time() const {
  double total = 0;
  for (const TraceEvent& event : events) total += event.mpi_time();
  return total;
}

double Trace::elapsed() const {
  double latest = 0;
  for (const RankTrace& rank : ranks) {
    latest = std::max(latest, rank.total_time);
  }
  return latest;
}

std::size_t Trace::event_count() const {
  std::size_t n = 0;
  for (const RankTrace& rank : ranks) n += rank.events.size();
  return n;
}

ActivityBreakdown activity_breakdown(const Trace& trace) {
  ActivityBreakdown breakdown;
  if (trace.ranks.empty()) return breakdown;
  double compute_sum = 0;
  double mpi_sum = 0;
  for (const RankTrace& rank : trace.ranks) {
    if (rank.total_time <= 0) continue;
    compute_sum += rank.compute_time() / rank.total_time;
    mpi_sum += rank.mpi_time() / rank.total_time;
  }
  const double n = static_cast<double>(trace.ranks.size());
  breakdown.compute_fraction = compute_sum / n;
  breakdown.mpi_fraction = mpi_sum / n;
  return breakdown;
}

}  // namespace psk::trace
