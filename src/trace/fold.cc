#include "trace/fold.h"

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/error.h"

namespace psk::trace {

namespace {

using mpi::CallType;

bool is_raw_nonblocking(CallType t) {
  return mpi::is_nonblocking_start(t) || mpi::is_completion(t);
}

/// Attempts to fold a region starting at index `start` (which must be an
/// Isend/Irecv).  On success returns the index one past the region's last
/// event and appends the composite event to `out`.  On failure returns
/// `start` (caller falls back to copying the event).
std::size_t try_fold_region(const std::vector<TraceEvent>& events,
                            std::size_t start, std::vector<TraceEvent>& out,
                            FoldStats& stats) {
  std::set<std::uint32_t> open;
  TraceEvent region;
  region.type = CallType::kExchange;
  region.t_start = events[start].t_start;
  region.pre_compute = events[start].pre_compute;
  region.tag = events[start].tag;

  region.pre_mem_bytes = events[start].pre_mem_bytes;
  std::size_t i = start;
  for (; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (mpi::is_nonblocking_start(event.type)) {
      if (event.request == mpi::Request::kInvalid) return start;
      open.insert(event.request);
      region.parts.push_back(mpi::PeerBytes{event.peer, event.bytes,
                                            event.type == CallType::kIsend,
                                            event.tag});
      if (i != start) {
        region.interior_compute += event.pre_compute;
        region.interior_mem_bytes += event.pre_mem_bytes;
      }
      continue;
    }
    if (mpi::is_completion(event.type)) {
      // Every request completed here must have been opened in this region.
      for (std::uint32_t id : event.requests) {
        if (open.erase(id) == 0) return start;
      }
      region.interior_compute += event.pre_compute;
      region.interior_mem_bytes += event.pre_mem_bytes;
      if (open.empty()) {
        region.t_end = event.t_end;
        region.bytes = 0;
        for (const mpi::PeerBytes& part : region.parts) {
          region.bytes += part.bytes;
        }
        stats.regions_created += 1;
        stats.events_folded += (i - start + 1);
        out.push_back(std::move(region));
        return i + 1;
      }
      continue;
    }
    // A blocking call or collective interrupts the region.
    return start;
  }
  return start;  // trace ended with requests still open
}

/// Rewrites leftover raw nonblocking events into blocking equivalents.
/// Compute carried past the last event is returned through
/// `trailing_compute` so the caller can add it to the rank's final segment.
FoldStats rewrite_leftovers(std::vector<TraceEvent>& events,
                            double& trailing_compute) {
  FoldStats stats;
  // Request id -> (peer, bytes) for leftover Irecvs awaiting their Wait.
  std::map<std::uint32_t, mpi::PeerBytes> pending_recvs;
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  double carried_compute = 0;
  double end_of_trace = 0;

  for (TraceEvent& event : events) {
    if (event.t_end > end_of_trace) end_of_trace = event.t_end;
    event.pre_compute += carried_compute;
    carried_compute = 0;
    switch (event.type) {
      case CallType::kIsend: {
        event.type = CallType::kSend;
        event.request = mpi::Request::kInvalid;
        stats.fallback_rewrites += 1;
        out.push_back(std::move(event));
        break;
      }
      case CallType::kIrecv: {
        pending_recvs[event.request] =
            mpi::PeerBytes{event.peer, event.bytes, false, event.tag};
        carried_compute = event.pre_compute;
        stats.fallback_rewrites += 1;
        break;  // dropped; its Wait becomes the Recv
      }
      case CallType::kWait:
      case CallType::kWaitall: {
        bool emitted = false;
        for (std::uint32_t id : event.requests) {
          const auto it = pending_recvs.find(id);
          if (it == pending_recvs.end()) continue;  // was an Isend's wait
          TraceEvent recv;
          recv.type = CallType::kRecv;
          recv.peer = it->second.peer;
          recv.bytes = it->second.bytes;
          recv.tag = it->second.tag;
          recv.t_start = event.t_start;
          recv.t_end = event.t_end;
          recv.pre_compute = emitted ? 0 : event.pre_compute;
          pending_recvs.erase(it);
          out.push_back(std::move(recv));
          emitted = true;
        }
        stats.fallback_rewrites += 1;
        if (!emitted) carried_compute = event.pre_compute;
        break;  // the wait itself disappears
      }
      default:
        out.push_back(std::move(event));
        break;
    }
  }
  // Any Irecv whose Wait never appeared (a truncated trace, or an
  // application that legitimately abandons requests at exit) would silently
  // lose its bytes here.  Flush each as a blocking Recv pinned to
  // end-of-trace so the transfer survives into the signature; the first
  // flushed Recv absorbs any compute carried past the last surviving event.
  for (auto& [id, part] : pending_recvs) {
    (void)id;
    TraceEvent recv;
    recv.type = CallType::kRecv;
    recv.peer = part.peer;
    recv.bytes = part.bytes;
    recv.tag = part.tag;
    recv.t_start = end_of_trace;
    recv.t_end = end_of_trace;
    recv.pre_compute = carried_compute;
    carried_compute = 0;
    stats.pending_recvs_flushed += 1;
    out.push_back(std::move(recv));
  }

  events = std::move(out);
  trailing_compute = carried_compute;
  return stats;
}

/// Type column only; fold_nonblocking needs nothing else from the SoA view.
std::vector<std::uint8_t> soa_types_of(const std::vector<TraceEvent>& events) {
  std::vector<std::uint8_t> types;
  types.reserve(events.size());
  for (const TraceEvent& event : events) {
    types.push_back(static_cast<std::uint8_t>(event.type));
  }
  return types;
}

}  // namespace

FoldStats fold_nonblocking(RankTrace& rank) {
  FoldStats stats;
  std::vector<TraceEvent> out;
  out.reserve(rank.events.size());

  // Column of call types: blocking traces (the common case) reduce to one
  // dense byte scan plus a bulk copy instead of striding over every
  // TraceEvent looking for an Isend/Irecv.
  const std::vector<std::uint8_t> types = soa_types_of(rank.events);

  std::size_t i = 0;
  while (i < rank.events.size()) {
    std::size_t next_start = i;
    while (next_start < types.size() &&
           !mpi::is_nonblocking_start(
               static_cast<mpi::CallType>(types[next_start]))) {
      ++next_start;
    }
    // Events up to the next nonblocking start pass through unchanged.
    for (; i < next_start; ++i) out.push_back(rank.events[i]);
    if (i >= rank.events.size()) break;
    const std::size_t next = try_fold_region(rank.events, i, out, stats);
    if (next != i) {
      i = next;
      continue;
    }
    out.push_back(rank.events[i]);
    ++i;
  }
  rank.events = std::move(out);

  // Second pass: eliminate any raw nonblocking events that survived.
  bool any_raw = false;
  for (const TraceEvent& event : rank.events) {
    if (is_raw_nonblocking(event.type)) {
      any_raw = true;
      break;
    }
  }
  if (any_raw) {
    double trailing_compute = 0;
    stats += rewrite_leftovers(rank.events, trailing_compute);
    rank.final_compute += trailing_compute;
  }
  return stats;
}

FoldStats fold_nonblocking(Trace& trace) {
  FoldStats stats;
  for (RankTrace& rank : trace.ranks) stats += fold_nonblocking(rank);
  return stats;
}

bool is_fully_folded(const RankTrace& rank) {
  for (const TraceEvent& event : rank.events) {
    if (is_raw_nonblocking(event.type)) return false;
  }
  return true;
}

bool is_fully_folded(const Trace& trace) {
  for (const RankTrace& rank : trace.ranks) {
    if (!is_fully_folded(rank)) return false;
  }
  return true;
}

}  // namespace psk::trace
