// Text serialization of execution traces.
//
// One document holds all ranks.  The format is line-oriented and
// human-greppable; doubles round-trip exactly (printed with %.17g).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/event.h"

namespace psk::trace {

void write_trace(std::ostream& out, const Trace& trace);
std::string trace_to_string(const Trace& trace);

/// Parses a trace document; throws FormatError on malformed input.
Trace read_trace(std::istream& in);
Trace trace_from_string(const std::string& text);

/// Parses one "E ..." event line of the text format; throws FormatError.
/// Exposed for the guard salvage layer, which re-parses truncated documents
/// line by line to keep every event up to the first unparsable one.
TraceEvent parse_trace_event_line(const std::string& line);

/// File convenience wrappers.  load_trace auto-detects text vs binary.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

/// Compact binary form (host endianness) for large traces: a class B LU
/// trace shrinks ~6x and parses an order of magnitude faster.
void write_trace_binary(std::ostream& out, const Trace& trace);
Trace read_trace_binary(std::istream& in);
void save_trace_binary(const std::string& path, const Trace& trace);

}  // namespace psk::trace
