#include "trace/soa.h"

namespace psk::trace {

namespace {

/// splitmix64-style avalanche; same construction as the signature layer's
/// structural hash, kept local so the two never have to agree.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::uint64_t compat_fingerprint(const TraceEvent& event) {
  std::uint64_t h = mix(0xC0117A7, static_cast<std::uint64_t>(event.type));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(event.peer)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(event.tag)));
  h = mix(h, event.parts.size());
  for (const mpi::PeerBytes& part : event.parts) {
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(part.peer)));
    h = mix(h, part.outgoing ? 1u : 0u);
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(part.tag)));
  }
  return h;
}

EventColumns make_columns(const std::vector<TraceEvent>& events) {
  EventColumns columns;
  columns.compat.reserve(events.size());
  columns.type.reserve(events.size());
  columns.bytes.reserve(events.size());
  columns.pre_compute.reserve(events.size());
  columns.interior_compute.reserve(events.size());
  for (const TraceEvent& event : events) {
    columns.compat.push_back(compat_fingerprint(event));
    columns.type.push_back(static_cast<std::uint8_t>(event.type));
    columns.bytes.push_back(static_cast<double>(event.bytes));
    columns.pre_compute.push_back(event.pre_compute);
    columns.interior_compute.push_back(event.interior_compute);
  }
  return columns;
}

}  // namespace psk::trace
