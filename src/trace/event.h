// Execution trace model.
//
// A trace is the per-rank record of every MPI call an application made plus
// the computation gaps between calls -- exactly what the paper's profiling
// library captures (section 3.1).  Computation time is defined as the time
// between the end of one MPI operation and the start of the next.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/types.h"
#include "sim/time.h"

namespace psk::trace {

struct TraceEvent {
  mpi::CallType type = mpi::CallType::kSend;
  int peer = -1;
  mpi::Bytes bytes = 0;
  int tag = 0;
  /// Per-peer detail for Alltoallv / Sendrecv / folded Exchange regions.
  std::vector<mpi::PeerBytes> parts;
  /// Request linkage for raw nonblocking events.
  std::uint32_t request = mpi::Request::kInvalid;
  std::vector<std::uint32_t> requests;
  sim::Time t_start = 0;
  sim::Time t_end = 0;
  /// Computation time between the previous call's end and this call's start.
  double pre_compute = 0;
  /// Exchange regions only: computation overlapped inside the region (e.g.
  /// boundary packing between posting receives and posting sends).
  double interior_compute = 0;
  /// Memory traffic of the pre/interior computation (bytes; from the
  /// profiling library's hardware-counter channel).
  double pre_mem_bytes = 0;
  double interior_mem_bytes = 0;

  double duration() const { return t_end - t_start; }

  /// Time spent inside MPI proper (excludes overlapped interior compute).
  double mpi_time() const {
    const double t = duration() - interior_compute;
    return t > 0 ? t : 0;
  }
};

struct RankTrace {
  int rank = 0;
  std::vector<TraceEvent> events;
  /// Wall time of the rank's whole execution.
  double total_time = 0;
  /// Computation after the last MPI call.
  double final_compute = 0;

  /// Total computation (gaps + trailing + overlapped interior).
  double compute_time() const;
  /// Total time inside MPI calls.
  double mpi_time() const;
};

struct Trace {
  std::string app_name;
  std::vector<RankTrace> ranks;

  int rank_count() const { return static_cast<int>(ranks.size()); }
  /// Longest rank wall time (the parallel execution time).
  double elapsed() const;
  /// Total number of events across ranks.
  std::size_t event_count() const;
};

/// Activity breakdown used by Figure 2.
struct ActivityBreakdown {
  double compute_fraction = 0;
  double mpi_fraction = 0;
};

/// Average over ranks of per-rank compute/MPI fractions.
ActivityBreakdown activity_breakdown(const Trace& trace);

}  // namespace psk::trace
