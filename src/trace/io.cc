#include "trace/io.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace psk::trace {

namespace {

// Count fields in untrusted input only bound the *parse loop*; reserve() is
// clamped so a corrupt count cannot trigger a multi-gigabyte allocation
// (std::bad_alloc / std::length_error instead of FormatError) before the
// loop hits truncated input.
constexpr std::size_t kReserveCap = 4096;

std::string format_double(double value) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", value);
  return buf.data();
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, sep)) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& text) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw FormatError("trace: bad number '" + text + "'");
  }
}

std::uint64_t parse_u64(const std::string& text) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    throw FormatError("trace: bad integer '" + text + "'");
  }
}

int parse_int(const std::string& text) {
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    throw FormatError("trace: bad integer '" + text + "'");
  }
}

void write_event(std::ostream& out, const TraceEvent& event) {
  out << "E " << mpi::call_type_name(event.type) << " " << event.peer << " "
      << event.bytes << " " << event.tag << " "
      << format_double(event.t_start) << " " << format_double(event.t_end)
      << " " << format_double(event.pre_compute) << " "
      << format_double(event.interior_compute) << " "
      << format_double(event.pre_mem_bytes) << " "
      << format_double(event.interior_mem_bytes) << " ";
  // Parts: comma-separated peer:bytes:direction triples (or "-").
  if (event.parts.empty()) {
    out << "-";
  } else {
    for (std::size_t i = 0; i < event.parts.size(); ++i) {
      const mpi::PeerBytes& part = event.parts[i];
      if (i) out << ",";
      out << part.peer << ":" << part.bytes << ":"
          << (part.outgoing ? "o" : "i") << ":" << part.tag;
    }
  }
  out << " ";
  // Request linkage (raw traces only).
  out << (event.request == mpi::Request::kInvalid
              ? std::string("-")
              : std::to_string(event.request))
      << " ";
  if (event.requests.empty()) {
    out << "-";
  } else {
    for (std::size_t i = 0; i < event.requests.size(); ++i) {
      if (i) out << ",";
      out << event.requests[i];
    }
  }
  out << "\n";
}

TraceEvent parse_event_impl(const std::string& line) {
  const auto fields = split(line, ' ');
  if (fields.size() != 14 || fields[0] != "E") {
    throw FormatError("trace: malformed event line: " + line);
  }
  TraceEvent event;
  event.type = mpi::call_type_from_name(fields[1]);
  event.peer = parse_int(fields[2]);
  event.bytes = parse_u64(fields[3]);
  event.tag = parse_int(fields[4]);
  event.t_start = parse_double(fields[5]);
  event.t_end = parse_double(fields[6]);
  event.pre_compute = parse_double(fields[7]);
  event.interior_compute = parse_double(fields[8]);
  event.pre_mem_bytes = parse_double(fields[9]);
  event.interior_mem_bytes = parse_double(fields[10]);
  if (fields[11] != "-") {
    for (const std::string& triple : split(fields[11], ',')) {
      const auto bits = split(triple, ':');
      if (bits.size() != 4) {
        throw FormatError("trace: malformed part '" + triple + "'");
      }
      event.parts.push_back(mpi::PeerBytes{parse_int(bits[0]),
                                           parse_u64(bits[1]), bits[2] == "o",
                                           parse_int(bits[3])});
    }
  }
  if (fields[12] != "-") {
    event.request = static_cast<std::uint32_t>(parse_u64(fields[12]));
  }
  if (fields[13] != "-") {
    for (const std::string& id : split(fields[13], ',')) {
      event.requests.push_back(static_cast<std::uint32_t>(parse_u64(id)));
    }
  }
  return event;
}

}  // namespace

TraceEvent parse_trace_event_line(const std::string& line) {
  return parse_event_impl(line);
}

void write_trace(std::ostream& out, const Trace& trace) {
  out << "psk-trace 1\n";
  out << "app " << (trace.app_name.empty() ? "-" : trace.app_name) << "\n";
  out << "ranks " << trace.ranks.size() << "\n";
  for (const RankTrace& rank : trace.ranks) {
    out << "rank " << rank.rank << " " << format_double(rank.total_time)
        << " " << format_double(rank.final_compute) << " "
        << rank.events.size() << "\n";
    for (const TraceEvent& event : rank.events) write_event(out, event);
  }
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

Trace read_trace(std::istream& in) {
  std::string line;
  const auto next_line = [&]() -> std::string {
    if (!std::getline(in, line)) throw FormatError("trace: truncated input");
    return line;
  };

  if (next_line() != "psk-trace 1") {
    throw FormatError("trace: missing 'psk-trace 1' header");
  }
  Trace trace;
  {
    const auto fields = split(next_line(), ' ');
    if (fields.size() != 2 || fields[0] != "app") {
      throw FormatError("trace: missing app line");
    }
    trace.app_name = fields[1] == "-" ? "" : fields[1];
  }
  std::size_t rank_count = 0;
  {
    const auto fields = split(next_line(), ' ');
    if (fields.size() != 2 || fields[0] != "ranks") {
      throw FormatError("trace: missing ranks line");
    }
    rank_count = parse_u64(fields[1]);
  }
  for (std::size_t r = 0; r < rank_count; ++r) {
    const auto fields = split(next_line(), ' ');
    if (fields.size() != 5 || fields[0] != "rank") {
      throw FormatError("trace: missing rank header");
    }
    RankTrace rank;
    rank.rank = parse_int(fields[1]);
    rank.total_time = parse_double(fields[2]);
    rank.final_compute = parse_double(fields[3]);
    const std::size_t event_count = parse_u64(fields[4]);
    rank.events.reserve(std::min(event_count, kReserveCap));
    for (std::size_t e = 0; e < event_count; ++e) {
      rank.events.push_back(parse_event_impl(next_line()));
    }
    trace.ranks.push_back(std::move(rank));
  }
  return trace;
}

Trace trace_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  util::require(out.good(), "save_trace: cannot open " + path);
  write_trace(out, trace);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::require(in.good(), "load_trace: cannot open " + path);
  // Auto-detect: binary traces start with "PSKTRB01", text with
  // "psk-trace 1".
  char probe = '\0';
  in.get(probe);
  in.unget();
  if (probe == 'P') return read_trace_binary(in);
  return read_trace(in);
}

}  // namespace psk::trace

namespace psk::trace {

namespace {

constexpr char kBinaryMagic[8] = {'P', 'S', 'K', 'T', 'R', 'B', '0', '1'};

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in.good()) throw FormatError("binary trace: truncated input");
  return value;
}

void put_string(std::ostream& out, const std::string& text) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(text.size()));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string get_string(std::istream& in) {
  const auto size = get<std::uint32_t>(in);
  if (size > (1u << 20)) throw FormatError("binary trace: string too long");
  std::string text(size, '\0');
  in.read(text.data(), size);
  if (!in.good()) throw FormatError("binary trace: truncated string");
  return text;
}

void put_event(std::ostream& out, const TraceEvent& event) {
  put<std::uint8_t>(out, static_cast<std::uint8_t>(event.type));
  put<std::int32_t>(out, event.peer);
  put<std::uint64_t>(out, event.bytes);
  put<std::int32_t>(out, event.tag);
  put<double>(out, event.t_start);
  put<double>(out, event.t_end);
  put<double>(out, event.pre_compute);
  put<double>(out, event.interior_compute);
  put<double>(out, event.pre_mem_bytes);
  put<double>(out, event.interior_mem_bytes);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(event.parts.size()));
  for (const mpi::PeerBytes& part : event.parts) {
    put<std::int32_t>(out, part.peer);
    put<std::uint64_t>(out, part.bytes);
    put<std::uint8_t>(out, part.outgoing ? 1 : 0);
    put<std::int32_t>(out, part.tag);
  }
  put<std::uint32_t>(out, event.request);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(event.requests.size()));
  for (std::uint32_t id : event.requests) put<std::uint32_t>(out, id);
}

TraceEvent get_event(std::istream& in) {
  TraceEvent event;
  const auto raw_type = get<std::uint8_t>(in);
  // Validate through the name table so corrupt bytes fail loudly.
  event.type = mpi::call_type_from_name(
      mpi::call_type_name(static_cast<mpi::CallType>(raw_type)));
  event.peer = get<std::int32_t>(in);
  event.bytes = get<std::uint64_t>(in);
  event.tag = get<std::int32_t>(in);
  event.t_start = get<double>(in);
  event.t_end = get<double>(in);
  event.pre_compute = get<double>(in);
  event.interior_compute = get<double>(in);
  event.pre_mem_bytes = get<double>(in);
  event.interior_mem_bytes = get<double>(in);
  const auto parts = get<std::uint32_t>(in);
  if (parts > (1u << 20)) throw FormatError("binary trace: too many parts");
  event.parts.reserve(std::min<std::size_t>(parts, kReserveCap));
  for (std::uint32_t i = 0; i < parts; ++i) {
    mpi::PeerBytes part;
    part.peer = get<std::int32_t>(in);
    part.bytes = get<std::uint64_t>(in);
    part.outgoing = get<std::uint8_t>(in) != 0;
    part.tag = get<std::int32_t>(in);
    event.parts.push_back(part);
  }
  event.request = get<std::uint32_t>(in);
  const auto requests = get<std::uint32_t>(in);
  if (requests > (1u << 20)) {
    throw FormatError("binary trace: too many requests");
  }
  event.requests.reserve(std::min<std::size_t>(requests, kReserveCap));
  for (std::uint32_t i = 0; i < requests; ++i) {
    event.requests.push_back(get<std::uint32_t>(in));
  }
  return event;
}

}  // namespace

void write_trace_binary(std::ostream& out, const Trace& trace) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  put_string(out, trace.app_name);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.ranks.size()));
  for (const RankTrace& rank : trace.ranks) {
    put<std::int32_t>(out, rank.rank);
    put<double>(out, rank.total_time);
    put<double>(out, rank.final_compute);
    put<std::uint64_t>(out, rank.events.size());
    for (const TraceEvent& event : rank.events) put_event(out, event);
  }
}

Trace read_trace_binary(std::istream& in) {
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in.good() ||
      !std::equal(std::begin(magic), std::end(magic), kBinaryMagic)) {
    throw FormatError("binary trace: bad magic");
  }
  Trace trace;
  trace.app_name = get_string(in);
  const auto rank_count = get<std::uint32_t>(in);
  if (rank_count > (1u << 16)) {
    throw FormatError("binary trace: implausible rank count");
  }
  for (std::uint32_t r = 0; r < rank_count; ++r) {
    RankTrace rank;
    rank.rank = get<std::int32_t>(in);
    rank.total_time = get<double>(in);
    rank.final_compute = get<double>(in);
    const auto events = get<std::uint64_t>(in);
    if (events > (1ull << 32)) {
      throw FormatError("binary trace: implausible event count");
    }
    rank.events.reserve(
        std::min(static_cast<std::size_t>(events), kReserveCap));
    for (std::uint64_t e = 0; e < events; ++e) {
      rank.events.push_back(get_event(in));
    }
    trace.ranks.push_back(std::move(rank));
  }
  return trace;
}

void save_trace_binary(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  util::require(out.good(), "save_trace_binary: cannot open " + path);
  write_trace_binary(out, trace);
}

}  // namespace psk::trace
