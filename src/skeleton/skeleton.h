// Performance skeletons: construction, analysis and replay.
//
// A skeleton is a short-running synthetic program whose execution time in
// any scenario reflects the application's execution time divided by the
// scaling factor K.  It is built by scaling the application's execution
// signature and replayed as an SPMD program against the virtual MPI
// runtime (the executable equivalent of the generated C program; see
// psk::codegen for the emitted source artifact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/world.h"
#include "sig/signature.h"
#include "skeleton/scale.h"

namespace psk::skeleton {

struct Skeleton {
  std::string app_name;
  /// The scaling factor K the skeleton was built with.
  double scaling_factor = 1;
  /// Expected dedicated-run duration: traced app time / K.
  double intended_time = 0;
  /// Per-rank scaled sequences (plus scaled trailing compute).
  std::vector<sig::RankSignature> ranks;
  /// Shortest-"good"-skeleton analysis (section 3.4).
  double min_good_time = 0;
  /// False when intended_time < min_good_time: the framework warns that the
  /// skeleton no longer contains a full iteration of the dominant sequence.
  bool good = true;

  int rank_count() const { return static_cast<int>(ranks.size()); }
};

/// Analysis of the dominant execution sequence (paper section 3.4): the
/// smallest per-iteration time among loops that cover at least
/// `dominance_fraction` of the application's execution time.  A skeleton is
/// "good" if it retains at least one full iteration of that sequence.
struct GoodSkeletonEstimate {
  /// Estimated minimum execution time of the smallest good skeleton.
  double min_good_time = 0;
  /// Fraction of the run covered by the chosen dominant loop.
  double dominant_coverage = 0;
};

/// Named options for the shortest-"good"-skeleton analysis (replaces the
/// positional dominance_fraction tail).
struct GoodSkeletonOptions {
  /// Minimum fraction of the run a loop must cover to count as dominant.
  double dominance_fraction = 0.4;
};

GoodSkeletonEstimate estimate_good_skeleton(
    const sig::Signature& signature, const GoodSkeletonOptions& options = {});

/// Deprecated positional form, kept as a thin forwarder for one release:
/// prefer the GoodSkeletonOptions overload above.
GoodSkeletonEstimate estimate_good_skeleton(const sig::Signature& signature,
                                            double dominance_fraction);

/// Builds the skeleton for scaling factor `k` (>= 1).
Skeleton build_skeleton(const sig::Signature& signature, double k,
                        const ScaleOptions& options = {});

/// Builds the skeleton whose dedicated execution time should be
/// `target_seconds` (K = traced elapsed / target).
Skeleton build_skeleton_for_time(const sig::Signature& signature,
                                 double target_seconds,
                                 const ScaleOptions& options = {});

/// Replay behaviour knobs.
struct ReplayOptions {
  /// When set, each compute phase samples its duration from the cluster's
  /// observed distribution (Gaussian around the mean with the Welford
  /// variance, clamped at zero) instead of always using the mean -- the
  /// paper's section 4.4 future-work refinement for unbalanced scenarios.
  bool sample_compute_distribution = false;
  /// Seed for the sampling stream (shared by all ranks, so that duration
  /// draws are correlated across ranks like real SPMD workload variation).
  std::uint64_t sample_seed = 0x5EEDULL;
};

/// SPMD replay program for the skeleton (one coroutine per rank).
mpi::RankMain skeleton_program(const Skeleton& skeleton,
                               const ReplayOptions& options = {});

/// Convenience: launches the skeleton on a world and returns its parallel
/// execution time.  The world must have as many ranks as the skeleton.
sim::Time run_skeleton(mpi::World& world, const Skeleton& skeleton,
                       const ReplayOptions& options = {});

// ---------------------------------------------------------------- predictor

/// Dedicated-testbed calibration of a skeleton (paper section 4.2): the
/// measured scaling ratio uses the skeleton's *actual* dedicated execution
/// time, which can differ slightly from the intended time.
struct Calibration {
  double app_dedicated_time = 0;
  double skeleton_dedicated_time = 0;

  double measured_scaling_ratio() const {
    return skeleton_dedicated_time > 0
               ? app_dedicated_time / skeleton_dedicated_time
               : 0;
  }
};

/// Predicted application time in a scenario where the skeleton ran for
/// `skeleton_time_in_scenario`.
double predict_app_time(const Calibration& calibration,
                        double skeleton_time_in_scenario);

/// Prediction error in percent: |predicted - actual| / actual * 100.
double prediction_error_percent(double predicted, double actual);

}  // namespace psk::skeleton
