#include "skeleton/scale.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/error.h"

namespace psk::skeleton {

namespace {

using sig::SigEvent;
using sig::SigNode;
using sig::SigSeq;

constexpr double kUnityTolerance = 1.0 + 1e-9;

/// Flattens a loop body into (leaf, executions-per-body-iteration) pairs in
/// first-appearance order, multiplying out nested loop counts.
void flatten_counts(const SigSeq& seq, std::uint64_t multiplier,
                    std::vector<std::pair<SigEvent, std::uint64_t>>& out) {
  for (const SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf) {
      out.emplace_back(node.event, multiplier);
    } else {
      flatten_counts(node.body, multiplier * node.iterations, out);
    }
  }
}

/// Steps 2+3 applied to `r` unrolled iterations of `body`: per distinct
/// operation position, `full = total/K` complete occurrences survive and
/// `total%K` occurrences are parameter-scaled by K.
void emit_remainder(const SigSeq& body, std::uint64_t r, double k,
                    std::uint64_t k_int, const ScaleOptions& options,
                    SigSeq& out) {
  std::vector<std::pair<SigEvent, std::uint64_t>> flat;
  flatten_counts(body, r, flat);
  for (auto& [event, total] : flat) {
    const std::uint64_t full = total / k_int;
    const std::uint64_t leftover = total % k_int;
    if (full == 1) {
      out.push_back(SigNode::leaf(event));
    } else if (full > 1) {
      SigSeq one;
      one.push_back(SigNode::leaf(event));
      out.push_back(SigNode::loop(full, std::move(one)));
    }
    if (leftover > 0) {
      const SigEvent scaled = scale_event(event, ScaleSpec{k, options});
      if (leftover == 1) {
        out.push_back(SigNode::leaf(scaled));
      } else {
        SigSeq one;
        one.push_back(SigNode::leaf(scaled));
        out.push_back(SigNode::loop(leftover, std::move(one)));
      }
    }
  }
}

}  // namespace

SigEvent scale_event(const SigEvent& event, const ScaleSpec& spec) {
  const double factor = spec.factor;
  const ScaleOptions& options = spec.options;
  util::require(factor >= 1.0, "scale_event: factor must be >= 1");
  SigEvent scaled = event;
  scaled.pre_compute /= factor;
  scaled.pre_compute_m2 /= factor * factor;  // Var(x/K) = Var(x)/K^2
  scaled.interior_compute /= factor;
  scaled.pre_mem_bytes /= factor;       // intensity (bytes/work) preserved
  scaled.interior_mem_bytes /= factor;
  scaled.mean_duration /= factor;
  if (options.scale_message_bytes) {
    scaled.bytes /= factor;
    for (SigEvent::Part& part : scaled.parts) part.bytes /= factor;
  }
  return scaled;
}

sig::SigSeq scale_sequence(const SigSeq& seq, const ScaleSpec& spec) {
  const double k = spec.factor;
  const ScaleOptions& options = spec.options;
  util::require(k >= 1.0, "scale_sequence: K must be >= 1");
  SigSeq out;
  if (k <= kUnityTolerance) {
    out = seq;
    return out;
  }
  const std::uint64_t k_int =
      std::max<std::uint64_t>(2, static_cast<std::uint64_t>(std::llround(k)));

  for (const SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf) {
      // Operation outside any loop: parameter scaling is the only option.
      out.push_back(
          SigNode::leaf(scale_event(node.event, ScaleSpec{k, options})));
      continue;
    }
    const std::uint64_t n = node.iterations;
    if (static_cast<double>(n) >= k) {
      // Step 1: full iterations survive.  The body is NOT scaled -- reducing
      // the count already divides everything inside by K.
      const std::uint64_t q = n / k_int;
      const std::uint64_t r = n % k_int;
      if (q > 0) {
        out.push_back(SigNode::loop(q, node.body));
      }
      if (r > 0 && options.unroll_remainders) {
        emit_remainder(node.body, r, k, k_int, options, out);
      }
    } else {
      // Step 4: count collapses to one iteration; the residual factor
      // distributes into the body.
      SigSeq scaled_body = scale_sequence(
          node.body, ScaleSpec{k / static_cast<double>(n), options});
      out.push_back(SigNode::loop(1, std::move(scaled_body)));
    }
  }
  return out;
}

sig::SigSeq scale_sequence(const sig::SigSeq& seq, double k,
                           const ScaleOptions& options) {
  return scale_sequence(seq, ScaleSpec{k, options});
}

sig::SigEvent scale_event(const sig::SigEvent& event, double factor,
                          const ScaleOptions& options) {
  return scale_event(event, ScaleSpec{factor, options});
}

}  // namespace psk::skeleton
