#include "skeleton/skeleton.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace psk::skeleton {

namespace {

using sig::SigEvent;
using sig::SigNode;
using sig::SigSeq;

/// Walks every loop in the sequence; for loops whose *cumulative* share of
/// the run (body time x own iterations x all enclosing iteration counts)
/// reaches `dominance_fraction`, tracks the smallest body time.  The
/// multiplier matters for nests: CG's inner 25-iteration loop covers ~95%
/// of the run only through its 75-iteration outer loop.
void scan_dominant(const SigSeq& seq, double rank_total, double multiplier,
                   double dominance_fraction, double& best_body_time,
                   double& best_coverage) {
  for (const SigNode& node : seq) {
    if (node.kind != SigNode::Kind::kLoop) continue;
    const double body_time = sig::expanded_time(node.body);
    const double loop_time =
        body_time * static_cast<double>(node.iterations) * multiplier;
    const double coverage = rank_total > 0 ? loop_time / rank_total : 0;
    if (coverage >= dominance_fraction && body_time < best_body_time) {
      best_body_time = body_time;
      best_coverage = coverage;
    }
    scan_dominant(node.body, rank_total,
                  multiplier * static_cast<double>(node.iterations),
                  dominance_fraction, best_body_time, best_coverage);
  }
}

}  // namespace

GoodSkeletonEstimate estimate_good_skeleton(
    const sig::Signature& signature, const GoodSkeletonOptions& options) {
  GoodSkeletonEstimate estimate;
  // Every rank must retain a full dominant iteration, so the requirement is
  // the strictest (largest) per-rank minimum.
  for (const sig::RankSignature& rank : signature.ranks) {
    double best_body_time = std::numeric_limits<double>::infinity();
    double best_coverage = 0;
    scan_dominant(rank.roots, rank.total_time, /*multiplier=*/1.0,
                  options.dominance_fraction, best_body_time, best_coverage);
    if (best_body_time == std::numeric_limits<double>::infinity()) {
      // No dominant loop: only the whole run reproduces the behaviour.
      best_body_time = rank.total_time;
      best_coverage = 1.0;
    }
    if (best_body_time > estimate.min_good_time) {
      estimate.min_good_time = best_body_time;
      estimate.dominant_coverage = best_coverage;
    }
  }
  return estimate;
}

GoodSkeletonEstimate estimate_good_skeleton(const sig::Signature& signature,
                                            double dominance_fraction) {
  return estimate_good_skeleton(signature,
                                GoodSkeletonOptions{dominance_fraction});
}

Skeleton build_skeleton(const sig::Signature& signature, double k,
                        const ScaleOptions& options) {
  util::require(k >= 1.0, "build_skeleton: K must be >= 1");
  util::require(!signature.ranks.empty(), "build_skeleton: empty signature");

  Skeleton skeleton;
  skeleton.app_name = signature.app_name;
  skeleton.scaling_factor = k;
  skeleton.intended_time = signature.elapsed() / k;

  for (const sig::RankSignature& rank : signature.ranks) {
    sig::RankSignature scaled;
    scaled.rank = rank.rank;
    scaled.roots = scale_sequence(rank.roots, ScaleSpec{k, options});
    scaled.total_time = rank.total_time / k;
    scaled.final_compute = rank.final_compute / k;
    skeleton.ranks.push_back(std::move(scaled));
  }

  const GoodSkeletonEstimate estimate = estimate_good_skeleton(signature);
  skeleton.min_good_time = estimate.min_good_time;
  skeleton.good = skeleton.intended_time >= estimate.min_good_time;
  return skeleton;
}

Skeleton build_skeleton_for_time(const sig::Signature& signature,
                                 double target_seconds,
                                 const ScaleOptions& options) {
  util::require(target_seconds > 0,
                "build_skeleton_for_time: target must be positive");
  const double k = std::max(1.0, signature.elapsed() / target_seconds);
  return build_skeleton(signature, k, options);
}

namespace {

std::uint64_t round_bytes(double bytes) {
  return bytes <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(bytes));
}

/// Per-rank replay state: the options plus the sampling stream.
struct ReplayContext {
  ReplayOptions options;
  util::Rng rng;

  double compute_duration(const SigEvent& event) {
    if (!options.sample_compute_distribution || event.observations < 2) {
      return event.pre_compute;
    }
    const double sample =
        rng.normal(event.pre_compute, event.pre_compute_stddev());
    return sample > 0 ? sample : 0;
  }
};

std::uint64_t round_mem(double bytes) {
  return bytes <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(bytes));
}

sim::Task replay_event(mpi::Comm& comm, const SigEvent& event,
                       ReplayContext& context) {
  const double pre = context.compute_duration(event);
  if (pre > 0) co_await comm.compute(pre, round_mem(event.pre_mem_bytes));
  switch (event.type) {
    case mpi::CallType::kSend:
      co_await comm.send(event.peer, round_bytes(event.bytes), event.tag);
      break;
    case mpi::CallType::kRecv:
      co_await comm.recv(event.peer, round_bytes(event.bytes), event.tag);
      break;
    case mpi::CallType::kSendrecv: {
      // parts[0] is the outgoing half, parts[1] the incoming one.
      util::require(event.parts.size() == 2, "skeleton: bad Sendrecv parts");
      co_await comm.sendrecv(event.parts[0].peer,
                             round_bytes(event.parts[0].bytes),
                             event.parts[1].peer,
                             round_bytes(event.parts[1].bytes), event.tag);
      break;
    }
    case mpi::CallType::kExchange: {
      std::vector<mpi::Request> requests;
      requests.reserve(event.parts.size());
      for (const SigEvent::Part& part : event.parts) {
        if (!part.outgoing) {
          requests.push_back(
              comm.irecv(part.peer, round_bytes(part.bytes), part.tag));
        }
      }
      if (event.interior_compute > 0) {
        co_await comm.compute(event.interior_compute,
                              round_mem(event.interior_mem_bytes));
      }
      for (const SigEvent::Part& part : event.parts) {
        if (part.outgoing) {
          requests.push_back(
              comm.isend(part.peer, round_bytes(part.bytes), part.tag));
        }
      }
      co_await comm.waitall(std::move(requests));
      break;
    }
    case mpi::CallType::kBarrier:
      co_await comm.barrier();
      break;
    case mpi::CallType::kBcast:
      co_await comm.bcast(event.peer, round_bytes(event.bytes));
      break;
    case mpi::CallType::kReduce:
      co_await comm.reduce(event.peer, round_bytes(event.bytes));
      break;
    case mpi::CallType::kAllreduce:
      co_await comm.allreduce(round_bytes(event.bytes));
      break;
    case mpi::CallType::kAllgather:
      co_await comm.allgather(round_bytes(event.bytes));
      break;
    case mpi::CallType::kGather:
      co_await comm.gather(event.peer, round_bytes(event.bytes));
      break;
    case mpi::CallType::kScatter:
      co_await comm.scatter(event.peer, round_bytes(event.bytes));
      break;
    case mpi::CallType::kScan:
      co_await comm.scan(round_bytes(event.bytes));
      break;
    case mpi::CallType::kAlltoall:
      co_await comm.alltoall(round_bytes(event.bytes));
      break;
    case mpi::CallType::kAlltoallv: {
      std::vector<mpi::Bytes> counts(static_cast<std::size_t>(comm.size()),
                                     0);
      for (const SigEvent::Part& part : event.parts) {
        if (part.peer >= 0 && part.peer < comm.size()) {
          counts[static_cast<std::size_t>(part.peer)] =
              round_bytes(part.bytes);
        }
      }
      co_await comm.alltoallv(std::move(counts));
      break;
    }
    default:
      throw ConfigError("skeleton: cannot replay event type " +
                        mpi::call_type_name(event.type));
  }
}

sim::Task replay_seq(mpi::Comm& comm, const SigSeq& seq,
                     ReplayContext& context) {
  for (const SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf) {
      co_await replay_event(comm, node.event, context);
    } else {
      for (std::uint64_t i = 0; i < node.iterations; ++i) {
        co_await replay_seq(comm, node.body, context);
      }
    }
  }
}

sim::Task replay_rank(mpi::Comm& comm, const sig::RankSignature& rank,
                      std::shared_ptr<ReplayContext> context) {
  co_await replay_seq(comm, rank.roots, *context);
  if (rank.final_compute > 0) co_await comm.compute(rank.final_compute);
}

}  // namespace

mpi::RankMain skeleton_program(const Skeleton& skeleton,
                               const ReplayOptions& options) {
  // The returned lambda holds a copy so callers may drop the Skeleton.
  const auto shared = std::make_shared<const Skeleton>(skeleton);
  return [shared, options](mpi::Comm& comm) -> sim::Task {
    util::require(comm.size() == shared->rank_count(),
                  "skeleton_program: world size does not match skeleton");
    auto context = std::make_shared<ReplayContext>();
    context->options = options;
    // All ranks share one sampling stream: SPMD ranks visit their compute
    // sites in near-lockstep, so identical streams yield *correlated*
    // durations ("iteration i is heavy for everyone"), which is how real
    // workload variation behaves.  Independent streams would make every
    // synchronization wait for the unluckiest rank and systematically
    // inflate the replay.
    context->rng.reseed(options.sample_seed);
    return replay_rank(comm,
                       shared->ranks[static_cast<std::size_t>(comm.rank())],
                       std::move(context));
  };
}

sim::Time run_skeleton(mpi::World& world, const Skeleton& skeleton,
                       const ReplayOptions& options) {
  world.launch(skeleton_program(skeleton, options));
  return world.run();
}

double predict_app_time(const Calibration& calibration,
                        double skeleton_time_in_scenario) {
  return calibration.measured_scaling_ratio() * skeleton_time_in_scenario;
}

double prediction_error_percent(double predicted, double actual) {
  util::require(actual > 0, "prediction_error_percent: actual must be > 0");
  return std::abs(predicted - actual) / actual * 100.0;
}

}  // namespace psk::skeleton
