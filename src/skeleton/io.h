// Text serialization of performance skeletons.
//
// A skeleton file is the artifact a deployment ships to remote sites: the
// scaled per-rank sequences plus the construction metadata (K, intended
// runtime, the smallest-good-skeleton verdict).  The rank sequences reuse
// the signature node format (sig/io.h).
#pragma once

#include <iosfwd>
#include <string>

#include "skeleton/skeleton.h"

namespace psk::skeleton {

void write_skeleton(std::ostream& out, const Skeleton& skeleton);
std::string skeleton_to_string(const Skeleton& skeleton);

/// Parses; throws FormatError on malformed input.
Skeleton read_skeleton(std::istream& in);
Skeleton skeleton_from_string(const std::string& text);

void save_skeleton(const std::string& path, const Skeleton& skeleton);
Skeleton load_skeleton(const std::string& path);

}  // namespace psk::skeleton
