// Signature scaling: the heart of skeleton construction (paper section 3.3).
//
// Given an execution signature and a scaling factor K:
//   1. loop iteration counts are divided by K (one full-fidelity iteration
//      of a loop survives whenever its count allows it);
//   2. remainder iterations are unrolled into the "unreduced part", where
//      groups of K occurrences of an identical operation collapse to one
//      full occurrence;
//   3. the operations still left over are scaled down *by parameter*: the
//      duration of compute phases and the byte counts of messages shrink by
//      K -- the paper's "last resort", inaccurate because message latency
//      does not scale with byte count;
//   4. a loop whose count is smaller than (the remaining) K keeps one
//      iteration whose body is scaled by the residual factor K/count --
//      such a skeleton no longer contains a full iteration of that loop,
//      which is exactly the condition the shortest-"good"-skeleton warning
//      detects.
#pragma once

#include "sig/signature.h"

namespace psk::skeleton {

struct ScaleOptions {
  /// Disables step 3's byte scaling: leftover communication operations keep
  /// their full byte counts (used by the latency-scaling ablation).
  bool scale_message_bytes = true;
  /// Disables remainder grouping: remainder iterations are dropped instead
  /// of unrolled+grouped (used by ablation only; not paper behaviour).
  bool unroll_remainders = true;
};

/// The full specification of one scaling operation: the factor K plus the
/// behaviour knobs (replaces the positional double + options tail).
struct ScaleSpec {
  /// Scaling factor K (>= 1).
  double factor = 1.0;
  ScaleOptions options;
};

/// Scales one rank's node sequence by spec.factor (>= 1); factor = 1
/// returns a copy.
sig::SigSeq scale_sequence(const sig::SigSeq& seq, const ScaleSpec& spec);

/// Parameter-scales a single event (compute and bytes divided by factor).
sig::SigEvent scale_event(const sig::SigEvent& event, const ScaleSpec& spec);

/// Deprecated positional forms, kept as thin forwarders for one release:
/// prefer the ScaleSpec overloads above.
sig::SigSeq scale_sequence(const sig::SigSeq& seq, double k,
                           const ScaleOptions& options = {});
sig::SigEvent scale_event(const sig::SigEvent& event, double factor,
                          const ScaleOptions& options = {});

}  // namespace psk::skeleton
