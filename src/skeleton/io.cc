#include "skeleton/io.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sig/io.h"
#include "util/error.h"

namespace psk::skeleton {

namespace {

std::string format_double(double value) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", value);
  return buf.data();
}

}  // namespace

void write_skeleton(std::ostream& out, const Skeleton& skeleton) {
  out << "psk-skeleton 1\n";
  out << "app " << (skeleton.app_name.empty() ? "-" : skeleton.app_name)
      << "\n";
  out << "k " << format_double(skeleton.scaling_factor) << "\n";
  out << "intended " << format_double(skeleton.intended_time) << "\n";
  out << "min_good " << format_double(skeleton.min_good_time) << "\n";
  out << "good " << (skeleton.good ? 1 : 0) << "\n";
  // Reuse the signature body format for the rank sequences.
  sig::Signature body;
  body.app_name = skeleton.app_name;
  body.ranks = skeleton.ranks;
  out << "ranks " << body.ranks.size() << "\n";
  std::ostringstream rank_text;
  sig::write_signature(rank_text, body);
  // Skip the signature's own 5-line header; keep the rank blocks.
  std::istringstream in(rank_text.str());
  std::string line;
  for (int skip = 0; skip < 5; ++skip) std::getline(in, line);
  while (std::getline(in, line)) out << line << "\n";
}

std::string skeleton_to_string(const Skeleton& skeleton) {
  std::ostringstream out;
  write_skeleton(out, skeleton);
  return out.str();
}

Skeleton read_skeleton(std::istream& in) {
  const auto next_line = [&in]() -> std::string {
    std::string line;
    if (!std::getline(in, line)) {
      throw FormatError("skeleton: truncated input");
    }
    return line;
  };
  const auto scalar = [](const std::string& line, const char* key) {
    std::istringstream fields(line);
    std::string name, value;
    fields >> name >> value;
    if (name != key || value.empty()) {
      throw FormatError(std::string("skeleton: missing ") + key + " line");
    }
    return value;
  };

  const auto number = [](const std::string& text) {
    try {
      return std::stod(text);
    } catch (const std::exception&) {
      throw FormatError("skeleton: bad number '" + text + "'");
    }
  };

  if (next_line() != "psk-skeleton 1") {
    throw FormatError("skeleton: missing 'psk-skeleton 1' header");
  }
  Skeleton skeleton;
  const std::string app = scalar(next_line(), "app");
  skeleton.app_name = app == "-" ? "" : app;
  skeleton.scaling_factor = number(scalar(next_line(), "k"));
  skeleton.intended_time = number(scalar(next_line(), "intended"));
  skeleton.min_good_time = number(scalar(next_line(), "min_good"));
  skeleton.good = scalar(next_line(), "good") == "1";
  const auto rank_count =
      static_cast<std::size_t>(number(scalar(next_line(), "ranks")));

  // Re-wrap the remaining rank blocks as a signature document and reuse its
  // parser.
  std::ostringstream rest;
  rest << "psk-signature 1\napp -\nthreshold 0\nratio 1\nranks "
       << rank_count << "\n";
  rest << in.rdbuf();
  std::istringstream body(rest.str());
  sig::Signature parsed = sig::read_signature(body);
  skeleton.ranks = std::move(parsed.ranks);
  return skeleton;
}

Skeleton skeleton_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_skeleton(in);
}

void save_skeleton(const std::string& path, const Skeleton& skeleton) {
  std::ofstream out(path);
  util::require(out.good(), "save_skeleton: cannot open " + path);
  write_skeleton(out, skeleton);
}

Skeleton load_skeleton(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "load_skeleton: cannot open " + path);
  return read_skeleton(in);
}

}  // namespace psk::skeleton
