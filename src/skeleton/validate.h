// Cross-rank structural validation of skeletons.
//
// Per-rank signatures are compressed independently; the scaling transform
// divides loop counts per rank.  When clustering fragments two communicating
// ranks' traces differently, their scaled message counts can disagree -- a
// skeleton that would deadlock at replay.  check_consistency() detects this
// statically: every point-to-point channel must have equal send and receive
// totals, and every rank must invoke each collective the same number of
// times.  The framework retries compression at higher similarity thresholds
// until the skeleton validates.
#pragma once

#include <string>

#include "skeleton/skeleton.h"

namespace psk::skeleton {

struct ConsistencyReport {
  bool consistent = true;
  /// Number of (src, dst, tag) channels whose send/recv totals disagree.
  std::size_t mismatched_channels = 0;
  /// Human-readable description of the first few mismatches.
  std::string detail;
};

ConsistencyReport check_consistency(const Skeleton& skeleton);

}  // namespace psk::skeleton
