#include "skeleton/validate.h"

#include <cstdint>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

namespace psk::skeleton {

namespace {

using sig::SigEvent;
using sig::SigNode;
using sig::SigSeq;

using ChannelKey = std::tuple<int, int, int>;  // src, dst, tag

struct Counters {
  std::map<ChannelKey, std::int64_t> sends;
  std::map<ChannelKey, std::int64_t> recvs;
  /// Per-rank collective call counts by type.
  std::vector<std::map<mpi::CallType, std::int64_t>> collectives;
};

void count_event(const SigEvent& event, int rank, std::int64_t multiplier,
                 Counters& counters) {
  using mpi::CallType;
  switch (event.type) {
    case CallType::kSend:
      counters.sends[{rank, event.peer, event.tag}] += multiplier;
      break;
    case CallType::kRecv:
      counters.recvs[{event.peer, rank, event.tag}] += multiplier;
      break;
    case CallType::kSendrecv:
      if (event.parts.size() == 2) {
        counters.sends[{rank, event.parts[0].peer, event.parts[0].tag}] +=
            multiplier;
        counters.recvs[{event.parts[1].peer, rank, event.parts[1].tag}] +=
            multiplier;
      }
      break;
    case CallType::kExchange:
      for (const SigEvent::Part& part : event.parts) {
        if (part.outgoing) {
          counters.sends[{rank, part.peer, part.tag}] += multiplier;
        } else {
          counters.recvs[{part.peer, rank, part.tag}] += multiplier;
        }
      }
      break;
    default:
      if (mpi::is_collective(event.type)) {
        counters.collectives[static_cast<std::size_t>(rank)][event.type] +=
            multiplier;
      }
      break;
  }
}

void count_seq(const SigSeq& seq, int rank, std::int64_t multiplier,
               Counters& counters) {
  for (const SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf) {
      count_event(node.event, rank, multiplier, counters);
    } else {
      count_seq(node.body, rank,
                multiplier * static_cast<std::int64_t>(node.iterations),
                counters);
    }
  }
}

}  // namespace

ConsistencyReport check_consistency(const Skeleton& skeleton) {
  Counters counters;
  counters.collectives.resize(
      static_cast<std::size_t>(skeleton.rank_count()));
  for (const sig::RankSignature& rank : skeleton.ranks) {
    count_seq(rank.roots, rank.rank, 1, counters);
  }

  ConsistencyReport report;
  std::ostringstream detail;
  constexpr std::size_t kMaxDetails = 4;

  const auto note_mismatch = [&](const ChannelKey& key, std::int64_t sends,
                                 std::int64_t recvs) {
    report.consistent = false;
    ++report.mismatched_channels;
    if (report.mismatched_channels <= kMaxDetails) {
      detail << "channel " << std::get<0>(key) << "->" << std::get<1>(key)
             << " tag " << std::get<2>(key) << ": " << sends << " sends vs "
             << recvs << " recvs; ";
    }
  };

  for (const auto& [key, send_count] : counters.sends) {
    const auto it = counters.recvs.find(key);
    const std::int64_t recv_count =
        it == counters.recvs.end() ? 0 : it->second;
    if (recv_count != send_count) note_mismatch(key, send_count, recv_count);
  }
  for (const auto& [key, recv_count] : counters.recvs) {
    if (counters.sends.find(key) == counters.sends.end()) {
      note_mismatch(key, 0, recv_count);
    }
  }

  // Collectives: every rank must call each collective equally often.
  if (!counters.collectives.empty()) {
    const auto& reference = counters.collectives.front();
    for (std::size_t r = 1; r < counters.collectives.size(); ++r) {
      if (counters.collectives[r] != reference) {
        report.consistent = false;
        ++report.mismatched_channels;
        if (report.mismatched_channels <= kMaxDetails) {
          detail << "rank " << r
                 << " collective call counts differ from rank 0; ";
        }
      }
    }
  }

  report.detail = detail.str();
  return report;
}

}  // namespace psk::skeleton
