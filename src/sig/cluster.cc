#include "sig/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace psk::sig {

namespace {

constexpr double kIncompatible = std::numeric_limits<double>::infinity();

/// Relative difference with an insensitivity floor: quantities entirely
/// below the floor (scheduling noise, tiny control messages) carry no
/// signal and compare equal.
double rel_diff_floored(double a, double b, double floor) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom <= floor) return 0;
  return std::abs(a - b) / denom;
}

bool parts_compatible(const trace::TraceEvent& event, const SigEvent& proto) {
  if (event.parts.size() != proto.parts.size()) return false;
  for (std::size_t i = 0; i < event.parts.size(); ++i) {
    if (event.parts[i].peer != proto.parts[i].peer ||
        event.parts[i].outgoing != proto.parts[i].outgoing ||
        event.parts[i].tag != proto.parts[i].tag) {
      return false;
    }
  }
  return true;
}

SigEvent prototype_from(const trace::TraceEvent& event, int cluster_id) {
  SigEvent proto;
  proto.type = event.type;
  proto.peer = event.peer;
  proto.tag = event.tag;
  proto.bytes = static_cast<double>(event.bytes);
  proto.parts.reserve(event.parts.size());
  for (const mpi::PeerBytes& part : event.parts) {
    proto.parts.push_back(SigEvent::Part{part.peer,
                                         static_cast<double>(part.bytes),
                                         part.outgoing, part.tag});
  }
  proto.pre_compute = event.pre_compute;
  proto.interior_compute = event.interior_compute;
  proto.pre_mem_bytes = event.pre_mem_bytes;
  proto.interior_mem_bytes = event.interior_mem_bytes;
  proto.mean_duration = event.duration();
  proto.cluster_id = cluster_id;
  return proto;
}

/// Folds `event` into the running mean of a prototype with `count` members.
void merge_into(SigEvent& proto, std::size_t count,
                const trace::TraceEvent& event) {
  const double n = static_cast<double>(count);
  const double w = 1.0 / (n + 1.0);
  const auto blend = [w, n](double mean, double sample) {
    return (mean * n + sample) * w;
  };
  proto.bytes = blend(proto.bytes, static_cast<double>(event.bytes));
  for (std::size_t i = 0; i < proto.parts.size(); ++i) {
    proto.parts[i].bytes = blend(proto.parts[i].bytes,
                                 static_cast<double>(event.parts[i].bytes));
  }
  // Welford update: keeps the duration distribution alongside the mean
  // (consumed by distribution-sampling replay, section 4.4 future work).
  const double delta = event.pre_compute - proto.pre_compute;
  proto.pre_compute = blend(proto.pre_compute, event.pre_compute);
  proto.pre_compute_m2 += delta * (event.pre_compute - proto.pre_compute);
  proto.observations += 1;
  proto.interior_compute =
      blend(proto.interior_compute, event.interior_compute);
  proto.pre_mem_bytes = blend(proto.pre_mem_bytes, event.pre_mem_bytes);
  proto.interior_mem_bytes =
      blend(proto.interior_mem_bytes, event.interior_mem_bytes);
  proto.mean_duration = blend(proto.mean_duration, event.duration());
}

}  // namespace

double dissimilarity(const trace::TraceEvent& event, const SigEvent& proto,
                     const ClusterOptions& options) {
  // The paper: "different MPI primitives and blocking and non-blocking calls
  // [are] distinct events ... never grouped together."  Peers and tags
  // identify the communication structure, so they must match exactly too.
  if (event.type != proto.type || event.peer != proto.peer ||
      event.tag != proto.tag || !parts_compatible(event, proto)) {
    return kIncompatible;
  }

  double d = 0;
  if (options.bytes_weight > 0) {
    double bytes_d = rel_diff_floored(static_cast<double>(event.bytes),
                                      proto.bytes, options.bytes_floor);
    for (std::size_t i = 0; i < event.parts.size(); ++i) {
      bytes_d = std::max(
          bytes_d,
          rel_diff_floored(static_cast<double>(event.parts[i].bytes),
                           proto.parts[i].bytes, options.bytes_floor));
    }
    d = std::max(d, options.bytes_weight * bytes_d);
  }
  if (options.compute_weight > 0) {
    const double compute_d =
        std::max(rel_diff_floored(event.pre_compute, proto.pre_compute,
                                  options.compute_floor),
                 rel_diff_floored(event.interior_compute,
                                  proto.interior_compute,
                                  options.compute_floor));
    d = std::max(d, options.compute_weight * compute_d);
  }
  return d;
}

ClusterResult cluster_events(const std::vector<trace::TraceEvent>& events,
                             const ClusterOptions& options) {
  // No column view supplied: scan prototypes directly.  dissimilarity()
  // front-loads the cheap structural rejections, and single-shot callers
  // tend to have few prototypes, so hashing fingerprints here would cost
  // more than it filters.  The columns overload below must stay
  // behaviorally identical (pinned by the SoA equivalence tests).
  ClusterResult result;
  result.symbols.reserve(events.size());

  for (const trace::TraceEvent& event : events) {
    int best = -1;
    double best_d = kIncompatible;
    for (std::size_t c = 0; c < result.prototypes.size(); ++c) {
      const double d = dissimilarity(event, result.prototypes[c], options);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0 && best_d <= options.threshold + 1e-9) {
      merge_into(result.prototypes[static_cast<std::size_t>(best)],
                 result.counts[static_cast<std::size_t>(best)], event);
      result.counts[static_cast<std::size_t>(best)] += 1;
      result.symbols.push_back(best);
    } else {
      const int id = static_cast<int>(result.prototypes.size());
      result.prototypes.push_back(prototype_from(event, id));
      result.counts.push_back(1);
      result.symbols.push_back(id);
    }
  }
  return result;
}

ClusterResult cluster_events(const std::vector<trace::TraceEvent>& events,
                             const trace::EventColumns& columns,
                             const ClusterOptions& options) {
  util::require(columns.size() == events.size(),
                "cluster_events: columns do not match the event stream");
  ClusterResult result;
  result.symbols.reserve(events.size());
  // Fingerprint column parallel to result.prototypes: the hot scan below
  // walks this dense array and only dereferences a prototype on a hit.
  std::vector<std::uint64_t> proto_fps;

  for (std::size_t e = 0; e < events.size(); ++e) {
    const trace::TraceEvent& event = events[e];
    const std::uint64_t fp = columns.compat[e];
    int best = -1;
    double best_d = kIncompatible;
    for (std::size_t c = 0; c < proto_fps.size(); ++c) {
      // Unequal fingerprints prove structural incompatibility, for which
      // dissimilarity() would return +infinity -- skipping cannot change
      // the argmin.  Equal fingerprints prove nothing (collisions), so the
      // exact comparison below still runs.
      if (proto_fps[c] != fp) continue;
      const double d = dissimilarity(event, result.prototypes[c], options);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    // The epsilon absorbs floating-point dust from the running-mean blend:
    // after many merges of *identical* events the prototype drifts by ULPs,
    // which must not open a new cluster at threshold 0.
    if (best >= 0 && best_d <= options.threshold + 1e-9) {
      merge_into(result.prototypes[static_cast<std::size_t>(best)],
                 result.counts[static_cast<std::size_t>(best)], event);
      result.counts[static_cast<std::size_t>(best)] += 1;
      result.symbols.push_back(best);
    } else {
      const int id = static_cast<int>(result.prototypes.size());
      result.prototypes.push_back(prototype_from(event, id));
      proto_fps.push_back(fp);
      result.counts.push_back(1);
      result.symbols.push_back(id);
    }
  }
  return result;
}

}  // namespace psk::sig
