// Text serialization of execution signatures.
//
// Signatures are stored as an indented line-per-node format; loops introduce
// nesting.  Doubles round-trip exactly.  (Skeleton files reuse this format;
// see skeleton/io.h.)
#pragma once

#include <iosfwd>
#include <string>

#include "sig/signature.h"

namespace psk::sig {

void write_signature(std::ostream& out, const Signature& signature);
std::string signature_to_string(const Signature& signature);

/// Parses; throws FormatError on malformed input.
Signature read_signature(std::istream& in);
Signature signature_from_string(const std::string& text);

void save_signature(const std::string& path, const Signature& signature);
Signature load_signature(const std::string& path);

}  // namespace psk::sig
