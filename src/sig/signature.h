// Execution signature: the compressed representation of an execution trace.
//
// A signature is a forest of nodes per rank: leaves are canonical
// (clustered) MPI events, interior nodes are loops -- "recursive loop nests
// with sub-strings of symbols as loop bodies and the number of repetitions
// as the number of loop iterations" (paper section 3.2).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mpi/types.h"

namespace psk::sig {

/// A canonical execution event: the "average event" of one cluster.
/// Byte counts and compute durations are doubles because they are running
/// means over the cluster's members.
struct SigEvent {
  mpi::CallType type = mpi::CallType::kSend;
  int peer = -1;
  int tag = 0;
  double bytes = 0;
  /// Per-peer detail (Alltoallv / Sendrecv / Exchange); bytes are means.
  struct Part {
    int peer = -1;
    double bytes = 0;
    bool outgoing = true;
    int tag = 0;
    friend bool operator==(const Part&, const Part&) = default;
  };
  std::vector<Part> parts;
  /// Mean computation preceding this event (work-seconds).
  double pre_compute = 0;
  /// Welford M2 accumulator of the pre-compute durations across the
  /// cluster's members; with `observations` it yields the duration
  /// distribution the paper's section 4.4 proposes to exploit.
  double pre_compute_m2 = 0;
  std::uint64_t observations = 1;
  /// Mean computation overlapped inside an Exchange region.
  double interior_compute = 0;
  /// Mean memory traffic of the pre/interior computation (bytes).
  double pre_mem_bytes = 0;
  double interior_mem_bytes = 0;
  /// Mean observed duration of the call itself (dedicated run).
  double mean_duration = 0;
  /// Cluster identity: equal ids <=> same canonical event.
  int cluster_id = -1;

  /// Sample standard deviation of the pre-compute durations.
  double pre_compute_stddev() const {
    if (observations < 2) return 0;
    const double variance =
        pre_compute_m2 / static_cast<double>(observations - 1);
    return variance > 0 ? std::sqrt(variance) : 0;
  }

  /// pre + interior + duration: the event's average share of wall time.
  double mean_span() const {
    return pre_compute + interior_compute + mpi_span();
  }
  /// Duration inside MPI excluding overlapped compute.
  double mpi_span() const {
    const double d = mean_duration - interior_compute;
    return d > 0 ? d : 0;
  }
};

struct SigNode;
using SigSeq = std::vector<SigNode>;

struct SigNode {
  enum class Kind { kLeaf, kLoop };

  Kind kind = Kind::kLeaf;
  SigEvent event;                 // kLeaf payload
  std::uint64_t iterations = 0;   // kLoop repetition count
  SigSeq body;                    // kLoop body
  std::uint64_t hash = 0;         // structural hash (set by make_*)

  static SigNode leaf(SigEvent event);
  static SigNode loop(std::uint64_t iterations, SigSeq body);

  /// Structural equality: leaves by cluster id, loops by count and body.
  friend bool operator==(const SigNode& a, const SigNode& b);
};

/// True when the two bodies are element-wise structurally equal.
bool seq_equal(const SigSeq& a, const SigSeq& b);

/// Number of leaf nodes (the signature "length" used for the compression
/// ratio Q).
std::size_t leaf_count(const SigSeq& seq);

/// Number of events the sequence expands to (loops multiplied out).
std::uint64_t expanded_count(const SigSeq& seq);

/// Expands loops back into a flat event list.  For validation and tests;
/// beware: exponential-free but can be large for full app signatures.
std::vector<SigEvent> expand(const SigSeq& seq);

/// Total mean wall time represented (sum of expanded mean spans).
double expanded_time(const SigSeq& seq);

/// Pretty-prints the structure, e.g. "a [ (b)2 c ]3 k (a)2" style.
std::string to_string(const SigSeq& seq);

/// One rank's compressed execution record.
struct RankSignature {
  int rank = 0;
  SigSeq roots;
  double total_time = 0;     // rank wall time on the traced run
  double final_compute = 0;  // trailing computation after the last call
};

/// The application's execution signature.
struct Signature {
  std::string app_name;
  std::vector<RankSignature> ranks;
  /// Similarity threshold the compressor settled on.
  double threshold = 0;
  /// Achieved ratio: folded trace events / signature leaves.
  double compression_ratio = 1;

  int rank_count() const { return static_cast<int>(ranks.size()); }
  /// Longest rank wall time (the traced parallel execution time).
  double elapsed() const;
  std::size_t total_leaves() const;
};

}  // namespace psk::sig
