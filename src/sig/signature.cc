#include "sig/signature.h"

#include <algorithm>
#include <sstream>

namespace psk::sig {

namespace {

constexpr std::uint64_t kHashSeed = 0x9E3779B97F4A7C15ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + kHashSeed + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t seq_hash(const SigSeq& seq) {
  std::uint64_t h = 0xA5A5A5A5ULL;
  for (const SigNode& node : seq) h = mix(h, node.hash);
  return h;
}

}  // namespace

SigNode SigNode::leaf(SigEvent event) {
  SigNode node;
  node.kind = Kind::kLeaf;
  node.event = std::move(event);
  node.hash = mix(0x1EAF, static_cast<std::uint64_t>(node.event.cluster_id));
  return node;
}

SigNode SigNode::loop(std::uint64_t iterations, SigSeq body) {
  SigNode node;
  node.kind = Kind::kLoop;
  node.iterations = iterations;
  node.body = std::move(body);
  node.hash = mix(mix(0x100B, iterations), seq_hash(node.body));
  return node;
}

bool operator==(const SigNode& a, const SigNode& b) {
  if (a.hash != b.hash || a.kind != b.kind) return false;
  if (a.kind == SigNode::Kind::kLeaf) {
    return a.event.cluster_id == b.event.cluster_id;
  }
  return a.iterations == b.iterations && seq_equal(a.body, b.body);
}

bool seq_equal(const SigSeq& a, const SigSeq& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

std::size_t leaf_count(const SigSeq& seq) {
  std::size_t n = 0;
  for (const SigNode& node : seq) {
    n += node.kind == SigNode::Kind::kLeaf ? 1 : leaf_count(node.body);
  }
  return n;
}

std::uint64_t expanded_count(const SigSeq& seq) {
  std::uint64_t n = 0;
  for (const SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf) {
      n += 1;
    } else {
      n += node.iterations * expanded_count(node.body);
    }
  }
  return n;
}

namespace {
void expand_into(const SigSeq& seq, std::vector<SigEvent>& out) {
  for (const SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf) {
      out.push_back(node.event);
    } else {
      for (std::uint64_t i = 0; i < node.iterations; ++i) {
        expand_into(node.body, out);
      }
    }
  }
}
}  // namespace

std::vector<SigEvent> expand(const SigSeq& seq) {
  std::vector<SigEvent> out;
  out.reserve(expanded_count(seq));
  expand_into(seq, out);
  return out;
}

double expanded_time(const SigSeq& seq) {
  double total = 0;
  for (const SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf) {
      total += node.event.mean_span();
    } else {
      total += static_cast<double>(node.iterations) * expanded_time(node.body);
    }
  }
  return total;
}

namespace {
void print_into(const SigSeq& seq, std::ostringstream& out) {
  bool first = true;
  for (const SigNode& node : seq) {
    if (!first) out << " ";
    first = false;
    if (node.kind == SigNode::Kind::kLeaf) {
      out << mpi::call_type_name(node.event.type) << "#"
          << node.event.cluster_id;
    } else {
      out << "[ ";
      print_into(node.body, out);
      out << " ]" << node.iterations;
    }
  }
}
}  // namespace

std::string to_string(const SigSeq& seq) {
  std::ostringstream out;
  print_into(seq, out);
  return out.str();
}

double Signature::elapsed() const {
  double latest = 0;
  for (const RankSignature& rank : ranks) {
    latest = std::max(latest, rank.total_time);
  }
  return latest;
}

std::size_t Signature::total_leaves() const {
  std::size_t n = 0;
  for (const RankSignature& rank : ranks) n += leaf_count(rank.roots);
  return n;
}

}  // namespace psk::sig
