#include "sig/io.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace psk::sig {

namespace {

// Bounds on untrusted input: loop nests deeper than this are rejected
// before the recursive reader can overflow the stack, corrupt count fields
// cannot trigger huge up-front allocations, and the rank count is parsed as
// an integer with a plausibility cap (a cast from a huge double would be
// undefined behaviour).
constexpr int kMaxNodeDepth = 256;
constexpr std::size_t kReserveCap = 4096;
constexpr std::uint64_t kMaxRanks = 1u << 16;

std::string format_double(double value) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", value);
  return buf.data();
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, sep)) {
    if (!field.empty()) fields.push_back(field);
  }
  return fields;
}

double parse_double(const std::string& text) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw FormatError("signature: bad number '" + text + "'");
  }
}

int parse_int(const std::string& text) {
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    throw FormatError("signature: bad integer '" + text + "'");
  }
}

std::uint64_t parse_u64(const std::string& text) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    throw FormatError("signature: bad integer '" + text + "'");
  }
}

void write_node(std::ostream& out, const SigNode& node, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (node.kind == SigNode::Kind::kLoop) {
    out << indent << "L " << node.iterations << " " << node.body.size()
        << "\n";
    for (const SigNode& child : node.body) {
      write_node(out, child, depth + 1);
    }
    return;
  }
  const SigEvent& event = node.event;
  out << indent << "E " << mpi::call_type_name(event.type) << " "
      << event.peer << " " << event.tag << " " << format_double(event.bytes)
      << " " << format_double(event.pre_compute) << " "
      << format_double(event.interior_compute) << " "
      << format_double(event.mean_duration) << " " << event.cluster_id << " "
      << format_double(event.pre_compute_m2) << " " << event.observations
      << " " << format_double(event.pre_mem_bytes) << " "
      << format_double(event.interior_mem_bytes) << " ";
  if (event.parts.empty()) {
    out << "-";
  } else {
    for (std::size_t i = 0; i < event.parts.size(); ++i) {
      const SigEvent::Part& part = event.parts[i];
      if (i) out << ",";
      out << part.peer << ":" << format_double(part.bytes) << ":"
          << (part.outgoing ? "o" : "i") << ":" << part.tag;
    }
  }
  out << "\n";
}

class NodeReader {
 public:
  explicit NodeReader(std::istream& in) : in_(in) {}

  std::string next_line() {
    std::string line;
    if (!std::getline(in_, line)) {
      throw FormatError("signature: truncated input");
    }
    return line;
  }

  SigNode read_node(int depth = 0) {
    if (depth > kMaxNodeDepth) {
      throw FormatError("signature: loop nesting deeper than " +
                        std::to_string(kMaxNodeDepth));
    }
    const std::string line = next_line();
    const auto fields = split(line, ' ');
    util::require(!fields.empty(), "signature: empty node line");
    if (fields[0] == "L") {
      if (fields.size() != 3) {
        throw FormatError("signature: malformed loop line: " + line);
      }
      const std::uint64_t iterations = parse_u64(fields[1]);
      const std::size_t children = parse_u64(fields[2]);
      SigSeq body;
      body.reserve(std::min(children, kReserveCap));
      for (std::size_t i = 0; i < children; ++i) {
        body.push_back(read_node(depth + 1));
      }
      return SigNode::loop(iterations, std::move(body));
    }
    if (fields[0] != "E" || fields.size() != 14) {
      throw FormatError("signature: malformed event line: " + line);
    }
    SigEvent event;
    event.type = mpi::call_type_from_name(fields[1]);
    event.peer = parse_int(fields[2]);
    event.tag = parse_int(fields[3]);
    event.bytes = parse_double(fields[4]);
    event.pre_compute = parse_double(fields[5]);
    event.interior_compute = parse_double(fields[6]);
    event.mean_duration = parse_double(fields[7]);
    event.cluster_id = parse_int(fields[8]);
    event.pre_compute_m2 = parse_double(fields[9]);
    event.observations = parse_u64(fields[10]);
    event.pre_mem_bytes = parse_double(fields[11]);
    event.interior_mem_bytes = parse_double(fields[12]);
    if (fields[13] != "-") {
      for (const std::string& chunk : split(fields[13], ',')) {
        const auto bits = split(chunk, ':');
        if (bits.size() != 4) {
          throw FormatError("signature: malformed part '" + chunk + "'");
        }
        event.parts.push_back(SigEvent::Part{parse_int(bits[0]),
                                             parse_double(bits[1]),
                                             bits[2] == "o",
                                             parse_int(bits[3])});
      }
    }
    return SigNode::leaf(std::move(event));
  }

  RankSignature read_rank() {
    const auto fields = split(next_line(), ' ');
    if (fields.size() != 5 || fields[0] != "rank") {
      throw FormatError("signature: missing rank header");
    }
    RankSignature rank;
    rank.rank = parse_int(fields[1]);
    rank.total_time = parse_double(fields[2]);
    rank.final_compute = parse_double(fields[3]);
    const std::size_t roots = parse_u64(fields[4]);
    rank.roots.reserve(std::min(roots, kReserveCap));
    for (std::size_t i = 0; i < roots; ++i) {
      rank.roots.push_back(read_node());
    }
    return rank;
  }

 private:
  std::istream& in_;
};

void write_rank(std::ostream& out, const RankSignature& rank) {
  out << "rank " << rank.rank << " " << format_double(rank.total_time) << " "
      << format_double(rank.final_compute) << " " << rank.roots.size()
      << "\n";
  for (const SigNode& node : rank.roots) write_node(out, node, 1);
}

}  // namespace

void write_signature(std::ostream& out, const Signature& signature) {
  out << "psk-signature 1\n";
  out << "app " << (signature.app_name.empty() ? "-" : signature.app_name)
      << "\n";
  out << "threshold " << format_double(signature.threshold) << "\n";
  out << "ratio " << format_double(signature.compression_ratio) << "\n";
  out << "ranks " << signature.ranks.size() << "\n";
  for (const RankSignature& rank : signature.ranks) write_rank(out, rank);
}

std::string signature_to_string(const Signature& signature) {
  std::ostringstream out;
  write_signature(out, signature);
  return out.str();
}

Signature read_signature(std::istream& in) {
  NodeReader reader(in);
  if (reader.next_line() != "psk-signature 1") {
    throw FormatError("signature: missing 'psk-signature 1' header");
  }
  Signature signature;
  {
    const auto fields = split(reader.next_line(), ' ');
    if (fields.size() != 2 || fields[0] != "app") {
      throw FormatError("signature: missing app line");
    }
    signature.app_name = fields[1] == "-" ? "" : fields[1];
  }
  const auto read_scalar = [&](const char* key) {
    const auto fields = split(reader.next_line(), ' ');
    if (fields.size() != 2 || fields[0] != key) {
      throw FormatError(std::string("signature: missing ") + key + " line");
    }
    return parse_double(fields[1]);
  };
  signature.threshold = read_scalar("threshold");
  signature.compression_ratio = read_scalar("ratio");
  std::size_t rank_count = 0;
  {
    const auto fields = split(reader.next_line(), ' ');
    if (fields.size() != 2 || fields[0] != "ranks") {
      throw FormatError("signature: missing ranks line");
    }
    const std::uint64_t parsed = parse_u64(fields[1]);
    if (parsed > kMaxRanks) {
      throw FormatError("signature: implausible rank count " + fields[1]);
    }
    rank_count = static_cast<std::size_t>(parsed);
  }
  for (std::size_t r = 0; r < rank_count; ++r) {
    signature.ranks.push_back(reader.read_rank());
  }
  return signature;
}

Signature signature_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_signature(in);
}

void save_signature(const std::string& path, const Signature& signature) {
  std::ofstream out(path);
  util::require(out.good(), "save_signature: cannot open " + path);
  write_signature(out, signature);
}

Signature load_signature(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "load_signature: cannot open " + path);
  return read_signature(in);
}

}  // namespace psk::sig
