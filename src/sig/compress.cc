#include "sig/compress.h"

#include <algorithm>
#include <utility>

#include "trace/fold.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::sig {

namespace {

/// Contiguous copy of each node's structural hash; the repeat scans walk
/// this column and fall back to the exact node comparison only when every
/// hash in the block matches.  Hashes never change during a pass, so the
/// column stays valid while nodes are moved out of `seq` (only already
/// consumed positions are moved from).
using FpColumn = std::vector<std::uint64_t>;

FpColumn fingerprints_of(const SigSeq& seq) {
  FpColumn fp(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) fp[i] = seq[i].hash;
  return fp;
}

/// True when seq[i..i+p) == seq[j..j+p) structurally.
bool block_equal(const SigSeq& seq, const FpColumn& fp, std::size_t i,
                 std::size_t j, std::size_t p) {
  for (std::size_t k = 0; k < p; ++k) {
    if (fp[i + k] != fp[j + k]) return false;
  }
  // Hash equality is necessary but not sufficient (SigNode::operator==
  // short-circuits on unequal hashes itself); confirm exactly.
  for (std::size_t k = 0; k < p; ++k) {
    if (!(seq[i + k] == seq[j + k])) return false;
  }
  return true;
}

/// Smallest period q such that seq[i..i+p) is a power of its prefix of
/// length q (q divides p).  Canonicalizes an accidental large-period match
/// like (XX)(XX) into the primitive unit X.
std::size_t primitive_period(const SigSeq& seq, const FpColumn& fp,
                             std::size_t i, std::size_t p) {
  for (std::size_t q = 1; q <= p / 2; ++q) {
    if (p % q != 0) continue;
    bool periodic = true;
    for (std::size_t offset = q; offset < p && periodic; offset += q) {
      periodic = block_equal(seq, fp, i, i + offset, q);
    }
    if (periodic) return q;
  }
  return p;
}

/// One left-to-right pass collapsing tandem repeats of period `p`.  Matches
/// are reduced to their primitive period before collapsing, and bodies are
/// folded recursively, so a period-p hit yields the canonical nest.
bool collapse_period(SigSeq& seq, std::size_t p, std::size_t max_period) {
  if (seq.size() < 2 * p) return false;
  const FpColumn fp = fingerprints_of(seq);
  bool changed = false;
  SigSeq out;
  out.reserve(seq.size());
  std::size_t i = 0;
  while (i < seq.size()) {
    if (i + 2 * p <= seq.size() && block_equal(seq, fp, i, i + p, p)) {
      const std::size_t q = primitive_period(seq, fp, i, p);
      std::uint64_t repeats = 1;
      while (i + (repeats + 1) * q <= seq.size() &&
             block_equal(seq, fp, i,
                         i + static_cast<std::size_t>(repeats) * q, q)) {
        ++repeats;
      }
      SigSeq body(seq.begin() + static_cast<std::ptrdiff_t>(i),
                  seq.begin() + static_cast<std::ptrdiff_t>(i + q));
      body = fold_loops(std::move(body), FoldOptions{max_period});
      out.push_back(SigNode::loop(repeats, std::move(body)));
      i += static_cast<std::size_t>(repeats) * q;
      changed = true;
    } else {
      out.push_back(std::move(seq[i]));
      ++i;
    }
  }
  seq = std::move(out);
  return changed;
}

/// Column views of every rank's event stream, built once and reused across
/// the compressor's threshold search (each threshold step re-clusters every
/// rank; the columns depend only on the events).
std::vector<trace::EventColumns> columns_of(const trace::Trace& trace) {
  std::vector<trace::EventColumns> columns;
  columns.reserve(trace.ranks.size());
  for (const trace::RankTrace& rank : trace.ranks) {
    columns.push_back(trace::make_columns(rank.events));
  }
  return columns;
}

Signature build_signature(const trace::Trace& trace,
                          const std::vector<trace::EventColumns>& columns,
                          double threshold, const CompressOptions& options,
                          std::size_t* total_events_out,
                          std::size_t* total_leaves_out) {
  ClusterOptions cluster_options;
  cluster_options.threshold = threshold;
  cluster_options.bytes_weight = options.bytes_weight;
  cluster_options.compute_weight = options.compute_weight;

  Signature signature;
  signature.app_name = trace.app_name;
  signature.threshold = threshold;

  std::size_t total_events = 0;
  std::size_t total_leaves = 0;
  for (std::size_t r = 0; r < trace.ranks.size(); ++r) {
    const trace::RankTrace& rank = trace.ranks[r];
    ClusterResult clusters;
    {
      obs::PhaseProfiler::Scope scope(options.profiler, "cluster");
      clusters = cluster_events(rank.events, columns[r], cluster_options);
    }
    SigSeq seq;
    seq.reserve(clusters.symbols.size());
    for (int symbol : clusters.symbols) {
      seq.push_back(
          SigNode::leaf(clusters.prototypes[static_cast<std::size_t>(symbol)]));
    }
    {
      obs::PhaseProfiler::Scope scope(options.profiler, "compress");
      if (options.anchor_at_collectives) {
        seq = fold_anchored(std::move(seq), FoldOptions{options.max_period});
      } else {
        seq = fold_loops(std::move(seq), FoldOptions{options.max_period});
      }
    }

    RankSignature rank_signature;
    rank_signature.rank = rank.rank;
    rank_signature.total_time = rank.total_time;
    rank_signature.final_compute = rank.final_compute;
    rank_signature.roots = std::move(seq);

    total_events += rank.events.size();
    total_leaves += leaf_count(rank_signature.roots);
    signature.ranks.push_back(std::move(rank_signature));
  }
  signature.compression_ratio =
      total_leaves > 0 ? static_cast<double>(total_events) /
                             static_cast<double>(total_leaves)
                       : 1.0;
  if (total_events_out != nullptr) *total_events_out = total_events;
  if (total_leaves_out != nullptr) *total_leaves_out = total_leaves;
  return signature;
}

}  // namespace

SigSeq fold_anchored(SigSeq seq, const FoldOptions& options) {
  SigSeq out;
  SigSeq segment;
  const auto flush_segment = [&] {
    if (segment.empty()) return;
    SigSeq folded = fold_loops(std::move(segment), options);
    out.insert(out.end(), std::make_move_iterator(folded.begin()),
               std::make_move_iterator(folded.end()));
    segment.clear();
  };
  for (SigNode& node : seq) {
    if (node.kind == SigNode::Kind::kLeaf &&
        mpi::is_collective(node.event.type)) {
      flush_segment();
      out.push_back(std::move(node));
    } else {
      segment.push_back(std::move(node));
    }
  }
  flush_segment();
  return out;
}

SigSeq fold_loops(SigSeq seq, const FoldOptions& options) {
  // "Starting with the largest matches and working down to sub-string
  // matches of a single symbol" (paper section 3.2): descending periods,
  // repeated until no repeat of any length remains.  Largest-first matters:
  // a small-period collapse (e.g. two adjacent Allreduces) can otherwise
  // destroy the tail of a much longer repetition that contains it.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = std::min(options.max_period, seq.size() / 2); p >= 1;
         --p) {
      changed = collapse_period(seq, p, options.max_period) || changed;
      if (seq.size() < 2) break;
    }
  }
  return seq;
}

SigSeq fold_anchored(SigSeq seq, std::size_t max_period) {
  return fold_anchored(std::move(seq), FoldOptions{max_period});
}

SigSeq fold_loops(SigSeq seq, std::size_t max_period) {
  return fold_loops(std::move(seq), FoldOptions{max_period});
}

Signature compress_at_threshold(const trace::Trace& folded_trace,
                                const ThresholdCompressOptions& options) {
  util::require(trace::is_fully_folded(folded_trace),
                "compress: trace contains raw nonblocking events; run "
                "trace::fold_nonblocking first");
  return build_signature(folded_trace, columns_of(folded_trace),
                         options.threshold, options.compress, nullptr,
                         nullptr);
}

Signature compress_at_threshold(const trace::Trace& folded_trace,
                                double threshold,
                                const CompressOptions& options) {
  return compress_at_threshold(folded_trace,
                               ThresholdCompressOptions{threshold, options});
}

Signature compress(const trace::Trace& folded_trace,
                   const CompressOptions& options) {
  util::require(trace::is_fully_folded(folded_trace),
                "compress: trace contains raw nonblocking events; run "
                "trace::fold_nonblocking first");
  util::require(options.target_ratio >= 1.0,
                "compress: target_ratio must be >= 1");
  util::require(options.threshold_step > 0,
                "compress: threshold_step must be positive");

  const std::vector<trace::EventColumns> columns = columns_of(folded_trace);
  Signature best;
  bool have_best = false;
  // Integer step index: a float accumulator (threshold += step) would never
  // advance for step <= 0 and would drift off the intended schedule after
  // many additions.
  for (int step = 0;; ++step) {
    const double threshold = step * options.threshold_step;
    if (threshold > options.max_threshold + 1e-12) break;
    Signature signature = build_signature(folded_trace, columns, threshold,
                                          options, nullptr, nullptr);
    if (!have_best ||
        signature.compression_ratio > best.compression_ratio) {
      best = signature;
      have_best = true;
    }
    if (signature.compression_ratio >= options.target_ratio) {
      return signature;
    }
  }
  util::log_info() << "compress: target ratio " << options.target_ratio
                   << " not reached; best achieved "
                   << best.compression_ratio << " at threshold "
                   << best.threshold;
  return best;
}

}  // namespace psk::sig
