// Clustering of similar execution events (paper section 3.2, stage 1).
//
// Converts a rank's event stream into a string of symbols where
// "substantially similar execution events are placed in one cluster and
// assigned the same symbol", with each cluster represented by its running
// average ("MPI_Send(Node 3, 2000) + MPI_Send(Node 3, 1800) ->
// MPI_Send(Node 3, 1900)").
//
// Dissimilarity is measured per dimension as a relative difference against
// the cluster's current prototype; the overall dissimilarity is the maximum
// over dimensions, so the similarity threshold "linearly relates to the
// maximum difference in message sizes allowed".  Different call types,
// peers, tags, or part structures never cluster together.
#pragma once

#include <vector>

#include "sig/signature.h"
#include "trace/event.h"
#include "trace/soa.h"

namespace psk::sig {

struct ClusterOptions {
  /// Similarity threshold in [0, 1]; 0 clusters only identical events.
  double threshold = 0.0;
  /// Dimension weights.  Message parameters are compared strictly.  The
  /// default compute_weight = 0 merges computation durations unconditionally
  /// and represents them by their running average -- the paper's choice
  /// ("maximum flexibility in combining computation events ... was found to
  /// be effective"), and also what keeps SPMD ranks' clusterings symmetric
  /// (compute gaps are the one dimension that varies between ranks).
  /// compute_weight = 1 makes clustering duration-sensitive ("execution
  /// phases of approximately equal duration"); the averaging ablation uses
  /// it to quantify the cost of free merging.
  double bytes_weight = 1.0;
  double compute_weight = 0.0;
  /// Relative differences of quantities below these floors are ignored
  /// (microscopic gaps and tiny control messages carry no signal).
  double bytes_floor = 64.0;
  double compute_floor = 1e-3;
};

struct ClusterResult {
  /// Canonical event per cluster, indexed by cluster id.
  std::vector<SigEvent> prototypes;
  /// Cluster id per input event, in order.
  std::vector<int> symbols;
  /// Member count per cluster.
  std::vector<std::size_t> counts;

  std::size_t cluster_count() const { return prototypes.size(); }
};

/// Dissimilarity between an event and a prototype; +infinity when they are
/// structurally incompatible (type/peer/tag/parts).
double dissimilarity(const trace::TraceEvent& event, const SigEvent& proto,
                     const ClusterOptions& options);

/// Greedy sequential clustering: each event joins the best prototype within
/// the threshold or starts a new cluster.  Prototypes are running means.
ClusterResult cluster_events(const std::vector<trace::TraceEvent>& events,
                             const ClusterOptions& options);

/// Column-accelerated form: `columns` must be make_columns(events).  The
/// prototype scan rejects structurally incompatible pairs on a contiguous
/// fingerprint column and only computes the exact dissimilarity on
/// fingerprint hits, so the result is bit-identical to the form above
/// (pinned by the SoA equivalence tests).  Callers that cluster the same
/// events repeatedly (the compressor's threshold search) build the columns
/// once and amortize the fingerprinting across every threshold step.
ClusterResult cluster_events(const std::vector<trace::TraceEvent>& events,
                             const trace::EventColumns& columns,
                             const ClusterOptions& options);

}  // namespace psk::sig
