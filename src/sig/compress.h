// Trace -> execution signature compression (paper section 3.2).
//
// Two stages per rank: similarity clustering of events into symbols, then
// recursive identification of repeating substrings folded into loop nests
// (alpha beta beta gamma beta beta gamma beta beta gamma kappa alpha alpha
//  ->  alpha [ (beta)2 gamma ]3 kappa (alpha)2).
//
// The similarity threshold is found iteratively: "Initially the similarity
// threshold is set to 0 ... if the degree of compression is less than the
// desired ratio Q, the similarity threshold is increased gradually until the
// desired compression of Q (or higher) is achieved", with an upper bound so
// that very different events are never combined (the paper observed <= 0.20
// sufficed across the NAS suite).
#pragma once

#include <cstddef>

#include "obs/phase.h"
#include "sig/cluster.h"
#include "sig/signature.h"
#include "trace/event.h"

namespace psk::sig {

struct CompressOptions {
  /// Desired compression ratio Q = (folded trace events) / (signature
  /// leaves).  The skeleton layer passes Q = K/2.
  double target_ratio = 1.0;
  /// Hard cap on the similarity threshold.
  double max_threshold = 0.25;
  /// Search step for the threshold.
  double threshold_step = 0.01;
  /// Longest loop body considered by the tandem-repeat folder.
  std::size_t max_period = 512;
  /// Dimension weights forwarded to clustering (see ClusterOptions).
  double bytes_weight = 1.0;
  double compute_weight = 0.0;
  /// Anchored folding: never fold repeats across collective operations.
  /// Collectives are global synchronization points that occur at identical
  /// structural positions on every rank, so anchoring eliminates the
  /// rotation ambiguity that can make independently folded ranks scale to
  /// mismatched message counts (e.g. LU, whose residual-norm Allreduce
  /// otherwise lets different ranks absorb different step counts into the
  /// outer loop).  Off by default; the framework's consistency-retry ladder
  /// enables it when needed.
  bool anchor_at_collectives = false;
  /// Optional wall-clock phase profiler: clustering and loop folding charge
  /// their time to the "cluster" / "compress" phases.  Null = no profiling.
  obs::PhaseProfiler* profiler = nullptr;
};

/// Named options for the tandem-repeat folders (replaces the positional
/// max_period tail).
struct FoldOptions {
  /// Longest loop body considered by the folder.
  std::size_t max_period = 512;
};

/// Variant of fold_loops that folds each run between collectives
/// independently (see CompressOptions::anchor_at_collectives).
SigSeq fold_anchored(SigSeq seq, const FoldOptions& options = {});

/// Folds maximal tandem repeats into loop nodes, smallest period first,
/// iterating to a fixpoint (inner loops collapse first, enabling outer
/// ones).  Exposed for unit testing.
SigSeq fold_loops(SigSeq seq, const FoldOptions& options = {});

/// Deprecated positional forms, kept as thin forwarders for one release:
/// prefer the FoldOptions overloads above.
SigSeq fold_anchored(SigSeq seq, std::size_t max_period);
SigSeq fold_loops(SigSeq seq, std::size_t max_period);

/// Compresses a *folded* trace (see trace::fold_nonblocking) into an
/// execution signature.  Throws ConfigError when the trace still contains
/// raw nonblocking events.  The same threshold is applied to all ranks so
/// that SPMD-symmetric ranks compress symmetrically.
Signature compress(const trace::Trace& folded_trace,
                   const CompressOptions& options = {});

/// Named options for the fixed-threshold single pass (replaces the
/// positional threshold tail).
struct ThresholdCompressOptions {
  /// The similarity threshold applied to every rank (no search).
  double threshold = 0.0;
  CompressOptions compress;
};

/// One clustering+folding pass at a fixed threshold (no search).
Signature compress_at_threshold(const trace::Trace& folded_trace,
                                const ThresholdCompressOptions& options);

/// Deprecated positional form, kept as a thin forwarder for one release:
/// prefer the ThresholdCompressOptions overload above.
Signature compress_at_threshold(const trace::Trace& folded_trace,
                                double threshold,
                                const CompressOptions& options = {});

}  // namespace psk::sig
