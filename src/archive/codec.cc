#include "archive/codec.h"

#include <algorithm>

namespace psk::archive {

namespace {

// Sanity caps applied while decoding, so corrupt length fields fail fast
// instead of attempting multi-gigabyte allocations.
constexpr std::uint64_t kMaxRanks = 1u << 16;
constexpr std::uint64_t kMaxEvents = 1ull << 32;
constexpr std::uint64_t kMaxParts = 1u << 20;
constexpr std::uint64_t kMaxNodes = 1ull << 28;
constexpr int kMaxNodeDepth = 256;

// Counts below the caps above can still be far larger than the remaining
// payload supports; clamp reserve() so the decode loop (which fails fast on
// a truncated cursor) is what bounds memory, not one up-front allocation.
constexpr std::size_t kReserveCap = 4096;

// Minimum encoded sizes of the variable-count units, used to validate every
// declared count against the bytes actually remaining (Cursor::check_count)
// *before* the decode loop runs: a hostile count field fails immediately
// with ErrorCode::kTruncated instead of grinding through a doomed decode.
// Conservative lower bounds -- a unit can only be larger.
constexpr std::size_t kMinPartBytes = 17;       // i32 + u64/f64 + bool + i32
constexpr std::size_t kMinRequestBytes = 4;     // u32
constexpr std::size_t kMinEventBytes = 77;      // fixed TraceEvent fields
constexpr std::size_t kMinTraceRankBytes = 28;  // i32 + 2*f64 + u64 count
constexpr std::size_t kMinSigRankBytes = 24;    // i32 + 2*f64 + u32 count
constexpr std::size_t kMinNodeBytes = 13;       // loop: u8 + u64 + u32

std::size_t clamped_reserve(std::uint64_t count) {
  return static_cast<std::size_t>(std::min<std::uint64_t>(count, kReserveCap));
}

constexpr auto kLastCallType = static_cast<std::uint8_t>(mpi::CallType::kExchange);

mpi::CallType decode_call_type(Cursor& in) {
  const std::uint8_t raw = in.u8();
  if (raw > kLastCallType) {
    in.fail("invalid call type " + std::to_string(raw));
    return mpi::CallType::kSend;
  }
  return static_cast<mpi::CallType>(raw);
}

// ------------------------------------------------------------------ trace

void encode_event(std::string& out, const trace::TraceEvent& event) {
  put_u8(out, static_cast<std::uint8_t>(event.type));
  put_i32(out, event.peer);
  put_u64(out, event.bytes);
  put_i32(out, event.tag);
  put_f64(out, event.t_start);
  put_f64(out, event.t_end);
  put_f64(out, event.pre_compute);
  put_f64(out, event.interior_compute);
  put_f64(out, event.pre_mem_bytes);
  put_f64(out, event.interior_mem_bytes);
  put_u32(out, static_cast<std::uint32_t>(event.parts.size()));
  for (const mpi::PeerBytes& part : event.parts) {
    put_i32(out, part.peer);
    put_u64(out, part.bytes);
    put_bool(out, part.outgoing);
    put_i32(out, part.tag);
  }
  put_u32(out, event.request);
  put_u32(out, static_cast<std::uint32_t>(event.requests.size()));
  for (const std::uint32_t id : event.requests) put_u32(out, id);
}

trace::TraceEvent decode_event(Cursor& in) {
  trace::TraceEvent event;
  event.type = decode_call_type(in);
  event.peer = in.i32();
  event.bytes = in.u64();
  event.tag = in.i32();
  event.t_start = in.f64();
  event.t_end = in.f64();
  event.pre_compute = in.f64();
  event.interior_compute = in.f64();
  event.pre_mem_bytes = in.f64();
  event.interior_mem_bytes = in.f64();
  const std::uint32_t parts = in.u32();
  if (parts > kMaxParts) {
    in.fail("implausible part count");
    return event;
  }
  if (!in.check_count(parts, kMinPartBytes, "part")) return event;
  event.parts.reserve(clamped_reserve(parts));
  for (std::uint32_t i = 0; i < parts && in.ok(); ++i) {
    mpi::PeerBytes part;
    part.peer = in.i32();
    part.bytes = in.u64();
    part.outgoing = in.boolean();
    part.tag = in.i32();
    event.parts.push_back(part);
  }
  event.request = in.u32();
  const std::uint32_t requests = in.u32();
  if (requests > kMaxParts) {
    in.fail("implausible request count");
    return event;
  }
  if (!in.check_count(requests, kMinRequestBytes, "request")) return event;
  event.requests.reserve(clamped_reserve(requests));
  for (std::uint32_t i = 0; i < requests && in.ok(); ++i) {
    event.requests.push_back(in.u32());
  }
  return event;
}

// -------------------------------------------------------------- signature

void encode_sig_event(std::string& out, const sig::SigEvent& event) {
  put_u8(out, static_cast<std::uint8_t>(event.type));
  put_i32(out, event.peer);
  put_i32(out, event.tag);
  put_f64(out, event.bytes);
  put_f64(out, event.pre_compute);
  put_f64(out, event.pre_compute_m2);
  put_u64(out, event.observations);
  put_f64(out, event.interior_compute);
  put_f64(out, event.pre_mem_bytes);
  put_f64(out, event.interior_mem_bytes);
  put_f64(out, event.mean_duration);
  put_i32(out, event.cluster_id);
  put_u32(out, static_cast<std::uint32_t>(event.parts.size()));
  for (const sig::SigEvent::Part& part : event.parts) {
    put_i32(out, part.peer);
    put_f64(out, part.bytes);
    put_bool(out, part.outgoing);
    put_i32(out, part.tag);
  }
}

sig::SigEvent decode_sig_event(Cursor& in) {
  sig::SigEvent event;
  event.type = decode_call_type(in);
  event.peer = in.i32();
  event.tag = in.i32();
  event.bytes = in.f64();
  event.pre_compute = in.f64();
  event.pre_compute_m2 = in.f64();
  event.observations = in.u64();
  event.interior_compute = in.f64();
  event.pre_mem_bytes = in.f64();
  event.interior_mem_bytes = in.f64();
  event.mean_duration = in.f64();
  event.cluster_id = in.i32();
  const std::uint32_t parts = in.u32();
  if (parts > kMaxParts) {
    in.fail("implausible part count");
    return event;
  }
  if (!in.check_count(parts, kMinPartBytes, "part")) return event;
  event.parts.reserve(clamped_reserve(parts));
  for (std::uint32_t i = 0; i < parts && in.ok(); ++i) {
    sig::SigEvent::Part part;
    part.peer = in.i32();
    part.bytes = in.f64();
    part.outgoing = in.boolean();
    part.tag = in.i32();
    event.parts.push_back(part);
  }
  return event;
}

void encode_node(std::string& out, const sig::SigNode& node) {
  if (node.kind == sig::SigNode::Kind::kLoop) {
    put_u8(out, 1);
    put_u64(out, node.iterations);
    put_u32(out, static_cast<std::uint32_t>(node.body.size()));
    for (const sig::SigNode& child : node.body) encode_node(out, child);
    return;
  }
  put_u8(out, 0);
  encode_sig_event(out, node.event);
}

sig::SigNode decode_node(Cursor& in, int depth) {
  if (depth > kMaxNodeDepth) {
    in.fail("loop nesting too deep");
    return {};
  }
  const std::uint8_t kind = in.u8();
  if (kind == 0) {
    return sig::SigNode::leaf(decode_sig_event(in));
  }
  if (kind != 1) {
    in.fail("invalid node kind " + std::to_string(kind));
    return {};
  }
  const std::uint64_t iterations = in.u64();
  const std::uint32_t children = in.u32();
  if (children > kMaxNodes) {
    in.fail("implausible loop body size");
    return {};
  }
  if (!in.check_count(children, kMinNodeBytes, "loop body")) return {};
  sig::SigSeq body;
  body.reserve(clamped_reserve(children));
  for (std::uint32_t i = 0; i < children && in.ok(); ++i) {
    body.push_back(decode_node(in, depth + 1));
  }
  return sig::SigNode::loop(iterations, std::move(body));
}

void encode_rank_signature(std::string& out, const sig::RankSignature& rank) {
  put_i32(out, rank.rank);
  put_f64(out, rank.total_time);
  put_f64(out, rank.final_compute);
  put_u32(out, static_cast<std::uint32_t>(rank.roots.size()));
  for (const sig::SigNode& node : rank.roots) encode_node(out, node);
}

sig::RankSignature decode_rank_signature(Cursor& in) {
  sig::RankSignature rank;
  rank.rank = in.i32();
  rank.total_time = in.f64();
  rank.final_compute = in.f64();
  const std::uint32_t roots = in.u32();
  if (roots > kMaxNodes) {
    in.fail("implausible root count");
    return rank;
  }
  if (!in.check_count(roots, kMinNodeBytes, "root")) return rank;
  rank.roots.reserve(clamped_reserve(roots));
  for (std::uint32_t i = 0; i < roots && in.ok(); ++i) {
    rank.roots.push_back(decode_node(in, 0));
  }
  return rank;
}

}  // namespace

void encode(std::string& out, const trace::Trace& trace) {
  put_string(out, trace.app_name);
  put_u32(out, static_cast<std::uint32_t>(trace.ranks.size()));
  for (const trace::RankTrace& rank : trace.ranks) {
    put_i32(out, rank.rank);
    put_f64(out, rank.total_time);
    put_f64(out, rank.final_compute);
    put_u64(out, rank.events.size());
    for (const trace::TraceEvent& event : rank.events) {
      encode_event(out, event);
    }
  }
}

void encode(std::string& out, const sig::Signature& signature) {
  put_string(out, signature.app_name);
  put_f64(out, signature.threshold);
  put_f64(out, signature.compression_ratio);
  put_u32(out, static_cast<std::uint32_t>(signature.ranks.size()));
  for (const sig::RankSignature& rank : signature.ranks) {
    encode_rank_signature(out, rank);
  }
}

void encode(std::string& out, const skeleton::Skeleton& skeleton) {
  put_string(out, skeleton.app_name);
  put_f64(out, skeleton.scaling_factor);
  put_f64(out, skeleton.intended_time);
  put_f64(out, skeleton.min_good_time);
  put_bool(out, skeleton.good);
  put_u32(out, static_cast<std::uint32_t>(skeleton.ranks.size()));
  for (const sig::RankSignature& rank : skeleton.ranks) {
    encode_rank_signature(out, rank);
  }
}

void encode(std::string& out, const scenario::Scenario& scenario) {
  // The name participates on purpose: fault scenarios mix a hash of their
  // name into the measurement seed stream, so scenarios with identical
  // knobs but different names are different measurements.  The description
  // is cosmetic and excluded.
  put_string(out, scenario.name);
  put_u8(out, static_cast<std::uint8_t>(scenario.kind));
  put_i32(out, scenario.load_processes);
  put_f64(out, scenario.load_mem_bytes_per_work);
  put_f64(out, scenario.shaped_bandwidth_bps);
  put_i32(out, scenario.affected_node);
  put_f64(out, scenario.cpu_flutter);
  put_f64(out, scenario.cpu_flutter_period);
  put_f64(out, scenario.net_flutter);
  put_f64(out, scenario.net_flutter_period);
  put_u8(out, static_cast<std::uint8_t>(scenario.fault.kind));
  put_f64(out, scenario.fault.first_at);
  put_f64(out, scenario.fault.downtime);
  put_f64(out, scenario.fault.period);
  put_f64(out, scenario.fault.period_jitter);
  put_f64(out, scenario.fault.checkpoint_interval);
  put_f64(out, scenario.fault.checkpoint_cost);
  put_f64(out, scenario.fault.restart_cost);
}

void encode(std::string& out, const sim::ClusterConfig& cluster) {
  put_i32(out, cluster.nodes);
  put_i32(out, cluster.cores_per_node);
  put_f64(out, cluster.cpu_speed);
  put_f64(out, cluster.link_bandwidth_bps);
  put_f64(out, cluster.latency);
  put_f64(out, cluster.local_bandwidth_bps);
  put_f64(out, cluster.local_latency);
  put_f64(out, cluster.memory_bandwidth_bps);
  put_f64(out, cluster.cpu_jitter);
  put_f64(out, cluster.net_jitter);
  put_u64(out, cluster.seed);
  put_u8(out, static_cast<std::uint8_t>(cluster.topology.kind));
  put_i32(out, cluster.topology.fattree_down);
  put_i32(out, cluster.topology.fattree_up);
  put_i32(out, cluster.topology.dragonfly_groups);
  put_i32(out, cluster.topology.dragonfly_routers);
}

void encode(std::string& out, const mpi::MpiConfig& mpi) {
  put_u64(out, mpi.eager_threshold);
  put_f64(out, mpi.rendezvous_handshake_latencies);
  put_f64(out, mpi.per_call_overhead);
  put_f64(out, mpi.trace_overhead);
  put_f64(out, mpi.op_timeout);
  put_i32(out, mpi.op_max_retries);
  put_i32(out, mpi.large_world_threshold);
}

Result<trace::Trace> decode_trace(std::string_view payload,
                                  std::uint32_t version) {
  if (version != kTraceVersion) {
    return Error{ErrorCode::kBadVersion,
                 "trace payload version " + std::to_string(version)};
  }
  Cursor in(payload);
  trace::Trace trace;
  trace.app_name = in.string();
  const std::uint32_t ranks = in.u32();
  if (ranks > kMaxRanks) in.fail("implausible rank count");
  in.check_count(ranks, kMinTraceRankBytes, "rank");
  for (std::uint32_t r = 0; r < ranks && in.ok(); ++r) {
    trace::RankTrace rank;
    rank.rank = in.i32();
    rank.total_time = in.f64();
    rank.final_compute = in.f64();
    const std::uint64_t events = in.u64();
    if (events > kMaxEvents) {
      in.fail("implausible event count");
      break;
    }
    if (!in.check_count(events, kMinEventBytes, "event")) break;
    rank.events.reserve(clamped_reserve(events));
    for (std::uint64_t e = 0; e < events && in.ok(); ++e) {
      rank.events.push_back(decode_event(in));
    }
    trace.ranks.push_back(std::move(rank));
  }
  if (!in.ok()) return in.error();
  if (!in.at_end()) {
    return Error{ErrorCode::kCorrupt, "trailing bytes after trace payload"};
  }
  return trace;
}

Result<sig::Signature> decode_signature(std::string_view payload,
                                        std::uint32_t version) {
  if (version != kSignatureVersion) {
    return Error{ErrorCode::kBadVersion,
                 "signature payload version " + std::to_string(version)};
  }
  Cursor in(payload);
  sig::Signature signature;
  signature.app_name = in.string();
  signature.threshold = in.f64();
  signature.compression_ratio = in.f64();
  const std::uint32_t ranks = in.u32();
  if (ranks > kMaxRanks) in.fail("implausible rank count");
  in.check_count(ranks, kMinSigRankBytes, "rank");
  for (std::uint32_t r = 0; r < ranks && in.ok(); ++r) {
    signature.ranks.push_back(decode_rank_signature(in));
  }
  if (!in.ok()) return in.error();
  if (!in.at_end()) {
    return Error{ErrorCode::kCorrupt,
                 "trailing bytes after signature payload"};
  }
  return signature;
}

Result<trace::Trace> decode_trace_prefix(std::string_view payload,
                                         std::uint32_t version,
                                         PrefixStats& stats) {
  stats = PrefixStats{};
  if (version != kTraceVersion) {
    return Error{ErrorCode::kBadVersion,
                 "trace payload version " + std::to_string(version)};
  }
  Cursor in(payload);
  const auto checkpoint = [&] {
    stats.bytes_consumed = payload.size() - in.remaining();
  };
  trace::Trace trace;
  trace.app_name = in.string();
  const std::uint32_t ranks = in.u32();
  if (!in.ok() || ranks > kMaxRanks) {
    return Error{ErrorCode::kCorrupt, in.ok() ? "implausible rank count"
                                              : in.error().message};
  }
  stats.ranks_expected = ranks;
  checkpoint();
  bool stopped = false;
  for (std::uint32_t r = 0; r < ranks && !stopped; ++r) {
    trace::RankTrace rank;
    rank.rank = in.i32();
    rank.total_time = in.f64();
    rank.final_compute = in.f64();
    const std::uint64_t events = in.u64();
    if (!in.ok() || events > kMaxEvents) {
      stats.detail = in.ok() ? "implausible event count at rank " +
                                   std::to_string(r)
                             : in.error().message;
      break;
    }
    stats.events_expected += events;
    ++stats.ranks_kept;
    checkpoint();
    rank.events.reserve(clamped_reserve(events));
    for (std::uint64_t e = 0; e < events; ++e) {
      trace::TraceEvent event = decode_event(in);
      if (!in.ok()) {
        stats.detail = in.error().message;
        stopped = true;
        break;
      }
      rank.events.push_back(std::move(event));
      ++stats.events_kept;
      checkpoint();
    }
    trace.ranks.push_back(std::move(rank));
  }
  stats.complete = !stopped && stats.ranks_kept == ranks && in.ok() &&
                   in.at_end();
  if (!stats.complete && stats.detail.empty()) {
    stats.detail = in.at_end() ? "rank headers missing"
                               : "trailing bytes after trace payload";
  }
  return trace;
}

namespace {

/// Shared rank-forest prefix loop of the signature/skeleton salvors: keeps
/// whole ranks decoded before the first failure.
void decode_rank_prefix(Cursor& in, std::string_view payload,
                        std::uint32_t ranks,
                        std::vector<sig::RankSignature>& out,
                        PrefixStats& stats) {
  stats.ranks_expected = ranks;
  stats.bytes_consumed = payload.size() - in.remaining();
  for (std::uint32_t r = 0; r < ranks; ++r) {
    sig::RankSignature rank = decode_rank_signature(in);
    if (!in.ok()) {
      stats.detail = in.error().message;
      break;
    }
    out.push_back(std::move(rank));
    ++stats.ranks_kept;
    stats.bytes_consumed = payload.size() - in.remaining();
  }
  stats.complete = stats.ranks_kept == ranks && in.ok() && in.at_end();
  if (!stats.complete && stats.detail.empty()) {
    stats.detail = "trailing bytes after payload";
  }
}

}  // namespace

Result<sig::Signature> decode_signature_prefix(std::string_view payload,
                                               std::uint32_t version,
                                               PrefixStats& stats) {
  stats = PrefixStats{};
  if (version != kSignatureVersion) {
    return Error{ErrorCode::kBadVersion,
                 "signature payload version " + std::to_string(version)};
  }
  Cursor in(payload);
  sig::Signature signature;
  signature.app_name = in.string();
  signature.threshold = in.f64();
  signature.compression_ratio = in.f64();
  const std::uint32_t ranks = in.u32();
  if (!in.ok() || ranks > kMaxRanks) {
    return Error{ErrorCode::kCorrupt, in.ok() ? "implausible rank count"
                                              : in.error().message};
  }
  decode_rank_prefix(in, payload, ranks, signature.ranks, stats);
  return signature;
}

Result<skeleton::Skeleton> decode_skeleton_prefix(std::string_view payload,
                                                  std::uint32_t version,
                                                  PrefixStats& stats) {
  stats = PrefixStats{};
  if (version != kSkeletonVersion) {
    return Error{ErrorCode::kBadVersion,
                 "skeleton payload version " + std::to_string(version)};
  }
  Cursor in(payload);
  skeleton::Skeleton skeleton;
  skeleton.app_name = in.string();
  skeleton.scaling_factor = in.f64();
  skeleton.intended_time = in.f64();
  skeleton.min_good_time = in.f64();
  skeleton.good = in.boolean();
  const std::uint32_t ranks = in.u32();
  if (!in.ok() || ranks > kMaxRanks) {
    return Error{ErrorCode::kCorrupt, in.ok() ? "implausible rank count"
                                              : in.error().message};
  }
  decode_rank_prefix(in, payload, ranks, skeleton.ranks, stats);
  return skeleton;
}

Result<skeleton::Skeleton> decode_skeleton(std::string_view payload,
                                           std::uint32_t version) {
  if (version != kSkeletonVersion) {
    return Error{ErrorCode::kBadVersion,
                 "skeleton payload version " + std::to_string(version)};
  }
  Cursor in(payload);
  skeleton::Skeleton skeleton;
  skeleton.app_name = in.string();
  skeleton.scaling_factor = in.f64();
  skeleton.intended_time = in.f64();
  skeleton.min_good_time = in.f64();
  skeleton.good = in.boolean();
  const std::uint32_t ranks = in.u32();
  if (ranks > kMaxRanks) in.fail("implausible rank count");
  in.check_count(ranks, kMinSigRankBytes, "rank");
  for (std::uint32_t r = 0; r < ranks && in.ok(); ++r) {
    skeleton.ranks.push_back(decode_rank_signature(in));
  }
  if (!in.ok()) return in.error();
  if (!in.at_end()) {
    return Error{ErrorCode::kCorrupt,
                 "trailing bytes after skeleton payload"};
  }
  return skeleton;
}

}  // namespace psk::archive
