// The unified psk archive: one versioned container for traces, signatures
// and skeletons, replacing the three divergent save/load surfaces
// (trace::io, sig::io, skeleton::io).
//
// Container layout (all integers explicit little-endian):
//
//   offset  size  field
//   0       8     magic "PSKARCH1"
//   8       2     container version (currently 1)
//   10      2     payload kind (PayloadKind)
//   12      4     payload version (codec.h constants)
//   16      8     payload size in bytes
//   24      n     payload (canonical codec bytes)
//   24+n    8     FNV-1a fingerprint of the payload
//
// Loaders keep the pre-archive formats as a versioned fallback: a file that
// does not start with the archive magic is handed to the legacy text/binary
// readers, so existing example files keep loading.  Errors are typed
// (Result<T>/Status); use .or_throw() where exceptions are preferred.
#pragma once

#include <string>
#include <string_view>

#include "archive/codec.h"
#include "archive/wire.h"

namespace psk::archive {

inline constexpr std::string_view kMagic = "PSKARCH1";
inline constexpr std::uint16_t kContainerVersion = 1;

enum class PayloadKind : std::uint16_t {
  kTrace = 1,
  kSignature = 2,
  kSkeleton = 3,
};

const char* payload_kind_name(PayloadKind kind);

/// A parsed container frame: the payload bytes plus their framing metadata.
struct Frame {
  PayloadKind kind = PayloadKind::kTrace;
  std::uint32_t payload_version = 0;
  std::string payload;
};

/// Frames `payload` into a container and appends the bytes to `out`.
void write_frame(std::string& out, PayloadKind kind,
                 std::uint32_t payload_version, std::string_view payload);

/// Parses a container frame (magic, versions, size, checksum all verified).
Result<Frame> read_frame(std::string_view bytes);

/// True when `bytes` begins with the archive magic.
bool looks_like_archive(std::string_view bytes);

// ------------------------------------------------------- file operations
//
// save_* writes the archive container atomically (temp file + rename): a
// crashed writer never leaves a torn file at `path`.  load_* reads an
// archive container, falling back to the legacy format readers when the
// file predates the container.

Status save(const std::string& path, const trace::Trace& trace);
Status save(const std::string& path, const sig::Signature& signature);
Status save(const std::string& path, const skeleton::Skeleton& skeleton);

Result<trace::Trace> load_trace(const std::string& path);
Result<sig::Signature> load_signature(const std::string& path);
Result<skeleton::Skeleton> load_skeleton(const std::string& path);

}  // namespace psk::archive
