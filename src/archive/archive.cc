#include "archive/archive.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sig/io.h"
#include "skeleton/io.h"
#include "trace/io.h"

namespace psk::archive {

namespace {

constexpr std::size_t kHeaderSize = 8 + 2 + 2 + 4 + 8;
constexpr std::size_t kChecksumSize = 8;

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIo, "cannot open " + path + " for reading"};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Error{ErrorCode::kIo, "read failure on " + path};
  }
  return buffer.str();
}

/// Writes `bytes` to `path` via a temp file + rename, so a crash mid-write
/// never leaves a torn file at the destination.
Status write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Error{ErrorCode::kIo, "cannot open " + tmp + " for writing"};
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Error{ErrorCode::kIo, "write failure on " + tmp};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Error{ErrorCode::kIo, "cannot rename " + tmp + " to " + path};
  }
  return {};
}

template <typename T>
Status save_as(const std::string& path, PayloadKind kind,
               std::uint32_t payload_version, const T& value) {
  std::string payload;
  encode(payload, value);
  std::string bytes;
  bytes.reserve(kHeaderSize + payload.size() + kChecksumSize);
  write_frame(bytes, kind, payload_version, payload);
  return write_file_atomic(path, bytes);
}

/// Loads the frame for `kind` from `path`, or kBadMagic when the file is a
/// pre-archive (legacy) format the caller should fall back to.
Result<Frame> load_frame(const std::string& path, PayloadKind kind) {
  Result<std::string> bytes = read_file(path);
  if (!bytes.ok()) return bytes.error();
  Result<Frame> frame = read_frame(bytes.value());
  if (!frame.ok()) return frame.error();
  if (frame.value().kind != kind) {
    return Error{ErrorCode::kBadKind,
                 path + " holds a " +
                     payload_kind_name(frame.value().kind) + ", wanted a " +
                     payload_kind_name(kind)};
  }
  return frame;
}

/// Wraps a legacy (pre-archive) loader, translating its exceptions into
/// typed errors.
template <typename Fn>
auto load_legacy(const std::string& path, Fn fn)
    -> Result<decltype(fn(path))> {
  try {
    return fn(path);
  } catch (const psk::FormatError& e) {
    return Error{ErrorCode::kCorrupt, path + ": " + e.what()};
  } catch (const psk::Error& e) {
    return Error{ErrorCode::kIo, path + ": " + e.what()};
  }
}

}  // namespace

const char* payload_kind_name(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kTrace: return "trace";
    case PayloadKind::kSignature: return "signature";
    case PayloadKind::kSkeleton: return "skeleton";
  }
  return "unknown payload";
}

void write_frame(std::string& out, PayloadKind kind,
                 std::uint32_t payload_version, std::string_view payload) {
  out.append(kMagic);
  put_u16(out, kContainerVersion);
  put_u16(out, static_cast<std::uint16_t>(kind));
  put_u32(out, payload_version);
  put_u64(out, payload.size());
  out.append(payload);
  put_u64(out, fingerprint64(payload));
}

bool looks_like_archive(std::string_view bytes) {
  return bytes.substr(0, kMagic.size()) == kMagic;
}

Result<Frame> read_frame(std::string_view bytes) {
  if (!looks_like_archive(bytes)) {
    return Error{ErrorCode::kBadMagic, "not a psk archive"};
  }
  Cursor in(bytes.substr(kMagic.size()));
  const std::uint16_t container_version = in.u16();
  const std::uint16_t raw_kind = in.u16();
  const std::uint32_t payload_version = in.u32();
  const std::uint64_t payload_size = in.u64();
  if (!in.ok()) return in.error();
  if (container_version != kContainerVersion) {
    return Error{ErrorCode::kBadVersion,
                 "container version " + std::to_string(container_version)};
  }
  if (raw_kind < static_cast<std::uint16_t>(PayloadKind::kTrace) ||
      raw_kind > static_cast<std::uint16_t>(PayloadKind::kSkeleton)) {
    return Error{ErrorCode::kCorrupt,
                 "unknown payload kind " + std::to_string(raw_kind)};
  }
  // Declared size vs bytes actually present, checked before the payload is
  // copied: a hostile size field costs nothing.  Overflow-safe comparison
  // (payload_size + kChecksumSize could wrap).
  if (in.remaining() < kChecksumSize ||
      payload_size > in.remaining() - kChecksumSize) {
    return Error{ErrorCode::kTruncated,
                 "payload declares " + std::to_string(payload_size) +
                     " byte(s) but only " + std::to_string(in.remaining()) +
                     " remain"};
  }
  if (payload_size < in.remaining() - kChecksumSize) {
    return Error{ErrorCode::kCorrupt,
                 "frame size mismatch (payload says " +
                     std::to_string(payload_size) + " byte(s), file has " +
                     std::to_string(in.remaining()) + ")"};
  }
  Frame frame;
  frame.kind = static_cast<PayloadKind>(raw_kind);
  frame.payload_version = payload_version;
  frame.payload =
      std::string(bytes.substr(kHeaderSize, static_cast<std::size_t>(payload_size)));
  Cursor tail(bytes.substr(kHeaderSize + static_cast<std::size_t>(payload_size)));
  const std::uint64_t checksum = tail.u64();
  if (checksum != fingerprint64(frame.payload)) {
    return Error{ErrorCode::kCorrupt, "payload checksum mismatch"};
  }
  return frame;
}

Status save(const std::string& path, const trace::Trace& trace) {
  return save_as(path, PayloadKind::kTrace, kTraceVersion, trace);
}

Status save(const std::string& path, const sig::Signature& signature) {
  return save_as(path, PayloadKind::kSignature, kSignatureVersion, signature);
}

Status save(const std::string& path, const skeleton::Skeleton& skeleton) {
  return save_as(path, PayloadKind::kSkeleton, kSkeletonVersion, skeleton);
}

Result<trace::Trace> load_trace(const std::string& path) {
  Result<Frame> frame = load_frame(path, PayloadKind::kTrace);
  if (frame.ok()) {
    return decode_trace(frame.value().payload, frame.value().payload_version);
  }
  if (frame.error().code != ErrorCode::kBadMagic) return frame.error();
  // Versioned fallback: pre-archive text and binary trace files.
  return load_legacy(path, [](const std::string& p) {
    return trace::load_trace(p);
  });
}

Result<sig::Signature> load_signature(const std::string& path) {
  Result<Frame> frame = load_frame(path, PayloadKind::kSignature);
  if (frame.ok()) {
    return decode_signature(frame.value().payload,
                            frame.value().payload_version);
  }
  if (frame.error().code != ErrorCode::kBadMagic) return frame.error();
  return load_legacy(path, [](const std::string& p) {
    return sig::load_signature(p);
  });
}

Result<skeleton::Skeleton> load_skeleton(const std::string& path) {
  Result<Frame> frame = load_frame(path, PayloadKind::kSkeleton);
  if (frame.ok()) {
    return decode_skeleton(frame.value().payload,
                           frame.value().payload_version);
  }
  if (frame.error().code != ErrorCode::kBadMagic) return frame.error();
  return load_legacy(path, [](const std::string& p) {
    return skeleton::load_skeleton(p);
  });
}

}  // namespace psk::archive
