// Canonical byte encodings of the repo's domain values.
//
// Each encode() appends an explicit little-endian, field-order-fixed byte
// rendering of the value to `out`.  The encoding is *canonical*: equal
// values always encode to identical bytes, on any host.  It serves two
// consumers:
//   - the psk::archive container stores these bytes as payloads (the
//     unified replacement for the trace/sig/skeleton text formats), and
//   - the psk::cache result cache hashes them as content-addressed keys
//     (scenario / cluster / MPI configs are encode-only: key material that
//     is never loaded back).
//
// Decoders return Result<T> with typed errors; they never throw and never
// return silently defaulted values.
#pragma once

#include <string>
#include <string_view>

#include "archive/wire.h"
#include "mpi/types.h"
#include "scenario/scenario.h"
#include "sig/signature.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "trace/event.h"

namespace psk::archive {

/// Payload versions, bumped whenever the corresponding encoding changes.
/// Readers reject newer versions with ErrorCode::kBadVersion.
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint32_t kSignatureVersion = 1;
inline constexpr std::uint32_t kSkeletonVersion = 1;

void encode(std::string& out, const trace::Trace& trace);
void encode(std::string& out, const sig::Signature& signature);
void encode(std::string& out, const skeleton::Skeleton& skeleton);

// Key-material encoders (never decoded; cache keys only).
void encode(std::string& out, const scenario::Scenario& scenario);
void encode(std::string& out, const sim::ClusterConfig& cluster);
void encode(std::string& out, const mpi::MpiConfig& mpi);

Result<trace::Trace> decode_trace(std::string_view payload,
                                  std::uint32_t version = kTraceVersion);
Result<sig::Signature> decode_signature(
    std::string_view payload, std::uint32_t version = kSignatureVersion);
Result<skeleton::Skeleton> decode_skeleton(
    std::string_view payload, std::uint32_t version = kSkeletonVersion);

// ------------------------------------------------------- prefix decoding
//
// Lenient decoders for the guard salvage layer: instead of rejecting a
// truncated payload outright, they keep every *complete* unit decoded
// before the first failure -- whole events for traces, whole ranks for
// signatures/skeletons (a rank's loop forest is useless half-read).  They
// still reject unknown payload versions.

struct PrefixStats {
  /// True when the whole payload decoded and nothing was dropped.
  bool complete = false;
  std::uint64_t ranks_expected = 0;
  std::uint64_t ranks_kept = 0;
  /// Trace payloads only: per-rank declared event totals vs events kept.
  std::uint64_t events_expected = 0;
  std::uint64_t events_kept = 0;
  /// Payload bytes consumed by the kept prefix (diagnostic byte offset of
  /// the first dropped byte, relative to the payload start).
  std::size_t bytes_consumed = 0;
  /// First decode failure, empty when complete.
  std::string detail;
};

Result<trace::Trace> decode_trace_prefix(std::string_view payload,
                                         std::uint32_t version,
                                         PrefixStats& stats);
Result<sig::Signature> decode_signature_prefix(std::string_view payload,
                                               std::uint32_t version,
                                               PrefixStats& stats);
Result<skeleton::Skeleton> decode_skeleton_prefix(std::string_view payload,
                                                  std::uint32_t version,
                                                  PrefixStats& stats);

}  // namespace psk::archive
