// Canonical byte encodings of the repo's domain values.
//
// Each encode() appends an explicit little-endian, field-order-fixed byte
// rendering of the value to `out`.  The encoding is *canonical*: equal
// values always encode to identical bytes, on any host.  It serves two
// consumers:
//   - the psk::archive container stores these bytes as payloads (the
//     unified replacement for the trace/sig/skeleton text formats), and
//   - the psk::cache result cache hashes them as content-addressed keys
//     (scenario / cluster / MPI configs are encode-only: key material that
//     is never loaded back).
//
// Decoders return Result<T> with typed errors; they never throw and never
// return silently defaulted values.
#pragma once

#include <string>
#include <string_view>

#include "archive/wire.h"
#include "mpi/types.h"
#include "scenario/scenario.h"
#include "sig/signature.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "trace/event.h"

namespace psk::archive {

/// Payload versions, bumped whenever the corresponding encoding changes.
/// Readers reject newer versions with ErrorCode::kBadVersion.
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint32_t kSignatureVersion = 1;
inline constexpr std::uint32_t kSkeletonVersion = 1;

void encode(std::string& out, const trace::Trace& trace);
void encode(std::string& out, const sig::Signature& signature);
void encode(std::string& out, const skeleton::Skeleton& skeleton);

// Key-material encoders (never decoded; cache keys only).
void encode(std::string& out, const scenario::Scenario& scenario);
void encode(std::string& out, const sim::ClusterConfig& cluster);
void encode(std::string& out, const mpi::MpiConfig& mpi);

Result<trace::Trace> decode_trace(std::string_view payload,
                                  std::uint32_t version = kTraceVersion);
Result<sig::Signature> decode_signature(
    std::string_view payload, std::uint32_t version = kSignatureVersion);
Result<skeleton::Skeleton> decode_skeleton(
    std::string_view payload, std::uint32_t version = kSkeletonVersion);

}  // namespace psk::archive
