// Wire-level primitives of the psk versioned-archive format.
//
// Everything the archive writes is explicit little-endian, regardless of
// host byte order, so a file produced on one machine decodes identically on
// any other -- and so the encoded bytes of a value are *canonical*: equal
// values always produce equal bytes.  That canonical property is what the
// content-addressed result cache (psk::cache) hashes, which is why these
// primitives live in their own dependency-free layer below both the archive
// container and the cache.
//
// Error handling is typed: readers return Result<T> / Status instead of the
// historical mix of bools, exceptions and silent defaults.  Callers that
// prefer exceptions bridge with or_throw(), which raises FormatError.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/error.h"

namespace psk::archive {

// ---------------------------------------------------------------- errors

enum class ErrorCode {
  kIo,           // file missing / unreadable / unwritable
  kBadMagic,     // not an archive and not a recognized legacy format
  kBadVersion,   // container or payload version newer than this reader
  kBadKind,      // archive holds a different payload kind than requested
  kCorrupt,      // framing, checksum or field-level decode failure
  kTruncated,    // declared sizes/counts exceed the bytes actually present
};

const char* error_code_name(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kCorrupt;
  std::string message;

  std::string render() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

/// Outcome of a write-style operation: success, or a typed Error.
class Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return *error_; }

  /// Throws FormatError when not ok (the exception bridge).
  void or_throw() const {
    if (!ok()) throw FormatError(error_->render());
  }

 private:
  std::optional<Error> error_;
};

/// Outcome of a read-style operation: a value, or a typed Error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}   // NOLINT(runtime/explicit)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  /// Moves the value out (precondition: ok()).
  T take() { return std::move(*value_); }
  const Error& error() const { return *error_; }

  /// Returns the value or throws FormatError (the exception bridge).
  T or_throw() && {
    if (!ok()) throw FormatError(error_->render());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

// ---------------------------------------------------------------- writing

void put_u8(std::string& out, std::uint8_t value);
void put_u16(std::string& out, std::uint16_t value);
void put_u32(std::string& out, std::uint32_t value);
void put_u64(std::string& out, std::uint64_t value);
void put_i32(std::string& out, std::int32_t value);
void put_i64(std::string& out, std::int64_t value);
/// Doubles travel as their IEEE-754 bit pattern: exact round-trip, and
/// bit-identical doubles encode to identical bytes (the cache relies on it).
void put_f64(std::string& out, double value);
void put_bool(std::string& out, bool value);
/// Length-prefixed (u32) byte string.
void put_string(std::string& out, std::string_view text);

// ---------------------------------------------------------------- reading

/// Sticky-failure reader over a byte span.  Getters return a decoded value
/// (or 0/empty once failed); check ok()/error() after a decode batch, like
/// stream extraction.  Out-of-bounds reads fail instead of throwing.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string string();

  /// Marks the cursor failed with `what` (for field-level validation).
  /// Out-of-bounds reads record ErrorCode::kTruncated; semantic failures
  /// default to kCorrupt.
  void fail(const std::string& what, ErrorCode code = ErrorCode::kCorrupt);

  /// Fails with kTruncated unless `count` units of at least
  /// `min_unit_bytes` each can still fit in the remaining input.  Call it
  /// on every declared count *before* the decode loop: a hostile count
  /// field then costs one multiply, not a long failing decode.
  /// Returns ok().
  bool check_count(std::uint64_t count, std::size_t min_unit_bytes,
                   const char* what);

  bool ok() const { return !failed_; }
  bool at_end() const { return failed_ || pos_ == data_.size(); }
  std::size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  /// The failure as a typed archive Error.
  Error error() const { return Error{code_, what_}; }

 private:
  const unsigned char* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  ErrorCode code_ = ErrorCode::kCorrupt;
  std::string what_;
};

// ---------------------------------------------------------------- hashing

/// 64-bit FNV-1a over a byte span: the archive's payload checksum and the
/// cache's content hash.  Stable across platforms and releases by contract.
std::uint64_t fingerprint64(std::string_view bytes);

/// Fixed-width lowercase hex rendering of a fingerprint (16 chars).
std::string fingerprint_hex(std::uint64_t hash);

}  // namespace psk::archive
