#include "archive/wire.h"

#include <bit>
#include <cstring>

namespace psk::archive {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIo: return "io error";
    case ErrorCode::kBadMagic: return "bad magic";
    case ErrorCode::kBadVersion: return "unsupported version";
    case ErrorCode::kBadKind: return "wrong payload kind";
    case ErrorCode::kCorrupt: return "corrupt archive";
    case ErrorCode::kTruncated: return "truncated archive";
  }
  return "unknown error";
}

namespace {

/// Appends `value`'s low `n` bytes LSB-first (explicit little-endian).
void put_le(std::string& out, std::uint64_t value, int n) {
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

}  // namespace

void put_u8(std::string& out, std::uint8_t value) { put_le(out, value, 1); }
void put_u16(std::string& out, std::uint16_t value) { put_le(out, value, 2); }
void put_u32(std::string& out, std::uint32_t value) { put_le(out, value, 4); }
void put_u64(std::string& out, std::uint64_t value) { put_le(out, value, 8); }

void put_i32(std::string& out, std::int32_t value) {
  put_le(out, static_cast<std::uint32_t>(value), 4);
}

void put_i64(std::string& out, std::int64_t value) {
  put_le(out, static_cast<std::uint64_t>(value), 8);
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_bool(std::string& out, bool value) {
  put_u8(out, value ? 1 : 0);
}

void put_string(std::string& out, std::string_view text) {
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.append(text.data(), text.size());
}

const unsigned char* Cursor::take(std::size_t n) {
  if (failed_) return nullptr;
  if (data_.size() - pos_ < n) {
    fail("truncated input (wanted " + std::to_string(n) + " byte(s) at offset " +
             std::to_string(pos_) + ")",
         ErrorCode::kTruncated);
    return nullptr;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

namespace {
std::uint64_t get_le(const unsigned char* p, int n) {
  std::uint64_t value = 0;
  for (int i = 0; i < n; ++i) {
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return value;
}
}  // namespace

std::uint8_t Cursor::u8() {
  const unsigned char* p = take(1);
  return p ? static_cast<std::uint8_t>(get_le(p, 1)) : 0;
}

std::uint16_t Cursor::u16() {
  const unsigned char* p = take(2);
  return p ? static_cast<std::uint16_t>(get_le(p, 2)) : 0;
}

std::uint32_t Cursor::u32() {
  const unsigned char* p = take(4);
  return p ? static_cast<std::uint32_t>(get_le(p, 4)) : 0;
}

std::uint64_t Cursor::u64() {
  const unsigned char* p = take(8);
  return p ? get_le(p, 8) : 0;
}

std::int32_t Cursor::i32() {
  return static_cast<std::int32_t>(u32());
}

std::int64_t Cursor::i64() {
  return static_cast<std::int64_t>(u64());
}

double Cursor::f64() {
  return std::bit_cast<double>(u64());
}

bool Cursor::boolean() {
  return u8() != 0;
}

std::string Cursor::string() {
  const std::uint32_t size = u32();
  if (failed_) return {};
  // Declared length vs bytes actually present, checked before the copy: a
  // hostile length field cannot trigger a multi-GB allocation.
  if (data_.size() - pos_ < size) {
    fail("truncated string (wanted " + std::to_string(size) + " byte(s))",
         ErrorCode::kTruncated);
    return {};
  }
  std::string text(data_.substr(pos_, size));
  pos_ += size;
  return text;
}

void Cursor::fail(const std::string& what, ErrorCode code) {
  if (!failed_) {
    failed_ = true;
    code_ = code;
    what_ = what;
  }
}

bool Cursor::check_count(std::uint64_t count, std::size_t min_unit_bytes,
                         const char* what) {
  if (failed_) return false;
  // Division, not multiplication: count * min_unit_bytes could overflow.
  if (min_unit_bytes > 0 &&
      count > remaining() / static_cast<std::uint64_t>(min_unit_bytes)) {
    fail(std::string(what) + " count " + std::to_string(count) +
             " exceeds the " + std::to_string(remaining()) +
             " byte(s) of remaining input",
         ErrorCode::kTruncated);
  }
  return !failed_;
}

std::uint64_t fingerprint64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64 offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string fingerprint_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace psk::archive
