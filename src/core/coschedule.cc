#include "core/coschedule.h"

#include "guard/deadlock.h"

namespace psk::core {

CoscheduleResult run_coscheduled(const CoscheduleConfig& config,
                                 const mpi::RankMain& primary,
                                 int primary_ranks,
                                 const mpi::RankMain& secondary,
                                 int secondary_ranks) {
  sim::Machine machine(config.cluster);
  machine.engine().set_time_limit(config.time_limit);

  // Two independent jobs: separate worlds (separate envelopes/matching,
  // like two mpirun invocations), one shared machine.
  mpi::World primary_world(machine, primary_ranks, config.mpi);
  mpi::World secondary_world(machine, secondary_ranks, config.mpi);
  primary_world.launch(primary);
  secondary_world.launch(secondary);

  // One monitor per world: the engine fires only when *both* jobs are
  // globally blocked, so one job deadlocking while the other still makes
  // progress is reported at the instant the healthy job finishes or blocks.
  guard::DeadlockMonitor primary_monitor(primary_world);
  guard::DeadlockMonitor secondary_monitor(secondary_world);

  machine.engine().run();

  CoscheduleResult result;
  result.primary_time = primary_world.parallel_time();
  result.secondary_time = secondary_world.parallel_time();
  return result;
}

}  // namespace psk::core
