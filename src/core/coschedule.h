// Co-scheduled MPI jobs: two parallel applications sharing one cluster.
//
// The paper's motivating example for why load-average-based prediction
// fails: "the amount of CPU time that a process is likely to get on a
// computation node cannot be determined even when the load average on the
// node is known since it partly depends on the synchronization structure of
// the parallel and distributed applications in the system."
//
// run_coscheduled() executes two independent MPI jobs (separate virtual
// MPI worlds -- separate matching engines, like separate mpirun
// invocations) on the same simulated machine, so they contend for cores
// and links exactly as co-scheduled jobs do.  A skeleton executed as the
// primary job experiences the competitor's synchronization structure, which
// is what lets it out-predict share-based reasoning.
#pragma once

#include <cstdint>

#include "mpi/world.h"
#include "sim/machine.h"

namespace psk::core {

struct CoscheduleConfig {
  /// The shared machine.  Use one core per node to force time slicing
  /// between co-located ranks of the two jobs.
  sim::ClusterConfig cluster;
  mpi::MpiConfig mpi;
  double time_limit = 1.0e5;
};

struct CoscheduleResult {
  /// Parallel execution time of each job (they start together at t = 0).
  double primary_time = 0;
  double secondary_time = 0;
};

/// Runs both jobs to completion on one machine and reports their times.
CoscheduleResult run_coscheduled(const CoscheduleConfig& config,
                                 const mpi::RankMain& primary,
                                 int primary_ranks,
                                 const mpi::RankMain& secondary,
                                 int secondary_ranks);

}  // namespace psk::core
