#include "core/framework.h"

#include <cmath>
#include <functional>

#include "cache/keys.h"
#include "guard/deadlock.h"
#include "skeleton/validate.h"
#include "trace/fold.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::core {

sim::ClusterConfig FrameworkOptions::default_cluster() {
  sim::ClusterConfig cluster = sim::ClusterConfig::paper_testbed();
  cluster.cpu_jitter = 0.02;
  cluster.net_jitter = 0.02;
  return cluster;
}

SkeletonFramework::SkeletonFramework(FrameworkOptions options)
    : options_(std::move(options)) {
  util::require(options_.ranks >= 1, "SkeletonFramework: need >= 1 rank");
  util::require(options_.compression_ratio_divisor > 0,
                "SkeletonFramework: ratio divisor must be positive");
}

trace::Trace SkeletonFramework::record(const mpi::RankMain& app,
                                       const std::string& name) const {
  sim::ClusterConfig cluster = options_.cluster;
  cluster.seed = options_.dedicated_seed;
  // The paper records traces on a *controlled* testbed "without any
  // competing processes or network traffic".  Suppressing measurement
  // jitter here keeps SPMD ranks' traces symmetric, which the compressor
  // needs to produce mutually consistent per-rank skeletons; scenario
  // measurement runs keep their jitter.
  cluster.cpu_jitter = 0;
  cluster.net_jitter = 0;
  sim::Machine machine(cluster);
  mpi::World world(machine, options_.ranks, options_.mpi);
  guard::DeadlockMonitor deadlock_monitor(world);
  trace::Trace trace = [&] {
    obs::PhaseProfiler::Scope scope(options_.profiler, "record");
    return trace::record_run(world, app, name);
  }();
  {
    obs::PhaseProfiler::Scope scope(options_.profiler, "fold");
    trace::fold_nonblocking(trace);
  }
  return trace;
}

sig::Signature SkeletonFramework::make_signature(
    const trace::Trace& folded_trace, double k) const {
  sig::CompressOptions compress_options = options_.compress;
  compress_options.target_ratio =
      std::max(1.0, k / options_.compression_ratio_divisor);
  compress_options.profiler = options_.profiler;
  return sig::compress(folded_trace, compress_options);
}

skeleton::Skeleton SkeletonFramework::make_skeleton(
    const sig::Signature& signature, double k) const {
  obs::PhaseProfiler::Scope scope(options_.profiler, "scale");
  return skeleton::build_skeleton(signature, k, options_.scale);
}

skeleton::Skeleton SkeletonFramework::make_consistent_skeleton(
    const trace::Trace& folded_trace, double k) const {
  sig::Signature signature = make_signature(folded_trace, k);
  skeleton::Skeleton candidate = make_skeleton(signature, k);
  skeleton::ConsistencyReport report =
      skeleton::check_consistency(candidate);
  if (report.consistent) return candidate;

  // Retry ladder: first coarser clustering (independently compressed rank
  // traces may have fragmented differently), then collective-anchored
  // folding (eliminates cross-rank loop-rotation ambiguity), again from
  // fine to coarse thresholds.
  sig::CompressOptions compress_options = options_.compress;
  util::require(compress_options.threshold_step > 0,
                "make_consistent_skeleton: threshold_step must be positive");
  for (const bool anchored : {false, true}) {
    compress_options.anchor_at_collectives = anchored;
    // Same integer threshold schedule as sig::compress (whose thresholds
    // are exact multiples of the step, so the division round-trips).
    int step = anchored ? 0
                        : static_cast<int>(std::llround(
                              signature.threshold /
                              compress_options.threshold_step)) +
                              1;
    for (;; ++step) {
      const double threshold = step * compress_options.threshold_step;
      if (threshold > compress_options.max_threshold + 1e-12) break;
      signature = sig::compress_at_threshold(
          folded_trace,
          sig::ThresholdCompressOptions{threshold, compress_options});
      candidate = make_skeleton(signature, k);
      report = skeleton::check_consistency(candidate);
      if (report.consistent) {
        util::log_info() << "skeleton for " << folded_trace.app_name
                         << " K=" << k << " required threshold " << threshold
                         << (anchored ? " with collective anchoring" : "")
                         << " for cross-rank consistency";
        return candidate;
      }
    }
  }
  throw ConfigError("make_consistent_skeleton: no compression setting yields "
                    "a cross-rank-consistent skeleton for " +
                    folded_trace.app_name + " (" + report.detail + ")");
}

skeleton::Skeleton SkeletonFramework::make_skeleton_for_time(
    const sig::Signature& signature, double target_seconds) const {
  return skeleton::build_skeleton_for_time(signature, target_seconds,
                                           options_.scale);
}

skeleton::Skeleton SkeletonFramework::construct(const mpi::RankMain& app,
                                                const std::string& name,
                                                double target_seconds) const {
  const trace::Trace trace = record(app, name);
  const double k = std::max(1.0, trace.elapsed() / target_seconds);
  const sig::Signature signature = make_signature(trace, k);
  return make_skeleton(signature, k);
}

namespace {
std::uint64_t fnv1a(const char* text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char* p = text; *p != '\0'; ++p) {
    hash ^= static_cast<unsigned char>(*p);
    hash *= 1099511628211ULL;
  }
  return hash;
}
}  // namespace

std::uint64_t SkeletonFramework::scenario_run_seed(
    const scenario::Scenario& scenario, std::uint64_t seed_offset) const {
  // Fault scenarios never take the dedicated fast path (several of them
  // share Kind::kDedicated because they add no competing load), and they
  // mix in a hash of their name so each fault scenario gets its own seed
  // stream.  Non-fault scenarios keep the original derivation exactly, so
  // pre-fault results stay bit-identical.
  if (!scenario.has_fault()) {
    if (scenario.kind == scenario::Kind::kDedicated && seed_offset == 0) {
      return options_.dedicated_seed;
    }
    // Distinct stream per scenario kind and offset.
    return options_.scenario_seed +
           static_cast<std::uint64_t>(scenario.kind) * 7919 +
           seed_offset * 104729;
  }
  return options_.scenario_seed +
         static_cast<std::uint64_t>(scenario.kind) * 7919 +
         seed_offset * 104729 + fnv1a(scenario.name);
}

double SkeletonFramework::run_app(const mpi::RankMain& app,
                                  const scenario::Scenario& scenario,
                                  std::uint64_t seed_offset,
                                  obs::Recorder* obs) const {
  sim::ClusterConfig cluster = options_.cluster;
  cluster.seed = scenario_run_seed(scenario, seed_offset);
  sim::Machine machine(cluster);
  machine.engine().set_time_limit(options_.run_time_limit);
  machine.engine().set_wall_deadline(options_.wall_deadline_seconds);
  machine.attach_obs(obs);
  scenario.apply(machine);
  mpi::World world(machine, options_.ranks, options_.mpi);
  guard::DeadlockMonitor deadlock_monitor(world);
  world.launch(app);
  return world.run();
}

double SkeletonFramework::run_app_controlled(const mpi::RankMain& app) const {
  sim::ClusterConfig cluster = options_.cluster;
  cluster.seed = options_.dedicated_seed;
  cluster.cpu_jitter = 0;
  cluster.net_jitter = 0;
  sim::Machine machine(cluster);
  machine.engine().set_time_limit(options_.run_time_limit);
  machine.engine().set_wall_deadline(options_.wall_deadline_seconds);
  mpi::World world(machine, options_.ranks, options_.mpi);
  guard::DeadlockMonitor deadlock_monitor(world);
  world.launch(app);
  return world.run();
}

cache::RunContext SkeletonFramework::run_context(
    std::uint64_t seed_offset) const {
  cache::RunContext context;
  context.cluster = &options_.cluster;
  context.mpi = &options_.mpi;
  context.ranks = options_.ranks;
  context.dedicated_seed = options_.dedicated_seed;
  context.scenario_seed = options_.scenario_seed;
  context.seed_offset = seed_offset;
  context.run_time_limit = options_.run_time_limit;
  return context;
}

double SkeletonFramework::run_skeleton(const skeleton::Skeleton& skeleton,
                                       const scenario::Scenario& scenario,
                                       std::uint64_t seed_offset,
                                       const skeleton::ReplayOptions& replay,
                                       obs::Recorder* obs) const {
  const auto execute = [&] {
    sim::ClusterConfig cluster = options_.cluster;
    cluster.seed = scenario_run_seed(scenario, seed_offset);
    sim::Machine machine(cluster);
    machine.engine().set_time_limit(options_.run_time_limit);
    machine.engine().set_wall_deadline(options_.wall_deadline_seconds);
    machine.attach_obs(obs);
    scenario.apply(machine);
    mpi::World world(machine, options_.ranks, options_.mpi);
    guard::DeadlockMonitor deadlock_monitor(world);
    return skeleton::run_skeleton(world, skeleton, replay);
  };
  // Instrumented runs always execute: the recorder wants the timeline, and
  // the cache holds only the elapsed time.
  if (options_.result_cache == nullptr || obs != nullptr) return execute();
  const cache::CacheKey key = cache::skeleton_run_key(
      skeleton, scenario, replay, run_context(seed_offset));
  return cache::memoize_scalar(options_.result_cache.get(), key, execute);
}

}  // namespace psk::core
