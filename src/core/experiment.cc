#include "core/experiment.h"

#include <cmath>
#include <utility>

#include "mpi/world.h"
#include "sim/machine.h"
#include "trace/recorder.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::core {

namespace {
/// Sizes and Ks are cached by a fixed-point key (microsecond resolution).
long long size_key(double value) {
  return static_cast<long long>(std::llround(value * 1e6));
}
}  // namespace

ExperimentDriver::ExperimentDriver(ExperimentConfig config)
    : config_(std::move(config)), framework_(config_.framework) {}

mpi::RankMain ExperimentDriver::program(const std::string& app,
                                        apps::NasClass cls) const {
  return apps::find_benchmark(app).make(cls);
}

const trace::Trace& ExperimentDriver::app_trace(const std::string& app) {
  auto it = traces_.find(app);
  if (it == traces_.end()) {
    util::log_info() << "tracing " << app << " (class "
                     << apps::class_name(config_.app_class) << ")";
    it = traces_
             .emplace(app,
                      framework_.record(program(app, config_.app_class), app))
             .first;
  }
  return it->second;
}

double ExperimentDriver::app_time(const std::string& app,
                                  const scenario::Scenario& scenario,
                                  int repetition) {
  const auto key =
      std::make_tuple(app, std::string(scenario.name), repetition);
  auto it = app_times_.find(key);
  if (it == app_times_.end()) {
    const double elapsed =
        framework_.run_app(program(app, config_.app_class), scenario,
                           static_cast<std::uint64_t>(repetition) * 13);
    it = app_times_.emplace(key, elapsed).first;
  }
  return it->second;
}

double ExperimentDriver::class_s_time(const std::string& app,
                                      const scenario::Scenario& scenario) {
  const auto key = std::make_pair(app, std::string(scenario.name));
  auto it = class_s_times_.find(key);
  if (it == class_s_times_.end()) {
    const double elapsed = framework_.run_app(
        program(app, apps::NasClass::kS), scenario, /*seed_offset=*/7);
    it = class_s_times_.emplace(key, elapsed).first;
  }
  return it->second;
}

const sig::Signature& ExperimentDriver::signature(const std::string& app,
                                                  double k) {
  const auto key = std::make_pair(app, size_key(k));
  auto it = signatures_.find(key);
  if (it == signatures_.end()) {
    util::log_info() << "compressing " << app << " for K=" << k;
    it = signatures_.emplace(key, framework_.make_signature(app_trace(app), k))
             .first;
  }
  return it->second;
}

const skeleton::Skeleton& ExperimentDriver::skeleton_for_size(
    const std::string& app, double size_seconds) {
  const auto key = std::make_pair(app, size_key(size_seconds));
  auto it = skeletons_.find(key);
  if (it == skeletons_.end()) {
    const double elapsed = app_trace(app).elapsed();
    const double k = std::max(1.0, elapsed / size_seconds);
    it = skeletons_
             .emplace(key,
                      framework_.make_consistent_skeleton(app_trace(app), k))
             .first;
  }
  return it->second;
}

double ExperimentDriver::skeleton_time(const std::string& app,
                                       double size_seconds,
                                       const scenario::Scenario& scenario,
                                       int repetition) {
  const auto key = std::make_tuple(app, size_key(size_seconds),
                                   std::string(scenario.name), repetition);
  auto it = skeleton_times_.find(key);
  if (it == skeleton_times_.end()) {
    const std::uint64_t seed_offset =
        1 +
        static_cast<std::uint64_t>(std::llabs(size_key(size_seconds)) % 97) +
        static_cast<std::uint64_t>(repetition) * 31;
    const double elapsed = framework_.run_skeleton(
        skeleton_for_size(app, size_seconds), scenario, seed_offset);
    it = skeleton_times_.emplace(key, elapsed).first;
  }
  return it->second;
}

const skeleton::GoodSkeletonEstimate& ExperimentDriver::good_estimate(
    const std::string& app) {
  auto it = good_estimates_.find(app);
  if (it == good_estimates_.end()) {
    // Reference compression: at least as deep as the smallest configured
    // skeleton (and never shallower than a 0.5 s one), so the dominant loop
    // structure is visible regardless of which sizes the caller requested.
    double min_size = 0.5;
    for (double size : config_.skeleton_sizes) {
      min_size = std::min(min_size, size);
    }
    const double k = std::max(1.0, app_trace(app).elapsed() / min_size);
    it = good_estimates_
             .emplace(app, skeleton::estimate_good_skeleton(signature(app, k)))
             .first;
  }
  return it->second;
}

PredictionRecord ExperimentDriver::predict(
    const std::string& app, double size_seconds,
    const scenario::Scenario& scenario) {
  const skeleton::Skeleton& skel = skeleton_for_size(app, size_seconds);

  PredictionRecord record;
  record.app = app;
  record.target_size = size_seconds;
  record.scenario = scenario.name;
  record.scaling_factor = skel.scaling_factor;
  const skeleton::GoodSkeletonEstimate& estimate = good_estimate(app);
  record.min_good_time = estimate.min_good_time;
  record.good = skel.intended_time >= estimate.min_good_time;
  record.app_dedicated = app_trace(app).elapsed();
  record.skeleton_dedicated =
      skeleton_time(app, size_seconds, scenario::dedicated());

  skeleton::Calibration calibration;
  calibration.app_dedicated_time = record.app_dedicated;
  calibration.skeleton_dedicated_time = record.skeleton_dedicated;

  // Average the prediction error over independent measurement pairs; the
  // reported times are the first pair's (representative sample).
  const int repetitions = std::max(1, config_.repetitions);
  double error_sum = 0;
  for (int repetition = 0; repetition < repetitions; ++repetition) {
    const double skeleton_scenario =
        skeleton_time(app, size_seconds, scenario, repetition);
    const double app_scenario = app_time(app, scenario, repetition);
    const double predicted =
        skeleton::predict_app_time(calibration, skeleton_scenario);
    error_sum +=
        skeleton::prediction_error_percent(predicted, app_scenario);
    if (repetition == 0) {
      record.skeleton_scenario = skeleton_scenario;
      record.app_scenario = app_scenario;
      record.predicted = predicted;
    }
  }
  record.error_percent = error_sum / repetitions;
  return record;
}

std::vector<PredictionRecord> ExperimentDriver::run_grid() {
  std::vector<PredictionRecord> records;
  records.reserve(config_.benchmarks.size() * config_.skeleton_sizes.size() *
                  scenario::paper_scenarios().size());
  for (const std::string& app : config_.benchmarks) {
    for (double size : config_.skeleton_sizes) {
      for (const scenario::Scenario& scenario : scenario::paper_scenarios()) {
        records.push_back(predict(app, size, scenario));
      }
    }
  }
  return records;
}

trace::ActivityBreakdown ExperimentDriver::app_activity(
    const std::string& app) {
  return trace::activity_breakdown(app_trace(app));
}

trace::ActivityBreakdown ExperimentDriver::skeleton_activity(
    const std::string& app, double size_seconds) {
  const skeleton::Skeleton& skel = skeleton_for_size(app, size_seconds);
  sim::ClusterConfig cluster = config_.framework.cluster;
  cluster.seed = config_.framework.dedicated_seed;
  sim::Machine machine(cluster);
  mpi::World world(machine, config_.framework.ranks,
                   config_.framework.mpi);
  const trace::Trace trace = trace::record_run(
      world, skeleton::skeleton_program(skel), app + "-skeleton");
  return trace::activity_breakdown(trace);
}

PredictionRecord ExperimentDriver::predict_with_class_s(
    const std::string& app, const scenario::Scenario& scenario) {
  PredictionRecord record;
  record.app = app;
  record.scenario = scenario.name;
  record.app_dedicated = app_time(app, scenario::dedicated());
  record.skeleton_dedicated = class_s_time(app, scenario::dedicated());
  record.skeleton_scenario = class_s_time(app, scenario);
  record.app_scenario = app_time(app, scenario);

  skeleton::Calibration calibration;
  calibration.app_dedicated_time = record.app_dedicated;
  calibration.skeleton_dedicated_time = record.skeleton_dedicated;
  record.predicted =
      skeleton::predict_app_time(calibration, record.skeleton_scenario);
  record.error_percent = skeleton::prediction_error_percent(
      record.predicted, record.app_scenario);
  return record;
}

PredictionRecord ExperimentDriver::predict_with_average(
    const std::string& app, const scenario::Scenario& scenario) {
  double slowdown_sum = 0;
  for (const std::string& other : config_.benchmarks) {
    slowdown_sum +=
        app_time(other, scenario) / app_time(other, scenario::dedicated());
  }
  const double mean_slowdown =
      slowdown_sum / static_cast<double>(config_.benchmarks.size());

  PredictionRecord record;
  record.app = app;
  record.scenario = scenario.name;
  record.app_dedicated = app_time(app, scenario::dedicated());
  record.app_scenario = app_time(app, scenario);
  record.predicted = record.app_dedicated * mean_slowdown;
  record.error_percent = skeleton::prediction_error_percent(
      record.predicted, record.app_scenario);
  return record;
}

double mean_error(const std::vector<PredictionRecord>& records) {
  if (records.empty()) return 0;
  double sum = 0;
  for (const PredictionRecord& record : records) sum += record.error_percent;
  return sum / static_cast<double>(records.size());
}

}  // namespace psk::core
