#include "core/experiment.h"

#include <cmath>
#include <set>
#include <utility>

#include "mpi/world.h"
#include "runner/sweep.h"
#include "sim/machine.h"
#include "trace/recorder.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::core {

namespace {
/// Sizes and Ks are cached by a fixed-point key (microsecond resolution).
long long size_key(double value) {
  return static_cast<long long>(std::llround(value * 1e6));
}
}  // namespace

namespace {
/// Injects the driver's profiler unless the caller supplied one; returns
/// the options for the framework member initializer.
core::FrameworkOptions& ensure_profiler(core::FrameworkOptions& options,
                                        obs::PhaseProfiler* phases) {
  if (options.profiler == nullptr) options.profiler = phases;
  return options;
}
}  // namespace

ExperimentDriver::ExperimentDriver(ExperimentConfig config)
    : config_(std::move(config)),
      framework_(ensure_profiler(config_.framework, &phases_)) {}

mpi::RankMain ExperimentDriver::program(const std::string& app,
                                        apps::NasClass cls) const {
  return apps::find_benchmark(app).make(cls);
}

const trace::Trace& ExperimentDriver::app_trace(const std::string& app) {
  auto it = traces_.find(app);
  if (it == traces_.end()) {
    util::log_info() << "tracing " << app << " (class "
                     << apps::class_name(config_.app_class) << ")";
    it = traces_
             .emplace(app,
                      framework_.record(program(app, config_.app_class), app))
             .first;
  }
  return it->second;
}

double ExperimentDriver::compute_app_time(const std::string& app,
                                          const scenario::Scenario& scenario,
                                          int repetition) const {
  obs::PhaseProfiler::Scope scope(framework_.options().profiler, "measure");
  const std::uint64_t seed_offset =
      static_cast<std::uint64_t>(repetition) * 13;
  const auto execute = [&] {
    return framework_.run_app(program(app, config_.app_class), scenario,
                              seed_offset);
  };
  cache::ResultCache* cache = framework_.options().result_cache.get();
  if (cache == nullptr) return execute();
  // The (benchmark, NAS class) pair identifies the workload: app programs
  // are deterministic generators of their inputs.
  const cache::CacheKey key =
      cache::app_run_key(app, apps::class_name(config_.app_class), scenario,
                         framework_.run_context(seed_offset));
  return cache::memoize_scalar(cache, key, execute);
}

double ExperimentDriver::app_time(const std::string& app,
                                  const scenario::Scenario& scenario,
                                  int repetition) {
  const auto key =
      std::make_tuple(app, std::string(scenario.name), repetition);
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    auto it = app_times_.find(key);
    if (it != app_times_.end()) return it->second;
  }
  const double elapsed = compute_app_time(app, scenario, repetition);
  std::lock_guard<std::mutex> lock(time_mutex_);
  return app_times_.try_emplace(key, elapsed).first->second;
}

double ExperimentDriver::class_s_time(const std::string& app,
                                      const scenario::Scenario& scenario) {
  const auto key = std::make_pair(app, std::string(scenario.name));
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    auto it = class_s_times_.find(key);
    if (it != class_s_times_.end()) return it->second;
  }
  const auto execute = [&] {
    return framework_.run_app(program(app, apps::NasClass::kS), scenario,
                              /*seed_offset=*/7);
  };
  cache::ResultCache* cache = framework_.options().result_cache.get();
  double elapsed;
  if (cache == nullptr) {
    elapsed = execute();
  } else {
    const cache::CacheKey cache_key = cache::app_run_key(
        app, apps::class_name(apps::NasClass::kS), scenario,
        framework_.run_context(/*seed_offset=*/7));
    elapsed = cache::memoize_scalar(cache, cache_key, execute);
  }
  std::lock_guard<std::mutex> lock(time_mutex_);
  return class_s_times_.try_emplace(key, elapsed).first->second;
}

const sig::Signature& ExperimentDriver::signature(const std::string& app,
                                                  double k) {
  const auto key = std::make_pair(app, size_key(k));
  auto it = signatures_.find(key);
  if (it == signatures_.end()) {
    util::log_info() << "compressing " << app << " for K=" << k;
    it = signatures_.emplace(key, framework_.make_signature(app_trace(app), k))
             .first;
  }
  return it->second;
}

const skeleton::Skeleton& ExperimentDriver::skeleton_for_size(
    const std::string& app, double size_seconds) {
  const auto key = std::make_pair(app, size_key(size_seconds));
  auto it = skeletons_.find(key);
  if (it == skeletons_.end()) {
    const double elapsed = app_trace(app).elapsed();
    const double k = std::max(1.0, elapsed / size_seconds);
    it = skeletons_
             .emplace(key,
                      framework_.make_consistent_skeleton(app_trace(app), k))
             .first;
  }
  return it->second;
}

double ExperimentDriver::compute_skeleton_time(
    const skeleton::Skeleton& skeleton, double size_seconds,
    const scenario::Scenario& scenario, int repetition) const {
  obs::PhaseProfiler::Scope scope(framework_.options().profiler, "measure");
  const std::uint64_t seed_offset =
      1 +
      static_cast<std::uint64_t>(std::llabs(size_key(size_seconds)) % 97) +
      static_cast<std::uint64_t>(repetition) * 31;
  return framework_.run_skeleton(skeleton, scenario, seed_offset);
}

double ExperimentDriver::observe_app(const std::string& app,
                                     const scenario::Scenario& scenario,
                                     obs::Recorder& recorder) {
  recorder.metrics().set_info("app", app);
  recorder.metrics().set_info("class", apps::class_name(config_.app_class));
  return framework_.run_app(program(app, config_.app_class), scenario,
                            /*seed_offset=*/0, &recorder);
}

double ExperimentDriver::observe_skeleton(const std::string& app,
                                          double size_seconds,
                                          const scenario::Scenario& scenario,
                                          obs::Recorder& recorder) {
  const skeleton::Skeleton& skel = skeleton_for_size(app, size_seconds);
  recorder.metrics().set_info("app", app + "-skeleton");
  recorder.metrics().set_info("class", apps::class_name(config_.app_class));
  // Same seed derivation as compute_skeleton_time's first repetition, so
  // the instrumented timeline matches the first measured cell exactly.
  const std::uint64_t seed_offset =
      1 + static_cast<std::uint64_t>(std::llabs(size_key(size_seconds)) % 97);
  return framework_.run_skeleton(skel, scenario, seed_offset, {}, &recorder);
}

double ExperimentDriver::skeleton_time(const std::string& app,
                                       double size_seconds,
                                       const scenario::Scenario& scenario,
                                       int repetition) {
  const auto key = std::make_tuple(app, size_key(size_seconds),
                                   std::string(scenario.name), repetition);
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    auto it = skeleton_times_.find(key);
    if (it != skeleton_times_.end()) return it->second;
  }
  const double elapsed = compute_skeleton_time(
      skeleton_for_size(app, size_seconds), size_seconds, scenario,
      repetition);
  std::lock_guard<std::mutex> lock(time_mutex_);
  return skeleton_times_.try_emplace(key, elapsed).first->second;
}

const skeleton::GoodSkeletonEstimate& ExperimentDriver::good_estimate(
    const std::string& app) {
  auto it = good_estimates_.find(app);
  if (it == good_estimates_.end()) {
    // Reference compression: at least as deep as the smallest configured
    // skeleton (and never shallower than a 0.5 s one), so the dominant loop
    // structure is visible regardless of which sizes the caller requested.
    double min_size = 0.5;
    for (double size : config_.skeleton_sizes) {
      min_size = std::min(min_size, size);
    }
    const double k = std::max(1.0, app_trace(app).elapsed() / min_size);
    it = good_estimates_
             .emplace(app, skeleton::estimate_good_skeleton(signature(app, k)))
             .first;
  }
  return it->second;
}

PredictionRecord ExperimentDriver::predict(
    const std::string& app, double size_seconds,
    const scenario::Scenario& scenario) {
  const skeleton::Skeleton& skel = skeleton_for_size(app, size_seconds);

  PredictionRecord record;
  record.app = app;
  record.target_size = size_seconds;
  record.scenario = scenario.name;
  record.scaling_factor = skel.scaling_factor;
  const skeleton::GoodSkeletonEstimate& estimate = good_estimate(app);
  record.min_good_time = estimate.min_good_time;
  record.good = skel.intended_time >= estimate.min_good_time;
  record.app_dedicated = app_trace(app).elapsed();
  record.skeleton_dedicated =
      skeleton_time(app, size_seconds, scenario::dedicated());

  skeleton::Calibration calibration;
  calibration.app_dedicated_time = record.app_dedicated;
  calibration.skeleton_dedicated_time = record.skeleton_dedicated;

  // Average the prediction error over independent measurement pairs; the
  // reported times are the first pair's (representative sample).
  const int repetitions = std::max(1, config_.repetitions);
  double error_sum = 0;
  for (int repetition = 0; repetition < repetitions; ++repetition) {
    const double skeleton_scenario =
        skeleton_time(app, size_seconds, scenario, repetition);
    const double app_scenario = app_time(app, scenario, repetition);
    const double predicted =
        skeleton::predict_app_time(calibration, skeleton_scenario);
    error_sum +=
        skeleton::prediction_error_percent(predicted, app_scenario);
    if (repetition == 0) {
      record.skeleton_scenario = skeleton_scenario;
      record.app_scenario = app_scenario;
      record.predicted = predicted;
    }
  }
  record.error_percent = error_sum / repetitions;
  return record;
}

std::vector<GridCell> ExperimentDriver::grid_cells() const {
  std::vector<GridCell> cells;
  cells.reserve(config_.benchmarks.size() * config_.skeleton_sizes.size() *
                scenario::paper_scenarios().size());
  for (const std::string& app : config_.benchmarks) {
    for (double size : config_.skeleton_sizes) {
      for (const scenario::Scenario& scenario : scenario::paper_scenarios()) {
        cells.push_back(GridCell{app, size, &scenario});
      }
    }
  }
  return cells;
}

void ExperimentDriver::warm(const std::vector<GridCell>& cells) {
  const int jobs = runner::resolve_jobs(config_.jobs);
  if (jobs <= 1) {
    for (const GridCell& cell : cells) {
      app_trace(cell.app);
      good_estimate(cell.app);
      skeleton_for_size(cell.app, cell.size_seconds);
    }
    return;
  }

  runner::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.profiler = &phases_;

  // Phase A: one dedicated-testbed tracing simulation per distinct
  // still-untraced benchmark.  Traces are independent seeded simulations,
  // so they fan out; installs stay serial because the construction caches
  // hand out long-lived references.
  std::vector<std::string> to_trace;
  {
    std::set<std::string> seen;
    for (const GridCell& cell : cells) {
      if (traces_.count(cell.app) == 0 && seen.insert(cell.app).second) {
        util::log_info() << "tracing " << cell.app << " (class "
                         << apps::class_name(config_.app_class) << ")";
        to_trace.push_back(cell.app);
      }
    }
  }
  std::vector<trace::Trace> traced = runner::sweep_map(
      to_trace,
      [&](const std::string& app) {
        return framework_.record(program(app, config_.app_class), app);
      },
      sweep_options);
  for (std::size_t i = 0; i < to_trace.size(); ++i) {
    traces_.emplace(to_trace[i], std::move(traced[i]));
  }

  // Phase B: compression work -- one consistent skeleton per distinct
  // (benchmark, size) plus the reference signature behind each benchmark's
  // good-skeleton estimate.  Every unit is a pure function of a now-cached
  // trace, so the parallel bodies touch no driver state at all.
  struct SkeletonUnit {
    std::string app;
    const trace::Trace* trace;
    double k;
    long long key;
  };
  struct EstimateUnit {
    std::string app;
    const trace::Trace* trace;
    double k;
  };
  std::vector<SkeletonUnit> skeleton_units;
  std::vector<EstimateUnit> estimate_units;
  {
    double min_size = 0.5;
    for (double size : config_.skeleton_sizes) {
      min_size = std::min(min_size, size);
    }
    std::set<std::pair<std::string, long long>> seen_skeletons;
    std::set<std::string> seen_estimates;
    for (const GridCell& cell : cells) {
      const trace::Trace& trace = app_trace(cell.app);
      const auto skeleton_key =
          std::make_pair(cell.app, size_key(cell.size_seconds));
      if (skeletons_.count(skeleton_key) == 0 &&
          seen_skeletons.insert(skeleton_key).second) {
        const double k =
            std::max(1.0, trace.elapsed() / cell.size_seconds);
        skeleton_units.push_back(
            SkeletonUnit{cell.app, &trace, k, skeleton_key.second});
      }
      if (good_estimates_.count(cell.app) == 0 &&
          seen_estimates.insert(cell.app).second) {
        const double k = std::max(1.0, trace.elapsed() / min_size);
        estimate_units.push_back(EstimateUnit{cell.app, &trace, k});
      }
    }
  }
  std::vector<skeleton::Skeleton> built(skeleton_units.size());
  std::vector<sig::Signature> reference_signatures(estimate_units.size());
  runner::sweep(
      skeleton_units.size() + estimate_units.size(),
      [&](std::size_t i) {
        if (i < skeleton_units.size()) {
          const SkeletonUnit& unit = skeleton_units[i];
          built[i] = framework_.make_consistent_skeleton(*unit.trace, unit.k);
        } else {
          const EstimateUnit& unit = estimate_units[i - skeleton_units.size()];
          reference_signatures[i - skeleton_units.size()] =
              framework_.make_signature(*unit.trace, unit.k);
        }
      },
      sweep_options);
  for (std::size_t i = 0; i < skeleton_units.size(); ++i) {
    skeletons_.emplace(
        std::make_pair(skeleton_units[i].app, skeleton_units[i].key),
        std::move(built[i]));
  }
  for (std::size_t i = 0; i < estimate_units.size(); ++i) {
    const EstimateUnit& unit = estimate_units[i];
    const auto signature_it =
        signatures_
            .emplace(std::make_pair(unit.app, size_key(unit.k)),
                     std::move(reference_signatures[i]))
            .first;
    good_estimates_.emplace(
        unit.app, skeleton::estimate_good_skeleton(signature_it->second));
  }
}

void ExperimentDriver::fan_out_measurements(
    const std::vector<GridCell>& cells, int jobs) {
  // Enumerate the unique, still-uncached simulation runs the cells will ask
  // for.  App runs are keyed (app, scenario, repetition): one per benchmark
  // and scenario, shared by every skeleton size.  Skeleton runs are keyed
  // (app, size, scenario, repetition), plus the dedicated calibration run
  // shared by all scenarios of a cell.
  struct AppRun {
    const std::string* app;
    const scenario::Scenario* scenario;
    int repetition;
  };
  struct SkeletonRun {
    const skeleton::Skeleton* skeleton;
    double size_seconds;
    const scenario::Scenario* scenario;
    int repetition;
    std::tuple<std::string, long long, std::string, int> key;
  };
  const int repetitions = std::max(1, config_.repetitions);
  std::vector<AppRun> app_runs;
  std::vector<SkeletonRun> skeleton_runs;
  std::set<std::tuple<std::string, std::string, int>> app_keys;
  std::set<std::tuple<std::string, long long, std::string, int>>
      skeleton_keys;
  const auto need_app = [&](const GridCell& cell,
                            const scenario::Scenario& scenario,
                            int repetition) {
    auto key =
        std::make_tuple(cell.app, std::string(scenario.name), repetition);
    if (app_times_.count(key) != 0 || !app_keys.insert(key).second) return;
    app_runs.push_back(AppRun{&cell.app, &scenario, repetition});
  };
  const auto need_skeleton = [&](const GridCell& cell,
                                 const scenario::Scenario& scenario,
                                 int repetition) {
    auto key = std::make_tuple(cell.app, size_key(cell.size_seconds),
                               std::string(scenario.name), repetition);
    if (skeleton_times_.count(key) != 0 ||
        !skeleton_keys.insert(key).second) {
      return;
    }
    skeleton_runs.push_back(
        SkeletonRun{&skeleton_for_size(cell.app, cell.size_seconds),
                    cell.size_seconds, &scenario, repetition, std::move(key)});
  };
  for (const GridCell& cell : cells) {
    need_skeleton(cell, scenario::dedicated(), 0);
    for (int repetition = 0; repetition < repetitions; ++repetition) {
      need_skeleton(cell, *cell.scenario, repetition);
      need_app(cell, *cell.scenario, repetition);
    }
  }

  // Fan out.  Each run writes its own slot; no shared mutable state is
  // touched until the serial install loop below, so scheduling cannot
  // perturb the results.
  std::vector<double> app_elapsed(app_runs.size());
  std::vector<double> skeleton_elapsed(skeleton_runs.size());
  runner::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.profiler = &phases_;
  runner::sweep(
      app_runs.size() + skeleton_runs.size(),
      [&](std::size_t i) {
        if (i < app_runs.size()) {
          const AppRun& run = app_runs[i];
          app_elapsed[i] =
              compute_app_time(*run.app, *run.scenario, run.repetition);
        } else {
          const SkeletonRun& run = skeleton_runs[i - app_runs.size()];
          skeleton_elapsed[i - app_runs.size()] = compute_skeleton_time(
              *run.skeleton, run.size_seconds, *run.scenario, run.repetition);
        }
      },
      sweep_options);

  std::lock_guard<std::mutex> lock(time_mutex_);
  for (std::size_t i = 0; i < app_runs.size(); ++i) {
    const AppRun& run = app_runs[i];
    app_times_.try_emplace(
        std::make_tuple(*run.app, std::string(run.scenario->name),
                        run.repetition),
        app_elapsed[i]);
  }
  for (std::size_t i = 0; i < skeleton_runs.size(); ++i) {
    skeleton_times_.try_emplace(skeleton_runs[i].key, skeleton_elapsed[i]);
  }
}

std::vector<PredictionRecord> ExperimentDriver::predict_cells(
    const std::vector<GridCell>& cells) {
  const int jobs = runner::resolve_jobs(config_.jobs);
  if (jobs > 1 && cells.size() > 1) {
    warm(cells);
    fan_out_measurements(cells, jobs);
  }
  // With the caches populated this loop is pure arithmetic; with jobs=1 it
  // is exactly the historical serial path, computing lazily as it goes.
  std::vector<PredictionRecord> records;
  records.reserve(cells.size());
  for (const GridCell& cell : cells) {
    records.push_back(predict(cell.app, cell.size_seconds, *cell.scenario));
  }
  return records;
}

std::vector<PredictionRecord> ExperimentDriver::run_grid() {
  return predict_cells(grid_cells());
}

trace::ActivityBreakdown ExperimentDriver::app_activity(
    const std::string& app) {
  return trace::activity_breakdown(app_trace(app));
}

trace::ActivityBreakdown ExperimentDriver::skeleton_activity(
    const std::string& app, double size_seconds) {
  const skeleton::Skeleton& skel = skeleton_for_size(app, size_seconds);
  sim::ClusterConfig cluster = config_.framework.cluster;
  cluster.seed = config_.framework.dedicated_seed;
  sim::Machine machine(cluster);
  mpi::World world(machine, config_.framework.ranks,
                   config_.framework.mpi);
  const trace::Trace trace = trace::record_run(
      world, skeleton::skeleton_program(skel), app + "-skeleton");
  return trace::activity_breakdown(trace);
}

PredictionRecord ExperimentDriver::predict_with_class_s(
    const std::string& app, const scenario::Scenario& scenario) {
  PredictionRecord record;
  record.app = app;
  record.scenario = scenario.name;
  record.app_dedicated = app_time(app, scenario::dedicated());
  record.skeleton_dedicated = class_s_time(app, scenario::dedicated());
  record.skeleton_scenario = class_s_time(app, scenario);
  record.app_scenario = app_time(app, scenario);

  skeleton::Calibration calibration;
  calibration.app_dedicated_time = record.app_dedicated;
  calibration.skeleton_dedicated_time = record.skeleton_dedicated;
  record.predicted =
      skeleton::predict_app_time(calibration, record.skeleton_scenario);
  record.error_percent = skeleton::prediction_error_percent(
      record.predicted, record.app_scenario);
  return record;
}

PredictionRecord ExperimentDriver::predict_with_average(
    const std::string& app, const scenario::Scenario& scenario) {
  double slowdown_sum = 0;
  for (const std::string& other : config_.benchmarks) {
    slowdown_sum +=
        app_time(other, scenario) / app_time(other, scenario::dedicated());
  }
  const double mean_slowdown =
      slowdown_sum / static_cast<double>(config_.benchmarks.size());

  PredictionRecord record;
  record.app = app;
  record.scenario = scenario.name;
  record.app_dedicated = app_time(app, scenario::dedicated());
  record.app_scenario = app_time(app, scenario);
  record.predicted = record.app_dedicated * mean_slowdown;
  record.error_percent = skeleton::prediction_error_percent(
      record.predicted, record.app_scenario);
  return record;
}

double mean_error(const std::vector<PredictionRecord>& records) {
  if (records.empty()) return 0;
  double sum = 0;
  for (const PredictionRecord& record : records) sum += record.error_percent;
  return sum / static_cast<double>(records.size());
}

}  // namespace psk::core
