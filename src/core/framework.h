// SkeletonFramework: the public facade tying the pipeline together.
//
//   record()            execute an application on the dedicated testbed and
//                       capture its execution trace (profiling library)
//   make_signature()    fold + cluster + loop-compress the trace
//   make_skeleton*()    scale the signature by K
//   construct()         all of the above in one call
//   run_app/skeleton()  measured execution under a sharing scenario
//
// This mirrors how the paper's tool is used: skeletons are constructed once
// from a dedicated-testbed trace, then executed in shared environments to
// predict application performance there.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/keys.h"
#include "mpi/world.h"
#include "obs/phase.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "sig/compress.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "trace/event.h"
#include "trace/recorder.h"

namespace psk::core {

struct FrameworkOptions {
  /// The simulated testbed (defaults to the paper's 4-node cluster with
  /// mild measurement jitter so repeated runs differ realistically).
  sim::ClusterConfig cluster = default_cluster();
  mpi::MpiConfig mpi;
  sig::CompressOptions compress;
  skeleton::ScaleOptions scale;
  int ranks = 4;
  /// Seed used for dedicated (tracing/calibration) runs.
  std::uint64_t dedicated_seed = 1;
  /// Base seed for scenario runs; callers vary it per measurement.
  std::uint64_t scenario_seed = 1000;
  /// Q = K / compression_ratio_divisor (the paper uses Q = K/2).
  double compression_ratio_divisor = 2.0;
  /// Simulated-time ceiling for measurement runs; exceeding it raises
  /// DeadlockError (scenario flutter keeps the event queue alive, so a
  /// deadlocked replay would otherwise spin forever).
  double run_time_limit = 1.0e5;
  /// Wall-clock ceiling per measurement run in real seconds (0 = off).
  /// A run that exceeds it raises TimeoutError, which sweep executors
  /// record as a `timeout` cell instead of hanging the whole grid.  Size
  /// it orders of magnitude above a healthy run: it watches wall time, so
  /// runs near the limit are not reproducible.
  double wall_deadline_seconds = 0.0;
  /// Optional wall-clock phase profiler for the construction pipeline
  /// (record / fold / cluster / compress / scale phases).  Not owned; must
  /// outlive the framework.  Null = no profiling.
  obs::PhaseProfiler* profiler = nullptr;
  /// Optional content-addressed result cache (cache/cache.h).  When set,
  /// run_skeleton() memoizes its measured time by the canonical key of
  /// (skeleton bytes, scenario, replay options, sim config, seeds) and the
  /// experiment driver memoizes app runs likewise.  Results are
  /// bit-identical with the cache on, off, cold or warm -- measurements
  /// are seeded deterministic simulations.  Instrumented runs (obs != null)
  /// always execute: the cache stores only the elapsed time, not the
  /// recorder's timeline.
  std::shared_ptr<cache::ResultCache> result_cache;

  static sim::ClusterConfig default_cluster();
};

class SkeletonFramework {
 public:
  explicit SkeletonFramework(FrameworkOptions options = {});

  const FrameworkOptions& options() const { return options_; }

  /// Runs `app` on the dedicated testbed with the profiling library
  /// attached and returns the folded execution trace.
  trace::Trace record(const mpi::RankMain& app, const std::string& name) const;

  /// Compresses a folded trace targeting Q = K / divisor.
  sig::Signature make_signature(const trace::Trace& folded_trace,
                                double k) const;

  skeleton::Skeleton make_skeleton(const sig::Signature& signature,
                                   double k) const;

  /// Compresses and scales, then validates cross-rank consistency of the
  /// scaled skeleton (skeleton/validate.h); on mismatch, retries compression
  /// at progressively higher similarity thresholds until the skeleton
  /// validates.  Throws ConfigError if no threshold up to the cap works.
  skeleton::Skeleton make_consistent_skeleton(const trace::Trace& folded_trace,
                                              double k) const;
  skeleton::Skeleton make_skeleton_for_time(const sig::Signature& signature,
                                            double target_seconds) const;

  /// Full pipeline: trace, compress (Q = K/2), scale.
  skeleton::Skeleton construct(const mpi::RankMain& app,
                               const std::string& name,
                               double target_seconds) const;

  /// Measured application execution time under a scenario.  When `obs` is
  /// non-null the run's machine feeds it (metrics + activity spans); the
  /// caller writes the files afterwards, closing instruments at the
  /// returned elapsed time.
  double run_app(const mpi::RankMain& app,
                 const scenario::Scenario& scenario,
                 std::uint64_t seed_offset = 0,
                 obs::Recorder* obs = nullptr) const;

  /// Untraced run on the *controlled* testbed (same jitter-free conditions
  /// as record()); the delta against the traced time is the tracing
  /// overhead the paper reports as "well under 1%".
  double run_app_controlled(const mpi::RankMain& app) const;

  /// Measured skeleton execution time under a scenario.  `obs` as run_app.
  double run_skeleton(const skeleton::Skeleton& skeleton,
                      const scenario::Scenario& scenario,
                      std::uint64_t seed_offset = 0,
                      const skeleton::ReplayOptions& replay = {},
                      obs::Recorder* obs = nullptr) const;

  /// Cache-key material describing this framework's measurement
  /// environment at the given per-measurement seed offset (cache/keys.h).
  cache::RunContext run_context(std::uint64_t seed_offset) const;

 private:
  std::uint64_t scenario_run_seed(const scenario::Scenario& scenario,
                                  std::uint64_t seed_offset) const;

  FrameworkOptions options_;
};

}  // namespace psk::core
