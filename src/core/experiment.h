// Experiment driver: reproduces the paper's evaluation grid.
//
// Caches traces, scenario timings, signatures and skeletons so that the
// per-figure bench binaries (which slice the same grid differently) stay
// cheap.  All measurements follow section 4.2:
//   - skeletons are constructed for target sizes 10/5/2/1/0.5 seconds;
//   - prediction = skeleton time in scenario x measured scaling ratio,
//     where the ratio uses the skeleton's actual dedicated time;
//   - error = |predicted - actual| / actual.
// The two baselines of Figure 7 (Class-S-as-skeleton and suite-average
// slowdown) are implemented here as well.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "core/framework.h"
#include "obs/phase.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "sig/signature.h"
#include "skeleton/skeleton.h"
#include "trace/event.h"

namespace psk::core {

struct ExperimentConfig {
  std::vector<std::string> benchmarks = {"BT", "CG", "IS", "LU", "MG", "SP"};
  apps::NasClass app_class = apps::NasClass::kB;
  /// Intended skeleton execution times in seconds (paper: 10 .. 0.5).
  std::vector<double> skeleton_sizes = {10.0, 5.0, 2.0, 1.0, 0.5};
  /// Independent measurement pairs averaged per grid cell.  The paper
  /// reports single measurements; averaging a few repetitions separates the
  /// systematic effects (latency scaling, unbalanced synchronization) from
  /// one-shot sampling noise of the fluttering environment.
  int repetitions = 3;
  /// Measurement-phase parallelism for run_grid()/predict_cells(): 0 = one
  /// job per hardware thread, 1 = strictly serial evaluation on the calling
  /// thread (the pre-runner code path).  Results are bit-identical across
  /// all settings; only wall-clock time changes.
  int jobs = 0;
  FrameworkOptions framework;
};

/// One cell of the evaluation grid.  `scenario` must outlive the driver
/// call (the scenario registry's entries and scenario::dedicated() do).
struct GridCell {
  std::string app;
  double size_seconds = 0;
  const scenario::Scenario* scenario = nullptr;
};

struct PredictionRecord {
  std::string app;
  double target_size = 0;       // intended skeleton seconds
  std::string scenario;
  double scaling_factor = 0;    // K
  double app_dedicated = 0;
  double skeleton_dedicated = 0;
  double skeleton_scenario = 0;
  double app_scenario = 0;
  double predicted = 0;
  double error_percent = 0;
  bool good = true;             // the section 3.4 flag
  double min_good_time = 0;
};

class ExperimentDriver {
 public:
  explicit ExperimentDriver(ExperimentConfig config = {});

  const ExperimentConfig& config() const { return config_; }
  const SkeletonFramework& framework() const { return framework_; }

  /// Folded dedicated-run trace of a benchmark (cached).
  const trace::Trace& app_trace(const std::string& app);

  /// Measured application time under a scenario (cached); `repetition`
  /// selects one of the independent measurement seeds.
  double app_time(const std::string& app, const scenario::Scenario& scenario,
                  int repetition = 0);

  /// Signature compressed for scaling factor `k` (cached by app and K).
  const sig::Signature& signature(const std::string& app, double k);

  /// Skeleton built for an intended size in seconds (cached).
  const skeleton::Skeleton& skeleton_for_size(const std::string& app,
                                              double size_seconds);

  /// Measured skeleton time under a scenario (cached).
  double skeleton_time(const std::string& app, double size_seconds,
                       const scenario::Scenario& scenario,
                       int repetition = 0);

  /// One grid cell: full prediction record.
  PredictionRecord predict(const std::string& app, double size_seconds,
                           const scenario::Scenario& scenario);

  /// The full grid as an ordered cell list: every benchmark x skeleton size
  /// x paper scenario, in configuration order.
  std::vector<GridCell> grid_cells() const;

  /// Serial warm phase: populates the trace / signature / skeleton /
  /// good-estimate caches every cell needs (each benchmark is traced once).
  /// After warming, predict() and the time getters are safe to call for
  /// these cells from pool workers.
  void warm(const std::vector<GridCell>& cells);

  /// Evaluates the cells with `config().jobs` workers and returns records
  /// in input order.  Construction (warm phase) stays serial; the
  /// measurement runs -- isolated deterministic simulations -- fan out
  /// across the runner pool.  Bit-identical to the serial path.
  std::vector<PredictionRecord> predict_cells(
      const std::vector<GridCell>& cells);

  /// The full grid: predict_cells(grid_cells()).
  std::vector<PredictionRecord> run_grid();

  /// Shortest-"good"-skeleton analysis for a benchmark (Figure 4).
  /// Computed from the most deeply compressed signature available (the one
  /// built for the smallest configured skeleton size), because a weakly
  /// compressed signature hides the dominant loop structure.
  const skeleton::GoodSkeletonEstimate& good_estimate(const std::string& app);

  // ---- Figure 2 support -------------------------------------------------
  trace::ActivityBreakdown app_activity(const std::string& app);
  trace::ActivityBreakdown skeleton_activity(const std::string& app,
                                             double size_seconds);

  // ---- Observability -----------------------------------------------------
  /// Wall-clock time spent in each pipeline phase (record / fold / cluster /
  /// compress / scale / measure / sweep) across everything this driver ran.
  /// The data is wall-clock truth, not deterministic -- render it to stderr
  /// or a report, never into a reproducible dump.  When the caller supplied
  /// its own FrameworkOptions::profiler, that one is fed instead and this
  /// stays empty.
  const obs::PhaseProfiler& phases() const { return phases_; }

  /// Dedicated instrumented runs: a fresh, serial, fixed-seed simulation of
  /// the app (or skeleton) under `scenario`, feeding `recorder`.  Returns
  /// the run's elapsed simulated time (pass it to the recorder's write
  /// methods as end_time).  Independent of config().jobs, so the recorder
  /// contents are bit-identical for any parallelism setting.
  double observe_app(const std::string& app,
                     const scenario::Scenario& scenario,
                     obs::Recorder& recorder);
  double observe_skeleton(const std::string& app, double size_seconds,
                          const scenario::Scenario& scenario,
                          obs::Recorder& recorder);

  // ---- Figure 7 baselines ------------------------------------------------
  /// Class-S prediction: the class S benchmark is used as a hand-made
  /// skeleton for the class B one.
  PredictionRecord predict_with_class_s(const std::string& app,
                                        const scenario::Scenario& scenario);

  /// Average prediction: the suite's mean slowdown under the scenario
  /// predicts every benchmark.
  PredictionRecord predict_with_average(const std::string& app,
                                        const scenario::Scenario& scenario);

 private:
  mpi::RankMain program(const std::string& app, apps::NasClass cls) const;
  double class_s_time(const std::string& app,
                      const scenario::Scenario& scenario);

  // Uncached measurement primitives.  Const and state-free (every run
  // builds a fresh simulated machine), so pool workers may call them
  // concurrently; the cached getters above funnel through them.
  double compute_app_time(const std::string& app,
                          const scenario::Scenario& scenario,
                          int repetition) const;
  double compute_skeleton_time(const skeleton::Skeleton& skeleton,
                               double size_seconds,
                               const scenario::Scenario& scenario,
                               int repetition) const;

  /// Runs every uncached measurement the cells need across `jobs` workers
  /// and installs the results in the time caches.  Requires warm(cells).
  void fan_out_measurements(const std::vector<GridCell>& cells, int jobs);

  ExperimentConfig config_;
  /// Declared before framework_: the constructor injects &phases_ into
  /// config_.framework.profiler (unless the caller set one) before
  /// framework_ is built from it.
  obs::PhaseProfiler phases_;
  SkeletonFramework framework_;

  // Construction caches (traces_, signatures_, skeletons_, good_estimates_)
  // hand out long-lived references and are populated only by the serial
  // warm phase -- never from pool workers.  The scalar time caches are
  // guarded by time_mutex_ so ad-hoc app_time()/skeleton_time() calls are
  // safe from pool workers too; racing lookups may compute a value twice,
  // but the simulations are deterministic so both results are identical.
  std::map<std::string, trace::Trace> traces_;
  std::map<std::tuple<std::string, std::string, int>, double> app_times_;
  std::map<std::pair<std::string, std::string>, double> class_s_times_;
  std::map<std::pair<std::string, long long>, sig::Signature> signatures_;
  std::map<std::pair<std::string, long long>, skeleton::Skeleton> skeletons_;
  std::map<std::tuple<std::string, long long, std::string, int>, double>
      skeleton_times_;
  std::map<std::string, skeleton::GoodSkeletonEstimate> good_estimates_;
  std::mutex time_mutex_;
};

/// Mean error across records (ignores empty input).
double mean_error(const std::vector<PredictionRecord>& records);

}  // namespace psk::core
