// Shared vocabulary types for the virtual MPI runtime.
//
// The runtime reproduces the *call layer* of MPI over the simulated cluster:
// message payloads carry no data, only byte counts, because the skeleton
// framework (like the paper's PMPI profiling library) observes call types,
// peers, sizes and timings -- never message contents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace psk::mpi {

using Bytes = std::uint64_t;

/// MPI call types visible to the profiling layer.  Kept in one enum so trace
/// records, signatures and generated skeleton code agree on identity.
enum class CallType : std::uint8_t {
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kWaitall,
  kSendrecv,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kAlltoall,
  kAlltoallv,
  kGather,
  kScatter,
  kScan,
  // Synthesized by trace post-processing (not a real MPI call): a folded
  // nonblocking exchange region (Irecv*/Isend*/Waitall).
  kExchange,
};

/// True for the point-to-point nonblocking initiation calls.
constexpr bool is_nonblocking_start(CallType t) {
  return t == CallType::kIsend || t == CallType::kIrecv;
}

/// True for calls that complete nonblocking requests.
constexpr bool is_completion(CallType t) {
  return t == CallType::kWait || t == CallType::kWaitall;
}

/// True for collective operations.
constexpr bool is_collective(CallType t) {
  switch (t) {
    case CallType::kBarrier:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllreduce:
    case CallType::kAllgather:
    case CallType::kAlltoall:
    case CallType::kAlltoallv:
    case CallType::kGather:
    case CallType::kScatter:
    case CallType::kScan:
      return true;
    default:
      return false;
  }
}

std::string call_type_name(CallType t);

/// Parses a name produced by call_type_name; throws FormatError on unknown.
CallType call_type_from_name(const std::string& name);

/// Nonblocking request handle (index into the per-rank request table).
struct Request {
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t id = kInvalid;
  bool valid() const { return id != kInvalid; }
};

/// Per-peer byte count: used by Alltoallv parts, Sendrecv and folded
/// exchange regions.
struct PeerBytes {
  int peer = -1;
  Bytes bytes = 0;
  /// Direction for exchange regions: true when this rank sends to `peer`.
  bool outgoing = true;
  /// Envelope tag of this transfer (exchange regions mix several tags).
  int tag = 0;

  friend bool operator==(const PeerBytes&, const PeerBytes&) = default;
};

/// One observed MPI call, as recorded by the profiling hook.
struct CallRecord {
  CallType type = CallType::kSend;
  int peer = -1;               // dst (send), src (recv), root (collectives)
  Bytes bytes = 0;             // payload bytes (primary direction)
  int tag = 0;
  std::vector<PeerBytes> parts;        // alltoallv / sendrecv / exchange
  std::uint32_t request = Request::kInvalid;   // isend/irecv
  std::vector<std::uint32_t> requests;         // wait/waitall
  /// Memory traffic of the computation since the previous call (bytes).
  double pre_mem_bytes = 0;
  sim::Time t_start = 0;
  sim::Time t_end = 0;
};

/// Observer interface implemented by the tracing library.  The runtime calls
/// on_call once per public MPI operation, after it completes.
class CallObserver {
 public:
  virtual ~CallObserver() = default;
  virtual void on_call(int rank, const CallRecord& record) = 0;
};

/// Tunables of the virtual MPI runtime.
struct MpiConfig {
  /// Messages at or below this size use the eager protocol (transfer starts
  /// at send time); larger ones rendezvous (transfer starts when both sides
  /// have posted).  MPICH-era default.
  Bytes eager_threshold = 64 * 1024;
  /// Extra delay before a rendezvous transfer starts, in units of the
  /// machine's one-way latency (request-to-send / clear-to-send handshake).
  double rendezvous_handshake_latencies = 2.0;
  /// Fixed software overhead charged at the start of each blocking call.
  sim::Time per_call_overhead = 1.0e-6;
  /// Additional overhead per call while a CallObserver is attached (models
  /// the profiling library's cost; the paper reports it is well under 1%).
  sim::Time trace_overhead = 0.3e-6;
  /// Timed waits: when > 0, every blocking wait on a request races a timer
  /// of this many simulated seconds.  On expiry the wait re-arms with a
  /// doubled window (exponential backoff), so transient faults -- a node
  /// down for a while, a flapping link -- cost retries but complete; after
  /// `op_max_retries` expiries the wait throws TimeoutError instead of
  /// hanging forever.  0 (the default) keeps the untimed legacy path, which
  /// is bit-identical to pre-timeout behaviour.
  sim::Time op_timeout = 0.0;
  int op_max_retries = 8;
  /// Worlds with at least this many ranks switch the linear-depth collective
  /// algorithms (ring allgather, pairwise alltoall, linear-pipeline scan) to
  /// logarithmic-round forms (Bruck allgather/alltoall, recursive-doubling
  /// prefix scan), keeping collectives O(p log p) in simulated messages and
  /// host work at scale.  Worlds below the threshold keep the small-world
  /// algorithms bit-identical to earlier versions; 0 disables the switch.
  int large_world_threshold = 32;
};

}  // namespace psk::mpi
