#include "mpi/comm.h"

#include <algorithm>
#include <utility>

#include "mpi/world.h"
#include "util/error.h"

namespace psk::mpi {

namespace {
/// Tag space reserved for collective-internal messages; application tags
/// must stay below this.
constexpr int kCollectiveTagBase = 1 << 24;
/// Distinct tags available to one collective invocation (e.g. reduce+bcast).
constexpr int kTagsPerCollective = 4;
}  // namespace

sim::Time Comm::now() const { return engine_->machine().engine().now(); }

bool Comm::large_world(int p) const {
  const int threshold = engine_->config().large_world_threshold;
  return threshold > 0 && p >= threshold;
}

int Comm::next_collective_tag() {
  const int slot = static_cast<int>(collective_seq_++ % (1u << 20));
  return kCollectiveTagBase + slot * kTagsPerCollective;
}

void Comm::record(CallRecord record) {
  record.pre_mem_bytes = pending_mem_bytes_;
  pending_mem_bytes_ = 0;
  if (obs_ != nullptr) observe_call(record);
  if (observer_ != nullptr) observer_->on_call(rank_, record);
}

void Comm::attach_obs(obs::Recorder* recorder) {
  obs_ = recorder;
  if (recorder == nullptr) {
    obs_compute_seconds_ = nullptr;
    obs_send_seconds_ = nullptr;
    obs_recv_seconds_ = nullptr;
    obs_collective_seconds_ = nullptr;
    obs_wait_seconds_ = nullptr;
    return;
  }
  const std::string prefix = "rank." + std::to_string(rank_) + ".";
  obs::MetricsRegistry& metrics = recorder->metrics();
  obs_compute_seconds_ = &metrics.counter(prefix + "compute_seconds");
  obs_send_seconds_ = &metrics.counter(prefix + "send_seconds");
  obs_recv_seconds_ = &metrics.counter(prefix + "recv_seconds");
  obs_collective_seconds_ = &metrics.counter(prefix + "collective_seconds");
  obs_wait_seconds_ = &metrics.counter(prefix + "wait_seconds");
  recorder->tracer().set_process_name(obs::Recorder::kRankPid, "ranks");
  recorder->tracer().set_thread_name(obs::Recorder::kRankPid, rank_,
                                     "rank " + std::to_string(rank_));
}

void Comm::observe_call(const CallRecord& r) {
  obs::Counter* bucket = obs_collective_seconds_;
  const char* category = "collective";
  switch (r.type) {
    case CallType::kSend:
    case CallType::kIsend:
    case CallType::kSendrecv:
      bucket = obs_send_seconds_;
      category = "send";
      break;
    case CallType::kRecv:
    case CallType::kIrecv:
      bucket = obs_recv_seconds_;
      category = "recv";
      break;
    case CallType::kWait:
    case CallType::kWaitall:
      bucket = obs_wait_seconds_;
      category = "wait";
      break;
    default:
      break;
  }
  const double duration = r.t_end - r.t_start;
  bucket->add(duration);
  // Nonblocking initiations have zero extent; a span would only clutter
  // the timeline.
  if (duration > 0) {
    obs_->tracer().complete(obs::Recorder::kRankPid, rank_,
                            call_type_name(r.type), category, r.t_start,
                            r.t_end);
  }
}

sim::Task Comm::call_overhead() {
  const MpiConfig& config = engine_->config();
  sim::Time overhead = config.per_call_overhead;
  if (observer_ != nullptr) overhead += config.trace_overhead;
  if (overhead > 0) co_await engine_->machine().engine().sleep(overhead);
}

// ------------------------------------------------------------- internals

Request Comm::isend_internal(int dst, Bytes bytes, int tag) {
  return engine_->post_send(rank_, dst, bytes, tag);
}

Request Comm::irecv_internal(int src, int tag) {
  return engine_->post_recv(rank_, src, tag);
}

sim::Task Comm::wait_internal(Request request) {
  util::require(request.valid(), "wait on invalid request");
  const sim::Time timeout = engine_->config().op_timeout;
  if (timeout <= 0) {
    // Untimed legacy path: wait forever (a lost peer shows up as deadlock).
    if (!engine_->request_done(rank_, request)) {
      co_await sim::make_awaitable([this, request](std::function<void()> r) {
        engine_->set_waiter(rank_, request, std::move(r));
      });
    }
    co_return;
  }

  // Timed path: race the request waiter against a timer, retrying with an
  // exponentially growing window.  Transient faults (node down, link flap)
  // cost expiries but complete once the fault clears; a permanently lost
  // peer throws TimeoutError after op_max_retries expiries instead of
  // hanging the simulation.
  sim::Time window = timeout;
  int expiries = 0;
  while (!engine_->request_done(rank_, request)) {
    // Whichever side loses the race may still fire later, after this frame
    // has moved on, so the guard and resume thunk live on the heap, owned by
    // the two event closures.  The awaitable's start lambda must capture only
    // trivially-destructible state: like all other AwaitCallback users here
    // it may be torn down more than once by the coroutine machinery, so a
    // shared_ptr captured there would be over-released (caught by ASan).
    struct WaitRace {
      bool settled = false;
      std::function<void()> resume;
    };
    auto race = std::make_shared<WaitRace>();
    sim::EventQueue::Handle timer;
    co_await sim::make_awaitable(
        [this, request, window, &race,
         &timer](std::function<void()> resume) {
          race->resume = std::move(resume);
          auto fire = [race = race] {
            if (race->settled) return;
            race->settled = true;
            race->resume();
          };
          engine_->set_waiter(rank_, request, fire);
          timer = engine_->machine().engine().after(window, std::move(fire));
        });
    if (engine_->request_done(rank_, request)) {
      // Cancellation reclaims the timer's slot (and destroys its closure)
      // immediately; only a small stale key stays queued until the event
      // queue's dead-entry compaction or the cursor sweeps it.  These
      // watchdogs are the queue's dominant cancel source, so they must not
      // retain memory proportional to completed waits.
      timer.cancel();
      break;
    }
    // Timer won: deregister the stale waiter before the next set_waiter.
    engine_->cancel_waiter(rank_, request);
    engine_->record_wait_timeout();
    ++expiries;
    if (expiries > engine_->config().op_max_retries) {
      throw TimeoutError(
          "MPI wait timed out on rank " + std::to_string(rank_) + " after " +
          std::to_string(expiries) + " expiries (last window " +
          std::to_string(window) + " s simulated); peer presumed lost");
    }
    window *= 2;
  }
}

sim::Task Comm::send_internal(int dst, Bytes bytes, int tag) {
  co_await wait_internal(isend_internal(dst, bytes, tag));
}

sim::Task Comm::recv_internal(int src, int tag) {
  co_await wait_internal(irecv_internal(src, tag));
}

sim::Task Comm::sendrecv_internal(int dst, Bytes send_bytes, int src,
                                  int tag) {
  const Request recv_request = irecv_internal(src, tag);
  const Request send_request = isend_internal(dst, send_bytes, tag);
  co_await wait_internal(recv_request);
  co_await wait_internal(send_request);
}

// ------------------------------------------------------------ public p2p

sim::Task Comm::compute(double work, Bytes mem_bytes) {
  const sim::Time t0 = now();
  pending_mem_bytes_ += static_cast<double>(mem_bytes);
  co_await engine_->machine().compute_await(engine_->node_of(rank_), work,
                                            static_cast<double>(mem_bytes));
  if (obs_ != nullptr) {
    const sim::Time t1 = now();
    obs_compute_seconds_->add(t1 - t0);
    if (t1 > t0) {
      obs_->tracer().complete(obs::Recorder::kRankPid, rank_, "compute",
                              "compute", t0, t1);
    }
  }
}

sim::Task Comm::send(int dst, Bytes bytes, int tag) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await send_internal(dst, bytes, tag);
  CallRecord r;
  r.type = CallType::kSend;
  r.peer = dst;
  r.bytes = bytes;
  r.tag = tag;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::recv(int src, Bytes bytes, int tag) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await recv_internal(src, tag);
  CallRecord r;
  r.type = CallType::kRecv;
  r.peer = src;
  r.bytes = bytes;
  r.tag = tag;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::sendrecv(int dst, Bytes send_bytes, int src, Bytes recv_bytes,
                         int tag) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await sendrecv_internal(dst, send_bytes, src, tag);
  CallRecord r;
  r.type = CallType::kSendrecv;
  r.peer = dst;
  r.bytes = send_bytes;
  r.tag = tag;
  r.parts.push_back(PeerBytes{dst, send_bytes, /*outgoing=*/true, tag});
  r.parts.push_back(PeerBytes{src, recv_bytes, /*outgoing=*/false, tag});
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

Request Comm::isend(int dst, Bytes bytes, int tag) {
  const sim::Time t0 = now();
  const Request request = isend_internal(dst, bytes, tag);
  CallRecord r;
  r.type = CallType::kIsend;
  r.peer = dst;
  r.bytes = bytes;
  r.tag = tag;
  r.request = request.id;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
  return request;
}

Request Comm::irecv(int src, Bytes bytes, int tag) {
  const sim::Time t0 = now();
  const Request request = irecv_internal(src, tag);
  CallRecord r;
  r.type = CallType::kIrecv;
  r.peer = src;
  r.bytes = bytes;
  r.tag = tag;
  r.request = request.id;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
  return request;
}

sim::Task Comm::wait(Request request) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await wait_internal(request);
  CallRecord r;
  r.type = CallType::kWait;
  r.requests.push_back(request.id);
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::waitall(std::vector<Request> requests) {
  const sim::Time t0 = now();
  co_await call_overhead();
  for (const Request& request : requests) {
    co_await wait_internal(request);
  }
  CallRecord r;
  r.type = CallType::kWaitall;
  for (const Request& request : requests) r.requests.push_back(request.id);
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

// ------------------------------------------------------------ collectives

sim::Task Comm::barrier_algo(int tag) {
  const int p = size();
  for (int mask = 1; mask < p; mask <<= 1) {
    const int up = (rank_ + mask) % p;
    const int down = (rank_ - mask + p) % p;
    co_await sendrecv_internal(up, 0, down, tag);
  }
}

sim::Task Comm::bcast_algo(int root, Bytes bytes, int tag) {
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % p;
      co_await recv_internal(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dst = (vrank + mask + root) % p;
      co_await send_internal(dst, bytes, tag);
    }
    mask >>= 1;
  }
}

sim::Task Comm::reduce_algo(int root, Bytes bytes, int tag) {
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int src_vrank = vrank | mask;
      if (src_vrank < p) {
        co_await recv_internal((src_vrank + root) % p, tag);
      }
    } else {
      const int dst_vrank = vrank & ~mask;
      co_await send_internal((dst_vrank + root) % p, bytes, tag);
      break;
    }
    mask <<= 1;
  }
}

sim::Task Comm::allreduce_algo(Bytes bytes, int tag) {
  const int p = size();
  if ((p & (p - 1)) == 0) {
    // Recursive doubling.
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = rank_ ^ mask;
      co_await sendrecv_internal(partner, bytes, partner, tag);
    }
  } else {
    co_await reduce_algo(0, bytes, tag);
    co_await bcast_algo(0, bytes, tag + 1);
  }
}

sim::Task Comm::allgather_algo(Bytes bytes, int tag) {
  const int p = size();
  if ((p & (p - 1)) == 0) {
    // Recursive doubling: exchanged block doubles each round.
    Bytes chunk = bytes;
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = rank_ ^ mask;
      co_await sendrecv_internal(partner, chunk, partner, tag);
      chunk *= 2;
    }
  } else if (large_world(p)) {
    // Bruck: ceil(log2 p) rounds; round `mask` moves min(mask, p - mask)
    // blocks, so the total volume matches the ring while the round count
    // (and the host-side message count) drops from p-1 to O(log p).
    for (int mask = 1; mask < p; mask <<= 1) {
      const int dst = (rank_ - mask + p) % p;
      const int src = (rank_ + mask) % p;
      const Bytes chunk = static_cast<Bytes>(std::min(mask, p - mask)) * bytes;
      co_await sendrecv_internal(dst, chunk, src, tag);
    }
  } else {
    // Ring: p-1 rounds, one block per round.
    for (int round = 1; round < p; ++round) {
      const int dst = (rank_ + 1) % p;
      const int src = (rank_ - 1 + p) % p;
      co_await sendrecv_internal(dst, bytes, src, tag);
    }
  }
}

sim::Task Comm::alltoall_algo(Bytes bytes, int tag) {
  const int p = size();
  if (large_world(p)) {
    // Bruck: round `mask` ships every block whose relative index has that
    // bit set -- O(log p) rounds of O(p/2) blocks each, instead of p-1
    // rounds, so both simulated round count and host-side message count
    // stay O(p log p) across the world.
    for (int mask = 1; mask < p; mask <<= 1) {
      const int period = mask << 1;
      const int blocks = (p / period) * mask + std::max(0, p % period - mask);
      const int dst = (rank_ + mask) % p;
      const int src = (rank_ - mask + p) % p;
      co_await sendrecv_internal(dst, static_cast<Bytes>(blocks) * bytes, src,
                                 tag);
    }
    co_return;
  }
  for (int round = 1; round < p; ++round) {
    const int dst = (rank_ + round) % p;
    const int src = (rank_ - round + p) % p;
    co_await sendrecv_internal(dst, bytes, src, tag);
  }
}

sim::Task Comm::alltoallv_algo(const std::vector<Bytes>& bytes, int tag) {
  const int p = size();
  for (int round = 1; round < p; ++round) {
    const int dst = (rank_ + round) % p;
    const int src = (rank_ - round + p) % p;
    co_await sendrecv_internal(dst, bytes[static_cast<std::size_t>(dst)], src,
                               tag);
  }
}

sim::Task Comm::gather_algo(int root, Bytes bytes, int tag) {
  // Binomial gather: subtree blocks accumulate toward the root, so the
  // message at each step carries the sender's whole subtree.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int src_vrank = vrank | mask;
      if (src_vrank < p) {
        const int subtree = std::min(mask, p - src_vrank);
        co_await recv_internal((src_vrank + root) % p, tag);
        (void)subtree;
      }
    } else {
      const int subtree = std::min(mask, p - vrank);
      co_await send_internal((((vrank & ~mask) + root) % p),
                             bytes * static_cast<Bytes>(subtree), tag);
      break;
    }
    mask <<= 1;
  }
}

sim::Task Comm::scatter_algo(int root, Bytes bytes, int tag) {
  // Binomial scatter: the root's halves fan out, shrinking by subtree size.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      co_await recv_internal((((vrank & ~mask) + root) % p), tag);
      break;
    }
    mask <<= 1;
  }
  mask = (mask < p) ? mask : mask >> 1;
  // Forward the sub-blocks this rank is responsible for.
  for (; mask >= 1; mask >>= 1) {
    if ((vrank & (mask - 1)) == 0 && (vrank & mask) == 0) {
      const int dst_vrank = vrank | mask;
      if (dst_vrank < p) {
        const int subtree = std::min(mask, p - dst_vrank);
        co_await send_internal((dst_vrank + root) % p,
                               bytes * static_cast<Bytes>(subtree), tag);
      }
    }
  }
}

sim::Task Comm::scan_algo(Bytes bytes, int tag) {
  const int p = size();
  if (large_world(p)) {
    // Recursive-doubling prefix: round `mask` combines with ranks +/- mask,
    // so the dependency chain is log2(p) rounds deep instead of a p-deep
    // pipeline.  The receive is posted before the send completes to keep
    // the exchange deadlock-free under rendezvous.
    for (int mask = 1; mask < p; mask <<= 1) {
      Request from_left;
      if (rank_ - mask >= 0) from_left = irecv_internal(rank_ - mask, tag);
      if (rank_ + mask < p) {
        co_await wait_internal(isend_internal(rank_ + mask, bytes, tag));
      }
      if (from_left.valid()) co_await wait_internal(from_left);
    }
    co_return;
  }
  // Linear pipeline: rank r waits for the prefix from r-1, combines, and
  // forwards to r+1 (the simple algorithm; fine for small rank counts).
  if (rank_ > 0) co_await recv_internal(rank_ - 1, tag);
  if (rank_ + 1 < p) co_await send_internal(rank_ + 1, bytes, tag);
}

sim::Task Comm::barrier() {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await barrier_algo(next_collective_tag());
  CallRecord r;
  r.type = CallType::kBarrier;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::bcast(int root, Bytes bytes) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await bcast_algo(root, bytes, next_collective_tag());
  CallRecord r;
  r.type = CallType::kBcast;
  r.peer = root;
  r.bytes = bytes;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::reduce(int root, Bytes bytes) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await reduce_algo(root, bytes, next_collective_tag());
  CallRecord r;
  r.type = CallType::kReduce;
  r.peer = root;
  r.bytes = bytes;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::allreduce(Bytes bytes) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await allreduce_algo(bytes, next_collective_tag());
  CallRecord r;
  r.type = CallType::kAllreduce;
  r.bytes = bytes;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::allgather(Bytes bytes_per_rank) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await allgather_algo(bytes_per_rank, next_collective_tag());
  CallRecord r;
  r.type = CallType::kAllgather;
  r.bytes = bytes_per_rank;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::alltoall(Bytes bytes_per_pair) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await alltoall_algo(bytes_per_pair, next_collective_tag());
  CallRecord r;
  r.type = CallType::kAlltoall;
  r.bytes = bytes_per_pair;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::alltoallv(std::vector<Bytes> send_bytes_per_peer) {
  util::require(static_cast<int>(send_bytes_per_peer.size()) == size(),
                "alltoallv: counts vector must have one entry per rank");
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await alltoallv_algo(send_bytes_per_peer, next_collective_tag());
  CallRecord r;
  r.type = CallType::kAlltoallv;
  Bytes total = 0;
  for (int peer = 0; peer < size(); ++peer) {
    const Bytes b = send_bytes_per_peer[static_cast<std::size_t>(peer)];
    if (peer != rank_) total += b;
    r.parts.push_back(PeerBytes{peer, b, /*outgoing=*/true});
  }
  r.bytes = total;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::gather(int root, Bytes bytes_per_rank) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await gather_algo(root, bytes_per_rank, next_collective_tag());
  CallRecord r;
  r.type = CallType::kGather;
  r.peer = root;
  r.bytes = bytes_per_rank;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::scatter(int root, Bytes bytes_per_rank) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await scatter_algo(root, bytes_per_rank, next_collective_tag());
  CallRecord r;
  r.type = CallType::kScatter;
  r.peer = root;
  r.bytes = bytes_per_rank;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

sim::Task Comm::scan(Bytes bytes) {
  const sim::Time t0 = now();
  co_await call_overhead();
  co_await scan_algo(bytes, next_collective_tag());
  CallRecord r;
  r.type = CallType::kScan;
  r.bytes = bytes;
  r.t_start = t0;
  r.t_end = now();
  record(std::move(r));
}

}  // namespace psk::mpi
