#include "mpi/message_engine.h"

#include <string>
#include <utility>

#include "util/error.h"

namespace psk::mpi {

MessageEngine::MessageEngine(sim::Machine& machine,
                             std::vector<int> rank_to_node, MpiConfig config)
    : machine_(machine),
      rank_to_node_(std::move(rank_to_node)),
      config_(config) {
  util::require(!rank_to_node_.empty(), "MessageEngine: no ranks");
  for (int node : rank_to_node_) {
    util::require(node >= 0 && node < machine_.node_count(),
                  "MessageEngine: rank mapped to invalid node " +
                      std::to_string(node));
  }
  requests_.resize(rank_to_node_.size());
}

int MessageEngine::node_of(int rank) const {
  util::require(rank >= 0 && rank < rank_count(),
                "MessageEngine: invalid rank " + std::to_string(rank));
  return rank_to_node_[static_cast<std::size_t>(rank)];
}

Request MessageEngine::alloc_request(int rank) {
  auto& table = requests_[static_cast<std::size_t>(rank)];
  table.emplace_back();
  return Request{static_cast<std::uint32_t>(table.size() - 1)};
}

bool MessageEngine::request_done(int rank, Request request) const {
  util::require(request.valid(), "MessageEngine: invalid request");
  const auto& table = requests_[static_cast<std::size_t>(rank)];
  util::require(request.id < table.size(),
                "MessageEngine: unknown request id");
  return table[request.id].done;
}

void MessageEngine::set_waiter(int rank, Request request,
                               std::function<void()> resume) {
  auto& state = requests_[static_cast<std::size_t>(rank)][request.id];
  util::require(!state.done, "MessageEngine: waiter on completed request");
  util::require(!state.waiter, "MessageEngine: request already has a waiter");
  state.waiter = std::move(resume);
  ++waiters_;
}

void MessageEngine::cancel_waiter(int rank, Request request) {
  auto& state = requests_[static_cast<std::size_t>(rank)][request.id];
  util::require(!state.done,
                "MessageEngine: cancel_waiter on completed request");
  if (state.waiter) --waiters_;
  state.waiter = nullptr;
}

void MessageEngine::complete_request(int rank, std::uint32_t id) {
  if (id == Request::kInvalid) return;
  auto& state = requests_[static_cast<std::size_t>(rank)][id];
  state.done = true;
  if (state.waiter) {
    // Deliver on the event loop, never synchronously, so that a completion
    // arising inside another rank's call cannot re-enter coroutine frames.
    machine_.engine().after(0, std::move(state.waiter));
    state.waiter = nullptr;
    --waiters_;
  }
}

std::vector<MessageEngine::PendingWait> MessageEngine::pending_waits() const {
  std::vector<PendingWait> waits;
  waits.reserve(waiters_);
  for (std::size_t rank = 0; rank < requests_.size(); ++rank) {
    const auto& table = requests_[rank];
    for (std::size_t id = 0; id < table.size(); ++id) {
      const RequestState& state = table[id];
      if (!state.waiter) continue;
      PendingWait wait;
      wait.rank = static_cast<int>(rank);
      wait.is_send = state.is_send;
      wait.peer = state.peer;
      wait.tag = state.tag;
      wait.bytes = state.bytes;
      wait.request = static_cast<std::uint32_t>(id);
      waits.push_back(wait);
    }
  }
  return waits;
}

void MessageEngine::start_transfer(const std::shared_ptr<Message>& message,
                                   sim::Time extra_delay) {
  message->transfer_started = true;
  auto begin = [this, message] {
    machine_.transfer(node_of(message->src), node_of(message->dst),
                      message->bytes, [this, message] { on_arrival(message); });
  };
  if (extra_delay > 0) {
    machine_.engine().after(extra_delay, std::move(begin));
  } else {
    begin();
  }
}

void MessageEngine::on_arrival(const std::shared_ptr<Message>& message) {
  message->arrived = true;
  ++delivered_;
  complete_request(message->src, message->send_req);
  if (message->recv_posted) {
    complete_request(message->dst, message->recv_req);
  }
}

Request MessageEngine::post_send(int src, int dst, Bytes bytes, int tag) {
  util::require(src >= 0 && src < rank_count() && dst >= 0 &&
                    dst < rank_count(),
                "post_send: rank out of range");
  const Request request = alloc_request(src);
  {
    RequestState& state = requests_[static_cast<std::size_t>(src)][request.id];
    state.is_send = true;
    state.peer = dst;
    state.tag = tag;
    state.bytes = bytes;
  }

  auto message = std::make_shared<Message>();
  message->src = src;
  message->dst = dst;
  message->tag = tag;
  message->bytes = bytes;
  message->eager = bytes <= config_.eager_threshold;
  message->send_req = request.id;

  Channel& channel = channels_[ChannelKey{src, dst, tag}];
  if (!channel.unmatched_recvs.empty()) {
    // A receive was already posted: adopt its request and start immediately.
    auto recv_holder = channel.unmatched_recvs.front();
    channel.unmatched_recvs.pop_front();
    message->recv_posted = true;
    message->recv_req = recv_holder->recv_req;
    const sim::Time handshake =
        message->eager ? 0.0
                       : config_.rendezvous_handshake_latencies *
                             machine_.config().latency;
    start_transfer(message, handshake);
    return request;
  }

  if (message->eager) {
    // Eager: bytes leave immediately whether or not the receiver is ready.
    start_transfer(message, 0.0);
  }
  channel.unmatched_sends.push_back(std::move(message));
  return request;
}

Request MessageEngine::post_recv(int dst, int src, int tag) {
  util::require(src >= 0 && src < rank_count() && dst >= 0 &&
                    dst < rank_count(),
                "post_recv: rank out of range");
  const Request request = alloc_request(dst);
  {
    RequestState& state = requests_[static_cast<std::size_t>(dst)][request.id];
    state.is_send = false;
    state.peer = src;
    state.tag = tag;
  }

  Channel& channel = channels_[ChannelKey{src, dst, tag}];
  // Match the oldest not-yet-received send on this channel (FIFO ordering).
  for (auto it = channel.unmatched_sends.begin();
       it != channel.unmatched_sends.end(); ++it) {
    if ((*it)->recv_posted) continue;
    auto message = *it;
    channel.unmatched_sends.erase(it);
    message->recv_posted = true;
    message->recv_req = request.id;
    if (message->eager) {
      if (message->arrived) {
        complete_request(dst, request.id);
      }
      // else: in flight; arrival completes the request.
    } else {
      const sim::Time handshake = config_.rendezvous_handshake_latencies *
                                  machine_.config().latency;
      start_transfer(message, handshake);
    }
    return request;
  }

  // No matching send yet: park the receive.
  auto holder = std::make_shared<Message>();
  holder->src = src;
  holder->dst = dst;
  holder->tag = tag;
  holder->recv_posted = true;
  holder->recv_req = request.id;
  channel.unmatched_recvs.push_back(std::move(holder));
  return request;
}

}  // namespace psk::mpi
