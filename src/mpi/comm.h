// Per-rank communicator: the public API that simulated applications program
// against.  Mirrors the MPI operations the NAS benchmarks use.
//
// Every *public* operation is reported to the attached CallObserver (the
// profiling library), exactly as a PMPI interposer sees real MPI calls.
// Collectives are implemented internally from point-to-point algorithms
// (binomial trees, recursive doubling, pairwise exchange) whose constituent
// messages are NOT observed -- matching the visibility a real tracer has.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/message_engine.h"
#include "mpi/types.h"
#include "obs/recorder.h"
#include "sim/task.h"

namespace psk::mpi {

class World;

class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return engine_->rank_count(); }
  sim::Time now() const;

  /// Local computation of `work` work-seconds on this rank's node, touching
  /// `mem_bytes` of memory (0 = cache resident).  Not an MPI call: tracers
  /// observe the time as the gap between call timestamps, and the memory
  /// volume through the hardware-counter channel in the call records.
  sim::Task compute(double work, Bytes mem_bytes = 0);

  // Blocking point-to-point.
  sim::Task send(int dst, Bytes bytes, int tag = 0);
  sim::Task recv(int src, Bytes bytes, int tag = 0);
  sim::Task sendrecv(int dst, Bytes send_bytes, int src, Bytes recv_bytes,
                     int tag = 0);

  // Nonblocking point-to-point.  Initiation is immediate (no suspension).
  Request isend(int dst, Bytes bytes, int tag = 0);
  Request irecv(int src, Bytes bytes, int tag = 0);
  sim::Task wait(Request request);
  sim::Task waitall(std::vector<Request> requests);

  // Collectives.  Byte counts follow MPI conventions: bcast/reduce/allreduce
  // take the buffer size; allgather/alltoall take the per-peer contribution;
  // alltoallv takes this rank's per-destination send counts.
  sim::Task barrier();
  sim::Task bcast(int root, Bytes bytes);
  sim::Task reduce(int root, Bytes bytes);
  sim::Task allreduce(Bytes bytes);
  sim::Task allgather(Bytes bytes_per_rank);
  sim::Task alltoall(Bytes bytes_per_pair);
  sim::Task alltoallv(std::vector<Bytes> send_bytes_per_peer);
  /// gather/scatter take the per-rank contribution (like MPI counts);
  /// scan takes the buffer size.
  sim::Task gather(int root, Bytes bytes_per_rank);
  sim::Task scatter(int root, Bytes bytes_per_rank);
  sim::Task scan(Bytes bytes);

  /// Attaches/detaches the profiling observer (nullptr detaches).
  void set_observer(CallObserver* observer) { observer_ = observer; }
  CallObserver* observer() const { return observer_; }

  /// Starts feeding the observability recorder (normally called by World
  /// when its machine carries one): per-rank time-split counters
  /// (compute / send / recv / collective / wait seconds) and per-call
  /// activity spans on the rank track.  Orthogonal to the CallObserver --
  /// observability sees compute and collective internals a PMPI tracer
  /// cannot.  Null recorder detaches.
  void attach_obs(obs::Recorder* recorder);

 private:
  friend class World;
  Comm(World& world, MessageEngine& engine, int rank)
      : world_(&world), engine_(&engine), rank_(rank) {}

  // Untraced internals shared by public ops and collective algorithms.
  Request isend_internal(int dst, Bytes bytes, int tag);
  Request irecv_internal(int src, int tag);
  sim::Task wait_internal(Request request);
  sim::Task send_internal(int dst, Bytes bytes, int tag);
  sim::Task recv_internal(int src, int tag);
  sim::Task sendrecv_internal(int dst, Bytes send_bytes, int src, int tag);

  // Collective algorithm bodies (run under a fresh collective tag).
  sim::Task barrier_algo(int tag);
  sim::Task bcast_algo(int root, Bytes bytes, int tag);
  sim::Task reduce_algo(int root, Bytes bytes, int tag);
  sim::Task allreduce_algo(Bytes bytes, int tag);
  sim::Task allgather_algo(Bytes bytes, int tag);
  sim::Task alltoall_algo(Bytes bytes, int tag);
  sim::Task alltoallv_algo(const std::vector<Bytes>& bytes, int tag);
  sim::Task gather_algo(int root, Bytes bytes, int tag);
  sim::Task scatter_algo(int root, Bytes bytes, int tag);
  sim::Task scan_algo(Bytes bytes, int tag);

  /// Fresh tag for one collective invocation; identical across ranks because
  /// all ranks execute the same collective sequence (MPI ordering rule).
  int next_collective_tag();

  /// True when `p` ranks is at or above MpiConfig::large_world_threshold:
  /// collectives with linear-depth small-world algorithms switch to their
  /// logarithmic-round forms.
  bool large_world(int p) const;

  /// Blocking-call prologue: charges per-call (and tracing) overhead.
  sim::Task call_overhead();

  void record(CallRecord record);

  /// Feeds one recorded call to the attached recorder (time-split counter
  /// plus activity span).  Only called when a recorder is attached.
  void observe_call(const CallRecord& record);

  World* world_;
  MessageEngine* engine_;
  int rank_;
  CallObserver* observer_ = nullptr;
  // Observability handles; null when unobserved (the hot-path cost of
  // disabled instrumentation is the obs_ null check in record/compute).
  obs::Recorder* obs_ = nullptr;
  obs::Counter* obs_compute_seconds_ = nullptr;
  obs::Counter* obs_send_seconds_ = nullptr;
  obs::Counter* obs_recv_seconds_ = nullptr;
  obs::Counter* obs_collective_seconds_ = nullptr;
  obs::Counter* obs_wait_seconds_ = nullptr;
  std::uint32_t collective_seq_ = 0;
  /// Memory traffic accumulated since the last recorded call (attributed to
  /// the next record's computation gap, like a PAPI counter read per call).
  double pending_mem_bytes_ = 0;
};

}  // namespace psk::mpi
