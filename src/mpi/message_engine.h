// Point-to-point message matching and transfer engine.
//
// Implements MPI envelope matching (source, destination, tag; FIFO within a
// channel, i.e. MPI's non-overtaking rule) and the eager/rendezvous transfer
// protocols over the simulated network.  All completions are delivered as
// engine events, never synchronously, so coroutines are only ever resumed
// from the event loop.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "mpi/types.h"
#include "sim/machine.h"

namespace psk::mpi {

class MessageEngine {
 public:
  /// `rank_to_node[r]` is the simulated node hosting rank r.
  MessageEngine(sim::Machine& machine, std::vector<int> rank_to_node,
                MpiConfig config);

  MessageEngine(const MessageEngine&) = delete;
  MessageEngine& operator=(const MessageEngine&) = delete;

  int rank_count() const { return static_cast<int>(rank_to_node_.size()); }
  int node_of(int rank) const;
  const MpiConfig& config() const { return config_; }
  sim::Machine& machine() { return machine_; }

  /// Posts a send from `src` to `dst`; returns the request that completes
  /// when the message is fully injected (eager) or delivered (rendezvous).
  Request post_send(int src, int dst, Bytes bytes, int tag);

  /// Posts a receive on `dst` for a message from `src`; the request
  /// completes when the matching message has fully arrived.
  Request post_recv(int dst, int src, int tag);

  bool request_done(int rank, Request request) const;

  /// Registers the resume thunk for an incomplete request.  Precondition:
  /// !request_done(rank, request) and no waiter registered yet.
  void set_waiter(int rank, Request request, std::function<void()> resume);

  /// Drops the registered waiter of a still-incomplete request (a timed
  /// wait whose timer won the race deregisters itself before retrying).
  void cancel_waiter(int rank, Request request);

  /// Total messages fully delivered (for tests and reporting).
  std::uint64_t messages_delivered() const { return delivered_; }

  /// Timed-wait expiries observed across all ranks (each backoff retry
  /// counts once); a cheap health signal for fault experiments.
  std::uint64_t wait_timeouts() const { return wait_timeouts_; }
  void record_wait_timeout() { ++wait_timeouts_; }

  /// One rank suspended in a wait on an incomplete request.  The op fields
  /// describe what the rank is waiting *for*: its own pending send or recv.
  struct PendingWait {
    int rank = -1;
    bool is_send = false;
    int peer = -1;
    int tag = 0;
    Bytes bytes = 0;
    std::uint32_t request = Request::kInvalid;
  };

  /// Number of ranks currently suspended in a wait (each rank registers at
  /// most one waiter at a time).  O(1); maintained by set_waiter /
  /// cancel_waiter / complete_request.
  std::size_t waiting_rank_count() const { return waiters_; }

  /// Snapshot of every rank suspended in a wait, ordered by rank.  O(total
  /// requests); intended for deadlock reporting, not per-event use.
  std::vector<PendingWait> pending_waits() const;

 private:
  struct Message {
    int src = -1;
    int dst = -1;
    int tag = 0;
    Bytes bytes = 0;
    bool eager = true;
    bool recv_posted = false;
    bool transfer_started = false;
    bool arrived = false;
    std::uint32_t send_req = Request::kInvalid;
    std::uint32_t recv_req = Request::kInvalid;
  };

  struct RequestState {
    bool done = false;
    std::function<void()> waiter;
    // What this request stands for, kept for deadlock diagnostics.
    bool is_send = false;
    int peer = -1;
    int tag = 0;
    Bytes bytes = 0;
  };

  using ChannelKey = std::tuple<int, int, int>;  // src, dst, tag
  struct Channel {
    std::deque<std::shared_ptr<Message>> unmatched_sends;
    std::deque<std::shared_ptr<Message>> unmatched_recvs;
  };

  Request alloc_request(int rank);
  void complete_request(int rank, std::uint32_t id);
  void start_transfer(const std::shared_ptr<Message>& message,
                      sim::Time extra_delay);
  void on_arrival(const std::shared_ptr<Message>& message);

  sim::Machine& machine_;
  std::vector<int> rank_to_node_;
  MpiConfig config_;
  std::map<ChannelKey, Channel> channels_;
  std::vector<std::vector<RequestState>> requests_;  // [rank][id]
  std::uint64_t delivered_ = 0;
  std::uint64_t wait_timeouts_ = 0;
  std::size_t waiters_ = 0;  // ranks currently suspended in a wait
};

}  // namespace psk::mpi
