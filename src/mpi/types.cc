#include "mpi/types.h"

#include <array>
#include <utility>

#include "util/error.h"

namespace psk::mpi {

namespace {
constexpr std::array<std::pair<CallType, const char*>, 18> kNames = {{
    {CallType::kSend, "Send"},
    {CallType::kRecv, "Recv"},
    {CallType::kIsend, "Isend"},
    {CallType::kIrecv, "Irecv"},
    {CallType::kWait, "Wait"},
    {CallType::kWaitall, "Waitall"},
    {CallType::kSendrecv, "Sendrecv"},
    {CallType::kBarrier, "Barrier"},
    {CallType::kBcast, "Bcast"},
    {CallType::kReduce, "Reduce"},
    {CallType::kAllreduce, "Allreduce"},
    {CallType::kAllgather, "Allgather"},
    {CallType::kAlltoall, "Alltoall"},
    {CallType::kAlltoallv, "Alltoallv"},
    {CallType::kGather, "Gather"},
    {CallType::kScatter, "Scatter"},
    {CallType::kScan, "Scan"},
    {CallType::kExchange, "Exchange"},
}};
}  // namespace

std::string call_type_name(CallType t) {
  for (const auto& [type, name] : kNames) {
    if (type == t) return name;
  }
  return "Unknown";
}

CallType call_type_from_name(const std::string& name) {
  for (const auto& [type, type_name] : kNames) {
    if (name == type_name) return type;
  }
  throw FormatError("unknown MPI call type name: " + name);
}

}  // namespace psk::mpi
