#include "mpi/world.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/error.h"

namespace psk::mpi {

std::vector<int> World::round_robin(int ranks, int nodes) {
  util::require(ranks >= 1, "World: need at least one rank");
  util::require(nodes >= 1, "World: need at least one node");
  std::vector<int> mapping(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    mapping[static_cast<std::size_t>(r)] = r % nodes;
  }
  return mapping;
}

World::World(sim::Machine& machine, int ranks, MpiConfig config)
    : World(machine, round_robin(ranks, machine.node_count()),
            std::move(config)) {}

World::World(sim::Machine& machine, std::vector<int> rank_to_node,
             MpiConfig config)
    : machine_(machine),
      engine_(machine, std::move(rank_to_node), std::move(config)) {
  const int ranks = engine_.rank_count();
  comms_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    comms_.push_back(std::unique_ptr<Comm>(new Comm(*this, engine_, r)));
    if (machine.obs() != nullptr) comms_.back()->attach_obs(machine.obs());
  }
  if (machine.obs() != nullptr) {
    machine.obs()->metrics().set_info("ranks", std::to_string(ranks));
  }
  end_times_.assign(static_cast<std::size_t>(ranks), 0.0);
}

Comm& World::comm(int rank) {
  util::require(rank >= 0 && rank < size(),
                "World::comm: invalid rank " + std::to_string(rank));
  return *comms_[static_cast<std::size_t>(rank)];
}

void World::set_observer(CallObserver* observer) {
  for (auto& comm : comms_) comm->set_observer(observer);
}

sim::Task World::rank_wrapper(int rank, RankMain rank_main) {
  co_await rank_main(comm(rank));
  end_times_[static_cast<std::size_t>(rank)] =
      machine_.engine().now();
}

void World::launch(RankMain rank_main) {
  util::require(!launched_, "World::launch called twice");
  launched_ = true;
  for (int r = 0; r < size(); ++r) {
    machine_.engine().spawn(rank_wrapper(r, rank_main));
  }
}

sim::Time World::run() {
  util::require(launched_, "World::run: launch a rank program first");
  machine_.engine().run();
  return *std::max_element(end_times_.begin(), end_times_.end());
}

sim::Time World::parallel_time() const {
  return *std::max_element(end_times_.begin(), end_times_.end());
}

sim::Time World::rank_end_time(int rank) const {
  util::require(rank >= 0 && rank < size(), "rank_end_time: invalid rank");
  return end_times_[static_cast<std::size_t>(rank)];
}

}  // namespace psk::mpi
