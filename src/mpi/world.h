// World: constructs the per-rank communicators over a simulated machine and
// launches SPMD rank programs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpi/comm.h"
#include "mpi/message_engine.h"
#include "mpi/types.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace psk::mpi {

/// A rank program: one coroutine per rank, SPMD style.
using RankMain = std::function<sim::Task(Comm&)>;

class World {
 public:
  /// Ranks are placed round-robin over the machine's nodes (identity mapping
  /// when ranks == nodes, as in the paper's 4-rank experiments).
  World(sim::Machine& machine, int ranks, MpiConfig config = {});

  /// Explicit rank -> node placement.
  World(sim::Machine& machine, std::vector<int> rank_to_node,
        MpiConfig config = {});

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return engine_.rank_count(); }
  Comm& comm(int rank);
  MessageEngine& message_engine() { return engine_; }
  sim::Machine& machine() { return machine_; }

  /// Attaches `observer` to every rank (nullptr detaches).
  void set_observer(CallObserver* observer);

  /// Spawns `rank_main` once per rank.  May be called once per World.
  void launch(RankMain rank_main);

  /// Runs the simulation to completion and returns the parallel execution
  /// time: the latest rank completion time.
  sim::Time run();

  /// Completion time of one rank (valid after run()).
  sim::Time rank_end_time(int rank) const;

  /// Latest rank completion time.  Useful when several Worlds share one
  /// machine (co-scheduled jobs) and the caller drives engine.run() itself
  /// instead of calling run() on a single world.
  sim::Time parallel_time() const;

 private:
  static std::vector<int> round_robin(int ranks, int nodes);
  sim::Task rank_wrapper(int rank, RankMain rank_main);

  sim::Machine& machine_;
  MessageEngine engine_;
  std::vector<std::unique_ptr<Comm>> comms_;
  std::vector<sim::Time> end_times_;
  bool launched_ = false;
};

}  // namespace psk::mpi
