// Coroutine task type for simulated processes.
//
// A simulated MPI rank (and each collective algorithm it calls) is a C++20
// coroutine returning sim::Task.  Tasks start suspended; the simulation
// engine resumes them when their awaited event (compute completion, message
// arrival, ...) fires.  Awaiting a child Task transfers control to the child
// and resumes the parent on child completion (symmetric transfer), which is
// how collectives compose from point-to-point operations without threads.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace psk::sim {

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using handle_type = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    /// Owner-provided flag raised when an exception escapes the coroutine
    /// body.  The engine points every top-level task at one shared flag so
    /// its event loop can detect failure in O(1) instead of scanning all
    /// tasks after every event.
    bool* failure_flag = nullptr;

    Task get_return_object() {
      return Task{handle_type::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(handle_type h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      exception = std::current_exception();
      if (failure_flag != nullptr) *failure_flag = true;
    }
  };

  Task() = default;
  explicit Task(handle_type handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Resumes from the initial suspension point.  Only the engine calls this
  /// for top-level tasks; child tasks are started by co_await.
  void start() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

  /// Rethrows an exception that escaped the coroutine body, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  bool failed() const {
    return handle_ && handle_.done() &&
           handle_.promise().exception != nullptr;
  }

  /// Arms the promise's failure notification (see promise_type). `flag`
  /// must outlive the coroutine; a child task failing propagates its
  /// exception to the awaiting parent, so arming top-level tasks suffices.
  void set_failure_flag(bool* flag) {
    if (handle_) handle_.promise().failure_flag = flag;
  }

  /// Awaiting a Task runs it to completion as a child of the awaiting
  /// coroutine.  The task object must outlive the await (a temporary in the
  /// co_await full-expression satisfies this).
  auto operator co_await() const noexcept {
    struct Awaiter {
      handle_type child;
      bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) const noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() const {
        if (child && child.promise().exception) {
          std::rethrow_exception(child.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  handle_type handle_{};
};

}  // namespace psk::sim
