// Flow-level network model of a switched cluster.
//
// A sim::Topology maps each src -> dst transfer to a path of directed links
// (crossbar: {uplink(src), downlink(dst)}; fat-tree / dragonfly: up to five
// shared switch links).  A message in flight is a fluid "flow" whose rate is
// the equal-split share of its tightest path link:
//     rate(f) = min over l in path(f) of  capacity(l) / active_flows(l)
// Rates are recomputed whenever a flow starts, finishes, or a link changes.
// This captures the effects the paper manipulates -- shaped (reduced) link
// bandwidth and bandwidth division under competing traffic -- without
// packet-level detail, and on the crossbar reduces exactly to the paper's
//     min( up[src] / active_out[src],  down[dst] / active_in[dst] ).
//
// Two interchangeable flow cores implement that model:
//   dense        settles and re-rates every flow on every change -- the
//                seed's arithmetic, kept bit-for-bit so crossbar results
//                stay byte-identical; O(flows) per event, and doubles as
//                the reference model for the incremental core's tests
//   incremental  per-link flow sets with lazy settlement and an ETA set:
//                a change touches only flows sharing a link with the
//                affected links (O(affected * log flows) per event), which
//                is what makes thousand-rank hierarchical runs tractable
// NetworkConfig::sharing picks a core; kAuto uses dense on the crossbar
// (byte-identity) and incremental on hierarchical topologies (scale).
//
// Each transfer pays a fixed propagation/software-stack latency before its
// bytes join the fluid system.  Persistent background flows model competing
// traffic.  Same-node transfers bypass the network and use a fast local
// memory channel.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <set>
#include <utility>
#include <vector>

#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace psk::sim {

/// Named-options constructor argument for Network (the option-struct idiom;
/// designated initializers read at the call site).  Defaults mirror the
/// paper's testbed link characteristics.
struct NetworkConfig {
  /// How flow rates are recomputed after a change; see the file comment.
  enum class Sharing : std::uint8_t {
    kAuto,         // dense on crossbar, incremental otherwise
    kDense,        // force the eager full-recompute core
    kIncremental,  // force the per-link incremental core
  };

  int node_count = 1;
  /// Bytes/second per link direction.
  double bandwidth_bps = 60.0e6;
  /// One-way message latency in seconds.
  Time latency = 50.0e-6;
  double local_bandwidth_bps = 1.0e9;
  Time local_latency = 2.0e-6;
  TopologySpec topology{};
  Sharing sharing = Sharing::kAuto;
};

class Network {
 public:
  explicit Network(Engine& engine, const NetworkConfig& config);

  /// Deprecated positional constructor (pre-NetworkConfig API; always a
  /// crossbar).  Prefer the NetworkConfig overload.
  Network(Engine& engine, int node_count, double bandwidth_bps, Time latency,
          double local_bandwidth_bps, Time local_latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topo_; }
  int node_count() const { return topo_.node_count(); }
  int link_count() const { return topo_.link_count(); }
  Time latency() const { return latency_; }

  // --- Link-addressed API ------------------------------------------------
  // Links are the unit of capacity and fault state; node-addressed calls
  // below are conveniences over the node's two access links.

  double link_capacity(LinkId link) const;
  void set_link_capacity(LinkId link, double bandwidth_bps);

  /// Fault hooks: while a link's fault depth is positive it carries zero
  /// bytes, pausing (not dropping) every flow routed across it -- bytes in
  /// flight resume when the last fault clears.  Depths nest so overlapping
  /// causes compose.  Any link on a path can fault, not just the access
  /// links: a faulted fat-tree core or dragonfly global link stalls exactly
  /// the flows routed through it.
  void push_fault_on(LinkId link);
  void pop_fault_on(LinkId link);
  bool link_healthy(LinkId link) const;

  // --- Node-addressed conveniences ---------------------------------------

  /// Overrides both directions of one node's access link (the iproute2-style
  /// shaper used by the sharing scenarios) in a single settle/re-rate pass.
  void set_link_bandwidth(int node, double bandwidth_bps);

  void set_uplink_bandwidth(int node, double bandwidth_bps);
  void set_downlink_bandwidth(int node, double bandwidth_bps);

  double uplink_bandwidth(int node) const;
  double downlink_bandwidth(int node) const;

  /// Faults both directions of the node's access link (black-out, flap, or
  /// crashed node).  Intra-node (shared-memory) copies are unaffected.
  void push_link_fault(int node);
  void pop_link_fault(int node);
  bool link_up(int node) const;

  // --- Traffic ------------------------------------------------------------

  /// Starts a transfer of `bytes` from `src` to `dst`; `on_complete` fires
  /// when the last byte arrives.  Zero-byte transfers still pay latency.
  void transfer(int src, int dst, std::uint64_t bytes,
                std::function<void()> on_complete);

  /// Adds a persistent competing bulk flow occupying share on every link of
  /// the src -> dst path.
  void add_background_flow(int src, int dst);
  void clear_background_flows();

  std::size_t active_flows() const {
    return incremental_ ? inc_alive_ : flows_.size();
  }

  /// Real transfers still carrying bytes (background flows excluded).  Used
  /// by deadlock detection: a paused flow on a faulted link counts -- it
  /// resumes when the fault clears, so the simulation is not quiescent.
  std::size_t transfers_pending() const;

  /// Starts feeding the recorder: per-node transmitted-bytes counters, a
  /// time-weighted active-flow gauge plus occupancy histogram, and
  /// "link-down" spans on the network track for node-level faults.  Null
  /// handles keep every hot-path hook down to a single pointer check.
  void attach_obs(obs::Recorder* recorder);

 private:
  // --- Dense core (seed-equivalent arithmetic) ---------------------------

  struct Flow {
    int src;
    int dst;
    LinkPath path;
    double remaining;  // bytes; background flows use +infinity
    double rate = 0.0;
    std::function<void()> on_complete;
    bool background = false;
  };

  /// Accounts bytes moved since the last rate change (every flow).
  void sync();

  /// Recomputes per-flow rates and the single next-completion event.
  void rerate();

  void on_completion_event();
  void admit(Flow flow);

  // --- Incremental core ---------------------------------------------------

  struct IncFlow {
    int src = 0;
    int dst = 0;
    LinkPath path;
    double remaining = 0.0;  // bytes; background flows use +infinity
    double rate = 0.0;
    Time settled_at = 0.0;
    Time eta = 0.0;  // key of the entry in eta_, valid iff in_eta
    std::function<void()> on_complete;
    // Index of this flow within link_flows_[path.links[i]], per hop.
    std::array<std::int32_t, LinkPath::kMaxLinks> slot{};
    std::uint64_t mark = 0;  // epoch visited marker (affected-set dedup)
    int faulted_links = 0;   // path links with a positive fault depth
    bool background = false;
    bool alive = false;
    bool in_eta = false;
  };

  /// Accounts one flow's bytes since its own last rate change.
  void inc_settle(IncFlow& flow);

  /// Recomputes one flow's rate from the current per-link active counts and
  /// refreshes its completion-ETA entry.
  void inc_rerate_flow(int id);

  /// Appends the ids of flows crossing `link` not yet seen this epoch.
  void inc_collect(LinkId link, std::vector<int>& out);

  void inc_admit(IncFlow flow);
  void inc_remove(int id);  // unlink from all path links, free the slot
  void inc_pause(int id, std::vector<LinkId>& touched);
  void inc_unpause(int id, std::vector<LinkId>& touched);
  void inc_on_completion_event();
  void inc_reschedule();
  void inc_links_changed(const LinkId* first, const LinkId* last);

  // --- Shared -------------------------------------------------------------

  void check_node(int node) const;
  void check_link(LinkId link) const;
  bool path_faulted(const LinkPath& path) const;
  void node_fault_span_begin(int node);
  void node_fault_span_end(int node);

  /// Pushes the current flow count to the gauge/histogram; no-op when
  /// unobserved.
  void observe_flows();

  Engine& engine_;
  Topology topo_;
  Time latency_;
  double local_bandwidth_;
  Time local_latency_;
  bool incremental_ = false;
  std::vector<double> cap_;     // per link
  std::vector<int> lfault_;     // per link, nested fault depth
  std::vector<int> node_fault_depth_;  // node-level faults, for spans/guards
  Time last_sync_ = 0.0;        // dense core's global settlement clock
  EventQueue::Handle pending_;

  // Dense core state.
  std::list<Flow> flows_;

  // Incremental core state.
  std::vector<IncFlow> pool_;
  std::vector<int> free_slots_;
  std::vector<std::vector<std::int32_t>> link_flows_;  // per link: flow ids
  std::vector<int> link_active_;  // per link: non-paused flows crossing it
  std::set<std::pair<Time, int>> eta_;  // (completion time, flow id)
  std::uint64_t epoch_ = 0;
  std::size_t inc_alive_ = 0;
  std::size_t inc_real_pending_ = 0;
  // Batch scratch buffers (reused to keep per-event allocation flat).  Only
  // used before an update batch hands control back to user callbacks.
  std::vector<int> scratch_affected_;
  std::vector<int> scratch_ripple_;
  std::vector<LinkId> scratch_touched_;

  // Observability handles; empty/null when the network is unobserved.
  obs::Recorder* obs_ = nullptr;
  std::vector<obs::Counter*> obs_tx_bytes_;     // per source node
  obs::Counter* obs_local_bytes_ = nullptr;     // same-node copies
  obs::Gauge* obs_flows_gauge_ = nullptr;
  obs::TimeHistogram* obs_flows_hist_ = nullptr;
  std::vector<obs::Tracer::SpanId> fault_spans_;  // per node
};

}  // namespace psk::sim
