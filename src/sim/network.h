// Flow-level network model of a switched cluster.
//
// Topology: every node owns a full-duplex link into an ideal crossbar switch
// (the paper's testbed).  A message in flight is a fluid "flow" whose rate is
// limited by its source's uplink and its destination's downlink; concurrent
// flows on the same link share it equally:
//     rate(f) = min( up[src] / active_out[src],  down[dst] / active_in[dst] )
// Rates are recomputed whenever a flow starts or finishes.  This captures the
// two effects the paper manipulates -- shaped (reduced) link bandwidth and
// bandwidth division under competing traffic -- without packet-level detail.
//
// Each transfer pays a fixed propagation/software-stack latency before its
// bytes join the fluid system.  Persistent background flows model competing
// traffic.  Same-node transfers bypass the network and use a fast local
// memory channel.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <vector>

#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/time.h"

namespace psk::sim {

class Network {
 public:
  /// `bandwidth_bps` is bytes/second per link direction; `latency` is the
  /// one-way message latency in seconds.
  Network(Engine& engine, int node_count, double bandwidth_bps, Time latency,
          double local_bandwidth_bps, Time local_latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Overrides both directions of one node's link (the iproute2-style
  /// shaper used by the sharing scenarios).
  void set_link_bandwidth(int node, double bandwidth_bps);

  void set_uplink_bandwidth(int node, double bandwidth_bps);
  void set_downlink_bandwidth(int node, double bandwidth_bps);

  double uplink_bandwidth(int node) const;
  double downlink_bandwidth(int node) const;
  Time latency() const { return latency_; }

  /// Fault hooks: while a node's fault depth is positive, both directions
  /// of its link carry zero bytes (black-out, flap, or crashed node).
  /// Flows are paused, not dropped -- bytes in flight resume when the last
  /// fault clears.  Depths nest so overlapping causes compose.  Intra-node
  /// (shared-memory) copies are unaffected.
  void push_link_fault(int node);
  void pop_link_fault(int node);
  bool link_up(int node) const;

  /// Starts a transfer of `bytes` from `src` to `dst`; `on_complete` fires
  /// when the last byte arrives.  Zero-byte transfers still pay latency.
  void transfer(int src, int dst, std::uint64_t bytes,
                std::function<void()> on_complete);

  /// Adds a persistent competing bulk flow occupying share on src's uplink
  /// and dst's downlink.
  void add_background_flow(int src, int dst);
  void clear_background_flows();

  std::size_t active_flows() const { return flows_.size(); }

  /// Real transfers still carrying bytes (background flows excluded).  Used
  /// by deadlock detection: a paused flow on a faulted link counts -- it
  /// resumes when the fault clears, so the simulation is not quiescent.
  std::size_t transfers_pending() const {
    std::size_t n = 0;
    for (const Flow& flow : flows_) {
      if (!flow.background) ++n;
    }
    return n;
  }

  /// Starts feeding the recorder: per-node transmitted-bytes counters, a
  /// time-weighted active-flow gauge plus occupancy histogram, and
  /// "link-down" spans on the network track.  Null handles keep every
  /// hot-path hook down to a single pointer check.
  void attach_obs(obs::Recorder* recorder);

 private:
  struct Flow {
    int src;
    int dst;
    double remaining;  // bytes; background flows use +infinity
    double rate = 0.0;
    std::function<void()> on_complete;
    bool background = false;
  };

  void check_node(int node) const;

  /// Accounts bytes moved since the last rate change.
  void sync();

  /// Recomputes per-flow rates and the single next-completion event.
  void rerate();

  void on_completion_event();
  void admit(Flow flow);

  /// Pushes the current flow count to the gauge/histogram; no-op when
  /// unobserved.
  void observe_flows();

  Engine& engine_;
  int node_count_;
  Time latency_;
  double local_bandwidth_;
  Time local_latency_;
  std::vector<double> up_;
  std::vector<double> down_;
  std::vector<int> fault_depth_;
  std::list<Flow> flows_;
  Time last_sync_ = 0.0;
  EventQueue::Handle pending_;

  // Observability handles; empty/null when the network is unobserved.
  obs::Recorder* obs_ = nullptr;
  std::vector<obs::Counter*> obs_tx_bytes_;     // per source node
  obs::Counter* obs_local_bytes_ = nullptr;     // same-node copies
  obs::Gauge* obs_flows_gauge_ = nullptr;
  obs::TimeHistogram* obs_flows_hist_ = nullptr;
  std::vector<obs::Tracer::SpanId> fault_spans_;  // per node
};

}  // namespace psk::sim
