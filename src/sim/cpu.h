// Processor-sharing CPU node model with a shared memory bus.
//
// A node has `cores` identical cores of a given speed.  All runnable jobs on
// the node share the cores equally (classic processor-sharing / Linux CFS
// idealization): with n runnable jobs each progresses at
//     speed * min(1, cores / n)   work-seconds per second.
// Persistent "load" jobs model competing compute-intensive processes (the
// paper's sharing scenarios): they occupy share forever and never complete.
//
// Jobs may additionally declare a memory intensity (bytes touched per
// work-second).  The node's memory bus has finite bandwidth shared by all
// jobs; when the aggregate demand exceeds it, every memory-dependent job is
// throttled proportionally.  This models the paper's section 2 criterion 2
// (memory activity): a memory-bound competitor slows a memory-bound
// application even when cores are free.
//
// Rates change only when jobs arrive or depart, so the node advances lazily:
// on every membership change it accounts the work done since the last change
// and reschedules the single pending completion event.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/time.h"

namespace psk::sim {

class CpuNode {
 public:
  CpuNode(Engine& engine, int cores, double speed);

  CpuNode(CpuNode&&) = default;
  CpuNode(const CpuNode&) = delete;
  CpuNode& operator=(const CpuNode&) = delete;

  /// Submits `work` work-seconds of computation; `on_complete` runs when the
  /// job has received that much CPU.  Zero/negative work completes at the
  /// next event boundary (still asynchronously, preserving event ordering).
  /// `mem_bytes_per_work` is the job's memory intensity (0 = cache-resident).
  void submit(double work, std::function<void()> on_complete,
              double mem_bytes_per_work = 0.0);

  /// Adds `count` persistent competing compute processes with the given
  /// memory intensity.
  void add_load(int count, double mem_bytes_per_work = 0.0);

  /// Removes up to `count` persistent competing processes.
  void remove_load(int count);

  /// Fault hooks: while the stall depth is positive the node makes no
  /// progress at all (crashed node, transient OS stall, or a coordinated
  /// checkpoint freeze).  Depths nest so overlapping causes compose -- a
  /// crash during a checkpoint freeze keeps the node down until both end.
  /// Jobs are not lost; they resume where they stopped when the last cause
  /// clears (rollback cost is modelled separately by psk::fault).
  void push_stall();
  void pop_stall();
  bool stalled() const { return stall_depth_ > 0; }

  /// Scheduler-unfairness factor applied to *application* jobs while the
  /// node is oversubscribed (more runnable jobs than cores).  Real
  /// schedulers do not divide time perfectly evenly among competitors; the
  /// sharing scenarios flutter this around 1.0 over time, which is the main
  /// source of skeleton-vs-application measurement divergence under CPU
  /// sharing.  Has no effect while the node is not contended.
  void set_contention_unfairness(double factor);
  double contention_unfairness() const { return unfairness_; }

  int cores() const { return cores_; }
  double speed() const { return speed_; }

  /// Changes the node's core speed (heterogeneous clusters, DVFS).  Takes
  /// effect immediately for running jobs.
  void set_speed(double speed);
  std::size_t running_jobs() const { return jobs_.size(); }
  int load_processes() const { return load_; }

  /// Current per-job CPU progress rate in work-seconds per second (before
  /// memory throttling).
  double per_job_rate() const;

  /// Memory-bus capacity in bytes/second (default: effectively unlimited).
  void set_memory_bandwidth(double bytes_per_second);
  double memory_bandwidth() const { return mem_bandwidth_; }

  /// Current throttle factor applied to memory-dependent jobs (1 = no bus
  /// contention).
  double memory_throttle() const;

  /// Starts feeding the recorder: busy/stall seconds counters, a
  /// time-weighted utilization gauge, and "cpu-stall" spans on the node
  /// track.  Instrument handles are resolved here once; with no recorder
  /// attached every hot-path hook is a single null check.
  void attach_obs(obs::Recorder* recorder, int node_id);

 private:
  struct Job {
    double remaining;  // work-seconds still owed; load jobs use +infinity
    std::function<void()> on_complete;
    bool is_load = false;
    double mem_intensity = 0;  // bytes per work-second
  };

  /// Accounts work done by all jobs between last_sync_ and now.
  void sync();

  /// Re-schedules the single completion event for the job that will finish
  /// first at the current rate.
  void reschedule();

  void on_completion_event();

  /// Pushes the current utilization to the gauge; no-op when not observed.
  void observe_state();

  Engine& engine_;
  int cores_;
  double speed_;
  int stall_depth_ = 0;
  double unfairness_ = 1.0;
  double mem_bandwidth_ = 1e300;  // effectively unlimited by default
  int load_ = 0;
  std::vector<Job> jobs_;
  Time last_sync_ = 0.0;
  EventQueue::Handle pending_;

  // Observability handles; null when the node is unobserved.
  obs::Recorder* obs_ = nullptr;
  int obs_node_id_ = 0;
  obs::Counter* obs_busy_seconds_ = nullptr;
  obs::Counter* obs_stall_seconds_ = nullptr;
  obs::Gauge* obs_utilization_ = nullptr;
  obs::Tracer::SpanId stall_span_ = obs::Tracer::kNoSpan;
};

}  // namespace psk::sim
