#include "sim/network.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "util/error.h"

namespace psk::sim {

namespace {
constexpr double kInfiniteBytes = std::numeric_limits<double>::infinity();
}

Network::Network(Engine& engine, int node_count, double bandwidth_bps,
                 Time latency, double local_bandwidth_bps, Time local_latency)
    : engine_(engine),
      node_count_(node_count),
      latency_(latency),
      local_bandwidth_(local_bandwidth_bps),
      local_latency_(local_latency),
      up_(static_cast<std::size_t>(node_count), bandwidth_bps),
      down_(static_cast<std::size_t>(node_count), bandwidth_bps),
      fault_depth_(static_cast<std::size_t>(node_count), 0) {
  util::require(node_count >= 1, "Network: need at least one node");
  util::require(bandwidth_bps > 0, "Network: bandwidth must be positive");
  util::require(local_bandwidth_bps > 0,
                "Network: local bandwidth must be positive");
  util::require(latency >= 0 && local_latency >= 0,
                "Network: latency must be non-negative");
}

void Network::check_node(int node) const {
  util::require(node >= 0 && node < node_count_,
                "Network: node index " + std::to_string(node) +
                    " out of range [0," + std::to_string(node_count_) + ")");
}

void Network::set_link_bandwidth(int node, double bandwidth_bps) {
  set_uplink_bandwidth(node, bandwidth_bps);
  set_downlink_bandwidth(node, bandwidth_bps);
}

void Network::set_uplink_bandwidth(int node, double bandwidth_bps) {
  check_node(node);
  util::require(bandwidth_bps > 0, "Network: bandwidth must be positive");
  sync();
  up_[static_cast<std::size_t>(node)] = bandwidth_bps;
  rerate();
}

void Network::set_downlink_bandwidth(int node, double bandwidth_bps) {
  check_node(node);
  util::require(bandwidth_bps > 0, "Network: bandwidth must be positive");
  sync();
  down_[static_cast<std::size_t>(node)] = bandwidth_bps;
  rerate();
}

double Network::uplink_bandwidth(int node) const {
  check_node(node);
  return up_[static_cast<std::size_t>(node)];
}

double Network::downlink_bandwidth(int node) const {
  check_node(node);
  return down_[static_cast<std::size_t>(node)];
}

void Network::push_link_fault(int node) {
  check_node(node);
  sync();
  ++fault_depth_[static_cast<std::size_t>(node)];
  if (obs_ != nullptr && fault_depth_[static_cast<std::size_t>(node)] == 1) {
    fault_spans_[static_cast<std::size_t>(node)] =
        obs_->tracer().begin(obs::Recorder::kNetPid, node, "link-down",
                             "fault", engine_.now());
  }
  rerate();
}

void Network::pop_link_fault(int node) {
  check_node(node);
  util::require(fault_depth_[static_cast<std::size_t>(node)] > 0,
                "Network::pop_link_fault: link not faulted");
  sync();
  --fault_depth_[static_cast<std::size_t>(node)];
  if (obs_ != nullptr && fault_depth_[static_cast<std::size_t>(node)] == 0 &&
      fault_spans_[static_cast<std::size_t>(node)] != obs::Tracer::kNoSpan) {
    obs_->tracer().end(fault_spans_[static_cast<std::size_t>(node)],
                       engine_.now());
    fault_spans_[static_cast<std::size_t>(node)] = obs::Tracer::kNoSpan;
  }
  rerate();
}

bool Network::link_up(int node) const {
  check_node(node);
  return fault_depth_[static_cast<std::size_t>(node)] == 0;
}

void Network::transfer(int src, int dst, std::uint64_t bytes,
                       std::function<void()> on_complete) {
  check_node(src);
  check_node(dst);
  if (src == dst) {
    // Intra-node message: shared-memory copy, no link involvement.
    if (obs_local_bytes_ != nullptr) {
      obs_local_bytes_->add(static_cast<double>(bytes));
    }
    const Time duration =
        local_latency_ + static_cast<double>(bytes) / local_bandwidth_;
    engine_.after(duration, std::move(on_complete));
    return;
  }
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.remaining = static_cast<double>(bytes);
  flow.on_complete = std::move(on_complete);
  // The flow joins the fluid system only after the fixed latency, modelling
  // propagation plus protocol stack traversal.
  engine_.after(latency_, [this, flow = std::move(flow)]() mutable {
    admit(std::move(flow));
  });
}

void Network::admit(Flow flow) {
  sync();
  flows_.push_back(std::move(flow));
  observe_flows();
  rerate();
}

void Network::add_background_flow(int src, int dst) {
  check_node(src);
  check_node(dst);
  sync();
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.remaining = kInfiniteBytes;
  flow.background = true;
  flows_.push_back(std::move(flow));
  observe_flows();
  rerate();
}

void Network::clear_background_flows() {
  sync();
  flows_.remove_if([](const Flow& f) { return f.background; });
  observe_flows();
  rerate();
}

void Network::sync() {
  const Time now = engine_.now();
  const double elapsed = now - last_sync_;
  last_sync_ = now;
  if (elapsed <= 0) return;
  for (Flow& flow : flows_) {
    // Rates are constant between syncs, so rate * elapsed is the exact byte
    // count each flow moved in the interval (background flows included --
    // they occupy real link share).
    const double moved = flow.rate * elapsed;
    if (!flow.background) flow.remaining -= moved;
    if (obs_ != nullptr) {
      obs_tx_bytes_[static_cast<std::size_t>(flow.src)]->add(moved);
    }
  }
}

void Network::rerate() {
  pending_.cancel();
  if (flows_.empty()) return;

  // Paused flows (an endpoint's link is faulted) progress at rate zero and
  // release their share of the healthy endpoint's link to active traffic.
  const auto paused = [this](const Flow& flow) {
    return fault_depth_[static_cast<std::size_t>(flow.src)] > 0 ||
           fault_depth_[static_cast<std::size_t>(flow.dst)] > 0;
  };

  std::vector<int> out(static_cast<std::size_t>(node_count_), 0);
  std::vector<int> in(static_cast<std::size_t>(node_count_), 0);
  for (const Flow& flow : flows_) {
    if (paused(flow)) continue;
    ++out[static_cast<std::size_t>(flow.src)];
    ++in[static_cast<std::size_t>(flow.dst)];
  }

  Time min_eta = std::numeric_limits<Time>::infinity();
  for (Flow& flow : flows_) {
    if (paused(flow)) {
      flow.rate = 0.0;
      continue;
    }
    const double up_share = up_[static_cast<std::size_t>(flow.src)] /
                            out[static_cast<std::size_t>(flow.src)];
    const double down_share = down_[static_cast<std::size_t>(flow.dst)] /
                              in[static_cast<std::size_t>(flow.dst)];
    flow.rate = std::min(up_share, down_share);
    if (!flow.background) {
      const Time eta = std::max(0.0, flow.remaining) / flow.rate;
      min_eta = std::min(min_eta, eta);
    }
  }
  if (min_eta == std::numeric_limits<Time>::infinity()) return;
  pending_ = engine_.after(min_eta, [this] { on_completion_event(); });
}

void Network::on_completion_event() {
  sync();
  // Complete the minimum-remaining flow(s): the pending event is cancelled
  // on every flow change, so when it fires the minimum flow is due now even
  // if floating-point rounding left a sliver of bytes whose ETA would be
  // below the clock's ULP.
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const Flow& flow : flows_) {
    // Paused (rate-zero) flows never complete here, and must not drag
    // min_remaining down: a nearly-finished flow stuck behind a link fault
    // would otherwise "complete" an unrelated active flow early.
    if (!flow.background && flow.rate > 0) {
      min_remaining = std::min(min_remaining, flow.remaining);
    }
  }
  if (min_remaining == std::numeric_limits<double>::infinity()) return;

  // Other flows ride along only when their own ETA past this instant is
  // below the clock's resolution at the current time -- i.e. when rerate()
  // could not schedule their completion at a later timestamp anyway.  An
  // absolute byte epsilon is wrong here: on a slow link, a fixed sliver of
  // bytes can represent real simulated time, and completing a distinct
  // small control message early reorders events.
  const Time clock_ulp =
      std::max(engine_.now() * 1e-12, std::numeric_limits<Time>::min());
  std::vector<std::function<void()>> finished;
  auto it = flows_.begin();
  while (it != flows_.end()) {
    if (!it->background && it->rate > 0 &&
        it->remaining <= min_remaining + it->rate * clock_ulp) {
      finished.push_back(std::move(it->on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  observe_flows();
  rerate();
  for (auto& callback : finished) callback();
}

void Network::attach_obs(obs::Recorder* recorder) {
  obs_ = recorder;
  if (recorder == nullptr) {
    obs_tx_bytes_.clear();
    obs_local_bytes_ = nullptr;
    obs_flows_gauge_ = nullptr;
    obs_flows_hist_ = nullptr;
    fault_spans_.clear();
    return;
  }
  obs::MetricsRegistry& metrics = recorder->metrics();
  obs_tx_bytes_.resize(static_cast<std::size_t>(node_count_));
  for (int node = 0; node < node_count_; ++node) {
    obs_tx_bytes_[static_cast<std::size_t>(node)] =
        &metrics.counter("net.node." + std::to_string(node) + ".tx_bytes");
  }
  obs_local_bytes_ = &metrics.counter("net.local_bytes");
  obs_flows_gauge_ = &metrics.gauge("net.active_flows");
  obs_flows_hist_ = &metrics.histogram("net.active_flows.occupancy",
                                       {0.0, 1.0, 2.0, 4.0, 8.0, 16.0});
  fault_spans_.assign(static_cast<std::size_t>(node_count_),
                      obs::Tracer::kNoSpan);
  recorder->tracer().set_process_name(obs::Recorder::kNetPid, "network");
  observe_flows();
}

void Network::observe_flows() {
  if (obs_flows_gauge_ == nullptr) return;
  const double count = static_cast<double>(flows_.size());
  const Time now = engine_.now();
  obs_flows_gauge_->set(now, count);
  obs_flows_hist_->observe(now, count);
}

}  // namespace psk::sim
