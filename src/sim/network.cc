#include "sim/network.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "util/error.h"

namespace psk::sim {

namespace {
constexpr double kInfiniteBytes = std::numeric_limits<double>::infinity();
}

Network::Network(Engine& engine, const NetworkConfig& config)
    : engine_(engine),
      topo_(config.topology, config.node_count),
      latency_(config.latency),
      local_bandwidth_(config.local_bandwidth_bps),
      local_latency_(config.local_latency),
      incremental_(
          config.sharing == NetworkConfig::Sharing::kIncremental ||
          (config.sharing == NetworkConfig::Sharing::kAuto &&
           !config.topology.is_crossbar())),
      cap_(static_cast<std::size_t>(topo_.link_count()), config.bandwidth_bps),
      lfault_(static_cast<std::size_t>(topo_.link_count()), 0),
      node_fault_depth_(static_cast<std::size_t>(config.node_count), 0) {
  util::require(config.node_count >= 1, "Network: need at least one node");
  util::require(config.bandwidth_bps > 0,
                "Network: bandwidth must be positive");
  util::require(config.local_bandwidth_bps > 0,
                "Network: local bandwidth must be positive");
  util::require(config.latency >= 0 && config.local_latency >= 0,
                "Network: latency must be non-negative");
  if (incremental_) {
    link_flows_.resize(static_cast<std::size_t>(topo_.link_count()));
    link_active_.assign(static_cast<std::size_t>(topo_.link_count()), 0);
  }
}

Network::Network(Engine& engine, int node_count, double bandwidth_bps,
                 Time latency, double local_bandwidth_bps, Time local_latency)
    : Network(engine, NetworkConfig{.node_count = node_count,
                                    .bandwidth_bps = bandwidth_bps,
                                    .latency = latency,
                                    .local_bandwidth_bps = local_bandwidth_bps,
                                    .local_latency = local_latency}) {}

void Network::check_node(int node) const {
  util::require(node >= 0 && node < topo_.node_count(),
                "Network: node index " + std::to_string(node) +
                    " out of range [0," + std::to_string(topo_.node_count()) +
                    ")");
}

void Network::check_link(LinkId link) const {
  util::require(link >= 0 && link < topo_.link_count(),
                "Network: link id " + std::to_string(link) +
                    " out of range [0," + std::to_string(topo_.link_count()) +
                    ")");
}

bool Network::path_faulted(const LinkPath& path) const {
  for (LinkId link : path) {
    if (lfault_[static_cast<std::size_t>(link)] > 0) return true;
  }
  return false;
}

// --- Link-addressed API ----------------------------------------------------

double Network::link_capacity(LinkId link) const {
  check_link(link);
  return cap_[static_cast<std::size_t>(link)];
}

void Network::set_link_capacity(LinkId link, double bandwidth_bps) {
  check_link(link);
  util::require(bandwidth_bps > 0, "Network: bandwidth must be positive");
  if (!incremental_) {
    sync();
    cap_[static_cast<std::size_t>(link)] = bandwidth_bps;
    rerate();
    return;
  }
  cap_[static_cast<std::size_t>(link)] = bandwidth_bps;
  inc_links_changed(&link, &link + 1);
}

void Network::push_fault_on(LinkId link) {
  check_link(link);
  if (!incremental_) {
    sync();
    ++lfault_[static_cast<std::size_t>(link)];
    rerate();
    return;
  }
  if (++lfault_[static_cast<std::size_t>(link)] != 1) return;
  // The link just went dark: every flow crossing it pauses and releases its
  // share on the rest of its path, so only those paths' flows re-rate.
  ++epoch_;
  scratch_affected_.clear();
  inc_collect(link, scratch_affected_);
  std::vector<LinkId>& touched = scratch_touched_;
  touched.clear();
  for (int id : scratch_affected_) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    inc_settle(flow);
    ++flow.faulted_links;
    if (flow.faulted_links == 1) inc_pause(id, touched);
  }
  scratch_ripple_.clear();
  for (LinkId t : touched) inc_collect(t, scratch_ripple_);
  for (int id : scratch_ripple_) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    if (flow.faulted_links > 0) continue;
    inc_settle(flow);
    inc_rerate_flow(id);
  }
  inc_reschedule();
}

void Network::pop_fault_on(LinkId link) {
  check_link(link);
  util::require(lfault_[static_cast<std::size_t>(link)] > 0,
                "Network::pop_fault_on: link not faulted");
  if (!incremental_) {
    sync();
    --lfault_[static_cast<std::size_t>(link)];
    rerate();
    return;
  }
  if (--lfault_[static_cast<std::size_t>(link)] != 0) return;
  ++epoch_;
  scratch_affected_.clear();
  inc_collect(link, scratch_affected_);
  std::vector<LinkId>& touched = scratch_touched_;
  touched.clear();
  // Two phases: restore every resumed flow's link shares first, then rate
  // anything touching those links -- rates must see the final counts.
  for (int id : scratch_affected_) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    inc_settle(flow);  // rate was zero while paused: no bytes move
    --flow.faulted_links;
    if (flow.faulted_links == 0) inc_unpause(id, touched);
  }
  for (int id : scratch_affected_) {
    if (pool_[static_cast<std::size_t>(id)].faulted_links == 0) {
      inc_rerate_flow(id);
    }
  }
  scratch_ripple_.clear();
  for (LinkId t : touched) inc_collect(t, scratch_ripple_);
  for (int id : scratch_ripple_) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    if (flow.faulted_links > 0) continue;
    inc_settle(flow);
    inc_rerate_flow(id);
  }
  inc_reschedule();
}

bool Network::link_healthy(LinkId link) const {
  check_link(link);
  return lfault_[static_cast<std::size_t>(link)] == 0;
}

// --- Node-addressed conveniences -------------------------------------------

void Network::set_link_bandwidth(int node, double bandwidth_bps) {
  check_node(node);
  util::require(bandwidth_bps > 0, "Network: bandwidth must be positive");
  const LinkId up = topo_.uplink(node);
  const LinkId down = topo_.downlink(node);
  if (!incremental_) {
    // One settle/re-rate pass for both directions (the old per-direction
    // calls each ran sync()+rerate()).
    sync();
    cap_[static_cast<std::size_t>(up)] = bandwidth_bps;
    cap_[static_cast<std::size_t>(down)] = bandwidth_bps;
    rerate();
    return;
  }
  cap_[static_cast<std::size_t>(up)] = bandwidth_bps;
  cap_[static_cast<std::size_t>(down)] = bandwidth_bps;
  const LinkId links[2] = {up, down};
  inc_links_changed(links, links + 2);
}

void Network::set_uplink_bandwidth(int node, double bandwidth_bps) {
  check_node(node);
  set_link_capacity(topo_.uplink(node), bandwidth_bps);
}

void Network::set_downlink_bandwidth(int node, double bandwidth_bps) {
  check_node(node);
  set_link_capacity(topo_.downlink(node), bandwidth_bps);
}

double Network::uplink_bandwidth(int node) const {
  check_node(node);
  return cap_[static_cast<std::size_t>(topo_.uplink(node))];
}

double Network::downlink_bandwidth(int node) const {
  check_node(node);
  return cap_[static_cast<std::size_t>(topo_.downlink(node))];
}

void Network::node_fault_span_begin(int node) {
  if (obs_ != nullptr &&
      node_fault_depth_[static_cast<std::size_t>(node)] == 1) {
    fault_spans_[static_cast<std::size_t>(node)] =
        obs_->tracer().begin(obs::Recorder::kNetPid, node, "link-down",
                             "fault", engine_.now());
  }
}

void Network::node_fault_span_end(int node) {
  if (obs_ != nullptr &&
      node_fault_depth_[static_cast<std::size_t>(node)] == 0 &&
      fault_spans_[static_cast<std::size_t>(node)] != obs::Tracer::kNoSpan) {
    obs_->tracer().end(fault_spans_[static_cast<std::size_t>(node)],
                       engine_.now());
    fault_spans_[static_cast<std::size_t>(node)] = obs::Tracer::kNoSpan;
  }
}

void Network::push_link_fault(int node) {
  check_node(node);
  const LinkId up = topo_.uplink(node);
  const LinkId down = topo_.downlink(node);
  if (!incremental_) {
    sync();
    ++lfault_[static_cast<std::size_t>(up)];
    ++lfault_[static_cast<std::size_t>(down)];
    ++node_fault_depth_[static_cast<std::size_t>(node)];
    node_fault_span_begin(node);
    rerate();
    return;
  }
  ++node_fault_depth_[static_cast<std::size_t>(node)];
  node_fault_span_begin(node);
  push_fault_on(up);
  push_fault_on(down);
}

void Network::pop_link_fault(int node) {
  check_node(node);
  util::require(node_fault_depth_[static_cast<std::size_t>(node)] > 0,
                "Network::pop_link_fault: link not faulted");
  const LinkId up = topo_.uplink(node);
  const LinkId down = topo_.downlink(node);
  if (!incremental_) {
    sync();
    --lfault_[static_cast<std::size_t>(up)];
    --lfault_[static_cast<std::size_t>(down)];
    --node_fault_depth_[static_cast<std::size_t>(node)];
    node_fault_span_end(node);
    rerate();
    return;
  }
  --node_fault_depth_[static_cast<std::size_t>(node)];
  node_fault_span_end(node);
  pop_fault_on(up);
  pop_fault_on(down);
}

bool Network::link_up(int node) const {
  check_node(node);
  return lfault_[static_cast<std::size_t>(topo_.uplink(node))] == 0 &&
         lfault_[static_cast<std::size_t>(topo_.downlink(node))] == 0;
}

// --- Traffic ----------------------------------------------------------------

void Network::transfer(int src, int dst, std::uint64_t bytes,
                       std::function<void()> on_complete) {
  check_node(src);
  check_node(dst);
  if (src == dst) {
    // Intra-node message: shared-memory copy, no link involvement.
    if (obs_local_bytes_ != nullptr) {
      obs_local_bytes_->add(static_cast<double>(bytes));
    }
    const Time duration =
        local_latency_ + static_cast<double>(bytes) / local_bandwidth_;
    engine_.after(duration, std::move(on_complete));
    return;
  }
  if (!incremental_) {
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.path = topo_.path(src, dst);
    flow.remaining = static_cast<double>(bytes);
    flow.on_complete = std::move(on_complete);
    // The flow joins the fluid system only after the fixed latency,
    // modelling propagation plus protocol stack traversal.
    engine_.after(latency_, [this, flow = std::move(flow)]() mutable {
      admit(std::move(flow));
    });
    return;
  }
  IncFlow flow;
  flow.src = src;
  flow.dst = dst;
  flow.path = topo_.path(src, dst);
  flow.remaining = static_cast<double>(bytes);
  flow.on_complete = std::move(on_complete);
  engine_.after(latency_, [this, flow = std::move(flow)]() mutable {
    inc_admit(std::move(flow));
  });
}

void Network::add_background_flow(int src, int dst) {
  check_node(src);
  check_node(dst);
  if (!incremental_) {
    sync();
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.path = topo_.path(src, dst);
    flow.remaining = kInfiniteBytes;
    flow.background = true;
    flows_.push_back(std::move(flow));
    observe_flows();
    rerate();
    return;
  }
  IncFlow flow;
  flow.src = src;
  flow.dst = dst;
  flow.path = topo_.path(src, dst);
  flow.remaining = kInfiniteBytes;
  flow.background = true;
  inc_admit(std::move(flow));
}

void Network::clear_background_flows() {
  if (!incremental_) {
    sync();
    flows_.remove_if([](const Flow& f) { return f.background; });
    observe_flows();
    rerate();
    return;
  }
  ++epoch_;
  std::vector<LinkId>& touched = scratch_touched_;
  touched.clear();
  for (int id = 0; id < static_cast<int>(pool_.size()); ++id) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    if (!flow.alive || !flow.background) continue;
    flow.mark = epoch_;  // never a member of the affected set below
    for (LinkId l : flow.path) touched.push_back(l);
    inc_remove(id);
  }
  scratch_ripple_.clear();
  for (LinkId t : touched) inc_collect(t, scratch_ripple_);
  for (int id : scratch_ripple_) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    if (flow.faulted_links > 0) continue;
    inc_settle(flow);
    inc_rerate_flow(id);
  }
  inc_reschedule();
  observe_flows();
}

std::size_t Network::transfers_pending() const {
  if (incremental_) return inc_real_pending_;
  std::size_t n = 0;
  for (const Flow& flow : flows_) {
    if (!flow.background) ++n;
  }
  return n;
}

// --- Dense core --------------------------------------------------------------
// The seed's arithmetic, generalized from the two crossbar endpoint links to
// an arbitrary link path.  On the crossbar the per-link counters and the
// min-accumulation over {uplink(src), downlink(dst)} perform the exact same
// floating-point operations in the same order as the original
// min(up/out, down/in), keeping results byte-identical.

void Network::admit(Flow flow) {
  sync();
  flows_.push_back(std::move(flow));
  observe_flows();
  rerate();
}

void Network::sync() {
  const Time now = engine_.now();
  const double elapsed = now - last_sync_;
  last_sync_ = now;
  if (elapsed <= 0) return;
  for (Flow& flow : flows_) {
    // Rates are constant between syncs, so rate * elapsed is the exact byte
    // count each flow moved in the interval (background flows included --
    // they occupy real link share).
    const double moved = flow.rate * elapsed;
    if (!flow.background) flow.remaining -= moved;
    if (obs_ != nullptr) {
      obs_tx_bytes_[static_cast<std::size_t>(flow.src)]->add(moved);
    }
  }
}

void Network::rerate() {
  pending_.cancel();
  if (flows_.empty()) return;

  // Paused flows (any link on the path is faulted) progress at rate zero
  // and release their share of the healthy links to active traffic.
  const auto paused = [this](const Flow& flow) {
    return path_faulted(flow.path);
  };

  std::vector<int> use(static_cast<std::size_t>(topo_.link_count()), 0);
  for (const Flow& flow : flows_) {
    if (paused(flow)) continue;
    for (LinkId link : flow.path) ++use[static_cast<std::size_t>(link)];
  }

  Time min_eta = std::numeric_limits<Time>::infinity();
  for (Flow& flow : flows_) {
    if (paused(flow)) {
      flow.rate = 0.0;
      continue;
    }
    double rate = std::numeric_limits<double>::infinity();
    for (LinkId link : flow.path) {
      rate = std::min(rate, cap_[static_cast<std::size_t>(link)] /
                                use[static_cast<std::size_t>(link)]);
    }
    flow.rate = rate;
    if (!flow.background) {
      const Time eta = std::max(0.0, flow.remaining) / flow.rate;
      min_eta = std::min(min_eta, eta);
    }
  }
  if (min_eta == std::numeric_limits<Time>::infinity()) return;
  pending_ = engine_.after(min_eta, [this] { on_completion_event(); });
}

void Network::on_completion_event() {
  sync();
  // Complete the minimum-remaining flow(s): the pending event is cancelled
  // on every flow change, so when it fires the minimum flow is due now even
  // if floating-point rounding left a sliver of bytes whose ETA would be
  // below the clock's ULP.
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const Flow& flow : flows_) {
    // Paused (rate-zero) flows never complete here, and must not drag
    // min_remaining down: a nearly-finished flow stuck behind a link fault
    // would otherwise "complete" an unrelated active flow early.
    if (!flow.background && flow.rate > 0) {
      min_remaining = std::min(min_remaining, flow.remaining);
    }
  }
  if (min_remaining == std::numeric_limits<double>::infinity()) return;

  // Other flows ride along only when their own ETA past this instant is
  // below the clock's resolution at the current time -- i.e. when rerate()
  // could not schedule their completion at a later timestamp anyway.  An
  // absolute byte epsilon is wrong here: on a slow link, a fixed sliver of
  // bytes can represent real simulated time, and completing a distinct
  // small control message early reorders events.
  const Time clock_ulp =
      std::max(engine_.now() * 1e-12, std::numeric_limits<Time>::min());
  std::vector<std::function<void()>> finished;
  auto it = flows_.begin();
  while (it != flows_.end()) {
    if (!it->background && it->rate > 0 &&
        it->remaining <= min_remaining + it->rate * clock_ulp) {
      finished.push_back(std::move(it->on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  observe_flows();
  rerate();
  for (auto& callback : finished) callback();
}

// --- Incremental core --------------------------------------------------------
// Per-link flow sets with lazy settlement: each flow tracks the time its
// byte count was last up to date, and only flows whose rate actually changes
// get settled and re-rated.  The affected set of any change is the union of
// flows crossing the touched links, deduplicated with an epoch mark; flow
// completions come from an ordered (ETA, id) set, so each event costs
// O(affected * log flows) instead of O(all flows).

void Network::inc_settle(IncFlow& flow) {
  const Time now = engine_.now();
  const double elapsed = now - flow.settled_at;
  flow.settled_at = now;
  if (elapsed <= 0) return;
  const double moved = flow.rate * elapsed;
  if (!flow.background) flow.remaining -= moved;
  if (obs_ != nullptr) {
    obs_tx_bytes_[static_cast<std::size_t>(flow.src)]->add(moved);
  }
}

void Network::inc_rerate_flow(int id) {
  IncFlow& flow = pool_[static_cast<std::size_t>(id)];
  double rate = 0.0;
  if (flow.faulted_links == 0) {
    rate = std::numeric_limits<double>::infinity();
    for (LinkId link : flow.path) {
      // The flow counts itself on each of its links, so the divisor >= 1.
      rate = std::min(rate, cap_[static_cast<std::size_t>(link)] /
                                link_active_[static_cast<std::size_t>(link)]);
    }
  }
  flow.rate = rate;
  if (flow.in_eta) {
    eta_.erase({flow.eta, id});
    flow.in_eta = false;
  }
  if (!flow.background && rate > 0.0) {
    flow.eta = engine_.now() + std::max(0.0, flow.remaining) / rate;
    eta_.insert({flow.eta, id});
    flow.in_eta = true;
  }
}

void Network::inc_collect(LinkId link, std::vector<int>& out) {
  for (std::int32_t id : link_flows_[static_cast<std::size_t>(link)]) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    if (flow.mark == epoch_) continue;
    flow.mark = epoch_;
    out.push_back(id);
  }
}

void Network::inc_admit(IncFlow flow) {
  flow.settled_at = engine_.now();
  flow.faulted_links = 0;
  for (LinkId link : flow.path) {
    if (lfault_[static_cast<std::size_t>(link)] > 0) ++flow.faulted_links;
  }
  int id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    pool_[static_cast<std::size_t>(id)] = std::move(flow);
  } else {
    id = static_cast<int>(pool_.size());
    pool_.push_back(std::move(flow));
  }
  IncFlow& f = pool_[static_cast<std::size_t>(id)];
  f.alive = true;
  ++inc_alive_;
  if (!f.background) ++inc_real_pending_;

  ++epoch_;
  f.mark = epoch_;  // keep the new flow out of its own affected set
  scratch_affected_.clear();
  for (int h = 0; h < f.path.count; ++h) {
    const LinkId link = f.path.links[static_cast<std::size_t>(h)];
    inc_collect(link, scratch_affected_);
    f.slot[static_cast<std::size_t>(h)] =
        static_cast<std::int32_t>(link_flows_[static_cast<std::size_t>(link)]
                                      .size());
    link_flows_[static_cast<std::size_t>(link)].push_back(
        static_cast<std::int32_t>(id));
    if (f.faulted_links == 0) ++link_active_[static_cast<std::size_t>(link)];
  }
  for (int a : scratch_affected_) {
    IncFlow& other = pool_[static_cast<std::size_t>(a)];
    if (other.faulted_links > 0) continue;
    inc_settle(other);
    inc_rerate_flow(a);
  }
  inc_rerate_flow(id);
  inc_reschedule();
  observe_flows();
}

void Network::inc_remove(int id) {
  IncFlow& flow = pool_[static_cast<std::size_t>(id)];
  for (int h = 0; h < flow.path.count; ++h) {
    const LinkId link = flow.path.links[static_cast<std::size_t>(h)];
    auto& members = link_flows_[static_cast<std::size_t>(link)];
    const std::int32_t s = flow.slot[static_cast<std::size_t>(h)];
    const std::int32_t moved = members.back();
    members[static_cast<std::size_t>(s)] = moved;
    members.pop_back();
    if (moved != id) {
      // The swapped-in flow's slot entry for this link now points at s.
      IncFlow& m = pool_[static_cast<std::size_t>(moved)];
      for (int k = 0; k < m.path.count; ++k) {
        if (m.path.links[static_cast<std::size_t>(k)] == link) {
          m.slot[static_cast<std::size_t>(k)] = s;
          break;
        }
      }
    }
    if (flow.faulted_links == 0) {
      --link_active_[static_cast<std::size_t>(link)];
    }
  }
  if (flow.in_eta) {
    eta_.erase({flow.eta, id});
    flow.in_eta = false;
  }
  flow.alive = false;
  flow.on_complete = nullptr;
  --inc_alive_;
  if (!flow.background) --inc_real_pending_;
  free_slots_.push_back(id);
}

void Network::inc_pause(int id, std::vector<LinkId>& touched) {
  IncFlow& flow = pool_[static_cast<std::size_t>(id)];
  for (LinkId link : flow.path) {
    --link_active_[static_cast<std::size_t>(link)];
    touched.push_back(link);
  }
  flow.rate = 0.0;
  if (flow.in_eta) {
    eta_.erase({flow.eta, id});
    flow.in_eta = false;
  }
}

void Network::inc_unpause(int id, std::vector<LinkId>& touched) {
  IncFlow& flow = pool_[static_cast<std::size_t>(id)];
  for (LinkId link : flow.path) {
    ++link_active_[static_cast<std::size_t>(link)];
    touched.push_back(link);
  }
}

void Network::inc_links_changed(const LinkId* first, const LinkId* last) {
  ++epoch_;
  scratch_affected_.clear();
  for (const LinkId* it = first; it != last; ++it) {
    inc_collect(*it, scratch_affected_);
  }
  for (int id : scratch_affected_) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    if (flow.faulted_links > 0) continue;
    inc_settle(flow);
    inc_rerate_flow(id);
  }
  inc_reschedule();
}

void Network::inc_reschedule() {
  pending_.cancel();
  if (eta_.empty()) return;
  pending_ =
      engine_.at(eta_.begin()->first, [this] { inc_on_completion_event(); });
}

void Network::inc_on_completion_event() {
  const Time now = engine_.now();
  // Same ride-along rule as the dense core: anything whose ETA is within the
  // clock's resolution of this instant completes now -- rescheduling it
  // could not produce a later timestamp anyway.
  const Time clock_ulp =
      std::max(now * 1e-12, std::numeric_limits<Time>::min());
  ++epoch_;
  std::vector<LinkId>& touched = scratch_touched_;
  touched.clear();
  std::vector<std::function<void()>> finished;
  while (!eta_.empty() && eta_.begin()->first <= now + clock_ulp) {
    const int id = eta_.begin()->second;
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    inc_settle(flow);
    flow.mark = epoch_;  // removed below; never part of the affected set
    for (LinkId link : flow.path) touched.push_back(link);
    finished.push_back(std::move(flow.on_complete));
    inc_remove(id);
  }
  scratch_ripple_.clear();
  for (LinkId t : touched) inc_collect(t, scratch_ripple_);
  for (int id : scratch_ripple_) {
    IncFlow& flow = pool_[static_cast<std::size_t>(id)];
    if (flow.faulted_links > 0) continue;
    inc_settle(flow);
    inc_rerate_flow(id);
  }
  inc_reschedule();
  observe_flows();
  for (auto& callback : finished) callback();
}

// --- Observability -----------------------------------------------------------

void Network::attach_obs(obs::Recorder* recorder) {
  obs_ = recorder;
  if (recorder == nullptr) {
    obs_tx_bytes_.clear();
    obs_local_bytes_ = nullptr;
    obs_flows_gauge_ = nullptr;
    obs_flows_hist_ = nullptr;
    fault_spans_.clear();
    return;
  }
  obs::MetricsRegistry& metrics = recorder->metrics();
  obs_tx_bytes_.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int node = 0; node < topo_.node_count(); ++node) {
    obs_tx_bytes_[static_cast<std::size_t>(node)] =
        &metrics.counter("net.node." + std::to_string(node) + ".tx_bytes");
  }
  obs_local_bytes_ = &metrics.counter("net.local_bytes");
  obs_flows_gauge_ = &metrics.gauge("net.active_flows");
  obs_flows_hist_ = &metrics.histogram("net.active_flows.occupancy",
                                       {0.0, 1.0, 2.0, 4.0, 8.0, 16.0});
  fault_spans_.assign(static_cast<std::size_t>(topo_.node_count()),
                      obs::Tracer::kNoSpan);
  recorder->tracer().set_process_name(obs::Recorder::kNetPid, "network");
  observe_flows();
}

void Network::observe_flows() {
  if (obs_flows_gauge_ == nullptr) return;
  const double count = static_cast<double>(active_flows());
  const Time now = engine_.now();
  obs_flows_gauge_->set(now, count);
  obs_flows_hist_->observe(now, count);
}

}  // namespace psk::sim
