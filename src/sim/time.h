// Simulated time base.
//
// All simulated clocks are doubles counting seconds since simulation start.
// Work is measured in "work-seconds": one work-second takes one wall second
// on a dedicated full-speed core (speed 1.0).
#pragma once

namespace psk::sim {

using Time = double;

/// Comparison slack for "work fully drained" checks: one picosecond of work.
inline constexpr double kWorkEpsilon = 1e-12;

inline constexpr Time kMicrosecond = 1e-6;
inline constexpr Time kMillisecond = 1e-3;

}  // namespace psk::sim
