#include "sim/cpu.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.h"

namespace psk::sim {

namespace {
constexpr double kInfiniteWork = std::numeric_limits<double>::infinity();
}

CpuNode::CpuNode(Engine& engine, int cores, double speed)
    : engine_(engine), cores_(cores), speed_(speed) {
  util::require(cores >= 1, "CpuNode: need at least one core");
  util::require(speed > 0, "CpuNode: speed must be positive");
}

double CpuNode::per_job_rate() const {
  if (stall_depth_ > 0) return 0.0;
  const std::size_t n = jobs_.size();
  if (n == 0) return speed_;
  const double share =
      std::min(1.0, static_cast<double>(cores_) / static_cast<double>(n));
  const bool contended = static_cast<int>(n) > cores_;
  return speed_ * share * (contended ? unfairness_ : 1.0);
}

void CpuNode::set_speed(double speed) {
  util::require(speed > 0, "CpuNode: speed must be positive");
  sync();
  speed_ = speed;
  reschedule();
}

void CpuNode::push_stall() {
  sync();
  ++stall_depth_;
  if (obs_ != nullptr && stall_depth_ == 1) {
    stall_span_ = obs_->tracer().begin(obs::Recorder::kNodePid, obs_node_id_,
                                       "cpu-stall", "fault", engine_.now());
  }
  observe_state();
  reschedule();
}

void CpuNode::pop_stall() {
  util::require(stall_depth_ > 0, "CpuNode::pop_stall: not stalled");
  sync();
  --stall_depth_;
  if (obs_ != nullptr && stall_depth_ == 0 &&
      stall_span_ != obs::Tracer::kNoSpan) {
    obs_->tracer().end(stall_span_, engine_.now());
    stall_span_ = obs::Tracer::kNoSpan;
  }
  observe_state();
  reschedule();
}

void CpuNode::set_contention_unfairness(double factor) {
  util::require(factor > 0, "CpuNode: unfairness factor must be positive");
  sync();
  unfairness_ = factor;
  reschedule();
}

double CpuNode::memory_throttle() const {
  const double base = per_job_rate();
  double demand = 0;
  for (const Job& job : jobs_) demand += base * job.mem_intensity;
  if (demand <= mem_bandwidth_ || demand <= 0) return 1.0;
  return mem_bandwidth_ / demand;
}

void CpuNode::set_memory_bandwidth(double bytes_per_second) {
  util::require(bytes_per_second > 0,
                "CpuNode: memory bandwidth must be positive");
  sync();
  mem_bandwidth_ = bytes_per_second;
  reschedule();
}

void CpuNode::sync() {
  const Time now = engine_.now();
  const double elapsed = now - last_sync_;
  last_sync_ = now;
  if (elapsed <= 0) return;
  // Membership and stall state are constant between syncs, so charging the
  // whole interval to one bucket here is exact.
  if (obs_busy_seconds_ != nullptr) {
    if (stall_depth_ > 0) {
      obs_stall_seconds_->add(elapsed);
    } else if (!jobs_.empty()) {
      obs_busy_seconds_->add(elapsed);
    }
  }
  if (jobs_.empty()) return;
  const double base = per_job_rate() * elapsed;
  const double throttled = base * memory_throttle();
  for (Job& job : jobs_) {
    if (!job.is_load) {
      job.remaining -= job.mem_intensity > 0 ? throttled : base;
    }
  }
}

void CpuNode::reschedule() {
  pending_.cancel();
  const double base = per_job_rate();
  // Stalled node: nothing progresses, so no completion can become due (a
  // zero rate would otherwise produce NaN/inf ETAs below).  pop_stall()
  // reschedules when the node comes back.
  if (base <= 0) return;
  const double throttled = base * memory_throttle();
  Time min_eta = std::numeric_limits<Time>::infinity();
  for (const Job& job : jobs_) {
    if (job.is_load) continue;
    const double rate = job.mem_intensity > 0 ? throttled : base;
    min_eta = std::min(min_eta, std::max(0.0, job.remaining) / rate);
  }
  if (min_eta == std::numeric_limits<Time>::infinity()) return;
  pending_ = engine_.after(min_eta, [this] { on_completion_event(); });
}

void CpuNode::on_completion_event() {
  sync();
  // The pending event is cancelled and rescheduled on every membership
  // change, so when it fires the job with the minimum ETA *is* due now --
  // even when floating-point rounding leaves a sliver of work (at large
  // simulated times the sliver's ETA can be below the clock's ULP, so
  // requiring remaining <= epsilon would spin forever).  Complete the
  // minimum-ETA set; with mixed memory intensities the ETA ordering can
  // differ from the remaining-work ordering, so compare ETAs.
  const double base = per_job_rate();
  if (base <= 0) return;  // stalled between scheduling and firing
  const double throttled = base * memory_throttle();
  const auto eta_of = [&](const Job& job) {
    const double rate = job.mem_intensity > 0 ? throttled : base;
    return std::max(0.0, job.remaining) / rate;
  };
  double min_eta = std::numeric_limits<double>::infinity();
  for (const Job& job : jobs_) {
    if (!job.is_load) min_eta = std::min(min_eta, eta_of(job));
  }
  if (min_eta == std::numeric_limits<double>::infinity()) return;

  // Collect every due job (ties complete together) and remove them from the
  // share *before* running callbacks so that newly submitted work sees a
  // consistent node state.
  std::vector<std::function<void()>> finished;
  auto it = jobs_.begin();
  while (it != jobs_.end()) {
    if (!it->is_load && eta_of(*it) <= min_eta + kWorkEpsilon) {
      finished.push_back(std::move(it->on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  observe_state();
  reschedule();
  for (auto& callback : finished) callback();
}

void CpuNode::submit(double work, std::function<void()> on_complete,
                     double mem_bytes_per_work) {
  sync();
  Job job;
  job.remaining = std::max(0.0, work);
  job.on_complete = std::move(on_complete);
  job.mem_intensity = std::max(0.0, mem_bytes_per_work);
  jobs_.push_back(std::move(job));
  observe_state();
  reschedule();
}

void CpuNode::add_load(int count, double mem_bytes_per_work) {
  util::require(count >= 0, "CpuNode::add_load: negative count");
  sync();
  for (int i = 0; i < count; ++i) {
    Job job;
    job.remaining = kInfiniteWork;
    job.is_load = true;
    job.mem_intensity = std::max(0.0, mem_bytes_per_work);
    jobs_.push_back(std::move(job));
  }
  load_ += count;
  observe_state();
  reschedule();
}

void CpuNode::remove_load(int count) {
  util::require(count >= 0, "CpuNode::remove_load: negative count");
  sync();
  int removed = 0;
  auto it = jobs_.begin();
  while (it != jobs_.end() && removed < count) {
    if (it->is_load) {
      it = jobs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  load_ -= removed;
  observe_state();
  reschedule();
}

void CpuNode::attach_obs(obs::Recorder* recorder, int node_id) {
  obs_ = recorder;
  obs_node_id_ = node_id;
  if (recorder == nullptr) {
    obs_busy_seconds_ = nullptr;
    obs_stall_seconds_ = nullptr;
    obs_utilization_ = nullptr;
    return;
  }
  const std::string prefix = "node." + std::to_string(node_id) + ".";
  obs::MetricsRegistry& metrics = recorder->metrics();
  obs_busy_seconds_ = &metrics.counter(prefix + "busy_seconds");
  obs_stall_seconds_ = &metrics.counter(prefix + "stall_seconds");
  obs_utilization_ = &metrics.gauge(prefix + "utilization");
  recorder->tracer().set_thread_name(obs::Recorder::kNodePid, node_id,
                                     "node " + std::to_string(node_id));
  observe_state();
}

void CpuNode::observe_state() {
  if (obs_utilization_ == nullptr) return;
  const double n = static_cast<double>(jobs_.size());
  const double utilization =
      stall_depth_ > 0 ? 0.0
                       : std::min(1.0, n / static_cast<double>(cores_));
  obs_utilization_->set(engine_.now(), utilization);
}

}  // namespace psk::sim
