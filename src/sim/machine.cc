#include "sim/machine.h"

#include <cmath>
#include <string>
#include <utility>

#include "util/error.h"

namespace psk::sim {

ClusterConfig ClusterConfig::paper_testbed(int nodes) {
  ClusterConfig config;
  config.nodes = nodes;
  config.cores_per_node = 2;
  config.cpu_speed = 1.0;
  config.link_bandwidth_bps = 60.0e6;  // effective MPICH/GigE payload rate
  config.latency = 50e-6;
  return config;
}

Machine::Machine(const ClusterConfig& config)
    : config_(config),
      engine_(config.seed),
      network_(engine_,
               NetworkConfig{.node_count = config.nodes,
                             .bandwidth_bps = config.link_bandwidth_bps,
                             .latency = config.latency,
                             .local_bandwidth_bps = config.local_bandwidth_bps,
                             .local_latency = config.local_latency,
                             .topology = config.topology}) {
  util::require(config.nodes >= 1, "Machine: need at least one node");
  nodes_.reserve(static_cast<std::size_t>(config.nodes));
  for (int i = 0; i < config.nodes; ++i) {
    nodes_.emplace_back(engine_, config.cores_per_node, config.cpu_speed);
    nodes_.back().set_memory_bandwidth(config.memory_bandwidth_bps);
  }
  crash_depth_.assign(static_cast<std::size_t>(config.nodes), 0);
}

void Machine::attach_obs(obs::Recorder* recorder) {
  obs_ = recorder;
  for (int i = 0; i < config_.nodes; ++i) {
    nodes_[static_cast<std::size_t>(i)].attach_obs(recorder, i);
  }
  network_.attach_obs(recorder);
  if (recorder != nullptr) {
    recorder->tracer().set_process_name(obs::Recorder::kNodePid, "cpu nodes");
    recorder->metrics().set_info("nodes", std::to_string(config_.nodes));
    recorder->metrics().set_info(
        "cores_per_node", std::to_string(config_.cores_per_node));
  }
}

CpuNode& Machine::node(int index) {
  util::require(index >= 0 && index < config_.nodes,
                "Machine::node: index " + std::to_string(index) +
                    " out of range");
  return nodes_[static_cast<std::size_t>(index)];
}

void Machine::crash_node(int index) {
  CpuNode& target = node(index);  // validates the index
  ++crash_depth_[static_cast<std::size_t>(index)];
  target.push_stall();
  network_.push_link_fault(index);
}

void Machine::restore_node(int index) {
  node(index);
  util::require(crash_depth_[static_cast<std::size_t>(index)] > 0,
                "Machine::restore_node: node " + std::to_string(index) +
                    " is not crashed");
  --crash_depth_[static_cast<std::size_t>(index)];
  nodes_[static_cast<std::size_t>(index)].pop_stall();
  network_.pop_link_fault(index);
}

bool Machine::node_up(int index) const {
  util::require(index >= 0 && index < config_.nodes,
                "Machine::node_up: index " + std::to_string(index) +
                    " out of range");
  return crash_depth_[static_cast<std::size_t>(index)] == 0;
}

void Machine::stall_all_nodes() {
  for (CpuNode& n : nodes_) n.push_stall();
}

void Machine::resume_all_nodes() {
  for (CpuNode& n : nodes_) n.pop_stall();
}

void Machine::compute(int node_index, double work,
                      std::function<void()> on_complete, double mem_bytes) {
  double jittered = work;
  if (config_.cpu_jitter > 0 && work > 0) {
    jittered = work * engine_.rng().jitter(config_.cpu_jitter);
  }
  const double intensity = jittered > 0 ? mem_bytes / jittered : 0.0;
  node(node_index).submit(jittered, std::move(on_complete), intensity);
}

void Machine::transfer(int src, int dst, std::uint64_t bytes,
                       std::function<void()> on_complete) {
  std::uint64_t jittered = bytes;
  if (config_.net_jitter > 0 && bytes > 0) {
    const double scaled =
        static_cast<double>(bytes) * engine_.rng().jitter(config_.net_jitter);
    jittered = static_cast<std::uint64_t>(std::llround(std::max(1.0, scaled)));
  }
  network_.transfer(src, dst, jittered, std::move(on_complete));
}

}  // namespace psk::sim
