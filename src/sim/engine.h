// Discrete-event simulation engine.
//
// Single-threaded and deterministic: events with equal timestamps fire in
// schedule order, and all randomness flows through one seeded RNG.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/rng.h"

namespace psk::sim {

/// Observer consulted by Engine::run() when the simulation goes quiescent:
/// tasks are still unfinished but no progress event is pending.  Higher
/// layers (the MPI runtime via psk::guard) implement this to recognise the
/// moment as a deadlock and raise a structured report instead of letting
/// daemon events burn simulated time until the coarse time limit.
class QuiescenceMonitor {
 public:
  virtual ~QuiescenceMonitor() = default;

  /// Number of engine tasks currently blocked in an operation this monitor
  /// understands (e.g. ranks suspended in an untimed MPI wait).
  virtual std::size_t blocked_tasks() const = 0;

  /// False while the monitored subsystem still has in-flight work that can
  /// complete on its own (e.g. paused network flows that resume when a
  /// faulted link comes back up).
  virtual bool quiescent() const = 0;

  /// Called once deadlock is established; expected to throw a descriptive
  /// error (guard::DeadlockDetected).  Only invoked on monitors reporting
  /// blocked_tasks() > 0.
  virtual void report_deadlock() = 0;
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1) : rng_(seed) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }
  util::Rng& rng() { return rng_; }

  /// Schedules `callback` at absolute simulated time `t` (>= now).
  EventQueue::Handle at(Time t, EventQueue::Callback callback);

  /// Schedules `callback` after a relative delay (clamped to >= 0).
  EventQueue::Handle after(Time delay, EventQueue::Callback callback);

  /// Daemon variants of at()/after(): the event fires normally but does not
  /// count as pending progress.  Use these for self-rescheduling background
  /// machinery (load flutter, fault injection) that would otherwise mask
  /// deadlocks by keeping the queue busy forever.
  EventQueue::Handle daemon_at(Time t, EventQueue::Callback callback);
  EventQueue::Handle daemon_after(Time delay, EventQueue::Callback callback);

  /// Takes ownership of a top-level task and starts it at the current time.
  /// Typically called once per simulated rank before run().
  void spawn(Task task);

  /// Runs until the event queue drains, or -- when tasks were spawned --
  /// until every spawned task completed (daemon-style recurring events such
  /// as load flutter do not keep the simulation alive).  Throws the first
  /// exception that escaped a spawned task; DeadlockError if the queue
  /// drained while tasks were still suspended, or if the time limit was
  /// exceeded (the deadlock signal when daemon events keep the queue busy).
  void run();

  /// Aborts run() with DeadlockError once simulated time passes `limit`.
  void set_time_limit(Time limit) { time_limit_ = limit; }
  Time time_limit() const { return time_limit_; }

  /// Per-simulation deadline watchdog: run() throws TimeoutError once this
  /// many wall-clock seconds elapse (0 disables).  Simulations are pure
  /// event loops, so a hung run is an unbounded event churn -- the check
  /// runs between events and converts the hang into a catchable error that
  /// sweep executors record as a `timeout` cell.  Note this watches *wall*
  /// time: runs near the deadline are not reproducible, so size it orders
  /// of magnitude above a healthy run.
  void set_wall_deadline(double seconds) { wall_deadline_ = seconds; }
  double wall_deadline() const { return wall_deadline_; }

  /// Number of spawned tasks that have not completed.
  std::size_t unfinished_tasks() const;

  /// Registers/unregisters a quiescence monitor.  While at least one monitor
  /// is registered, run() checks after every dispatched event whether the
  /// simulation has gone globally idle with tasks still suspended -- no
  /// pending progress event, every monitor quiescent, and every unfinished
  /// task accounted for as blocked -- and if so asks a blocked monitor to
  /// report the deadlock (which throws).  Monitors must outlive run() or be
  /// removed first.
  void add_quiescence_monitor(QuiescenceMonitor* monitor);
  void remove_quiescence_monitor(QuiescenceMonitor* monitor);

  /// Live non-daemon events still scheduled (see EventQueue::progress_size).
  std::size_t pending_progress_events() const {
    return queue_.progress_size();
  }

  /// Awaitable that suspends the calling coroutine for `delay` seconds.
  auto sleep(Time delay) {
    struct Awaiter {
      Engine& engine;
      Time delay;
      bool await_ready() const noexcept { return delay <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.after(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

  /// Total events dispatched so far (for performance reporting).
  std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  /// Throws (via QuiescenceMonitor::report_deadlock) when the simulation is
  /// provably deadlocked; no-op otherwise.  Cheap unless progress drained.
  void check_quiescence();

  EventQueue queue_;
  std::vector<Task> tasks_;
  std::vector<QuiescenceMonitor*> monitors_;
  /// Set by any spawned task's promise when an exception escapes it (see
  /// Task::set_failure_flag); lets run() check for failure in O(1).
  bool task_failed_ = false;
  Time now_ = 0.0;
  Time time_limit_ = 1.0e9;  // ~30 simulated years: any real run is shorter
  double wall_deadline_ = 0.0;
  std::uint64_t dispatched_ = 0;
  util::Rng rng_;
};

/// Adapts a callback-style asynchronous operation into an awaitable.  The
/// `start` functor receives a resume thunk and must arrange for it to be
/// invoked exactly once, later, by the engine.
template <typename Start>
class AwaitCallback {
 public:
  explicit AwaitCallback(Start start) : start_(std::move(start)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    start_([h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Start start_;
};

template <typename Start>
AwaitCallback<Start> make_awaitable(Start start) {
  return AwaitCallback<Start>(std::move(start));
}

}  // namespace psk::sim
