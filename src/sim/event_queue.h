// Cancellable discrete-event priority queue.
//
// Events at equal timestamps fire in schedule order (stable), which keeps the
// whole simulation deterministic.
//
// Every event is either a *progress* event (the default: something that can
// move the simulated workload forward -- a transfer completing, a compute
// block finishing, a timer) or a *daemon* event (self-rescheduling background
// machinery such as load flutter or fault injection that keeps the queue
// non-empty forever without ever unblocking a task).  The queue tracks the
// two classes separately so the engine can recognise global quiescence --
// "no progress event pending" -- even while daemons keep ticking.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace psk::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Cheap copyable handle for cancelling a scheduled event.  A
  /// default-constructed handle is inert.
  class Handle {
   public:
    Handle() = default;

    /// Prevents the event from firing; safe to call repeatedly and after the
    /// event has already fired.
    void cancel();

    /// True while the event is scheduled and not cancelled or fired.
    bool pending() const {
      const auto s = state_.lock();
      return s && !s->cancelled && !s->fired;
    }

   private:
    friend class EventQueue;
    struct State {
      Callback callback;
      EventQueue* owner = nullptr;
      bool cancelled = false;
      bool fired = false;
      bool daemon = false;
    };
    explicit Handle(std::weak_ptr<State> state) : state_(std::move(state)) {}
    std::weak_ptr<State> state_;
  };

  /// Schedules `callback` at absolute time `t`.  Daemon events never count
  /// toward progress_size().
  Handle schedule(Time t, Callback callback, bool daemon = false);

  /// True when no live (non-cancelled) event remains.
  bool empty() const { return progress_live_ + daemon_live_ == 0; }

  std::size_t size() const { return progress_live_ + daemon_live_; }

  /// Live non-daemon events: the ones that can move the workload forward.
  /// Zero while tasks are still suspended means the simulation is
  /// quiescent -- nothing pending can ever resume them.
  std::size_t progress_size() const { return progress_live_; }

  /// Live daemon (background) events.
  std::size_t daemon_size() const { return daemon_live_; }

  /// Pops the earliest live event.  Returns false when the queue is empty;
  /// otherwise stores the event time in `t` and its callback in `callback`.
  bool pop(Time& t, Callback& callback);

 private:
  friend class Handle;

  /// Called by Handle::cancel exactly once per live event so the per-class
  /// live counters stay exact the moment an event is cancelled (pop() then
  /// skips the dead heap entry without touching the counters again).
  void on_cancel(bool daemon) {
    if (daemon) {
      --daemon_live_;
    } else {
      --progress_live_;
    }
  }

  struct Entry {
    Time t;
    std::uint64_t seq;
    std::shared_ptr<Handle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t progress_live_ = 0;
  std::size_t daemon_live_ = 0;
};

inline void EventQueue::Handle::cancel() {
  if (auto s = state_.lock()) {
    if (!s->cancelled && !s->fired) {
      s->cancelled = true;
      if (s->owner != nullptr) s->owner->on_cancel(s->daemon);
    }
  }
}

}  // namespace psk::sim
