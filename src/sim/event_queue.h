// Cancellable discrete-event priority queue.
//
// Events at equal timestamps fire in schedule order (stable), which keeps the
// whole simulation deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace psk::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Cheap copyable handle for cancelling a scheduled event.  A
  /// default-constructed handle is inert.
  class Handle {
   public:
    Handle() = default;

    /// Prevents the event from firing; safe to call repeatedly and after the
    /// event has already fired.
    void cancel() {
      if (auto s = state_.lock()) s->cancelled = true;
    }

    /// True while the event is scheduled and not cancelled or fired.
    bool pending() const {
      const auto s = state_.lock();
      return s && !s->cancelled && !s->fired;
    }

   private:
    friend class EventQueue;
    struct State {
      Callback callback;
      bool cancelled = false;
      bool fired = false;
    };
    explicit Handle(std::weak_ptr<State> state) : state_(std::move(state)) {}
    std::weak_ptr<State> state_;
  };

  /// Schedules `callback` at absolute time `t`.
  Handle schedule(Time t, Callback callback);

  /// True when no live (non-cancelled) event remains.
  bool empty() const { return live_ == 0; }

  std::size_t size() const { return live_; }

  /// Pops the earliest live event.  Returns false when the queue is empty;
  /// otherwise stores the event time in `t` and its callback in `callback`.
  bool pop(Time& t, Callback& callback);

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    std::shared_ptr<Handle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace psk::sim
