// Cancellable discrete-event queue: slab-allocated records behind a
// ladder/heap hybrid schedule.
//
// Events at equal timestamps fire in schedule order (stable), which keeps the
// whole simulation deterministic.
//
// Every event is either a *progress* event (the default: something that can
// move the simulated workload forward -- a transfer completing, a compute
// block finishing, a timer) or a *daemon* event (self-rescheduling background
// machinery such as load flutter or fault injection that keeps the queue
// non-empty forever without ever unblocking a task).  The queue tracks the
// two classes separately so the engine can recognise global quiescence --
// "no progress event pending" -- even while daemons keep ticking.
//
// Storage layout (the simulator's hottest path):
//
//  * Event records live in a slab: a slot-indexed vector of callbacks with a
//    free list.  schedule() performs no per-event heap allocation beyond the
//    callback's own capture storage, and Handle is a plain {slot, generation}
//    pair -- no shared_ptr, no atomic refcounts.
//  * The schedule itself is a calendar ("ladder") window of kBuckets
//    time-sliced buckets holding 24-byte POD keys, backed by a binary heap
//    for events outside the window (sparse far-future timers, or events
//    scheduled below the window cursor).  Events landing inside the window
//    are appended in O(1) and each bucket is sorted once when the cursor
//    reaches it; pop() compares the window head with the heap head, so the
//    global (time, seq) FIFO order is exactly the one a single binary heap
//    would produce.
//  * cancel() frees the slot (and the callback's captures) immediately and
//    leaves a dead 24-byte key behind; dead keys are skipped lazily on pop
//    and the structure compacts itself whenever dead keys outnumber live
//    ones, so cancel-heavy workloads (per-wait watchdog timers) keep queue
//    memory proportional to the *live* event count.
//
// Lifetime: handles are only meaningful while their EventQueue is alive;
// cancel()/pending() on a handle that outlived its queue is undefined (every
// in-tree user keeps handles inside objects owned by the engine).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"

namespace psk::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Cheap copyable handle for cancelling a scheduled event.  A
  /// default-constructed handle is inert.
  class Handle {
   public:
    Handle() = default;

    /// Prevents the event from firing; safe to call repeatedly and after the
    /// event has already fired.
    void cancel();

    /// True while the event is scheduled and not cancelled or fired.
    bool pending() const;

   private:
    friend class EventQueue;
    Handle(EventQueue* owner, std::uint32_t slot, std::uint32_t generation)
        : owner_(owner), slot_(slot), generation_(generation) {}
    EventQueue* owner_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
  };

  EventQueue() = default;
  // Handles hold a pointer back to the queue, so the queue must stay put.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `callback` at absolute time `t`.  Daemon events never count
  /// toward progress_size().  Defined inline below: one call per simulated
  /// event makes this (with pop) the hottest function in the simulator.
  Handle schedule(Time t, Callback callback, bool daemon = false);

  /// True when no live (non-cancelled) event remains.
  bool empty() const { return progress_live_ + daemon_live_ == 0; }

  std::size_t size() const { return progress_live_ + daemon_live_; }

  /// Live non-daemon events: the ones that can move the workload forward.
  /// Zero while tasks are still suspended means the simulation is
  /// quiescent -- nothing pending can ever resume them.
  std::size_t progress_size() const { return progress_live_; }

  /// Live daemon (background) events.
  std::size_t daemon_size() const { return daemon_live_; }

  /// Pops the earliest live event.  Returns false when the queue is empty;
  /// otherwise stores the event time in `t` and moves the callback out of
  /// its slab slot into `callback` (no copy, no refcount traffic).
  bool pop(Time& t, Callback& callback);

  /// Introspection for tests and tuning: keys still held by the schedule
  /// structures (live + not-yet-reclaimed dead) and how often the dead-key
  /// compactor ran.  Bounded-memory guarantee: queued_keys() never exceeds
  /// 2 * live + O(1) once compaction has a chance to run.
  std::size_t queued_keys() const { return queued_keys_; }
  std::size_t dead_keys() const { return dead_keys_; }
  std::size_t compactions() const { return compactions_; }

 private:
  friend class Handle;

  /// 24-byte POD ordering key; the callback stays in the slab.
  struct Key {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct KeyLess {
    bool operator()(const Key& a, const Key& b) const {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };
  /// Max-comparator for the min-heap on std::push_heap/pop_heap.
  struct KeyLater {
    bool operator()(const Key& a, const Key& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;
    bool live = false;
    bool daemon = false;
  };

  // The slab grows in fixed chunks with stable addresses: growing a flat
  // vector would move every stored std::function on reallocation, which
  // shows up directly in event throughput on cold queues.
  static constexpr std::size_t kSlabChunkShift = 8;
  static constexpr std::size_t kSlabChunkSize = 1u << kSlabChunkShift;
  static constexpr std::size_t kSlabChunkMask = kSlabChunkSize - 1;

  // Calendar window geometry.  256 buckets keeps the per-window metadata in
  // one page while still cutting per-bucket sorts to ~n/256 keys.
  static constexpr std::size_t kBuckets = 256;
  // Below this many heap keys, pop straight from the heap instead of
  // building a window (sparse far-future events: heap fallback).
  static constexpr std::size_t kRebuildThreshold = 64;
  // Cap on keys moved per window rebuild, bounding rebuild latency.
  static constexpr std::size_t kWindowCap = 4096;
  // Compact once at least this many dead keys exist AND they outnumber
  // live ones.
  static constexpr std::size_t kCompactMin = 64;

  Slot& slot_at(std::uint32_t index) {
    return chunks_[index >> kSlabChunkShift][index & kSlabChunkMask];
  }
  const Slot& slot_at(std::uint32_t index) const {
    return chunks_[index >> kSlabChunkShift][index & kSlabChunkMask];
  }

  bool stale(const Key& k) const {
    return slot_at(k.slot).generation != k.generation;
  }

  std::uint32_t allocate_slot();
  void free_slot(std::uint32_t slot);
  void cancel_slot(std::uint32_t slot, std::uint32_t generation);
  bool slot_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slot_count_ && slot_at(slot).generation == generation &&
           slot_at(slot).live;
  }

  std::size_t bucket_of(Time t) const {
    // Multiply by the cached reciprocal: one FP divide per event is
    // measurable at event-queue rates.
    std::size_t b = static_cast<std::size_t>((t - epoch_) * inv_width_);
    return b < kBuckets ? b : kBuckets - 1;  // FP edge at the horizon
  }

  /// Bucket append that front-loads capacity: growing ~100 bucket vectors
  /// through the default 1-2-4-... doubling ladder costs hundreds of
  /// reallocations per cold window.
  static void push_bucket(std::vector<Key>& bucket, const Key& key) {
    if (bucket.size() == bucket.capacity()) {
      bucket.reserve(bucket.empty() ? 32 : 2 * bucket.capacity());
    }
    bucket.push_back(key);
  }

  void set_width(double width) {
    width_ = width;
    inv_width_ = 1.0 / width;
  }

  /// Next live key in the window, advancing and sorting buckets lazily;
  /// null when the window is drained (deactivates it).
  const Key* peek_near();
  /// Discards stale heap tops; afterwards far_ is empty or its top is live.
  void settle_far_top();
  /// Builds a fresh window around the heap's smallest live keys.
  void rebuild_window();
  /// Drops every dead key from the heap and the window buckets.
  void compact();

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;

  std::vector<Key> buckets_[kBuckets];
  bool window_active_ = false;
  bool cur_sorted_ = false;
  std::size_t cur_bucket_ = 0;
  std::size_t cur_pos_ = 0;
  Time epoch_ = 0;
  Time horizon_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;

  /// Binary min-heap (via KeyLater) of keys outside the window.
  std::vector<Key> far_;

  std::uint64_t next_seq_ = 0;
  std::size_t progress_live_ = 0;
  std::size_t daemon_live_ = 0;
  std::size_t queued_keys_ = 0;
  std::size_t dead_keys_ = 0;
  std::size_t compactions_ = 0;
};

inline void EventQueue::Handle::cancel() {
  if (owner_ != nullptr) owner_->cancel_slot(slot_, generation_);
}

inline bool EventQueue::Handle::pending() const {
  return owner_ != nullptr && owner_->slot_pending(slot_, generation_);
}

// ---------------------------------------------------------------- hot path
// schedule() and pop() run once per simulated event; they are defined here
// so every call site compiles them inline.  The cold paths (window rebuild,
// cancellation, compaction) stay in event_queue.cc.

inline std::uint32_t EventQueue::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if ((slot_count_ >> kSlabChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Slot[]>(kSlabChunkSize));
  }
  return slot_count_++;
}

inline void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slot_at(slot);
  ++s.generation;  // invalidates every outstanding key and handle
  s.live = false;
  free_slots_.push_back(slot);
}

inline EventQueue::Handle EventQueue::schedule(Time t, Callback callback,
                                               bool daemon) {
  const std::uint32_t slot = allocate_slot();
  Slot& s = slot_at(slot);
  s.callback = std::move(callback);
  s.live = true;
  s.daemon = daemon;
  const Key key{t, next_seq_++, slot, s.generation};

  if (!window_active_) {
    // Cold queue: open a window at this event's time.  The width is carried
    // over from the last rebuild (or the initial guess); a bad guess only
    // means more keys share a bucket or spill to the heap, never a wrong
    // order.
    window_active_ = true;
    cur_bucket_ = 0;
    cur_pos_ = 0;
    cur_sorted_ = false;
    epoch_ = t;
    if (!(width_ > 0) || width_ > 1e300) set_width(1.0);
    horizon_ = epoch_ + width_ * static_cast<double>(kBuckets);
  }

  bool placed = false;
  if (t >= epoch_ && t < horizon_) {
    const std::size_t b = bucket_of(t);
    if (b > cur_bucket_) {
      push_bucket(buckets_[b], key);
      placed = true;
    } else if (b == cur_bucket_) {
      std::vector<Key>& bucket = buckets_[b];
      if (cur_sorted_) {
        // Keep the consumed-prefix invariant: insert into the still-pending
        // sorted tail.  (t, seq) is unique, so the position is unambiguous.
        const auto pos =
            std::upper_bound(bucket.begin() +
                                 static_cast<std::ptrdiff_t>(cur_pos_),
                             bucket.end(), key, KeyLess{});
        bucket.insert(pos, key);
      } else {
        bucket.push_back(key);
      }
      placed = true;
    }
    // b < cur_bucket_: the cursor already passed this slice; the heap path
    // below still orders it correctly against the window head.
  }
  if (!placed) {
    far_.push_back(key);
    std::push_heap(far_.begin(), far_.end(), KeyLater{});
  }
  ++queued_keys_;

  if (daemon) {
    ++daemon_live_;
  } else {
    ++progress_live_;
  }
  return Handle{this, slot, key.generation};
}

inline const EventQueue::Key* EventQueue::peek_near() {
  while (window_active_) {
    std::vector<Key>& bucket = buckets_[cur_bucket_];
    if (!cur_sorted_) {
      std::sort(bucket.begin() + static_cast<std::ptrdiff_t>(cur_pos_),
                bucket.end(), KeyLess{});
      cur_sorted_ = true;
    }
    while (cur_pos_ < bucket.size() && stale(bucket[cur_pos_])) {
      ++cur_pos_;
      --queued_keys_;
      --dead_keys_;
    }
    if (cur_pos_ < bucket.size()) return &bucket[cur_pos_];
    bucket.clear();  // keeps capacity for the next window
    cur_pos_ = 0;
    cur_sorted_ = false;
    if (++cur_bucket_ == kBuckets) window_active_ = false;
  }
  return nullptr;
}

inline void EventQueue::settle_far_top() {
  while (!far_.empty() && stale(far_.front())) {
    std::pop_heap(far_.begin(), far_.end(), KeyLater{});
    far_.pop_back();
    --queued_keys_;
    --dead_keys_;
  }
}

inline bool EventQueue::pop(Time& t, Callback& callback) {
  if (!window_active_ && far_.size() >= kRebuildThreshold) {
    rebuild_window();
  }
  const Key* near = peek_near();
  settle_far_top();

  bool use_far;
  if (near != nullptr && !far_.empty()) {
    use_far = KeyLess{}(far_.front(), *near);
  } else if (near != nullptr) {
    use_far = false;
  } else if (!far_.empty()) {
    // Sparse tail (or keys below the window cursor): plain heap fallback.
    use_far = true;
  } else {
    return false;
  }

  Key key;
  if (use_far) {
    key = far_.front();
    std::pop_heap(far_.begin(), far_.end(), KeyLater{});
    far_.pop_back();
  } else {
    key = *near;
    ++cur_pos_;
  }
  --queued_keys_;

  Slot& slot = slot_at(key.slot);
  // Hold the callback in a local until the queue is consistent again: the
  // assignment to `callback` below destroys whatever the caller left there,
  // and that destructor may re-enter the queue (schedule, cancel, compact).
  Callback fired = std::move(slot.callback);
  if (slot.daemon) {
    --daemon_live_;
  } else {
    --progress_live_;
  }
  free_slot(key.slot);
  t = key.t;
  callback = std::move(fired);
  return true;
}

}  // namespace psk::sim
