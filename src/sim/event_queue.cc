#include "sim/event_queue.h"

#include <utility>

namespace psk::sim {

EventQueue::Handle EventQueue::schedule(Time t, Callback callback,
                                        bool daemon) {
  auto state = std::make_shared<Handle::State>();
  state->callback = std::move(callback);
  state->owner = this;
  state->daemon = daemon;
  Handle handle{std::weak_ptr<Handle::State>(state)};
  heap_.push(Entry{t, next_seq_++, std::move(state)});
  if (daemon) {
    ++daemon_live_;
  } else {
    ++progress_live_;
  }
  return handle;
}

bool EventQueue::pop(Time& t, Callback& callback) {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    // Cancelled entries already left the live counters in Handle::cancel;
    // their heap slots are reclaimed lazily here.
    if (top.state->cancelled) continue;
    top.state->fired = true;
    if (top.state->daemon) {
      --daemon_live_;
    } else {
      --progress_live_;
    }
    t = top.t;
    callback = std::move(top.state->callback);
    return true;
  }
  return false;
}

}  // namespace psk::sim
