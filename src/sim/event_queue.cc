// Cold paths of the event queue: cancellation, window rebuild, and dead-key
// compaction.  The per-event hot paths (schedule/pop) are inline in
// event_queue.h.
#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace psk::sim {

namespace {

/// Window width when every sampled key carries the same timestamp: any
/// positive value works (all keys land in bucket 0), it only has to keep
/// epoch + width * kBuckets finite and strictly above epoch.
double degenerate_width(Time epoch) {
  const double scaled = std::abs(epoch) * 1e-9;
  return scaled > 1e-9 ? scaled : 1e-9;
}

}  // namespace

void EventQueue::rebuild_window() {
  // Pull the globally smallest live keys out of the heap; heap pops come
  // out in ascending (t, seq) order, so `scratch` ends up sorted.
  std::vector<Key> scratch;
  scratch.reserve(std::min(far_.size(), kWindowCap));
  while (!far_.empty() && scratch.size() < kWindowCap) {
    std::pop_heap(far_.begin(), far_.end(), KeyLater{});
    const Key key = far_.back();
    far_.pop_back();
    if (stale(key)) {
      --queued_keys_;
      --dead_keys_;
      continue;
    }
    scratch.push_back(key);
  }
  if (scratch.empty()) return;  // heap held only dead keys

  epoch_ = scratch.front().t;
  const double span = scratch.back().t - epoch_;
  // kBuckets - 1 (not kBuckets) so the largest sampled key stays strictly
  // below the horizon and maps into the last bucket.
  set_width(span > 0 ? span / static_cast<double>(kBuckets - 1)
                     : degenerate_width(epoch_));
  horizon_ = epoch_ + width_ * static_cast<double>(kBuckets);

  for (const Key& key : scratch) {
    push_bucket(buckets_[bucket_of(key.t)], key);
  }
  // Opportunistically move heap keys that also fall inside the new window
  // (bounded; any leftovers are still ordered correctly by the pop-time
  // window-vs-heap comparison).
  std::size_t moved = 0;
  while (!far_.empty() && moved < kWindowCap) {
    if (stale(far_.front())) {
      settle_far_top();
      continue;
    }
    if (!(far_.front().t < horizon_)) break;
    const Key key = far_.front();
    std::pop_heap(far_.begin(), far_.end(), KeyLater{});
    far_.pop_back();
    push_bucket(buckets_[bucket_of(key.t)], key);
    ++moved;
  }

  window_active_ = true;
  cur_bucket_ = 0;
  cur_pos_ = 0;
  cur_sorted_ = false;
}

void EventQueue::cancel_slot(std::uint32_t slot_index,
                             std::uint32_t generation) {
  if (slot_index >= slot_count_) return;
  Slot& slot = slot_at(slot_index);
  if (slot.generation != generation || !slot.live) return;

  // Move the callback out first: destroying its captures may re-enter the
  // queue (cancel other handles, schedule new events, even grow `slots_`).
  Callback dead = std::move(slot.callback);
  slot.callback = nullptr;
  const bool daemon = slot.daemon;
  free_slot(slot_index);
  if (daemon) {
    --daemon_live_;
  } else {
    --progress_live_;
  }
  ++dead_keys_;
  if (dead_keys_ >= kCompactMin && dead_keys_ * 2 > queued_keys_) {
    compact();
  }
  // `dead` destroyed here, after the queue is back in a consistent state.
}

void EventQueue::compact() {
  ++compactions_;
  const auto is_stale = [this](const Key& k) { return stale(k); };

  std::erase_if(far_, is_stale);
  std::make_heap(far_.begin(), far_.end(), KeyLater{});

  for (std::size_t b = 0; b < kBuckets; ++b) {
    std::vector<Key>& bucket = buckets_[b];
    if (bucket.empty()) continue;
    if (window_active_ && b == cur_bucket_ && cur_pos_ > 0) {
      // Drop the consumed prefix too; the pending tail keeps its order
      // (erase_if / remove_if are stable).
      bucket.erase(bucket.begin(),
                   bucket.begin() + static_cast<std::ptrdiff_t>(cur_pos_));
      cur_pos_ = 0;
    }
    std::erase_if(bucket, is_stale);
  }

  // The consumed prefix of the current bucket was dropped above and earlier
  // buckets are cleared as the cursor passes them, so every key still held
  // is live and pending.
  queued_keys_ = far_.size();
  for (const std::vector<Key>& bucket : buckets_) {
    queued_keys_ += bucket.size();
  }
  dead_keys_ = 0;
}

}  // namespace psk::sim
