#include "sim/event_queue.h"

#include <utility>

namespace psk::sim {

EventQueue::Handle EventQueue::schedule(Time t, Callback callback) {
  auto state = std::make_shared<Handle::State>();
  state->callback = std::move(callback);
  Handle handle{std::weak_ptr<Handle::State>(state)};
  heap_.push(Entry{t, next_seq_++, std::move(state)});
  ++live_;
  return handle;
}

bool EventQueue::pop(Time& t, Callback& callback) {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (top.state->cancelled) {
      --live_;  // live_ counts heap entries; cancelled ones leave here.
      continue;
    }
    top.state->fired = true;
    --live_;
    t = top.t;
    callback = std::move(top.state->callback);
    return true;
  }
  return false;
}

}  // namespace psk::sim
