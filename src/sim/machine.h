// Simulated cluster: nodes + network + one engine, built from a config.
//
// The Machine is the only layer that injects measurement noise (jitter) so
// that CpuNode and Network stay exactly deterministic primitives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/time.h"

namespace psk::sim {

struct ClusterConfig {
  int nodes = 4;
  int cores_per_node = 2;
  /// Work-seconds per wall-second per core; 1.0 = reference CPU.
  double cpu_speed = 1.0;
  /// Per-direction link bandwidth in bytes/second.  Default: effective
  /// MPICH-over-GigE payload rate of the paper's era.
  double link_bandwidth_bps = 60.0e6;
  /// One-way small-message latency (MPICH over GigE era: ~50us).
  Time latency = 50e-6;
  /// Intra-node (shared-memory) channel.
  double local_bandwidth_bps = 1.0e9;
  Time local_latency = 2e-6;
  /// Per-node memory-bus bandwidth in bytes/second (PC2100-era dual
  /// channel).  Jobs declare bytes touched per work-second; aggregate
  /// demand beyond this throttles memory-dependent jobs.
  double memory_bandwidth_bps = 6.0e9;
  /// Multiplicative uniform jitter amplitudes (0 = perfectly repeatable).
  double cpu_jitter = 0.0;
  double net_jitter = 0.0;
  std::uint64_t seed = 1;
  /// Interconnect shape (see sim/topology.h).  The default crossbar is the
  /// paper's testbed and keeps results byte-identical to earlier versions;
  /// fat-tree and dragonfly enable the incremental flow core for scale.
  TopologySpec topology{};

  /// The paper's testbed: dual-CPU Xeon nodes on switched GigE (we size it
  /// to the 4 nodes actually used in the experiments).
  static ClusterConfig paper_testbed(int nodes = 4);
};

class Machine {
 public:
  explicit Machine(const ClusterConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Engine& engine() { return engine_; }
  const ClusterConfig& config() const { return config_; }
  int node_count() const { return config_.nodes; }
  CpuNode& node(int index);
  Network& network() { return network_; }

  /// Attaches one observability recorder to the whole cluster: every node
  /// and the network resolve their instrument handles from it.  Call before
  /// the run starts; pass nullptr to detach.  The recorder must outlive the
  /// machine (or the detach).
  void attach_obs(obs::Recorder* recorder);
  obs::Recorder* obs() { return obs_; }

  /// Fault hooks (see psk::fault for scheduling).  A crashed node stops
  /// computing and its link carries no traffic until restored; state is not
  /// lost -- jobs and in-flight messages resume where they paused
  /// (rollback/re-execution cost is the checkpoint model's job).  Effects
  /// nest with the global stall below (a crash during a checkpoint freeze
  /// keeps the node down until both clear).
  void crash_node(int index);
  void restore_node(int index);
  bool node_up(int index) const;

  /// Coordinated freeze of every node's CPUs (the blocking-checkpoint and
  /// rollback model): computation pauses everywhere, in-flight messages
  /// keep draining.  Calls nest.
  void stall_all_nodes();
  void resume_all_nodes();

  /// Computation of `work` work-seconds on a node (cpu jitter applied).
  /// `mem_bytes` is the memory traffic of the phase (0 = cache resident).
  void compute(int node, double work, std::function<void()> on_complete,
               double mem_bytes = 0.0);

  /// Message transfer (net jitter applied to the byte count).
  void transfer(int src, int dst, std::uint64_t bytes,
                std::function<void()> on_complete);

  /// Awaitable variants for coroutine code.
  auto compute_await(int node, double work, double mem_bytes = 0.0) {
    return make_awaitable(
        [this, node, work, mem_bytes](std::function<void()> resume) {
          compute(node, work, std::move(resume), mem_bytes);
        });
  }
  auto transfer_await(int src, int dst, std::uint64_t bytes) {
    return make_awaitable(
        [this, src, dst, bytes](std::function<void()> resume) {
          transfer(src, dst, bytes, std::move(resume));
        });
  }

 private:
  ClusterConfig config_;
  Engine engine_;
  std::vector<CpuNode> nodes_;
  Network network_;
  std::vector<int> crash_depth_;
  obs::Recorder* obs_ = nullptr;
};

}  // namespace psk::sim
