#include "sim/engine.h"

#include <chrono>
#include <string>

#include "util/error.h"

namespace psk::sim {

EventQueue::Handle Engine::at(Time t, EventQueue::Callback callback) {
  return queue_.schedule(t < now_ ? now_ : t, std::move(callback));
}

EventQueue::Handle Engine::after(Time delay, EventQueue::Callback callback) {
  return at(now_ + (delay > 0 ? delay : 0), std::move(callback));
}

EventQueue::Handle Engine::daemon_at(Time t, EventQueue::Callback callback) {
  return queue_.schedule(t < now_ ? now_ : t, std::move(callback),
                         /*daemon=*/true);
}

EventQueue::Handle Engine::daemon_after(Time delay,
                                        EventQueue::Callback callback) {
  return daemon_at(now_ + (delay > 0 ? delay : 0), std::move(callback));
}

void Engine::add_quiescence_monitor(QuiescenceMonitor* monitor) {
  util::require(monitor != nullptr, "Engine: null quiescence monitor");
  monitors_.push_back(monitor);
}

void Engine::remove_quiescence_monitor(QuiescenceMonitor* monitor) {
  for (auto it = monitors_.begin(); it != monitors_.end(); ++it) {
    if (*it == monitor) {
      monitors_.erase(it);
      return;
    }
  }
}

void Engine::spawn(Task task) {
  util::require(task.valid(), "Engine::spawn: invalid task");
  task.set_failure_flag(&task_failed_);
  tasks_.push_back(std::move(task));
  // Defer the start so every rank begins at a well-defined event, in spawn
  // order, rather than synchronously inside the caller.  `tasks_` may
  // reallocate on later spawns, so capture by index instead of pointer.
  const std::size_t index = tasks_.size() - 1;
  at(now_, [this, index] { tasks_[index].start(); });
}

void Engine::run() {
  // Wall-clock watchdog state.  The check costs one branch per event in the
  // common (disabled) case and one clock read per kCheckStride events when
  // armed, so even hung simulations notice the deadline promptly.
  constexpr std::uint64_t kCheckStride = 1024;
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t next_check = dispatched_ + kCheckStride;

  Time t = 0.0;
  EventQueue::Callback callback;
  while (queue_.pop(t, callback)) {
    if (wall_deadline_ > 0 && dispatched_ >= next_check) {
      next_check = dispatched_ + kCheckStride;
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - wall_start;
      if (elapsed.count() > wall_deadline_) {
        throw TimeoutError(
            "simulation wall deadline exceeded (" +
            std::to_string(wall_deadline_) + " s wall) at t=" +
            std::to_string(now_) + " with " +
            std::to_string(unfinished_tasks()) + " tasks unfinished");
      }
    }
    if (t > time_limit_) {
      throw DeadlockError(
          "simulation time limit exceeded (" + std::to_string(time_limit_) +
          " s) with " + std::to_string(unfinished_tasks()) +
          " tasks unfinished; likely deadlock under daemon events");
    }
    now_ = t;
    ++dispatched_;
    callback();
    callback = nullptr;
    // Fail fast when a task died with an exception: keeping the simulation
    // running would likely just end in a misleading deadlock report.  The
    // flag is raised by the failing task's promise, so the common case is
    // one branch instead of a scan over every task per event.
    if (task_failed_) {
      for (const Task& task : tasks_) {
        if (task.failed()) task.rethrow_if_failed();
      }
    }
    // Spawned work finished: stop even if daemon-style recurring events
    // (load flutter, bandwidth flutter) are still queued.
    if (!tasks_.empty() && unfinished_tasks() == 0) return;
    // Deterministic deadlock detection: fires at the simulated instant the
    // last progress event drained, long before the time limit.
    if (!monitors_.empty()) check_quiescence();
  }
  std::size_t stuck = unfinished_tasks();
  if (stuck > 0) {
    // Give registered monitors first shot at a structured report; fall back
    // to the legacy coarse error when none claims the blocked tasks.
    check_quiescence();
    throw DeadlockError("simulation deadlock: " + std::to_string(stuck) +
                        " of " + std::to_string(tasks_.size()) +
                        " tasks still suspended at t=" + std::to_string(now_));
  }
}

void Engine::check_quiescence() {
  if (monitors_.empty() || tasks_.empty()) return;
  if (queue_.progress_size() > 0) return;  // something can still move
  const std::size_t unfinished = unfinished_tasks();
  if (unfinished == 0) return;
  std::size_t blocked = 0;
  for (QuiescenceMonitor* monitor : monitors_) {
    if (!monitor->quiescent()) return;  // in-flight work can still complete
    blocked += monitor->blocked_tasks();
  }
  // Only declare deadlock when every unfinished task is accounted for as
  // blocked; tasks the monitors do not understand (e.g. crash-stalled
  // compute) keep the benefit of the doubt until the queue truly drains.
  if (blocked < unfinished) return;
  for (QuiescenceMonitor* monitor : monitors_) {
    if (monitor->blocked_tasks() > 0) monitor->report_deadlock();
  }
}

std::size_t Engine::unfinished_tasks() const {
  std::size_t n = 0;
  for (const Task& task : tasks_) {
    if (!task.done()) ++n;
  }
  return n;
}

}  // namespace psk::sim
