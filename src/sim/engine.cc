#include "sim/engine.h"

#include <string>

#include "util/error.h"

namespace psk::sim {

EventQueue::Handle Engine::at(Time t, EventQueue::Callback callback) {
  return queue_.schedule(t < now_ ? now_ : t, std::move(callback));
}

EventQueue::Handle Engine::after(Time delay, EventQueue::Callback callback) {
  return at(now_ + (delay > 0 ? delay : 0), std::move(callback));
}

void Engine::spawn(Task task) {
  util::require(task.valid(), "Engine::spawn: invalid task");
  task.set_failure_flag(&task_failed_);
  tasks_.push_back(std::move(task));
  // Defer the start so every rank begins at a well-defined event, in spawn
  // order, rather than synchronously inside the caller.  `tasks_` may
  // reallocate on later spawns, so capture by index instead of pointer.
  const std::size_t index = tasks_.size() - 1;
  at(now_, [this, index] { tasks_[index].start(); });
}

void Engine::run() {
  Time t = 0.0;
  EventQueue::Callback callback;
  while (queue_.pop(t, callback)) {
    if (t > time_limit_) {
      throw DeadlockError(
          "simulation time limit exceeded (" + std::to_string(time_limit_) +
          " s) with " + std::to_string(unfinished_tasks()) +
          " tasks unfinished; likely deadlock under daemon events");
    }
    now_ = t;
    ++dispatched_;
    callback();
    callback = nullptr;
    // Fail fast when a task died with an exception: keeping the simulation
    // running would likely just end in a misleading deadlock report.  The
    // flag is raised by the failing task's promise, so the common case is
    // one branch instead of a scan over every task per event.
    if (task_failed_) {
      for (const Task& task : tasks_) {
        if (task.failed()) task.rethrow_if_failed();
      }
    }
    // Spawned work finished: stop even if daemon-style recurring events
    // (load flutter, bandwidth flutter) are still queued.
    if (!tasks_.empty() && unfinished_tasks() == 0) return;
  }
  std::size_t stuck = unfinished_tasks();
  if (stuck > 0) {
    throw DeadlockError("simulation deadlock: " + std::to_string(stuck) +
                        " of " + std::to_string(tasks_.size()) +
                        " tasks still suspended at t=" + std::to_string(now_));
  }
}

std::size_t Engine::unfinished_tasks() const {
  std::size_t n = 0;
  for (const Task& task : tasks_) {
    if (!task.done()) ++n;
  }
  return n;
}

}  // namespace psk::sim
