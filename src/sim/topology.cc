#include "sim/topology.h"

#include <charconv>
#include <tuple>
#include <utility>

#include "util/error.h"

namespace psk::sim {

namespace {

constexpr const char* kValidForms =
    "crossbar | fattree:<down,up> | dragonfly:<groups,routers>";

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
  throw ConfigError("bad topology spec \"" + text + "\": " + why +
                    " (valid: " + std::string(kValidForms) + ")");
}

// Parses the "<a,b>" parameter tail shared by fattree and dragonfly; both
// values must be positive integers.
std::pair<int, int> parse_params(const std::string& text,
                                 const std::string& tail) {
  auto comma = tail.find(',');
  if (comma == std::string::npos)
    bad_spec(text, "expected two comma-separated parameters");
  auto parse_int = [&](const std::string& part) {
    int value = 0;
    const char* first = part.data();
    const char* last = part.data() + part.size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last || value <= 0)
      bad_spec(text, "parameter \"" + part + "\" is not a positive integer");
    return value;
  };
  return {parse_int(tail.substr(0, comma)), parse_int(tail.substr(comma + 1))};
}

}  // namespace

std::string TopologySpec::to_string() const {
  switch (kind) {
    case TopologyKind::kCrossbar:
      return "crossbar";
    case TopologyKind::kFatTree:
      return "fattree:" + std::to_string(fattree_down) + "," +
             std::to_string(fattree_up);
    case TopologyKind::kDragonfly:
      return "dragonfly:" + std::to_string(dragonfly_groups) + "," +
             std::to_string(dragonfly_routers);
  }
  return "crossbar";
}

TopologySpec TopologySpec::parse(const std::string& text) {
  auto colon = text.find(':');
  const std::string family = text.substr(0, colon);
  const std::string tail =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);

  TopologySpec spec;
  if (family == "crossbar") {
    if (colon != std::string::npos)
      bad_spec(text, "crossbar takes no parameters");
    spec.kind = TopologyKind::kCrossbar;
  } else if (family == "fattree") {
    if (colon == std::string::npos)
      bad_spec(text, "fattree needs <down,up> parameters");
    spec.kind = TopologyKind::kFatTree;
    std::tie(spec.fattree_down, spec.fattree_up) = parse_params(text, tail);
  } else if (family == "dragonfly") {
    if (colon == std::string::npos)
      bad_spec(text, "dragonfly needs <groups,routers> parameters");
    spec.kind = TopologyKind::kDragonfly;
    std::tie(spec.dragonfly_groups, spec.dragonfly_routers) =
        parse_params(text, tail);
  } else {
    bad_spec(text, "unknown topology family \"" + family + "\"");
  }
  return spec;
}

Topology::Topology(const TopologySpec& spec, int node_count)
    : spec_(spec), node_count_(node_count) {
  util::require(node_count >= 1, "topology needs at least one node");
  const int access = 2 * node_count;
  switch (spec_.kind) {
    case TopologyKind::kCrossbar:
      link_count_ = access;
      break;
    case TopologyKind::kFatTree: {
      ft_switches_ =
          (node_count + spec_.fattree_down - 1) / spec_.fattree_down;
      // Two directed links (edge->core, core->edge) per uplink port.
      link_count_ = access + 2 * ft_switches_ * spec_.fattree_up;
      break;
    }
    case TopologyKind::kDragonfly: {
      const int groups = spec_.dragonfly_groups;
      const int routers = spec_.dragonfly_routers;
      const int total_routers = groups * routers;
      df_nodes_per_router_ =
          (node_count + total_routers - 1) / total_routers;
      df_local_base_ = access;
      // Directed all-to-all inside each group...
      df_global_base_ = df_local_base_ + groups * routers * (routers - 1);
      // ...and one directed link per ordered group pair.
      link_count_ = df_global_base_ + groups * (groups - 1);
      break;
    }
  }
}

LinkId Topology::edge_up(int sw, int port) const {
  return static_cast<LinkId>(2 * node_count_ +
                             2 * (sw * spec_.fattree_up + port));
}

LinkId Topology::edge_down(int sw, int port) const {
  return static_cast<LinkId>(edge_up(sw, port) + 1);
}

LinkId Topology::local_link(int group, int from, int to) const {
  const int r = spec_.dragonfly_routers;
  // `to` is compacted over the missing self-loop slot.
  const int slot = to > from ? to - 1 : to;
  return static_cast<LinkId>(df_local_base_ + group * r * (r - 1) +
                             from * (r - 1) + slot);
}

LinkId Topology::global_link(int from_group, int to_group) const {
  const int g = spec_.dragonfly_groups;
  const int slot = to_group > from_group ? to_group - 1 : to_group;
  return static_cast<LinkId>(df_global_base_ + from_group * (g - 1) + slot);
}

LinkPath Topology::path(int src, int dst) const {
  LinkPath p;
  switch (spec_.kind) {
    case TopologyKind::kCrossbar:
      p.push(uplink(src));
      p.push(downlink(dst));
      return p;
    case TopologyKind::kFatTree: {
      const int src_sw = edge_switch(src);
      const int dst_sw = edge_switch(dst);
      p.push(uplink(src));
      if (src_sw != dst_sw) {
        // D-mod-k core selection: deterministic, spreads destinations
        // evenly over the core switches.
        const int core = dst % spec_.fattree_up;
        p.push(edge_up(src_sw, core));
        p.push(edge_down(dst_sw, core));
      }
      p.push(downlink(dst));
      return p;
    }
    case TopologyKind::kDragonfly: {
      const int r = spec_.dragonfly_routers;
      const int src_rt = router_of(src);
      const int dst_rt = router_of(dst);
      p.push(uplink(src));
      if (src_rt != dst_rt) {
        const int src_g = src_rt / r;
        const int dst_g = dst_rt / r;
        const int src_lr = src_rt % r;
        const int dst_lr = dst_rt % r;
        if (src_g == dst_g) {
          p.push(local_link(src_g, src_lr, dst_lr));
        } else {
          // Minimal route: hop to the gateway router owning the global
          // link to dst's group, cross it, then hop to dst's router.
          const int gw_src = dst_g % r;
          const int gw_dst = src_g % r;
          if (src_lr != gw_src) p.push(local_link(src_g, src_lr, gw_src));
          p.push(global_link(src_g, dst_g));
          if (gw_dst != dst_lr) p.push(local_link(dst_g, gw_dst, dst_lr));
        }
      }
      p.push(downlink(dst));
      return p;
    }
  }
  return p;
}

std::string Topology::link_name(LinkId id) const {
  const int access = 2 * node_count_;
  if (id < access) {
    return "node" + std::to_string(id / 2) +
           (id % 2 == 0 ? ".up" : ".down");
  }
  switch (spec_.kind) {
    case TopologyKind::kCrossbar:
      break;
    case TopologyKind::kFatTree: {
      const int port_link = id - access;
      const int sw = (port_link / 2) / spec_.fattree_up;
      const int port = (port_link / 2) % spec_.fattree_up;
      return "edge" + std::to_string(sw) +
             (port_link % 2 == 0 ? ".up" : ".down") + std::to_string(port);
    }
    case TopologyKind::kDragonfly: {
      const int r = spec_.dragonfly_routers;
      if (id < df_global_base_) {
        const int local = id - df_local_base_;
        const int group = local / (r * (r - 1));
        const int from = (local % (r * (r - 1))) / (r - 1);
        const int slot = local % (r - 1);
        const int to = slot >= from ? slot + 1 : slot;
        return "g" + std::to_string(group) + ".r" + std::to_string(from) +
               "->r" + std::to_string(to);
      }
      const int g = spec_.dragonfly_groups;
      const int global = id - df_global_base_;
      const int from = global / (g - 1);
      const int slot = global % (g - 1);
      const int to = slot >= from ? slot + 1 : slot;
      return "g" + std::to_string(from) + "->g" + std::to_string(to);
    }
  }
  return "link" + std::to_string(id);
}

}  // namespace psk::sim
