// Cluster interconnect topologies: the map from a src -> dst transfer to the
// sequence of shared directed links its bytes cross.
//
// Three families:
//   crossbar             every node owns a full-duplex link into one ideal
//                        switch (the paper's testbed); a transfer crosses
//                        exactly {uplink(src), downlink(dst)}
//   fattree:<down,up>    two-level folded Clos: edge switches with <down>
//                        node ports and <up> uplinks into <up> ideal core
//                        switches; cross-switch transfers climb
//                        src -> edge -> core -> edge -> dst (4 links) with
//                        deterministic D-mod-k core selection, so the
//                        oversubscription ratio is down:up
//   dragonfly:<g,r>      <g> groups of <r> routers; routers within a group
//                        are all-to-all connected, every ordered group pair
//                        shares one global link whose gateway router is
//                        chosen by destination-group modulo, giving minimal
//                        up/local/global/local/down routes (<= 5 links)
//
// Links are directed and identified by dense integer ids; every topology
// reserves ids [0, 2*nodes) for the per-node access links so node-addressed
// APIs (shapers, crash faults) work uniformly.  Topologies are pure routing
// tables: capacities, flows and faults live in sim::Network.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace psk::sim {

enum class TopologyKind : std::uint8_t {
  kCrossbar = 0,
  kFatTree = 1,
  kDragonfly = 2,
};

/// Value-type description of a topology, parseable from the shared
/// `--topology=` CLI spec.  Parameters of families other than `kind` are
/// carried but ignored, so specs compare equal iff their meaning does.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kCrossbar;
  /// fattree: node ports (down) and core uplinks (up) per edge switch.
  int fattree_down = 8;
  int fattree_up = 4;
  /// dragonfly: group count and routers per group.
  int dragonfly_groups = 4;
  int dragonfly_routers = 4;

  bool is_crossbar() const { return kind == TopologyKind::kCrossbar; }

  /// Canonical spec string: "crossbar", "fattree:8,4", "dragonfly:4,4".
  std::string to_string() const;

  /// Parses a spec string ("crossbar" | "fattree:<down,up>" |
  /// "dragonfly:<groups,routers>"); throws ConfigError listing the valid
  /// forms on anything else (unknown family, bad arity, non-positive or
  /// malformed parameters).
  static TopologySpec parse(const std::string& text);

  friend bool operator==(const TopologySpec& a, const TopologySpec& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case TopologyKind::kCrossbar:
        return true;
      case TopologyKind::kFatTree:
        return a.fattree_down == b.fattree_down &&
               a.fattree_up == b.fattree_up;
      case TopologyKind::kDragonfly:
        return a.dragonfly_groups == b.dragonfly_groups &&
               a.dragonfly_routers == b.dragonfly_routers;
    }
    return false;
  }
};

using LinkId = std::int32_t;

/// The directed links one transfer crosses, in traversal order.  Bounded:
/// the deepest route (dragonfly inter-group) is 5 hops.
struct LinkPath {
  static constexpr int kMaxLinks = 6;

  std::array<LinkId, kMaxLinks> links{};
  int count = 0;

  void push(LinkId id) { links[static_cast<std::size_t>(count++)] = id; }
  const LinkId* begin() const { return links.data(); }
  const LinkId* end() const { return links.data() + count; }
};

/// Immutable routing table for `node_count` nodes under a spec: link id
/// layout plus the src -> dst path function.  Construction validates the
/// spec's parameters against the node count.
class Topology {
 public:
  Topology(const TopologySpec& spec, int node_count);

  const TopologySpec& spec() const { return spec_; }
  int node_count() const { return node_count_; }
  int link_count() const { return link_count_; }

  /// The node's access links (present in every family).
  LinkId uplink(int node) const { return static_cast<LinkId>(2 * node); }
  LinkId downlink(int node) const {
    return static_cast<LinkId>(2 * node + 1);
  }

  /// The directed link sequence of a src -> dst transfer (src != dst;
  /// same-node copies never reach the network).  Deterministic: equal
  /// inputs give equal paths, so simulations stay bit-reproducible.
  LinkPath path(int src, int dst) const;

  /// Human-readable link name for diagnostics ("node3.up", "edge1.up0",
  /// "g2.r0->r3", "g0->g2", ...).
  std::string link_name(LinkId id) const;

 private:
  // Fat-tree helpers.
  int edge_switch(int node) const { return node / spec_.fattree_down; }
  LinkId edge_up(int sw, int port) const;
  LinkId edge_down(int sw, int port) const;

  // Dragonfly helpers.
  int router_of(int node) const { return node / df_nodes_per_router_; }
  LinkId local_link(int group, int from, int to) const;
  LinkId global_link(int from_group, int to_group) const;

  TopologySpec spec_;
  int node_count_ = 0;
  int link_count_ = 0;
  // Fat-tree: number of edge switches.
  int ft_switches_ = 0;
  // Dragonfly: nodes packed contiguously onto routers.
  int df_nodes_per_router_ = 1;
  int df_local_base_ = 0;   // first intra-group router-router link id
  int df_global_base_ = 0;  // first inter-group link id
};

}  // namespace psk::sim
