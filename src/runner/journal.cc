#include "runner/journal.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <unordered_map>

#include "archive/wire.h"
#include "cache/cache.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/log.h"

namespace psk::runner {

namespace {

// Journal line format (text, one completed cell per line):
//     <cell-hash> TAB <key> TAB <status> TAB <payload-or-detail> NEWLINE
// The leading field is the 16-hex-digit content hash of (domain, key) --
// the canonical cell identity, so replay matches cells by hash no matter
// how the grid was ordered when the journal was written; the echoed key
// guards against hash collisions.  Pre-hash journals carry three fields
// (no hash); replay still accepts them, matching by key string.
// Keys and payloads are escaped (backslash, tab, newline), so a literal TAB
// only ever separates fields and a literal NEWLINE only ever ends a record.
// A line without its trailing newline -- the process died mid-append -- is
// ignored on replay, as is any line that fails to parse; later records for
// the same key win, so an interrupted-then-resumed journal stays valid.

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

bool unescape(const std::string& text, std::string& out) {
  out.clear();
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (++i == text.size()) return false;  // trailing backslash: truncated
    switch (text[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: return false;
    }
  }
  return true;
}

bool status_from_name(const std::string& name, CellResult::Status& status) {
  if (name == "ok") status = CellResult::Status::kOk;
  else if (name == "failed") status = CellResult::Status::kFailed;
  else if (name == "timeout") status = CellResult::Status::kTimeout;
  else return false;
  return true;
}

/// Parses one complete journal line (newline already stripped).
bool parse_line(const std::string& line, std::string& key,
                CellResult& result) {
  const std::size_t tab1 = line.find('\t');
  if (tab1 == std::string::npos) return false;
  const std::size_t tab2 = line.find('\t', tab1 + 1);
  if (tab2 == std::string::npos) return false;
  if (!unescape(line.substr(0, tab1), key)) return false;
  if (!status_from_name(line.substr(tab1 + 1, tab2 - tab1 - 1),
                        result.status)) {
    return false;
  }
  std::string text;
  if (!unescape(line.substr(tab2 + 1), text)) return false;
  if (result.status == CellResult::Status::kOk) {
    result.payload = std::move(text);
    result.detail.clear();
  } else {
    result.payload.clear();
    result.detail = std::move(text);
  }
  return true;
}

bool parse_hash(const std::string& field, std::uint64_t& hash) {
  if (field.size() != 16) return false;
  hash = 0;
  for (const char c : field) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    hash = (hash << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

void replay(const std::string& path, const std::vector<std::string>& keys,
            const std::unordered_map<std::uint64_t, std::size_t>& hash_index,
            const std::unordered_map<std::string, std::size_t>& index_of,
            std::vector<CellResult>& results, std::vector<char>& have,
            JournalReplayStats& stats) {
  std::ifstream in(path);
  if (!in) return;  // nothing journaled yet: run everything
  std::string line;
  // getline() consumes the final unterminated fragment too, but the eof
  // flag distinguishes it: a record is only trusted when its newline made
  // it to disk.
  while (std::getline(in, line)) {
    if (in.eof()) {  // truncated final line: the append was cut short
      stats.torn_tail = 1;
      break;
    }
    // Escaping guarantees raw TABs only separate fields, so the field count
    // tells the format apart: 4 fields = hash-keyed, 3 = pre-hash legacy.
    const auto tabs = std::count(line.begin(), line.end(), '\t');
    std::string key;
    CellResult result;
    std::size_t index = 0;
    bool parsed = false;
    bool matched = false;
    if (tabs == 3) {
      const std::size_t tab1 = line.find('\t');
      std::uint64_t hash = 0;
      if (parse_hash(line.substr(0, tab1), hash) &&
          parse_line(line.substr(tab1 + 1), key, result)) {
        parsed = true;
        const auto it = hash_index.find(hash);
        // The echoed key must agree: a hash matching a different key is a
        // collision and the record cannot be trusted.
        matched = it != hash_index.end() && keys[it->second] == key;
        if (matched) index = it->second;
      }
    } else if (tabs == 2 && parse_line(line, key, result)) {
      parsed = true;
      const auto it = index_of.find(key);
      matched = it != index_of.end();
      if (matched) index = it->second;
    }
    if (!matched) {
      // A journal from a different grid (or a damaged line): don't trust
      // it blindly, re-run the cell instead.
      if (parsed) ++stats.dropped_unknown;
      else ++stats.dropped_unparsable;
      continue;
    }
    ++stats.replayed;
    results[index] = std::move(result);
    have[index] = 1;
  }
  if (stats.dropped() > 0) {
    util::log_warn() << "journal " << path << ": " << stats.render();
  }
}

}  // namespace

std::string JournalReplayStats::render() const {
  std::string out = "replayed " + std::to_string(replayed) + " cell(s)";
  if (dropped() > 0) {
    out += ", dropped " + std::to_string(dropped()) + " line(s) (" +
           std::to_string(dropped_unparsable) + " unparsable, " +
           std::to_string(dropped_unknown) + " unknown-key, " +
           std::to_string(torn_tail) + " torn tail)";
  }
  return out;
}

void JournalReplayStats::publish(obs::MetricsRegistry& metrics) const {
  metrics.counter("journal.replayed").add(static_cast<double>(replayed));
  metrics.counter("journal.dropped").add(static_cast<double>(dropped()));
  metrics.counter("journal.torn").add(static_cast<double>(torn_tail));
}

std::string status_name(CellResult::Status status) {
  switch (status) {
    case CellResult::Status::kOk: return "ok";
    case CellResult::Status::kFailed: return "failed";
    case CellResult::Status::kTimeout: return "timeout";
  }
  return "unknown";
}

std::vector<CellResult> journaled_sweep(
    const std::vector<std::string>& keys,
    const std::function<std::string(std::size_t)>& body,
    const JournaledSweepOptions& options) {
  std::unordered_map<std::string, std::size_t> index_of;
  index_of.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    util::require(index_of.emplace(keys[i], i).second,
                  "journaled_sweep: duplicate cell key: " + keys[i]);
  }
  // Canonical cell identities: content hashes of (domain, key).
  std::vector<std::uint64_t> hashes(keys.size());
  std::unordered_map<std::uint64_t, std::size_t> hash_index;
  hash_index.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    hashes[i] = cache::sweep_cell_hash(options.domain, keys[i]);
    util::require(hash_index.emplace(hashes[i], i).second,
                  "journaled_sweep: cell hash collision on key: " + keys[i]);
  }

  std::vector<CellResult> results(keys.size());
  std::vector<char> have(keys.size(), 0);
  JournalReplayStats replay_stats;
  if (options.resume && !options.journal_path.empty()) {
    replay(options.journal_path, keys, hash_index, index_of, results, have,
           replay_stats);
  }
  if (options.replay_stats != nullptr) *options.replay_stats = replay_stats;

  std::ofstream journal;
  std::mutex journal_mutex;
  if (!options.journal_path.empty()) {
    journal.open(options.journal_path, options.resume
                                           ? std::ios::out | std::ios::app
                                           : std::ios::out | std::ios::trunc);
    util::require(journal.is_open(), "journaled_sweep: cannot open journal " +
                                         options.journal_path);
  }

  std::vector<std::size_t> pending;
  pending.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!have[i]) pending.push_back(i);
  }

  SweepOptions sweep_options;
  sweep_options.jobs = options.jobs;
  sweep(
      pending.size(),
      [&](std::size_t p) {
        const std::size_t i = pending[p];
        CellResult result;
        bool from_cache = false;
        if (options.cache != nullptr) {
          // Cross-journal reuse: another run sharing the cache directory may
          // have computed this cell already (same domain + key = same
          // deterministic payload by contract).
          const cache::CacheKey cell_key =
              cache::sweep_cell_key(options.domain, keys[i]);
          if (std::optional<std::string> hit = options.cache->lookup(cell_key)) {
            result.payload = std::move(*hit);
            from_cache = true;
          }
        }
        if (!from_cache) {
          try {
            result.payload = body(i);
          } catch (const TimeoutError& e) {
            result.status = CellResult::Status::kTimeout;
            result.detail = e.what();
          } catch (const std::exception& e) {
            result.status = CellResult::Status::kFailed;
            result.detail = e.what();
          }
          if (options.cache != nullptr &&
              result.status == CellResult::Status::kOk) {
            options.cache->store(
                cache::sweep_cell_key(options.domain, keys[i]),
                result.payload);
          }
        }
        if (journal.is_open()) {
          const std::string& text =
              result.status == CellResult::Status::kOk ? result.payload
                                                       : result.detail;
          const std::string line = archive::fingerprint_hex(hashes[i]) + '\t' +
                                   escape(keys[i]) + '\t' +
                                   status_name(result.status) + '\t' +
                                   escape(text) + '\n';
          const std::lock_guard<std::mutex> lock(journal_mutex);
          journal << line << std::flush;
        }
        results[i] = std::move(result);
      },
      sweep_options);
  return results;
}

}  // namespace psk::runner
