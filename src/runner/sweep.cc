#include "runner/sweep.h"

#include <algorithm>

namespace psk::runner {

void sweep(std::size_t count, const std::function<void(std::size_t)>& body,
           const SweepOptions& options) {
  obs::PhaseProfiler::Scope scope(options.profiler, "sweep");
  const int jobs = resolve_jobs(options.jobs);
  const std::size_t useful =
      std::min(count, static_cast<std::size_t>(jobs));
  if (useful <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Pool lifetime is one sweep; thread spawn cost is amortized over
  // simulations that each run for milliseconds or more.
  ThreadPool pool(static_cast<int>(useful));
  pool.parallel_for(count, body);
}

}  // namespace psk::runner
