// Crash-safe journaled sweeps.
//
// journaled_sweep() evaluates one string payload per named cell,
// concurrently, appending every completed cell to an append-only journal
// file the moment it finishes (one escaped line per cell, flushed under a
// mutex).  If the process dies mid-sweep -- crash, OOM kill, ^C -- a rerun
// with resume=true replays the journal's payloads verbatim and re-runs only
// the missing cells, so the returned vector is byte-identical to what an
// uninterrupted run would have produced (cell bodies are deterministic
// simulations and results are returned in input order either way).
//
// A cell body that throws fails only that cell: the exception text is
// captured into the result (TimeoutError becomes kTimeout -- the per-sim
// deadline watchdog and MPI wait timeouts land here), other in-flight cells
// finish, and the failure is journaled too, so a resume does not retry a
// deterministic failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/sweep.h"

namespace psk::cache {
class ResultCache;
}
namespace psk::obs {
class MetricsRegistry;
}

namespace psk::runner {

struct CellResult {
  enum class Status { kOk, kFailed, kTimeout };
  Status status = Status::kOk;
  /// The body's return value (kOk); replayed byte-for-byte on resume.
  std::string payload;
  /// The captured exception text (kFailed / kTimeout).
  std::string detail;

  friend bool operator==(const CellResult&, const CellResult&) = default;
};

/// "ok" / "failed" / "timeout" (the journal's status column).
std::string status_name(CellResult::Status status);

/// What a resume found in the journal.  A torn tail (the process died
/// mid-append) and unparsable/unknown-key lines are dropped, not errors:
/// the sweep re-runs those cells.  Exposed so --resume callers can tell the
/// user how much work the journal actually saved.
struct JournalReplayStats {
  std::uint64_t replayed = 0;             // lines accepted (cells skipped)
  std::uint64_t dropped_unparsable = 0;   // lines that failed to parse
  std::uint64_t dropped_unknown = 0;      // parsed, but not a cell of this grid
  std::uint64_t torn_tail = 0;            // 1 when the final line had no newline

  std::uint64_t dropped() const {
    return dropped_unparsable + dropped_unknown + torn_tail;
  }
  /// One-line summary, e.g. "replayed 12 cell(s), dropped 2 line(s) (1
  /// unparsable, 0 unknown-key, 1 torn tail)".
  std::string render() const;
  /// Publishes journal.replayed / journal.dropped / journal.torn counters.
  void publish(obs::MetricsRegistry& metrics) const;
};

struct JournaledSweepOptions {
  /// Worker threads: 0 = one per hardware thread, 1 = serial inline.
  int jobs = 0;
  /// Journal file; empty disables journaling (the sweep still captures
  /// per-cell failures).
  std::string journal_path;
  /// Replay an existing journal and run only the cells it is missing.
  /// Without resume, an existing journal is truncated and the sweep starts
  /// fresh.
  bool resume = false;
  /// Namespace for the journal's cell hashes and the shared result cache.
  /// Encode everything that versions the payload format here (sweep name,
  /// grid config fingerprint): cells only match across runs/journals when
  /// both the domain and the cell key agree.
  std::string domain;
  /// Optional content-addressed cache consulted before running a cell body
  /// and filled with every ok payload -- lets a sweep reuse cells computed
  /// by *other* journals/runs sharing the cache directory.  Not owned; may
  /// be null.  Failed/timeout cells are journaled but never cached.
  cache::ResultCache* cache = nullptr;
  /// When set, filled with what the resume replay found (zeroes when not
  /// resuming).  Not owned; may be null.
  JournalReplayStats* replay_stats = nullptr;
};

/// Runs body(i) for every key, returning one CellResult per key in input
/// order.  Keys name cells in the journal and must be unique and free of
/// unescapable content only in spirit -- any bytes work, they are escaped.
/// `body` must be safe to call concurrently and deterministic per key if
/// resumed runs are to be identical to fresh ones.
std::vector<CellResult> journaled_sweep(
    const std::vector<std::string>& keys,
    const std::function<std::string(std::size_t)>& body,
    const JournaledSweepOptions& options = {});

}  // namespace psk::runner
