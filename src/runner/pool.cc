#include "runner/pool.h"

#include <algorithm>

namespace psk::runner {

int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(int jobs) : jobs_(resolve_jobs(jobs)) {
  shards_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    threads_.emplace_back(
        [this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

bool ThreadPool::try_pop(std::size_t shard, std::size_t& index) {
  Shard& own = *shards_[shard];
  std::lock_guard<std::mutex> lock(own.mutex);
  if (own.tasks.empty()) return false;
  index = own.tasks.front();
  own.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, std::size_t& index) {
  const std::size_t count = shards_.size();
  for (std::size_t hop = 1; hop < count; ++hop) {
    Shard& victim = *shards_[(thief + hop) % count];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      // Steal from the back: the cold end of the victim's block, far from
      // the indices it will pop next.
      index = victim.tasks.back();
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::record_failure(std::size_t index, std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!failure_ || index < failure_index_) {
    failure_ = std::move(error);
    failure_index_ = index;
  }
}

void ThreadPool::drain(std::size_t self,
                       const std::function<void(std::size_t)>& body) {
  std::size_t index = 0;
  while (try_pop(self, index) || try_steal(self, index)) {
    try {
      body(index);
    } catch (...) {
      record_failure(index, std::current_exception());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_main(std::size_t self) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || (body_ != nullptr && generation_ != seen);
      });
      if (shutdown_) return;
      seen = generation_;
      body = body_;
      ++active_workers_;
    }
    drain(self, *body);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (jobs_ == 1 || count == 1) {
    // Serial fast path: no queues, no locks, exceptions propagate directly.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t shards = shards_.size();
    for (std::size_t s = 0; s < shards; ++s) {
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> shard_lock(shard.mutex);
      for (std::size_t i = count * s / shards; i < count * (s + 1) / shards;
           ++i) {
        shard.tasks.push_back(i);
      }
    }
    body_ = &body;
    remaining_ = count;
    failure_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  drain(0, body);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return remaining_ == 0 && active_workers_ == 0; });
  body_ = nullptr;
  if (failure_) {
    std::exception_ptr error = std::move(failure_);
    failure_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace psk::runner
