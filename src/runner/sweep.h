// Sweep executor: evaluate a vector of independent grid cells concurrently
// and return results in deterministic input order.
//
// The experiment grid (benchmark x skeleton size x sharing scenario x
// repetition) decomposes into fully isolated deterministic simulations, so
// a sweep parallelizes trivially: every cell writes into its own
// preallocated slot and the output order is the input order regardless of
// how the pool schedules the work.  `--jobs=1` degenerates to a plain
// serial loop on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "obs/phase.h"
#include "runner/pool.h"

namespace psk::runner {

struct SweepOptions {
  /// Worker threads: 0 = one per hardware thread, 1 = serial inline.
  int jobs = 0;
  /// Optional wall-clock phase profiler: the whole sweep charges its time
  /// to the "sweep" phase (per-cell work is simulated time, not phases).
  obs::PhaseProfiler* profiler = nullptr;
};

/// Runs body(i) for every i in [0, count), concurrently when options allow.
/// Rethrows the lowest-index exception, like a serial loop would.
void sweep(std::size_t count, const std::function<void(std::size_t)>& body,
           const SweepOptions& options = {});

/// Maps `fn` over `items`; results[i] == fn(items[i]) for every i, in input
/// order, regardless of scheduling.  `fn` must be safe to call concurrently.
template <typename Item, typename Fn>
auto sweep_map(const std::vector<Item>& items, Fn fn,
               const SweepOptions& options = {})
    -> std::vector<decltype(fn(std::declval<const Item&>()))> {
  std::vector<decltype(fn(std::declval<const Item&>()))> results(
      items.size());
  sweep(
      items.size(), [&](std::size_t i) { results[i] = fn(items[i]); },
      options);
  return results;
}

}  // namespace psk::runner
