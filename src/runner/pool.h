// Work-stealing fork-join thread pool for the sweep executor.
//
// Design: one task deque per worker.  parallel_for slices the index range
// into contiguous per-worker blocks; each worker drains its own deque from
// the front and, when it runs dry, steals single indices from the back of
// another worker's block.  The caller thread participates as worker 0, so a
// one-job pool runs everything inline with no thread handoff at all.
//
// Determinism: the pool only decides *which thread* runs an index, never
// *what* is computed -- bodies write to caller-owned slots keyed by index,
// so results are independent of scheduling.  When bodies throw, the
// exception thrown by the lowest index is rethrown to the caller, matching
// what a serial left-to-right loop would have reported.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace psk::runner {

/// Resolves a --jobs request: values >= 1 pass through; 0 (the default)
/// means "one job per hardware thread" (at least 1).
int resolve_jobs(int requested);

class ThreadPool {
 public:
  /// Spawns jobs-1 worker threads (the caller is the remaining worker).
  /// `jobs` <= 0 resolves to the hardware concurrency.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int jobs() const { return jobs_; }

  /// Runs body(i) for every i in [0, count) across the pool and blocks
  /// until all of them completed.  Bodies must be safe to run concurrently
  /// with each other.  Not reentrant: parallel_for must not be called from
  /// inside a body, and only one thread may drive the pool at a time.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Shard {
    std::mutex mutex;
    std::deque<std::size_t> tasks;
  };

  void worker_main(std::size_t self);
  /// Runs tasks from the own shard, then steals, until all shards are dry.
  void drain(std::size_t self, const std::function<void(std::size_t)>& body);
  bool try_pop(std::size_t shard, std::size_t& index);
  bool try_steal(std::size_t thief, std::size_t& index);
  void record_failure(std::size_t index, std::exception_ptr error);

  int jobs_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;

  // Job lifecycle state.  A "generation" is one parallel_for call; workers
  // sleep between generations.  parallel_for returns only after every
  // worker left drain(), so shard deques are never touched across
  // generations.
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t remaining_ = 0;
  int active_workers_ = 0;
  bool shutdown_ = false;
  std::exception_ptr failure_;
  std::size_t failure_index_ = 0;
};

}  // namespace psk::runner
