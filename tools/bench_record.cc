// bench_record: records one point of the repo's performance trajectory.
//
// Runs bounded versions of the perf_components workloads (event-queue
// throughput, clustering, loop folding, full compression, cold/warm
// skeleton runs, pipeline construction) with hand-rolled timing loops and
// emits a flat, schema'd JSON metrics file (BENCH_pr<N>.json at the repo
// root records the committed trajectory; see docs/BENCH_NOTES.md for the
// schema and workflow).
//
// Usage:
//   bench_record [--out=FILE] [--reps=N] [--quick]
//   bench_record --compare=BASELINE.json [--max-regress=0.15] [...]
//
// --compare re-measures, then fails (exit 1) when any
// "event_queue.events_per_sec.*", "service.requests_per_sec.*",
// "service.chaos.*" or "scale.events_per_sec.*" metric dropped by more
// than --max-regress relative to the baseline file -- the CI regression
// gate.  Other metrics are reported but do not gate (they track larger,
// noisier workloads).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "archive/archive.h"
#include "archive/codec.h"
#include "cache/cache.h"
#include "core/framework.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "scenario/synthetic.h"
#include "svc/chaos.h"
#include "svc/service.h"
#include "sig/cluster.h"
#include "sig/compress.h"
#include "sig/signature.h"
#include "sim/engine.h"
#include "trace/event.h"
#include "trace/fold.h"
#include "trace/soa.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/stats.h"

namespace {

using namespace psk;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `body` `reps` times and returns the per-rep wall times, sorted
/// ascending -- ready for util::percentile_sorted (one sort, many
/// percentile queries).
std::vector<double> time_reps(int reps, const std::function<void()>& body) {
  body();  // untimed warmup: page-faults, allocator growth, branch history
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    body();
    samples.push_back(now_seconds() - t0);
  }
  std::sort(samples.begin(), samples.end());
  return samples;
}

/// Median of sorted per-rep times: robust against a one-off scheduling
/// hiccup, unlike min or mean.
double median_seconds(const std::vector<double>& sorted) {
  return util::percentile_sorted(sorted, 50.0);
}

void event_queue_metric(std::map<std::string, double>& metrics, int events,
                        int reps) {
  const auto sorted = time_reps(reps, [events] {
    sim::Engine engine;
    for (int i = 0; i < events; ++i) {
      engine.at(static_cast<double>(i % 97), [] {});
    }
    engine.run();
  });
  const double sec = median_seconds(sorted);
  const std::string suffix = std::to_string(events);
  metrics["event_queue.events_per_sec." + suffix] =
      static_cast<double>(events) / sec;
  metrics["event_queue.ns_per_event." + suffix] =
      sec * 1e9 / static_cast<double>(events);
  // Spread across reps (p95/p50): >1.2 means the box was noisy and the
  // medians above deserve suspicion.
  metrics["event_queue.p95_over_p50." + suffix] =
      util::percentile_sorted(sorted, 95.0) /
      std::max(util::percentile_sorted(sorted, 50.0), 1e-12);
}

/// Service-layer overhead and latency (PR 7's pskd request path).  Ping
/// throughput isolates admission + queueing + pool dispatch from the
/// simulator, so it is stable enough to gate; the predict percentiles ride
/// along ungated (they fold in skeleton-run time and queue position).
void service_metric(std::map<std::string, double>& metrics,
                    const skeleton::Skeleton& skeleton, int reps) {
  svc::ServiceOptions options;
  options.queue_capacity = 512;
  svc::Service service(options);

  constexpr int kPings = 256;
  const auto sorted = time_reps(reps, [&service] {
    for (int i = 0; i < kPings; ++i) {
      svc::Request request;
      request.header.id = static_cast<std::uint32_t>(i) + 1;
      request.header.op = svc::RequestOp::kPing;
      if (service.submit(std::move(request)).has_value()) std::abort();
    }
    if (service.drain().size() != kPings) std::abort();
  });
  const double sec = median_seconds(sorted);
  metrics["service.requests_per_sec.ping"] =
      static_cast<double>(kPings) / sec;
  metrics["service.us_per_request.ping"] =
      sec * 1e6 / static_cast<double>(kPings);

  std::string payload;
  archive::encode(payload, skeleton);
  std::string upload;
  archive::write_frame(upload, archive::PayloadKind::kSkeleton,
                       archive::kSkeletonVersion, payload);
  // A fresh service for the predicts: the ping loop above already filed
  // sub-microsecond kOk latency samples that would skew the percentiles.
  constexpr int kPredicts = 32;
  svc::Service predict_service(options);
  for (int i = 0; i < kPredicts; ++i) {
    svc::Request request;
    request.header.id = static_cast<std::uint32_t>(i) + 1;
    request.header.op = svc::RequestOp::kPredict;
    request.header.seed = 7;
    request.header.repetitions = 1;
    request.header.scenario = "dedicated";
    request.header.archive_bytes = upload;
    if (predict_service.submit(std::move(request)).has_value()) {
      std::abort();
    }
  }
  if (predict_service.drain().size() != kPredicts) std::abort();
  obs::MetricsRegistry registry;
  predict_service.publish(registry);
  metrics["service.predict_p50_ms"] =
      registry.counter("svc.latency_ms.ok.p50").value();
  metrics["service.predict_p99_ms"] =
      registry.counter("svc.latency_ms.ok.p99").value();

  // Hash reuse vs re-upload: the same predict measured both ways against
  // one service, so the delta is exactly what the hot-skeleton store buys
  // (a store lookup instead of a container parse per request).  Both keys
  // sit under the gated requests_per_sec prefix.
  constexpr int kReuse = 32;
  svc::Service reuse_service(options);
  std::uint64_t hash = 0;
  {
    svc::Request prime;
    prime.header.id = 1;
    prime.header.op = svc::RequestOp::kPredict;
    prime.header.seed = 7;
    prime.header.repetitions = 1;
    prime.header.scenario = "dedicated";
    prime.header.archive_bytes = upload;
    if (reuse_service.submit(std::move(prime)).has_value()) std::abort();
    const std::vector<svc::ResponseHeader> primed = reuse_service.drain();
    if (primed.size() != 1 || primed[0].status != svc::StatusCode::kOk ||
        primed[0].skeleton_hash == 0) {
      std::abort();
    }
    hash = primed[0].skeleton_hash;
  }
  const auto run_predicts = [&reuse_service, &upload, hash](bool by_hash) {
    for (int i = 0; i < kReuse; ++i) {
      svc::Request request;
      request.header.id = static_cast<std::uint32_t>(i) + 2;
      request.header.op = svc::RequestOp::kPredict;
      request.header.seed = 7;
      request.header.repetitions = 1;
      request.header.scenario = "dedicated";
      if (by_hash) {
        request.header.skeleton_hash = hash;
      } else {
        request.header.archive_bytes = upload;
      }
      if (reuse_service.submit(std::move(request)).has_value()) std::abort();
    }
    if (reuse_service.drain().size() != kReuse) std::abort();
  };
  const auto upload_sorted = time_reps(reps, [&] { run_predicts(false); });
  const auto hash_sorted = time_reps(reps, [&] { run_predicts(true); });
  metrics["service.requests_per_sec.predict_upload"] =
      static_cast<double>(kReuse) / median_seconds(upload_sorted);
  metrics["service.requests_per_sec.predict_hash"] =
      static_cast<double>(kReuse) / median_seconds(hash_sorted);
}

/// Chaos gate (PR 10's fault-injection machinery): a short in-process
/// live-mode soak under seeded worker stalls and store-write failures.
/// The metric *is* the robustness contract -- 1.0 when every submitted
/// request was answered exactly once, 0.0 otherwise -- and it gates, so
/// any change that silently drops or double-answers a request under
/// chaos fails the bench smoke.  Deterministic by construction: fixed
/// seed, fixed profile, fixed request count.
void chaos_metric(std::map<std::string, double>& metrics,
                  const std::string& upload) {
  svc::ChaosProfile profile;
  profile.worker_stall_rate = 0.25;
  profile.worker_stall_ms = 2.0;
  profile.store_write_fail_rate = 0.5;
  svc::ChaosSchedule chaos(17, profile);

  svc::ServiceOptions options;
  options.queue_capacity = 512;
  options.workers = 2;
  options.supervisor_poll_seconds = 0.005;
  options.chaos = &chaos;
  svc::Service service(options);

  constexpr std::uint32_t kRequests = 48;
  std::mutex mutex;
  std::map<std::uint32_t, int> answered;
  service.start([&](const svc::ResponseHeader& response) {
    std::lock_guard<std::mutex> lock(mutex);
    ++answered[response.id];
  });
  for (std::uint32_t id = 1; id <= kRequests; ++id) {
    svc::Request request;
    request.header.id = id;
    request.header.op = svc::RequestOp::kPredict;
    request.header.seed = 7;
    request.header.repetitions = 1;
    request.header.scenario = "dedicated";
    request.header.archive_bytes = upload;
    service.submit(std::move(request));
  }
  service.stop();  // drains everything, then joins workers + supervisor

  const svc::ServiceStats stats = service.stats();
  bool exactly_once = answered.size() == kRequests &&
                      stats.completed == stats.submitted;
  for (const auto& [id, count] : answered) {
    if (count != 1) exactly_once = false;
  }
  metrics["service.chaos.answered_exactly_once"] = exactly_once ? 1.0 : 0.0;
  // Ungated context (outside the service.chaos. gate prefix): how much
  // chaos the gate actually ran under.
  metrics["service.chaos_faults_injected"] = [&chaos] {
    const svc::ChaosStats stats = chaos.stats();
    double total = 0;
    for (std::size_t site = 0; site < svc::kChaosSiteCount; ++site) {
      total += static_cast<double>(stats.injected[site]);
    }
    return total;
  }();
}

/// Large-world simulator scaling (PR 9's per-link incremental flow core).
/// A 1024-rank fat-tree BSP run gates on event throughput -- a regression
/// back to dense (all-flows) re-rating cuts it by an order of magnitude --
/// and the 256->1024 host-time growth ratio rides along ungated as the
/// direct sub-quadratic record (4x ranks; quadratic would be 16x).
void scale_metric(std::map<std::string, double>& metrics, int reps) {
  const sim::TopologySpec fattree =
      sim::TopologySpec::parse("fattree:32,16");
  scenario::SyntheticSpec spec;
  spec.iterations = 5;
  const auto run = [&](int ranks) {
    sim::ClusterConfig cluster = sim::ClusterConfig::paper_testbed(ranks);
    cluster.cores_per_node = 1;
    cluster.topology = fattree;
    return scenario::run_synthetic_bsp(cluster, ranks, spec);
  };
  // The event count is deterministic per world size; only time varies.
  std::uint64_t events_256 = 0;
  std::uint64_t events_1024 = 0;
  const auto sorted_256 = time_reps(reps, [&] {
    events_256 = run(256).events_dispatched;
  });
  const auto sorted_1024 = time_reps(std::max(1, reps / 2), [&] {
    events_1024 = run(1024).events_dispatched;
  });
  const double host_256 = median_seconds(sorted_256);
  const double host_1024 = median_seconds(sorted_1024);
  metrics["scale.events_per_sec.fattree_256"] =
      static_cast<double>(events_256) / host_256;
  metrics["scale.events_per_sec.fattree_1024"] =
      static_cast<double>(events_1024) / host_1024;
  metrics["scale.host_growth_4x_fattree"] = host_1024 / host_256;
}

std::map<std::string, double> measure(int reps) {
  std::map<std::string, double> metrics;

  event_queue_metric(metrics, 1 << 12, reps);
  event_queue_metric(metrics, 1 << 16, reps);
  scale_metric(metrics, reps);

  // Shared LU class-S folded trace: the signature pipeline's standard
  // workload (same as perf_components).
  core::SkeletonFramework framework;
  const trace::Trace trace =
      framework.record(apps::find_benchmark("LU").make(apps::NasClass::kS),
                       "LU");
  const std::vector<trace::TraceEvent>& events = trace.ranks[0].events;
  const double rank_mb = static_cast<double>(events.size()) *
                         static_cast<double>(sizeof(trace::TraceEvent)) /
                         1e6;
  const double trace_mb = static_cast<double>(trace.event_count()) *
                          static_cast<double>(sizeof(trace::TraceEvent)) /
                          1e6;

  // Nonblocking-region folding over a raw copy of the stream.
  {
    const auto sorted = time_reps(reps, [&trace] {
      trace::Trace copy = trace;
      trace::fold_nonblocking(copy);
    });
    metrics["trace.fold_mb_per_sec"] = trace_mb / median_seconds(sorted);
  }

  // Clustering one rank (column view built per rep, as in production).
  {
    sig::ClusterOptions options;
    options.threshold = 0.1;
    const auto sorted = time_reps(reps, [&events, &options] {
      const sig::ClusterResult result =
          sig::cluster_events(events, options);
      if (result.cluster_count() == 0) std::abort();
    });
    metrics["sig.cluster_mb_per_sec"] = rank_mb / median_seconds(sorted);
  }

  // Loop folding of the clustered symbol string.
  {
    sig::ClusterOptions options;
    options.threshold = 0.1;
    const sig::ClusterResult clusters = sig::cluster_events(events, options);
    sig::SigSeq base;
    base.reserve(clusters.symbols.size());
    for (int symbol : clusters.symbols) {
      base.push_back(sig::SigNode::leaf(
          clusters.prototypes[static_cast<std::size_t>(symbol)]));
    }
    const double seq_mb = static_cast<double>(base.size()) *
                          static_cast<double>(sizeof(sig::SigNode)) / 1e6;
    const auto sorted = time_reps(reps, [&base] {
      sig::SigSeq copy = base;
      const sig::SigSeq folded = sig::fold_loops(std::move(copy));
      if (folded.empty()) std::abort();
    });
    metrics["sig.fold_mb_per_sec"] = seq_mb / median_seconds(sorted);
  }

  // Full threshold-search compression of the whole trace.
  {
    sig::CompressOptions options;
    options.target_ratio = 8.0;
    const auto sorted = time_reps(reps, [&trace, &options] {
      const sig::Signature signature = sig::compress(trace, options);
      if (signature.ranks.empty()) std::abort();
    });
    metrics["sig.compress_mb_per_sec"] = trace_mb / median_seconds(sorted);
  }

  // Cold vs warm skeleton run (the measurement phase's repeated cell).
  {
    const double k = std::max(1.0, trace.elapsed() / 0.05);
    const skeleton::Skeleton skeleton =
        framework.make_skeleton(framework.make_signature(trace, k), k);
    const auto cold = time_reps(reps, [&framework, &skeleton] {
      framework.run_skeleton(skeleton, scenario::dedicated());
    });
    metrics["skeleton.cold_run_ms"] = median_seconds(cold) * 1e3;

    core::FrameworkOptions cache_options;
    cache_options.result_cache = std::make_shared<cache::ResultCache>();
    core::SkeletonFramework cached(cache_options);
    cached.run_skeleton(skeleton, scenario::dedicated());  // prime
    const auto warm = time_reps(reps, [&cached, &skeleton] {
      cached.run_skeleton(skeleton, scenario::dedicated());
    });
    metrics["skeleton.warm_run_ms"] = median_seconds(warm) * 1e3;

    service_metric(metrics, skeleton, reps);

    std::string chaos_payload;
    archive::encode(chaos_payload, skeleton);
    std::string chaos_upload;
    archive::write_frame(chaos_upload, archive::PayloadKind::kSkeleton,
                         archive::kSkeletonVersion, chaos_payload);
    chaos_metric(metrics, chaos_upload);
  }

  // Bounded fig6-style pipeline: trace -> signature -> skeleton -> replay
  // for one benchmark at one size (construction dominates; scenarios are
  // covered by the skeleton runs above).
  {
    const auto sorted = time_reps(std::max(1, reps / 2), [] {
      core::SkeletonFramework pipeline;
      const skeleton::Skeleton skeleton = pipeline.construct(
          apps::find_benchmark("SP").make(apps::NasClass::kS), "SP", 0.05);
      if (skeleton.scaling_factor <= 0) std::abort();
    });
    metrics["pipeline.construct_ms"] = median_seconds(sorted) * 1e3;
  }

  return metrics;
}

std::string render_json(const std::map<std::string, double>& metrics,
                        int reps) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n";
  out << "  \"schema\": \"psk-bench-trajectory-v1\",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"metrics\": {\n";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << key << "\": " << value;
  }
  out << "\n  }\n}\n";
  return out.str();
}

/// Minimal scanner for the flat schema above: every `"key": <number>` pair
/// in the file, first occurrence wins.  Not a general JSON parser -- just
/// enough for files bench_record itself wrote.
std::map<std::string, double> parse_metrics(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "bench_record: cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::map<std::string, double> metrics;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    std::size_t cursor = key_end + 1;
    while (cursor < text.size() &&
           (text[cursor] == ':' || text[cursor] == ' ')) {
      ++cursor;
    }
    if (cursor > key_end + 1 && cursor < text.size() &&
        (std::isdigit(static_cast<unsigned char>(text[cursor])) ||
         text[cursor] == '-' || text[cursor] == '+')) {
      metrics.emplace(key, std::strtod(text.c_str() + cursor, nullptr));
    }
    pos = key_end + 1;
  }
  return metrics;
}

/// The CI gate: event-queue throughput must not regress past the budget.
/// Returns the number of gate failures.
int compare_against(const std::map<std::string, double>& metrics,
                    const std::string& baseline_path, double max_regress) {
  const std::map<std::string, double> baseline =
      parse_metrics(baseline_path);
  int failures = 0;
  for (const auto& [key, value] : metrics) {
    const auto it = baseline.find(key);
    if (it == baseline.end()) continue;
    const double old_value = it->second;
    const bool gated =
        key.rfind("event_queue.events_per_sec.", 0) == 0 ||
        key.rfind("service.requests_per_sec.", 0) == 0 ||
        key.rfind("service.chaos.", 0) == 0 ||
        key.rfind("scale.events_per_sec.", 0) == 0;
    const double change =
        old_value != 0.0 ? (value - old_value) / old_value : 0.0;
    std::printf("%-42s %14.4g -> %14.4g  (%+.1f%%)%s\n", key.c_str(),
                old_value, value, change * 100.0, gated ? "  [gated]" : "");
    if (gated && value < old_value * (1.0 - max_regress)) {
      std::printf("FAIL: %s regressed %.1f%% (budget %.0f%%)\n", key.c_str(),
                  -change * 100.0, max_regress * 100.0);
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    cli.require_known({"out", "reps", "quick", "compare", "max-regress"});
    const bool quick = cli.get_bool("quick", false);
    const int reps =
        static_cast<int>(cli.get_int("reps", quick ? 3 : 7));
    util::require(reps > 0, "bench_record: --reps must be positive");

    const std::map<std::string, double> metrics = measure(reps);
    const std::string json = render_json(metrics, reps);

    const std::string out_path = cli.get("out", "");
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      util::require(out.good(), "bench_record: cannot write " + out_path);
      out << json;
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fputs(json.c_str(), stdout);
    }

    const std::string baseline = cli.get("compare", "");
    if (!baseline.empty()) {
      const double max_regress = cli.get_double("max-regress", 0.15);
      util::require(max_regress > 0 && max_regress < 1,
                    "bench_record: --max-regress must be in (0, 1)");
      if (compare_against(metrics, baseline, max_regress) > 0) return 1;
      std::printf("OK: within %.0f%% of %s\n", max_regress * 100.0,
                  baseline.c_str());
    }
    return 0;
  } catch (const psk::Error& e) {
    std::fprintf(stderr, "bench_record: %s\n", e.what());
    return 2;
  }
}
