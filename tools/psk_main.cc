// psk: command-line front end for the performance-skeleton framework.
//
//   psk apps                               list bundled benchmarks
//   psk scenarios                          list sharing and fault scenarios
//   psk trace    --app=LU [--class=B] --out=lu.trace
//   psk compress --trace=lu.trace [--target-ratio=30] --out=lu.sig
//   psk skeleton --trace=lu.trace --target=2.0 --out=lu.skel
//   psk codegen  --skeleton=lu.skel --out=lu_skeleton.c
//   psk run      --skeleton=lu.skel [--scenario=cpu-one-node] [--seed=N]
//   psk predict  --app=LU [--class=B] --target=2.0 [--scenario=...]
//   psk info     --trace=F | --signature=F | --skeleton=F
//
// Everything runs on the simulated testbed; the emitted C program is the
// artifact for real clusters.
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "apps/nas.h"
#include "cache/cache.h"
#include "codegen/emit_c.h"
#include "core/experiment.h"
#include "core/framework.h"
#include "guard/salvage.h"
#include "guard/validate.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "sig/compress.h"
#include "sig/io.h"
#include "skeleton/io.h"
#include "skeleton/skeleton.h"
#include "skeleton/validate.h"
#include "svc/frame.h"
#include "trace/io.h"
#include "trace/stats.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/format.h"

namespace {

using namespace psk;

int usage() {
  std::fprintf(
      stderr,
      "usage: psk <command> [--flag=value ...]\n"
      "commands:\n"
      "  apps                                   list bundled benchmarks\n"
      "  scenarios                              list sharing and fault "
      "scenarios\n"
      "  trace    --app=A [--class=B] --out=F [--binary]\n"
      "  compress --trace=F [--target-ratio=R] --out=F\n"
      "  skeleton --trace=F --target=SECONDS --out=F\n"
      "  codegen  --skeleton=F --out=F.c        emit the C skeleton program\n"
      "  run      --skeleton=F [--scenario=S] [--seed=N]\n"
      "           [--trace-out=F.json] [--metrics-out=F]\n"
      "  predict  --app=A [--class=B] --target=SECONDS [--scenario=S]\n"
      "           [--jobs=N] [--trace-out=F.json] [--metrics-out=F]\n"
      "           [--phase-profile]\n"
      "  report   --out=F.md [--class=B] [--apps=CG,MG,...] [--jobs=N]\n"
      "           [--phase-profile]\n"
      "  info     --trace=F | --signature=F | --skeleton=F\n"
      "--jobs=N runs the measurement grid on N worker threads (default: one\n"
      "per hardware thread; 1 = serial; results are identical either way)\n"
      "run/predict/report also accept --cache-dir=D (persistent\n"
      "content-addressed result cache shared across invocations),\n"
      "--cache-mem=N (in-memory LRU entries, default 4096), --no-cache\n"
      "(disable memoization entirely) and --cache-stats[=F] (key=value\n"
      "hit/miss counters to stderr or file F).  Results are bit-identical\n"
      "with the cache on, off, cold or warm.\n"
      "--trace-out writes a Chrome trace_event JSON timeline of the\n"
      "instrumented run (open in chrome://tracing or Perfetto);\n"
      "--metrics-out writes a flat key=value metrics dump.  Both come from a\n"
      "dedicated serial fixed-seed run, so they are byte-identical for any\n"
      "--jobs value.  --phase-profile prints wall-clock pipeline phase\n"
      "timings to stderr.\n"
      "run/predict/report accept --topology=crossbar|fattree:<down,up>|\n"
      "dragonfly:<groups,routers> to pick the interconnect (default\n"
      "crossbar, the paper's testbed; hierarchical topologies use the\n"
      "incremental flow core that scales to thousands of ranks).\n"
      "run/predict/report accept --validate=strict|salvage|off (default\n"
      "strict): strict refuses semantically broken input, salvage recovers\n"
      "what it can from truncated files and downgrades validation errors to\n"
      "warnings, off skips the checks.\n"
      "exit codes: 1 usage/configuration, 2 validation/format, 3 runtime\n"
      "(simulation failure, deadlock, timeout).\n");
  return 1;
}

using svc::ValidateMode;

/// Parses --validate eagerly; an unknown mode throws ConfigError listing
/// the valid ones (strict|salvage|off).  Commands call this before any
/// expensive work so a typo fails fast, not after minutes of tracing.
ValidateMode validate_mode(const util::Cli& cli) {
  return svc::parse_validate_mode(cli.get("validate", "strict"));
}

/// Loads a skeleton honouring --validate: strict refuses both unparsable
/// and semantically broken files; salvage recovers the intact prefix of a
/// truncated file and downgrades validation errors to warnings; off loads
/// with no checks beyond the parser's own.
skeleton::Skeleton load_skeleton_checked(const std::string& path,
                                         ValidateMode mode) {
  if (mode == ValidateMode::kSalvage) {
    guard::SalvageReport report;
    std::optional<skeleton::Skeleton> value =
        guard::salvage_skeleton_file(path, report);
    if (!value.has_value()) throw FormatError(report.render());
    if (!report.clean) {
      std::fprintf(stderr, "psk: %s\n", report.render().c_str());
    }
    const guard::ValidationReport validation =
        guard::validate_skeleton(*value);
    if (!validation.ok() || validation.warning_count() > 0) {
      std::fprintf(stderr, "psk: %s\n", validation.render().c_str());
    }
    return *std::move(value);
  }
  skeleton::Skeleton skeleton = skeleton::load_skeleton(path);
  if (mode == ValidateMode::kStrict) {
    guard::require_valid(guard::validate_skeleton(skeleton));
  }
  return skeleton;
}

/// predict/report construct their artifacts in-process; validation there
/// checks the recorded trace (the root input of the whole pipeline).
void check_app_trace(const trace::Trace& trace, ValidateMode mode) {
  if (mode == ValidateMode::kOff) return;
  const guard::ValidationReport report = guard::validate_trace(trace);
  if (report.ok()) return;
  if (mode == ValidateMode::kStrict) guard::require_valid(report);
  std::fprintf(stderr, "psk: %s\n", report.render().c_str());
}

std::string require_flag(const util::Cli& cli, const std::string& name) {
  const std::string value = cli.get(name, "");
  util::require(!value.empty(), "missing required flag --" + name);
  return value;
}

/// Honours --topology on the commands that simulate: unknown specs throw
/// ConfigError listing the valid forms (crossbar | fattree:<down,up> |
/// dragonfly:<groups,routers>).  The default stays the paper's crossbar.
void apply_topology(const util::Cli& cli, sim::ClusterConfig& cluster) {
  const std::string spec = cli.get("topology", "");
  if (!spec.empty()) cluster.topology = sim::TopologySpec::parse(spec);
}

/// Builds the result cache the --cache-* flags describe; null when the user
/// passed --no-cache (call sites then run every simulation).
std::shared_ptr<cache::ResultCache> cache_from_cli(const util::Cli& cli) {
  if (cli.get_bool("no-cache", false)) return nullptr;
  cache::CacheOptions options;
  const std::int64_t entries = cli.get_int("cache-mem", 4096);
  util::require(entries >= 0, "--cache-mem must be >= 0");
  options.memory_entries = static_cast<std::size_t>(entries);
  options.disk_dir = cli.get("cache-dir", "");
  return std::make_shared<cache::ResultCache>(options);
}

/// Honours --cache-stats / --cache-stats=FILE.  The dump goes to stderr or
/// a side file, never stdout, so cold and warm runs stay byte-identical on
/// the primary output.
void report_cache_stats(const util::Cli& cli,
                        const cache::ResultCache* cache) {
  const std::string where = cli.get("cache-stats", "");
  if (where.empty() || cache == nullptr) return;
  const std::string text = cache::stats_kv(cache->stats());
  if (where == "true") {  // bare --cache-stats
    std::fprintf(stderr, "%s", text.c_str());
    return;
  }
  std::ofstream out(where);
  util::require(out.good(), "--cache-stats: cannot open " + where);
  out << text;
  std::printf("cache stats -> %s\n", where.c_str());
}

int cmd_apps() {
  std::printf("%-4s %s\n", "name", "description");
  for (const apps::BenchmarkDef& def : apps::suite()) {
    std::printf("%-4s %s\n", def.name, def.description);
  }
  return 0;
}

int cmd_scenarios() {
  std::printf("%-18s %s\n", scenario::dedicated().name,
              scenario::dedicated().description);
  for (const scenario::Scenario& scenario : scenario::paper_scenarios()) {
    std::printf("%-18s %s\n", scenario.name, scenario.description);
  }
  std::printf("%-18s %s\n", scenario::memory_hog().name,
              scenario::memory_hog().description);
  for (const scenario::Scenario& scenario : scenario::fault_scenarios()) {
    std::printf("%-18s %s\n", scenario.name, scenario.description);
  }
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const std::string app = require_flag(cli, "app");
  const std::string out = require_flag(cli, "out");
  const apps::NasClass cls = apps::class_from_name(cli.get("class", "B"));

  core::SkeletonFramework framework;
  const trace::Trace trace =
      framework.record(apps::find_benchmark(app).make(cls), app);
  if (cli.get_bool("binary", false)) {
    trace::save_trace_binary(out, trace);
  } else {
    trace::save_trace(out, trace);
  }
  std::printf("traced %s class %s: %.2f s, %zu events -> %s\n", app.c_str(),
              apps::class_name(cls), trace.elapsed(), trace.event_count(),
              out.c_str());
  return 0;
}

int cmd_compress(const util::Cli& cli) {
  const trace::Trace trace = trace::load_trace(require_flag(cli, "trace"));
  const std::string out = require_flag(cli, "out");
  sig::CompressOptions options;
  options.target_ratio = cli.get_double("target-ratio", 30.0);
  const sig::Signature signature = sig::compress(trace, options);
  sig::save_signature(out, signature);
  std::printf("compressed %s: ratio %.1fx at threshold %.2f, %zu leaves -> "
              "%s\n",
              trace.app_name.c_str(), signature.compression_ratio,
              signature.threshold, signature.total_leaves(), out.c_str());
  return 0;
}

int cmd_skeleton(const util::Cli& cli) {
  const trace::Trace trace = trace::load_trace(require_flag(cli, "trace"));
  const double target = cli.get_double("target", 1.0);
  const std::string out = require_flag(cli, "out");

  core::SkeletonFramework framework;
  const double k = std::max(1.0, trace.elapsed() / target);
  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, k);
  skeleton::save_skeleton(out, skeleton);
  std::string warning;
  if (!skeleton.good) {
    warning = " [WARNING: below smallest good size " +
              util::fixed(skeleton.min_good_time, 2) + " s]";
  }
  std::printf("skeleton for %s: K=%.1f, intended %.2f s%s -> %s\n",
              trace.app_name.c_str(), skeleton.scaling_factor,
              skeleton.intended_time, warning.c_str(), out.c_str());
  return 0;
}

int cmd_codegen(const util::Cli& cli) {
  const skeleton::Skeleton skeleton =
      skeleton::load_skeleton(require_flag(cli, "skeleton"));
  const std::string out = require_flag(cli, "out");
  codegen::write_c_program(out, skeleton);
  std::printf("emitted %s (compile: mpicc -O2 %s; run with %d ranks)\n",
              out.c_str(), out.c_str(), skeleton.rank_count());
  return 0;
}

int cmd_run(const util::Cli& cli) {
  const ValidateMode mode = validate_mode(cli);
  const skeleton::Skeleton skeleton =
      load_skeleton_checked(require_flag(cli, "skeleton"), mode);
  const scenario::Scenario& scenario =
      scenario::find_scenario(cli.get("scenario", "dedicated"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0));
  const std::string trace_out = cli.get("trace-out", "");
  const std::string metrics_out = cli.get("metrics-out", "");
  const bool observed = !trace_out.empty() || !metrics_out.empty();

  core::FrameworkOptions framework_options;
  framework_options.result_cache = cache_from_cli(cli);
  apply_topology(cli, framework_options.cluster);
  // Follow the file, not the default world size: a salvaged skeleton may
  // have fewer ranks than it was built with and must still replay.
  framework_options.ranks = skeleton.rank_count();
  core::SkeletonFramework framework(framework_options);
  obs::Recorder recorder;
  const double elapsed = framework.run_skeleton(
      skeleton, scenario, seed, {}, observed ? &recorder : nullptr);
  std::printf("skeleton '%s' under %s: %.3f s\n", skeleton.app_name.c_str(),
              scenario.name, elapsed);
  report_cache_stats(cli, framework_options.result_cache.get());
  if (!metrics_out.empty()) {
    recorder.write_metrics_file(metrics_out, elapsed);
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    recorder.write_trace_file(trace_out, elapsed);
    std::printf("trace -> %s (open in chrome://tracing)\n",
                trace_out.c_str());
  }
  return 0;
}

int cmd_predict(const util::Cli& cli) {
  const ValidateMode mode = validate_mode(cli);
  core::ExperimentConfig config;
  config.benchmarks = {require_flag(cli, "app")};
  config.app_class = apps::class_from_name(cli.get("class", "B"));
  const double target = cli.get_double("target", 2.0);
  config.skeleton_sizes = {target};
  config.jobs = static_cast<int>(cli.get_int("jobs", 0));
  config.framework.result_cache = cache_from_cli(cli);
  apply_topology(cli, config.framework.cluster);
  core::ExperimentDriver driver(config);

  const std::string which = cli.get("scenario", "");
  std::vector<core::GridCell> cells;
  if (which.empty()) {
    for (const scenario::Scenario& scenario : scenario::paper_scenarios()) {
      cells.push_back(core::GridCell{config.benchmarks[0], target, &scenario});
    }
  } else {
    // find_scenario covers every registry (paper, memory, fault) and throws
    // a ConfigError listing the valid names on a typo.
    cells.push_back(core::GridCell{config.benchmarks[0], target,
                                   &scenario::find_scenario(which)});
  }
  check_app_trace(driver.app_trace(config.benchmarks[0]), mode);
  const auto records = driver.predict_cells(cells);
  std::printf("%-15s %10s %10s %8s\n", "scenario", "predicted", "actual",
              "error");
  for (const core::PredictionRecord& record : records) {
    std::printf("%-15s %8.2f s %8.2f s %7.1f%%%s\n", record.scenario.c_str(),
                record.predicted, record.app_scenario, record.error_percent,
                record.good ? "" : "  [skeleton below good size]");
  }

  const std::string trace_out = cli.get("trace-out", "");
  const std::string metrics_out = cli.get("metrics-out", "");
  if (!trace_out.empty() || !metrics_out.empty()) {
    // A dedicated serial fixed-seed re-run of the full application under the
    // first requested scenario, so the dump is identical for any --jobs.
    obs::Recorder recorder;
    const double elapsed = driver.observe_app(config.benchmarks[0],
                                              *cells[0].scenario, recorder);
    if (!metrics_out.empty()) {
      recorder.write_metrics_file(metrics_out, elapsed);
      std::printf("metrics -> %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      recorder.write_trace_file(trace_out, elapsed);
      std::printf("trace -> %s (open in chrome://tracing)\n",
                  trace_out.c_str());
    }
  }
  if (cli.get_bool("phase-profile", false)) {
    std::fprintf(stderr, "%s", driver.phases().render().c_str());
  }
  report_cache_stats(cli, config.framework.result_cache.get());
  return 0;
}

int cmd_report(const util::Cli& cli) {
  const ValidateMode mode = validate_mode(cli);
  const std::string out_path = require_flag(cli, "out");
  core::ExperimentConfig config;
  config.app_class = apps::class_from_name(cli.get("class", "B"));
  if (cli.has("apps")) {
    config.benchmarks.clear();
    std::istringstream in(cli.get("apps", ""));
    std::string name;
    while (std::getline(in, name, ',')) config.benchmarks.push_back(name);
  }
  config.jobs = static_cast<int>(cli.get_int("jobs", 0));
  config.framework.result_cache = cache_from_cli(cli);
  apply_topology(cli, config.framework.cluster);
  core::ExperimentDriver driver(config);
  for (const std::string& app : config.benchmarks) {
    check_app_trace(driver.app_trace(app), mode);
  }
  // Evaluate the whole grid through the runner pool up front; the report
  // loops below then assemble records from warm caches.
  driver.run_grid();

  std::ofstream out(out_path);
  util::require(out.good(), "report: cannot open " + out_path);
  out << "# Performance-skeleton prediction report\n\n";
  out << "NAS class " << apps::class_name(config.app_class)
      << ", 4 ranks on 4 dual-core nodes; errors averaged over "
      << config.repetitions << " measurement pairs.\n\n";

  out << "## Smallest good skeletons\n\n";
  out << "| app | dedicated | smallest good skeleton |\n|---|---|---|\n";
  for (const std::string& app : config.benchmarks) {
    out << "| " << app << " | "
        << util::fixed(driver.app_trace(app).elapsed(), 1) << " s | "
        << util::fixed(driver.good_estimate(app).min_good_time, 2)
        << " s |\n";
  }

  out << "\n## Prediction error (%), per benchmark and skeleton size\n\n";
  out << "| app |";
  for (double size : config.skeleton_sizes) {
    out << " " << util::fixed(size, 1) << " s |";
  }
  out << "\n|---|";
  for (std::size_t i = 0; i < config.skeleton_sizes.size(); ++i) out << "---|";
  out << "\n";
  double total = 0;
  std::size_t cells = 0;
  for (const std::string& app : config.benchmarks) {
    out << "| " << app << " |";
    for (double size : config.skeleton_sizes) {
      double sum = 0;
      for (const auto& scenario : scenario::paper_scenarios()) {
        sum += driver.predict(app, size, scenario).error_percent;
      }
      const double mean = sum / 5.0;
      total += mean;
      ++cells;
      const bool good = driver.predict(app, size,
                                       scenario::paper_scenarios()[0])
                            .good;
      out << " " << util::fixed(mean, 1) << (good ? "" : "\\*") << " |";
    }
    out << "\n";
  }
  out << "\n\\* below the smallest good skeleton size\n\n";
  out << "Overall average error: **"
      << util::fixed(cells ? total / static_cast<double>(cells) : 0, 1)
      << "%**\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());
  if (cli.get_bool("phase-profile", false)) {
    std::fprintf(stderr, "%s", driver.phases().render().c_str());
  }
  report_cache_stats(cli, config.framework.result_cache.get());
  return 0;
}

int cmd_info(const util::Cli& cli) {
  if (cli.has("trace")) {
    const trace::Trace trace = trace::load_trace(cli.get("trace", ""));
    std::printf("trace of '%s': %d ranks, %zu events, %.3f s elapsed\n",
                trace.app_name.c_str(), trace.rank_count(),
                trace.event_count(), trace.elapsed());
    const trace::ActivityBreakdown activity =
        trace::activity_breakdown(trace);
    std::printf("activity: %s compute, %s MPI\n\n",
                util::percent(activity.compute_fraction).c_str(),
                util::percent(activity.mpi_fraction).c_str());
    const trace::CommMatrix matrix = trace::communication_matrix(trace);
    std::printf("point-to-point traffic (%s in %llu messages):\n%s\n",
                util::human_bytes(static_cast<std::uint64_t>(
                                      matrix.total_bytes()))
                    .c_str(),
                static_cast<unsigned long long>(matrix.total_messages()),
                matrix.render().c_str());
    std::printf("message sizes:\n%s\n",
                trace::message_size_histogram(trace).render().c_str());
    std::printf("call profile:\n%s",
                trace::call_profile(trace).render().c_str());
    return 0;
  }
  if (cli.has("signature")) {
    const sig::Signature signature =
        sig::load_signature(cli.get("signature", ""));
    std::printf("signature of '%s': %d ranks, %zu leaves, ratio %.1fx, "
                "threshold %.2f\n",
                signature.app_name.c_str(), signature.rank_count(),
                signature.total_leaves(), signature.compression_ratio,
                signature.threshold);
    std::printf("rank 0: %s\n",
                sig::to_string(signature.ranks[0].roots).c_str());
    return 0;
  }
  if (cli.has("skeleton")) {
    const skeleton::Skeleton skeleton =
        skeleton::load_skeleton(cli.get("skeleton", ""));
    const skeleton::ConsistencyReport report =
        skeleton::check_consistency(skeleton);
    std::printf("skeleton of '%s': K=%.1f, intended %.3f s, min good %.3f s, "
                "%s, %s\n",
                skeleton.app_name.c_str(), skeleton.scaling_factor,
                skeleton.intended_time, skeleton.min_good_time,
                skeleton.good ? "good" : "NOT good",
                report.consistent ? "consistent" : "INCONSISTENT");
    std::printf("rank 0: %s\n",
                sig::to_string(skeleton.ranks[0].roots).c_str());
    return 0;
  }
  std::fprintf(stderr, "info: pass --trace, --signature or --skeleton\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  try {
    // Each command declares the full set of flags it consults, so a typo'd
    // flag ("--job=4") fails with the valid list instead of being ignored.
    if (command == "apps") {
      cli.require_known({});
      return cmd_apps();
    }
    if (command == "scenarios") {
      cli.require_known({});
      return cmd_scenarios();
    }
    if (command == "trace") {
      cli.require_known({"app", "class", "out", "binary"});
      return cmd_trace(cli);
    }
    if (command == "compress") {
      cli.require_known({"trace", "target-ratio", "out"});
      return cmd_compress(cli);
    }
    if (command == "skeleton") {
      cli.require_known({"trace", "target", "out"});
      return cmd_skeleton(cli);
    }
    if (command == "codegen") {
      cli.require_known({"skeleton", "out"});
      return cmd_codegen(cli);
    }
    if (command == "run") {
      cli.require_known({"skeleton", "scenario", "seed", "validate",
                         "trace-out", "metrics-out", "cache-dir", "cache-mem",
                         "no-cache", "cache-stats", "topology"});
      return cmd_run(cli);
    }
    if (command == "predict") {
      cli.require_known({"app", "class", "target", "scenario", "jobs",
                         "validate", "trace-out", "metrics-out",
                         "phase-profile", "cache-dir", "cache-mem", "no-cache",
                         "cache-stats", "topology"});
      return cmd_predict(cli);
    }
    if (command == "report") {
      cli.require_known({"out", "class", "apps", "jobs", "validate",
                         "phase-profile", "cache-dir", "cache-mem", "no-cache",
                         "cache-stats", "topology"});
      return cmd_report(cli);
    }
    if (command == "info") {
      cli.require_known({"trace", "signature", "skeleton"});
      return cmd_info(cli);
    }
    // Distinct exit codes so scripts can tell misuse from bad input from a
    // failed simulation: 1 usage/config, 2 validation/format, 3 runtime.
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "psk %s: %s\n", command.c_str(), error.what());
    return 1;
  } catch (const guard::ValidationError& error) {
    std::fprintf(stderr, "psk %s: %s\n", command.c_str(), error.what());
    return 2;
  } catch (const FormatError& error) {
    std::fprintf(stderr, "psk %s: %s\n", command.c_str(), error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "psk %s: %s\n", command.c_str(), error.what());
    return 3;
  }
  return usage();
}
