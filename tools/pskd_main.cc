// pskd: the performance-skeleton prediction daemon.
//
// Pipe mode (default) reads PSKF frames (svc/frame.h) from stdin and
// writes one response frame per request to stdout, in arrival order.  A
// kFlush frame (or EOF) is the batch boundary: everything admitted since
// the previous flush executes on the worker pool and the responses are
// written back.  Every request gets a definite status -- requests shed at
// admission (kOverloaded) or failing to decode (kBadInput) answer
// immediately, in their arrival slot.
//
//   psk trace --app=CG --out=cg.trace
//   psk skeleton --trace=cg.trace --target=0.5 --out=cg.skel
//   ... build request frames (tests/svc_test.cc shows the encoding) ...
//   pskd --queue=64 --deadline=10 < requests.bin > responses.bin
//
// Socket mode (--listen=unix:<path> or tcp:<host>:<port>) accepts many
// concurrent connections, each with its own framed session
// (svc/session.h): responses stream back per connection as they complete,
// a disconnect cancels only that connection's queued requests, and all
// sessions share one admission-controlled service and hot-skeleton store.
// The bound address is announced on stderr ("pskd: listening on ...") so
// callers using an ephemeral TCP port can read it back.
//
// A pipe stream that ends mid-frame is a client disconnect: queued
// requests are canceled cooperatively (they answer kCanceled, not
// silence) and pskd exits with the validation/format code.
//
// Exit codes match psk: 1 usage/configuration, 2 protocol/format errors on
// the stream, 3 runtime failures.
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "svc/frame.h"
#include "svc/service.h"
#include "svc/session.h"
#include "svc/transport.h"
#include "util/cli.h"
#include "util/error.h"

namespace {

using namespace psk;

int usage() {
  std::fprintf(
      stderr,
      "usage: pskd [--flag=value ...] < requests > responses\n"
      "  --listen=ADDR      serve connections on unix:<path> or\n"
      "                     tcp:<host>:<port> instead of stdin/stdout;\n"
      "                     tcp port 0 binds an ephemeral port (announced\n"
      "                     on stderr)\n"
      "  --max-conns=N      socket mode: exit after N connections have\n"
      "                     ended (default 0 = serve forever)\n"
      "  --max-inflight=N   socket mode: per-connection in-flight cap\n"
      "                     (default 32); a connection past it sheds its\n"
      "                     own requests with 'overloaded'\n"
      "  --queue=N          admission queue capacity (default 64); requests\n"
      "                     beyond it shed with status 'overloaded'\n"
      "  --workers=N        execution threads (default: hardware threads)\n"
      "  --deadline=S       default per-request deadline in seconds when the\n"
      "                     request carries none (default 30; 0 = none)\n"
      "  --validate=MODE    override the per-request validate mode with\n"
      "                     strict|salvage|off (default: honour the request)\n"
      "  --no-salvage-fallback  reject unparsable strict uploads instead of\n"
      "                     salvaging them into a degraded response\n"
      "  --max-frame-mb=N   frame body cap in MiB (default 64); larger\n"
      "                     declared sizes are rejected before allocation\n"
      "  --store-dir=D      durable skeleton-store tier: retained skeletons\n"
      "                     spill to D and survive daemon restart (default:\n"
      "                     memory-only)\n"
      "  --store-disk-mb=N  cap on the durable tier in MiB (default 1024)\n"
      "  --chaos-seed=N     enable deterministic fault injection seeded by N\n"
      "  --chaos-profile=P  chaos preset (light|heavy|disk|network) or a\n"
      "                     comma list of knob=value pairs (default: light\n"
      "                     when --chaos-seed is given)\n"
      "  --metrics-out=F    write svc.* and cache.* counters to F at exit\n"
      "  --cache-dir=D --cache-mem=N --no-cache   result-cache knobs (as psk)\n"
      "exit codes: 1 usage/configuration, 2 protocol/format, 3 runtime\n");
  return 1;
}

/// One arrival slot: either an immediate response (shed at admission,
/// undecodable request) or a placeholder filled from drain() in order.
struct Slot {
  std::optional<svc::ResponseHeader> immediate;
};

struct Session {
  svc::Service* service = nullptr;
  std::optional<svc::ValidateMode> validate_override;
  std::vector<Slot> slots;
  /// Cancel flags of the requests admitted since the last flush, so a
  /// disconnect can cancel everything still queued.
  std::vector<std::shared_ptr<std::atomic<bool>>> cancels;
};

void write_response(const svc::ResponseHeader& response) {
  std::string body;
  svc::encode_response(body, response);
  std::string framed;
  // A response body past the u32 length field cannot be framed; failing
  // loudly (exit 2) beats desyncing every later frame on the stream.
  svc::append_frame(framed, svc::FrameKind::kResponse, body).or_throw();
  std::fwrite(framed.data(), 1, framed.size(), stdout);
}

void handle_request(Session& session, const std::string& body) {
  Slot slot;
  archive::Result<svc::RequestHeader> decoded = svc::decode_request(body);
  if (!decoded.ok()) {
    svc::ResponseHeader response;
    // The id is the first field; when even that is missing it stays 0.
    if (body.size() >= 4) {
      archive::Cursor in(body);
      response.id = in.u32();
    }
    response.status = svc::StatusCode::kBadInput;
    response.message = "bad request: " + decoded.error().render();
    slot.immediate = std::move(response);
    session.slots.push_back(std::move(slot));
    return;
  }
  svc::Request request;
  request.header = decoded.take();
  if (session.validate_override) {
    request.header.validate = *session.validate_override;
  }
  request.cancel = std::make_shared<std::atomic<bool>>(false);
  session.cancels.push_back(request.cancel);
  slot.immediate = session.service->submit(std::move(request));
  session.slots.push_back(std::move(slot));
}

/// Executes the admitted batch and writes every arrival slot's response in
/// order: immediate answers stay in place, drained answers fill the rest.
void flush(Session& session) {
  const std::vector<svc::ResponseHeader> drained = session.service->drain();
  std::size_t next = 0;
  for (const Slot& slot : session.slots) {
    if (slot.immediate) {
      write_response(*slot.immediate);
    } else {
      write_response(drained[next++]);
    }
  }
  std::fflush(stdout);
  session.slots.clear();
  session.cancels.clear();
}

svc::ServiceOptions make_service_options(const util::Cli& cli) {
  svc::ServiceOptions options;
  const std::int64_t queue = cli.get_int("queue", 64);
  util::require(queue >= 1, "--queue must be >= 1");
  options.queue_capacity = static_cast<std::size_t>(queue);
  options.workers = static_cast<int>(cli.get_int("workers", 0));
  options.default_deadline_seconds = cli.get_double("deadline", 30.0);
  util::require(options.default_deadline_seconds >= 0,
                "--deadline must be >= 0");
  options.salvage_fallback = !cli.get_bool("no-salvage-fallback", false);
  options.store_dir = cli.get("store-dir", "");
  const std::int64_t store_disk_mb = cli.get_int("store-disk-mb", 1024);
  util::require(store_disk_mb >= 1 && store_disk_mb <= (1 << 20),
                "--store-disk-mb must be in [1, 1048576]");
  options.store_disk_bytes = static_cast<std::size_t>(store_disk_mb) << 20;
  if (!cli.get_bool("no-cache", false)) {
    cache::CacheOptions cache_options;
    const std::int64_t entries = cli.get_int("cache-mem", 4096);
    util::require(entries >= 0, "--cache-mem must be >= 0");
    cache_options.memory_entries = static_cast<std::size_t>(entries);
    cache_options.disk_dir = cli.get("cache-dir", "");
    options.framework.result_cache =
        std::make_shared<cache::ResultCache>(cache_options);
  }
  return options;
}

std::size_t parse_max_body(const util::Cli& cli) {
  const std::int64_t max_frame_mb = cli.get_int("max-frame-mb", 64);
  // Bounded on both sides: `N << 20` on an unclamped 64-bit N silently
  // overflows size_t (a 32-bit size_t wraps at 4096), turning a typo into
  // a cap of 0 that rejects every frame -- or worse, a huge one.
  util::require(max_frame_mb >= 1 && max_frame_mb <= 1024,
                "--max-frame-mb must be in [1, 1024]");
  return static_cast<std::size_t>(max_frame_mb) << 20;
}

std::optional<svc::ValidateMode> parse_validate_override(
    const util::Cli& cli) {
  const std::string validate = cli.get("validate", "");
  if (validate.empty()) return std::nullopt;
  return svc::parse_validate_mode(validate);
}

/// Builds the fault-injection schedule when --chaos-seed/--chaos-profile
/// ask for one; null (zero overhead, identical code paths) otherwise.
std::unique_ptr<svc::ChaosSchedule> make_chaos(const util::Cli& cli) {
  const std::string seed_text = cli.get("chaos-seed", "");
  const std::string profile_text = cli.get("chaos-profile", "");
  if (seed_text.empty() && profile_text.empty()) return nullptr;
  const std::int64_t seed = cli.get_int("chaos-seed", 1);
  util::require(seed >= 0, "--chaos-seed must be >= 0");
  const svc::ChaosProfile profile =
      svc::parse_chaos_profile(profile_text.empty() ? "light" : profile_text);
  return std::make_unique<svc::ChaosSchedule>(
      static_cast<std::uint64_t>(seed), profile);
}

/// Operator-facing shutdown summary: the recovery machinery's counters, so
/// a soak or an incident leaves a trace of what actually fired.
void print_shutdown_summary(const svc::Service& service,
                            const svc::ChaosSchedule* chaos) {
  const auto u = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  const svc::StoreStats store = service.skeleton_store().stats();
  std::fprintf(stderr,
               "pskd: store: %llu hit(s), %llu disk hit(s), %llu miss(es), "
               "%llu evicted, %llu restored, %llu quarantined, "
               "%llu disk write failure(s)\n",
               u(store.hits), u(store.disk_hits), u(store.misses),
               u(store.evicted), u(store.restored), u(store.quarantined),
               u(store.disk_write_fail));
  const svc::ServiceStats stats = service.stats();
  if (stats.hung_detected != 0 || stats.workers_replaced != 0 ||
      stats.late_results_discarded != 0) {
    std::fprintf(stderr,
                 "pskd: supervisor: %llu hung request(s) answered, "
                 "%llu worker(s) replaced, %llu late result(s) discarded\n",
                 u(stats.hung_detected), u(stats.workers_replaced),
                 u(stats.late_results_discarded));
  }
  if (chaos != nullptr) {
    const svc::ChaosStats injected = chaos->stats();
    for (std::size_t site = 0; site < svc::kChaosSiteCount; ++site) {
      if (injected.consulted[site] == 0) continue;
      std::fprintf(stderr, "pskd: chaos: %s: injected %llu of %llu\n",
                   svc::chaos_site_name(static_cast<svc::ChaosSite>(site)),
                   u(injected.injected[site]), u(injected.consulted[site]));
    }
  }
}

void write_metrics(const util::Cli& cli, const svc::Service& service,
                   const svc::ServiceOptions& options) {
  const std::string metrics_out = cli.get("metrics-out", "");
  if (metrics_out.empty()) return;
  obs::MetricsRegistry metrics;
  service.publish(metrics);
  if (options.framework.result_cache) {
    options.framework.result_cache->publish(metrics);
  }
  std::ofstream out(metrics_out);
  util::require(out.good(), "--metrics-out: cannot open " + metrics_out);
  out << metrics.to_kv(0.0);
}

/// Socket mode: live service + one session per accepted connection.
int serve_socket(const util::Cli& cli, const std::string& listen) {
  const std::unique_ptr<svc::ChaosSchedule> chaos = make_chaos(cli);
  svc::ServiceOptions options = make_service_options(cli);
  options.chaos = chaos.get();
  const svc::ListenAddress address = svc::parse_listen_address(listen);

  svc::SessionOptions session_options;
  session_options.max_frame_bytes = parse_max_body(cli);
  session_options.validate_override = parse_validate_override(cli);
  session_options.chaos = chaos.get();
  const std::int64_t max_inflight = cli.get_int("max-inflight", 32);
  util::require(max_inflight >= 1, "--max-inflight must be >= 1");
  session_options.max_inflight = static_cast<std::size_t>(max_inflight);
  const std::int64_t max_conns = cli.get_int("max-conns", 0);
  util::require(max_conns >= 0, "--max-conns must be >= 0");

  svc::Service service(options);
  svc::SocketServer server(address, service, session_options);
  // Per-request deliver closures route every response to its session; the
  // global callback only sees requests submitted without one.
  service.start([](const svc::ResponseHeader&) {});
  std::fprintf(stderr, "pskd: listening on %s\n",
               svc::listen_address_name(server.bound_address()).c_str());
  server.serve(static_cast<std::size_t>(max_conns));
  server.stop();
  // Drain before the metrics snapshot so every admitted request is counted.
  service.stop();

  const svc::SocketServerStats stats = server.stats();
  std::fprintf(stderr,
               "pskd: served %llu connection(s): %llu clean, %llu mid-frame, "
               "%llu bad-stream, %llu write-failed, %llu accept retry(ies)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.clean),
               static_cast<unsigned long long>(stats.mid_frame),
               static_cast<unsigned long long>(stats.bad_stream),
               static_cast<unsigned long long>(stats.write_failed),
               static_cast<unsigned long long>(stats.accept_retries));
  print_shutdown_summary(service, chaos.get());
  write_metrics(cli, service, options);
  return 0;
}

int serve(const util::Cli& cli) {
  const std::unique_ptr<svc::ChaosSchedule> chaos = make_chaos(cli);
  svc::ServiceOptions options = make_service_options(cli);
  options.chaos = chaos.get();
  const std::size_t max_body = parse_max_body(cli);

  Session session;
  svc::Service service(options);
  session.service = &service;
  session.validate_override = parse_validate_override(cli);

  std::string buffer;
  char chunk[1 << 16];
  bool stream_ok = true;
  std::string stream_error;
  while (stream_ok) {
    const std::size_t got = std::fread(chunk, 1, sizeof chunk, stdin);
    if (got > 0) buffer.append(chunk, got);
    bool progressed = true;
    while (progressed && stream_ok) {
      svc::Frame frame;
      std::size_t consumed = 0;
      archive::Error error;
      switch (svc::try_parse_frame(buffer, max_body, frame, consumed, error)) {
        case svc::ParseProgress::kFrame:
          buffer.erase(0, consumed);
          if (frame.kind == svc::FrameKind::kRequest) {
            handle_request(session, frame.body);
          } else if (frame.kind == svc::FrameKind::kFlush) {
            flush(session);
          } else if (frame.kind == svc::FrameKind::kHealth) {
            // Health bypasses the batch boundary: the probe answers
            // immediately, ahead of any queued responses.
            std::string health_body;
            svc::encode_health(health_body, service.health());
            std::string framed;
            svc::append_frame(framed, svc::FrameKind::kHealth, health_body)
                .or_throw();
            std::fwrite(framed.data(), 1, framed.size(), stdout);
            std::fflush(stdout);
          } else {
            stream_ok = false;
            stream_error = "unexpected response frame from client";
          }
          break;
        case svc::ParseProgress::kNeedMore:
          progressed = false;
          break;
        case svc::ParseProgress::kBad:
          stream_ok = false;
          stream_error = error.render();
          break;
      }
    }
    if (got < sizeof chunk) {
      if (std::ferror(stdin)) {
        stream_ok = false;
        stream_error = "read failure on stdin";
      }
      if (std::feof(stdin)) break;
    }
  }

  const bool truncated = stream_ok && !buffer.empty();
  if (!stream_ok || truncated) {
    // Client disconnect / bad stream: cancel whatever is still queued so
    // every admitted request answers (kCanceled), never hangs.
    for (const auto& cancel : session.cancels) cancel->store(true);
  }
  flush(session);  // EOF is the final batch boundary

  print_shutdown_summary(service, chaos.get());
  write_metrics(cli, service, options);

  if (!stream_ok) throw FormatError("request stream: " + stream_error);
  if (truncated) {
    throw FormatError("request stream ended mid-frame (" +
                      std::to_string(buffer.size()) +
                      " trailing byte(s)); queued requests were canceled");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  try {
    if (cli.get_bool("help", false)) return usage();
    cli.require_known({"listen", "max-conns", "max-inflight", "queue",
                       "workers", "deadline", "validate",
                       "no-salvage-fallback", "max-frame-mb", "store-dir",
                       "store-disk-mb", "chaos-seed", "chaos-profile",
                       "metrics-out", "cache-dir", "cache-mem", "no-cache",
                       "help"});
    const std::string listen = cli.get("listen", "");
    if (!listen.empty()) return serve_socket(cli, listen);
    return serve(cli);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "pskd: %s\n", error.what());
    return 1;
  } catch (const FormatError& error) {
    std::fprintf(stderr, "pskd: %s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "pskd: %s\n", error.what());
    return 3;
  }
}
