# Empty compiler generated dependencies file for resource_selection.
# This may be replaced when dependencies are built.
