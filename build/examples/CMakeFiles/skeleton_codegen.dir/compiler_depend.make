# Empty compiler generated dependencies file for skeleton_codegen.
# This may be replaced when dependencies are built.
