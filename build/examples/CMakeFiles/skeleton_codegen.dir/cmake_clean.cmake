file(REMOVE_RECURSE
  "CMakeFiles/skeleton_codegen.dir/skeleton_codegen.cpp.o"
  "CMakeFiles/skeleton_codegen.dir/skeleton_codegen.cpp.o.d"
  "skeleton_codegen"
  "skeleton_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
