file(REMOVE_RECURSE
  "CMakeFiles/future_architecture.dir/future_architecture.cpp.o"
  "CMakeFiles/future_architecture.dir/future_architecture.cpp.o.d"
  "future_architecture"
  "future_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
