# Empty compiler generated dependencies file for future_architecture.
# This may be replaced when dependencies are built.
