file(REMOVE_RECURSE
  "CMakeFiles/psk.dir/psk_main.cc.o"
  "CMakeFiles/psk.dir/psk_main.cc.o.d"
  "psk"
  "psk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
