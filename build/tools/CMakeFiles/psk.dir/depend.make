# Empty dependencies file for psk.
# This may be replaced when dependencies are built.
