# Empty compiler generated dependencies file for sigio_test.
# This may be replaced when dependencies are built.
