file(REMOVE_RECURSE
  "CMakeFiles/sigio_test.dir/sigio_test.cc.o"
  "CMakeFiles/sigio_test.dir/sigio_test.cc.o.d"
  "sigio_test"
  "sigio_test.pdb"
  "sigio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
