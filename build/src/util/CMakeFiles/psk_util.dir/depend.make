# Empty dependencies file for psk_util.
# This may be replaced when dependencies are built.
