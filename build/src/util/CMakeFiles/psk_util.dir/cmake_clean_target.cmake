file(REMOVE_RECURSE
  "libpsk_util.a"
)
