file(REMOVE_RECURSE
  "CMakeFiles/psk_util.dir/cli.cc.o"
  "CMakeFiles/psk_util.dir/cli.cc.o.d"
  "CMakeFiles/psk_util.dir/format.cc.o"
  "CMakeFiles/psk_util.dir/format.cc.o.d"
  "CMakeFiles/psk_util.dir/log.cc.o"
  "CMakeFiles/psk_util.dir/log.cc.o.d"
  "CMakeFiles/psk_util.dir/stats.cc.o"
  "CMakeFiles/psk_util.dir/stats.cc.o.d"
  "CMakeFiles/psk_util.dir/table.cc.o"
  "CMakeFiles/psk_util.dir/table.cc.o.d"
  "libpsk_util.a"
  "libpsk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
