file(REMOVE_RECURSE
  "libpsk_skeleton.a"
)
