file(REMOVE_RECURSE
  "CMakeFiles/psk_skeleton.dir/io.cc.o"
  "CMakeFiles/psk_skeleton.dir/io.cc.o.d"
  "CMakeFiles/psk_skeleton.dir/scale.cc.o"
  "CMakeFiles/psk_skeleton.dir/scale.cc.o.d"
  "CMakeFiles/psk_skeleton.dir/skeleton.cc.o"
  "CMakeFiles/psk_skeleton.dir/skeleton.cc.o.d"
  "CMakeFiles/psk_skeleton.dir/validate.cc.o"
  "CMakeFiles/psk_skeleton.dir/validate.cc.o.d"
  "libpsk_skeleton.a"
  "libpsk_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
