# Empty compiler generated dependencies file for psk_skeleton.
# This may be replaced when dependencies are built.
