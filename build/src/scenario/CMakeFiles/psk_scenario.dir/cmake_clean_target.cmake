file(REMOVE_RECURSE
  "libpsk_scenario.a"
)
