# Empty dependencies file for psk_scenario.
# This may be replaced when dependencies are built.
