file(REMOVE_RECURSE
  "CMakeFiles/psk_scenario.dir/scenario.cc.o"
  "CMakeFiles/psk_scenario.dir/scenario.cc.o.d"
  "libpsk_scenario.a"
  "libpsk_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
