file(REMOVE_RECURSE
  "CMakeFiles/psk_core.dir/coschedule.cc.o"
  "CMakeFiles/psk_core.dir/coschedule.cc.o.d"
  "CMakeFiles/psk_core.dir/experiment.cc.o"
  "CMakeFiles/psk_core.dir/experiment.cc.o.d"
  "CMakeFiles/psk_core.dir/framework.cc.o"
  "CMakeFiles/psk_core.dir/framework.cc.o.d"
  "libpsk_core.a"
  "libpsk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
