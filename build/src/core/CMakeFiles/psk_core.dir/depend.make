# Empty dependencies file for psk_core.
# This may be replaced when dependencies are built.
