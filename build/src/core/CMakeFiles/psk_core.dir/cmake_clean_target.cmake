file(REMOVE_RECURSE
  "libpsk_core.a"
)
