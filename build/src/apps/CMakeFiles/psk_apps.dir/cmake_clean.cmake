file(REMOVE_RECURSE
  "CMakeFiles/psk_apps.dir/bt.cc.o"
  "CMakeFiles/psk_apps.dir/bt.cc.o.d"
  "CMakeFiles/psk_apps.dir/cg.cc.o"
  "CMakeFiles/psk_apps.dir/cg.cc.o.d"
  "CMakeFiles/psk_apps.dir/common.cc.o"
  "CMakeFiles/psk_apps.dir/common.cc.o.d"
  "CMakeFiles/psk_apps.dir/ep.cc.o"
  "CMakeFiles/psk_apps.dir/ep.cc.o.d"
  "CMakeFiles/psk_apps.dir/ft.cc.o"
  "CMakeFiles/psk_apps.dir/ft.cc.o.d"
  "CMakeFiles/psk_apps.dir/is.cc.o"
  "CMakeFiles/psk_apps.dir/is.cc.o.d"
  "CMakeFiles/psk_apps.dir/lu.cc.o"
  "CMakeFiles/psk_apps.dir/lu.cc.o.d"
  "CMakeFiles/psk_apps.dir/mg.cc.o"
  "CMakeFiles/psk_apps.dir/mg.cc.o.d"
  "CMakeFiles/psk_apps.dir/registry.cc.o"
  "CMakeFiles/psk_apps.dir/registry.cc.o.d"
  "CMakeFiles/psk_apps.dir/sp.cc.o"
  "CMakeFiles/psk_apps.dir/sp.cc.o.d"
  "libpsk_apps.a"
  "libpsk_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
