
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bt.cc" "src/apps/CMakeFiles/psk_apps.dir/bt.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/bt.cc.o.d"
  "/root/repo/src/apps/cg.cc" "src/apps/CMakeFiles/psk_apps.dir/cg.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/cg.cc.o.d"
  "/root/repo/src/apps/common.cc" "src/apps/CMakeFiles/psk_apps.dir/common.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/common.cc.o.d"
  "/root/repo/src/apps/ep.cc" "src/apps/CMakeFiles/psk_apps.dir/ep.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/ep.cc.o.d"
  "/root/repo/src/apps/ft.cc" "src/apps/CMakeFiles/psk_apps.dir/ft.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/ft.cc.o.d"
  "/root/repo/src/apps/is.cc" "src/apps/CMakeFiles/psk_apps.dir/is.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/is.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/apps/CMakeFiles/psk_apps.dir/lu.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/lu.cc.o.d"
  "/root/repo/src/apps/mg.cc" "src/apps/CMakeFiles/psk_apps.dir/mg.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/mg.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/psk_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/sp.cc" "src/apps/CMakeFiles/psk_apps.dir/sp.cc.o" "gcc" "src/apps/CMakeFiles/psk_apps.dir/sp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/psk_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
