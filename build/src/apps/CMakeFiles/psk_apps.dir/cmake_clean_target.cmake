file(REMOVE_RECURSE
  "libpsk_apps.a"
)
