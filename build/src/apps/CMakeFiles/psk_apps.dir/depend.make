# Empty dependencies file for psk_apps.
# This may be replaced when dependencies are built.
