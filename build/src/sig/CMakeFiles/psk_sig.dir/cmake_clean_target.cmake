file(REMOVE_RECURSE
  "libpsk_sig.a"
)
