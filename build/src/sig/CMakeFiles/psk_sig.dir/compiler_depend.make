# Empty compiler generated dependencies file for psk_sig.
# This may be replaced when dependencies are built.
