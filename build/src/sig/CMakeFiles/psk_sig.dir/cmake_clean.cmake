file(REMOVE_RECURSE
  "CMakeFiles/psk_sig.dir/cluster.cc.o"
  "CMakeFiles/psk_sig.dir/cluster.cc.o.d"
  "CMakeFiles/psk_sig.dir/compress.cc.o"
  "CMakeFiles/psk_sig.dir/compress.cc.o.d"
  "CMakeFiles/psk_sig.dir/io.cc.o"
  "CMakeFiles/psk_sig.dir/io.cc.o.d"
  "CMakeFiles/psk_sig.dir/signature.cc.o"
  "CMakeFiles/psk_sig.dir/signature.cc.o.d"
  "libpsk_sig.a"
  "libpsk_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
