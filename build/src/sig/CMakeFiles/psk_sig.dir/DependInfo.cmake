
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sig/cluster.cc" "src/sig/CMakeFiles/psk_sig.dir/cluster.cc.o" "gcc" "src/sig/CMakeFiles/psk_sig.dir/cluster.cc.o.d"
  "/root/repo/src/sig/compress.cc" "src/sig/CMakeFiles/psk_sig.dir/compress.cc.o" "gcc" "src/sig/CMakeFiles/psk_sig.dir/compress.cc.o.d"
  "/root/repo/src/sig/io.cc" "src/sig/CMakeFiles/psk_sig.dir/io.cc.o" "gcc" "src/sig/CMakeFiles/psk_sig.dir/io.cc.o.d"
  "/root/repo/src/sig/signature.cc" "src/sig/CMakeFiles/psk_sig.dir/signature.cc.o" "gcc" "src/sig/CMakeFiles/psk_sig.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/psk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/psk_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
