file(REMOVE_RECURSE
  "libpsk_mpi.a"
)
