file(REMOVE_RECURSE
  "CMakeFiles/psk_mpi.dir/comm.cc.o"
  "CMakeFiles/psk_mpi.dir/comm.cc.o.d"
  "CMakeFiles/psk_mpi.dir/message_engine.cc.o"
  "CMakeFiles/psk_mpi.dir/message_engine.cc.o.d"
  "CMakeFiles/psk_mpi.dir/types.cc.o"
  "CMakeFiles/psk_mpi.dir/types.cc.o.d"
  "CMakeFiles/psk_mpi.dir/world.cc.o"
  "CMakeFiles/psk_mpi.dir/world.cc.o.d"
  "libpsk_mpi.a"
  "libpsk_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
