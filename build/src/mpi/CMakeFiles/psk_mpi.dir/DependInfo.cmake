
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/comm.cc" "src/mpi/CMakeFiles/psk_mpi.dir/comm.cc.o" "gcc" "src/mpi/CMakeFiles/psk_mpi.dir/comm.cc.o.d"
  "/root/repo/src/mpi/message_engine.cc" "src/mpi/CMakeFiles/psk_mpi.dir/message_engine.cc.o" "gcc" "src/mpi/CMakeFiles/psk_mpi.dir/message_engine.cc.o.d"
  "/root/repo/src/mpi/types.cc" "src/mpi/CMakeFiles/psk_mpi.dir/types.cc.o" "gcc" "src/mpi/CMakeFiles/psk_mpi.dir/types.cc.o.d"
  "/root/repo/src/mpi/world.cc" "src/mpi/CMakeFiles/psk_mpi.dir/world.cc.o" "gcc" "src/mpi/CMakeFiles/psk_mpi.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/psk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
