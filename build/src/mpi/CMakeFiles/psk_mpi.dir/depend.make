# Empty dependencies file for psk_mpi.
# This may be replaced when dependencies are built.
