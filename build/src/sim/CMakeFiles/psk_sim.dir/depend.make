# Empty dependencies file for psk_sim.
# This may be replaced when dependencies are built.
