file(REMOVE_RECURSE
  "libpsk_sim.a"
)
