file(REMOVE_RECURSE
  "CMakeFiles/psk_sim.dir/cpu.cc.o"
  "CMakeFiles/psk_sim.dir/cpu.cc.o.d"
  "CMakeFiles/psk_sim.dir/engine.cc.o"
  "CMakeFiles/psk_sim.dir/engine.cc.o.d"
  "CMakeFiles/psk_sim.dir/event_queue.cc.o"
  "CMakeFiles/psk_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/psk_sim.dir/machine.cc.o"
  "CMakeFiles/psk_sim.dir/machine.cc.o.d"
  "CMakeFiles/psk_sim.dir/network.cc.o"
  "CMakeFiles/psk_sim.dir/network.cc.o.d"
  "libpsk_sim.a"
  "libpsk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
