
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/event.cc" "src/trace/CMakeFiles/psk_trace.dir/event.cc.o" "gcc" "src/trace/CMakeFiles/psk_trace.dir/event.cc.o.d"
  "/root/repo/src/trace/fold.cc" "src/trace/CMakeFiles/psk_trace.dir/fold.cc.o" "gcc" "src/trace/CMakeFiles/psk_trace.dir/fold.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/trace/CMakeFiles/psk_trace.dir/io.cc.o" "gcc" "src/trace/CMakeFiles/psk_trace.dir/io.cc.o.d"
  "/root/repo/src/trace/recorder.cc" "src/trace/CMakeFiles/psk_trace.dir/recorder.cc.o" "gcc" "src/trace/CMakeFiles/psk_trace.dir/recorder.cc.o.d"
  "/root/repo/src/trace/stats.cc" "src/trace/CMakeFiles/psk_trace.dir/stats.cc.o" "gcc" "src/trace/CMakeFiles/psk_trace.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/psk_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
