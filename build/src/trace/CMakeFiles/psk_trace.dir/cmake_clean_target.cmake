file(REMOVE_RECURSE
  "libpsk_trace.a"
)
