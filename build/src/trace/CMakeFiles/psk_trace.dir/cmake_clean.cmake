file(REMOVE_RECURSE
  "CMakeFiles/psk_trace.dir/event.cc.o"
  "CMakeFiles/psk_trace.dir/event.cc.o.d"
  "CMakeFiles/psk_trace.dir/fold.cc.o"
  "CMakeFiles/psk_trace.dir/fold.cc.o.d"
  "CMakeFiles/psk_trace.dir/io.cc.o"
  "CMakeFiles/psk_trace.dir/io.cc.o.d"
  "CMakeFiles/psk_trace.dir/recorder.cc.o"
  "CMakeFiles/psk_trace.dir/recorder.cc.o.d"
  "CMakeFiles/psk_trace.dir/stats.cc.o"
  "CMakeFiles/psk_trace.dir/stats.cc.o.d"
  "libpsk_trace.a"
  "libpsk_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
