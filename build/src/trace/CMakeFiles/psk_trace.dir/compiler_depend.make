# Empty compiler generated dependencies file for psk_trace.
# This may be replaced when dependencies are built.
