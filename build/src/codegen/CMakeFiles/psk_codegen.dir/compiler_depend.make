# Empty compiler generated dependencies file for psk_codegen.
# This may be replaced when dependencies are built.
