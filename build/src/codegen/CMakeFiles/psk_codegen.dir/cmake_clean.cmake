file(REMOVE_RECURSE
  "CMakeFiles/psk_codegen.dir/emit_c.cc.o"
  "CMakeFiles/psk_codegen.dir/emit_c.cc.o.d"
  "libpsk_codegen.a"
  "libpsk_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psk_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
