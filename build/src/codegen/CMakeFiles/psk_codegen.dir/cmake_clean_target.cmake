file(REMOVE_RECURSE
  "libpsk_codegen.a"
)
