file(REMOVE_RECURSE
  "CMakeFiles/fig3_error_by_benchmark.dir/fig3_error_by_benchmark.cc.o"
  "CMakeFiles/fig3_error_by_benchmark.dir/fig3_error_by_benchmark.cc.o.d"
  "fig3_error_by_benchmark"
  "fig3_error_by_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_error_by_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
