# Empty compiler generated dependencies file for fig3_error_by_benchmark.
# This may be replaced when dependencies are built.
