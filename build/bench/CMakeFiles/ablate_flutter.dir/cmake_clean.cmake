file(REMOVE_RECURSE
  "CMakeFiles/ablate_flutter.dir/ablate_flutter.cc.o"
  "CMakeFiles/ablate_flutter.dir/ablate_flutter.cc.o.d"
  "ablate_flutter"
  "ablate_flutter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_flutter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
