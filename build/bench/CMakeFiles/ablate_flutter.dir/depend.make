# Empty dependencies file for ablate_flutter.
# This may be replaced when dependencies are built.
