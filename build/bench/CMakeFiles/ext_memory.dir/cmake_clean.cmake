file(REMOVE_RECURSE
  "CMakeFiles/ext_memory.dir/ext_memory.cc.o"
  "CMakeFiles/ext_memory.dir/ext_memory.cc.o.d"
  "ext_memory"
  "ext_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
