
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_memory.cc" "bench/CMakeFiles/ext_memory.dir/ext_memory.cc.o" "gcc" "bench/CMakeFiles/ext_memory.dir/ext_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/psk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/psk_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/psk_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/psk_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/psk_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/psk_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/psk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/psk_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
