file(REMOVE_RECURSE
  "CMakeFiles/fig5_error_by_size.dir/fig5_error_by_size.cc.o"
  "CMakeFiles/fig5_error_by_size.dir/fig5_error_by_size.cc.o.d"
  "fig5_error_by_size"
  "fig5_error_by_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_error_by_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
