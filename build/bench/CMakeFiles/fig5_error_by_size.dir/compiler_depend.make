# Empty compiler generated dependencies file for fig5_error_by_size.
# This may be replaced when dependencies are built.
