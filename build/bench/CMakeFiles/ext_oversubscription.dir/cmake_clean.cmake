file(REMOVE_RECURSE
  "CMakeFiles/ext_oversubscription.dir/ext_oversubscription.cc.o"
  "CMakeFiles/ext_oversubscription.dir/ext_oversubscription.cc.o.d"
  "ext_oversubscription"
  "ext_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
