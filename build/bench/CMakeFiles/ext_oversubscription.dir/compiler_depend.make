# Empty compiler generated dependencies file for ext_oversubscription.
# This may be replaced when dependencies are built.
