# Empty dependencies file for ablate_latency_scaling.
# This may be replaced when dependencies are built.
