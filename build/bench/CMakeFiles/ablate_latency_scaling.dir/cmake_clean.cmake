file(REMOVE_RECURSE
  "CMakeFiles/ablate_latency_scaling.dir/ablate_latency_scaling.cc.o"
  "CMakeFiles/ablate_latency_scaling.dir/ablate_latency_scaling.cc.o.d"
  "ablate_latency_scaling"
  "ablate_latency_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_latency_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
