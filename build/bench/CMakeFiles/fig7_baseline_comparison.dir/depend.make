# Empty dependencies file for fig7_baseline_comparison.
# This may be replaced when dependencies are built.
