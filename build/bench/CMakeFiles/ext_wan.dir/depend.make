# Empty dependencies file for ext_wan.
# This may be replaced when dependencies are built.
