file(REMOVE_RECURSE
  "CMakeFiles/ext_wan.dir/ext_wan.cc.o"
  "CMakeFiles/ext_wan.dir/ext_wan.cc.o.d"
  "ext_wan"
  "ext_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
