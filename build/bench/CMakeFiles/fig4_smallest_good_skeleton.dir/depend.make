# Empty dependencies file for fig4_smallest_good_skeleton.
# This may be replaced when dependencies are built.
