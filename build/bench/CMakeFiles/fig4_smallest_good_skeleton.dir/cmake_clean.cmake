file(REMOVE_RECURSE
  "CMakeFiles/fig4_smallest_good_skeleton.dir/fig4_smallest_good_skeleton.cc.o"
  "CMakeFiles/fig4_smallest_good_skeleton.dir/fig4_smallest_good_skeleton.cc.o.d"
  "fig4_smallest_good_skeleton"
  "fig4_smallest_good_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_smallest_good_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
