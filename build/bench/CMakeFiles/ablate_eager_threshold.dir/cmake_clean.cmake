file(REMOVE_RECURSE
  "CMakeFiles/ablate_eager_threshold.dir/ablate_eager_threshold.cc.o"
  "CMakeFiles/ablate_eager_threshold.dir/ablate_eager_threshold.cc.o.d"
  "ablate_eager_threshold"
  "ablate_eager_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_eager_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
