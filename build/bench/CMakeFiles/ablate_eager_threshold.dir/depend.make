# Empty dependencies file for ablate_eager_threshold.
# This may be replaced when dependencies are built.
