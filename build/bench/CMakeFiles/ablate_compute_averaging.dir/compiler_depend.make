# Empty compiler generated dependencies file for ablate_compute_averaging.
# This may be replaced when dependencies are built.
