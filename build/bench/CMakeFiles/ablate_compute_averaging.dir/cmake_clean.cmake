file(REMOVE_RECURSE
  "CMakeFiles/ablate_compute_averaging.dir/ablate_compute_averaging.cc.o"
  "CMakeFiles/ablate_compute_averaging.dir/ablate_compute_averaging.cc.o.d"
  "ablate_compute_averaging"
  "ablate_compute_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_compute_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
