# Empty compiler generated dependencies file for fig6_error_by_scenario.
# This may be replaced when dependencies are built.
