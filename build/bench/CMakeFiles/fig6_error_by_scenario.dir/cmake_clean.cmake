file(REMOVE_RECURSE
  "CMakeFiles/fig6_error_by_scenario.dir/fig6_error_by_scenario.cc.o"
  "CMakeFiles/fig6_error_by_scenario.dir/fig6_error_by_scenario.cc.o.d"
  "fig6_error_by_scenario"
  "fig6_error_by_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_error_by_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
