# Empty compiler generated dependencies file for ext_coscheduled.
# This may be replaced when dependencies are built.
