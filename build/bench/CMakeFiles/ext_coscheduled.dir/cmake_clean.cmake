file(REMOVE_RECURSE
  "CMakeFiles/ext_coscheduled.dir/ext_coscheduled.cc.o"
  "CMakeFiles/ext_coscheduled.dir/ext_coscheduled.cc.o.d"
  "ext_coscheduled"
  "ext_coscheduled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_coscheduled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
