file(REMOVE_RECURSE
  "CMakeFiles/ext_duration_distribution.dir/ext_duration_distribution.cc.o"
  "CMakeFiles/ext_duration_distribution.dir/ext_duration_distribution.cc.o.d"
  "ext_duration_distribution"
  "ext_duration_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_duration_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
