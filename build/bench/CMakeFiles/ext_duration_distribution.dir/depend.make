# Empty dependencies file for ext_duration_distribution.
# This may be replaced when dependencies are built.
