file(REMOVE_RECURSE
  "CMakeFiles/ablate_similarity_threshold.dir/ablate_similarity_threshold.cc.o"
  "CMakeFiles/ablate_similarity_threshold.dir/ablate_similarity_threshold.cc.o.d"
  "ablate_similarity_threshold"
  "ablate_similarity_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_similarity_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
