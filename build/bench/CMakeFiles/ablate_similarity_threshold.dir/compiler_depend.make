# Empty compiler generated dependencies file for ablate_similarity_threshold.
# This may be replaced when dependencies are built.
