# Empty compiler generated dependencies file for ablate_compression_ratio.
# This may be replaced when dependencies are built.
