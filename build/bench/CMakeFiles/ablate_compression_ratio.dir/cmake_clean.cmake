file(REMOVE_RECURSE
  "CMakeFiles/ablate_compression_ratio.dir/ablate_compression_ratio.cc.o"
  "CMakeFiles/ablate_compression_ratio.dir/ablate_compression_ratio.cc.o.d"
  "ablate_compression_ratio"
  "ablate_compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
