file(REMOVE_RECURSE
  "CMakeFiles/ext_full_suite.dir/ext_full_suite.cc.o"
  "CMakeFiles/ext_full_suite.dir/ext_full_suite.cc.o.d"
  "ext_full_suite"
  "ext_full_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_full_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
