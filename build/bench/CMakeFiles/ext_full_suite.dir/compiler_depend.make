# Empty compiler generated dependencies file for ext_full_suite.
# This may be replaced when dependencies are built.
