// libFuzzer harness for the durable skeleton-store entry codec
// (svc/store.h, PSKS1 framing).
//
// A store entry file is the one artifact pskd both writes and later
// re-reads across restarts, so its decoder faces bytes that survived
// crashes, torn writes and bit rot.  Invariants checked beyond "does not
// crash":
//   - anything decode_store_entry accepts satisfies the content-address
//     invariant hash == fingerprint64(payload),
//   - accepted bytes are canonical: re-encoding the decoded entry
//     reproduces the input exactly (there is only one valid encoding of
//     a payload, so no mutation can alias another entry),
//   - rejected bytes carry a typed error (Result-based API, no throws),
//   - the quarantine diagnostic path (guard::salvage_skeleton_bytes over
//     the damaged payload) never crashes on arbitrary input.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "archive/wire.h"
#include "guard/salvage.h"
#include "svc/store.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    psk::archive::Result<psk::svc::StoreEntry> decoded =
        psk::svc::decode_store_entry(bytes);
    if (decoded.ok()) {
      const psk::svc::StoreEntry& entry = decoded.value();
      if (entry.hash != psk::archive::fingerprint64(entry.payload)) {
        std::abort();  // content-address invariant violated
      }
      const std::string reencoded =
          psk::svc::encode_store_entry(entry.hash, entry.payload);
      if (reencoded != bytes) {
        std::abort();  // accepted bytes must be the canonical encoding
      }
    } else {
      // The quarantine path: corrupt entries are inspected with the
      // salvage decoder for the operator log.  The store runs this on
      // whatever the disk returned, so it must hold up under arbitrary
      // bytes.  The payload region is wherever the declared size points;
      // feed the raw tail past the fixed header, clamped to the buffer.
      if (bytes.size() > 17) {
        psk::guard::SalvageReport report;
        psk::guard::salvage_skeleton_bytes(
            std::string(bytes.substr(17, bytes.size() - 17)), report);
      }
    }
  } catch (const psk::Error&) {
    // Result-based API; an Error here is tolerated but unexpected.
  }
  return 0;
}
