psk-signature 1
app x
threshold 0.1
ratio 1
ranks -1
