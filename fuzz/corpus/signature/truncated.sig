psk-signature 1
app seed
threshold 0.050000000000000003
ratio 2
ranks 2
rank 0 1.5 0.25 1
  L 3 1
    E Send 1 0 4096 0.1000000000000000