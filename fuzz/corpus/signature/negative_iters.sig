psk-signature 1
app x
threshold 0.1
ratio 1
ranks 1
rank 0 1 0
loop -3 1
