// Regenerates the checked-in fuzz seed corpus (fuzz/corpus/...).
//
// Run with the corpus root as the only argument:
//     fuzz_make_seeds fuzz/corpus
// Seeds are small, valid-by-construction documents plus a few deliberately
// damaged variants (truncations, a flipped checksum byte), so every parser
// branch the harnesses guard -- accept, reject, salvage-prefix -- has at
// least one covering input before the fuzzer mutates anything.  Output is
// deterministic: regenerating must not dirty the checkout.
#include <cstdio>
#include <fstream>
#include <string>

#include "archive/archive.h"
#include "archive/codec.h"
#include "sig/io.h"
#include "sig/signature.h"
#include "skeleton/io.h"
#include "skeleton/skeleton.h"
#include "svc/frame.h"
#include "svc/store.h"
#include "trace/event.h"
#include "trace/io.h"
#include "util/error.h"

namespace {

using namespace psk;

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  util::require(out.good(), "cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  util::require(out.good(), "cannot write " + path);
}

trace::Trace sample_trace() {
  trace::Trace t;
  t.app_name = "seed";
  for (int rank = 0; rank < 2; ++rank) {
    trace::RankTrace rt;
    rt.rank = rank;
    rt.total_time = 1.5;
    rt.final_compute = 0.25;
    trace::TraceEvent send;
    send.type = mpi::CallType::kSend;
    send.peer = 1 - rank;
    send.bytes = 4096;
    send.tag = 7;
    send.t_start = 0.1;
    send.t_end = 0.2;
    send.pre_compute = 0.1;
    trace::TraceEvent recv = send;
    recv.type = mpi::CallType::kRecv;
    rt.events = rank == 0 ? std::vector{send, recv} : std::vector{recv, send};
    t.ranks.push_back(rt);
  }
  return t;
}

sig::Signature sample_signature() {
  sig::Signature s;
  s.app_name = "seed";
  s.threshold = 0.05;
  s.compression_ratio = 2;
  for (int rank = 0; rank < 2; ++rank) {
    sig::RankSignature rs;
    rs.rank = rank;
    rs.total_time = 1.5;
    rs.final_compute = 0.25;
    sig::SigEvent event;
    event.type = rank == 0 ? mpi::CallType::kSend : mpi::CallType::kRecv;
    event.peer = 1 - rank;
    event.bytes = 4096;
    event.pre_compute = 0.1;
    event.mean_duration = 0.1;
    event.cluster_id = rank;
    rs.roots.push_back(sig::SigNode::loop(3, {sig::SigNode::leaf(event)}));
    s.ranks.push_back(rs);
  }
  return s;
}

skeleton::Skeleton sample_skeleton() {
  skeleton::Skeleton k;
  const sig::Signature s = sample_signature();
  k.app_name = s.app_name;
  k.scaling_factor = 10;
  k.intended_time = 0.15;
  k.min_good_time = 0.1;
  k.good = true;
  k.ranks = s.ranks;
  return k;
}

std::string framed(archive::PayloadKind kind, const std::string& payload) {
  std::string out;
  archive::write_frame(out, kind, 1, payload);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s corpus-root\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];

  // ------------------------------------------------------------ trace text
  const std::string trace_text = trace::trace_to_string(sample_trace());
  write_file(root + "/trace_text/valid.trace", trace_text);
  write_file(root + "/trace_text/truncated.trace",
             trace_text.substr(0, trace_text.size() * 2 / 3));
  write_file(root + "/trace_text/header_only.trace", "psk-trace 1\napp x\n");
  write_file(root + "/trace_text/garbage.trace", "not a trace\n\x01\x02\xff");
  write_file(root + "/trace_text/empty.trace", "");
  write_file(root + "/trace_text/negative_ranks.trace",
             "psk-trace 1\napp x\nranks -1\n");

  // ------------------------------------------------------- signature text
  const std::string sig_text = sig::signature_to_string(sample_signature());
  const std::string skel_text = skeleton::skeleton_to_string(sample_skeleton());
  write_file(root + "/signature/valid.sig", sig_text);
  write_file(root + "/signature/valid.skel", skel_text);
  write_file(root + "/signature/truncated.sig",
             sig_text.substr(0, sig_text.size() / 2));
  write_file(root + "/signature/negative_iters.sig",
             "psk-signature 1\napp x\nthreshold 0.1\nratio 1\nranks 1\n"
             "rank 0 1 0\nloop -3 1\n");
  // Torn exactly mid-"ranks N": the count field is gone, only the prefix
  // and trailing space survive.
  write_file(root + "/signature/torn_ranks.sig",
             "psk-signature 1\napp x\nthreshold 0.1\nratio 1\nranks ");
  write_file(root + "/signature/negative_ranks.sig",
             "psk-signature 1\napp x\nthreshold 0.1\nratio 1\nranks -1\n");

  // -------------------------------------------------------------- archive
  std::string payload;
  archive::encode(payload, sample_trace());
  const std::string trace_arch = framed(archive::PayloadKind::kTrace, payload);
  write_file(root + "/archive/trace.pskarch", trace_arch);
  write_file(root + "/archive/trace_truncated.pskarch",
             trace_arch.substr(0, trace_arch.size() - 9));
  std::string flipped = trace_arch;
  flipped[flipped.size() / 2] ^= 0x40;  // body bit flip: checksum must catch
  write_file(root + "/archive/trace_bitflip.pskarch", flipped);

  payload.clear();
  archive::encode(payload, sample_signature());
  write_file(root + "/archive/signature.pskarch",
             framed(archive::PayloadKind::kSignature, payload));

  payload.clear();
  archive::encode(payload, sample_skeleton());
  const std::string skel_arch =
      framed(archive::PayloadKind::kSkeleton, payload);
  write_file(root + "/archive/skeleton.pskarch", skel_arch);
  write_file(root + "/archive/header_only.pskarch", skel_arch.substr(0, 24));
  write_file(root + "/archive/magic_only.pskarch", "PSKARCH1");

  // Regression seed: a well-framed trace payload whose rank declares a
  // hostile event count with no bytes behind it.  The decoder must reject
  // it at the count field (kTruncated), before any allocation.
  payload.clear();
  archive::put_string(payload, "hostile");
  archive::put_u32(payload, 1);                       // one rank
  archive::put_i32(payload, 0);                       // rank id
  archive::put_f64(payload, 1.0);                     // total_time
  archive::put_f64(payload, 0.0);                     // final_compute
  archive::put_u64(payload, std::uint64_t{1} << 31);  // events, all absent
  write_file(root + "/archive/trace_hostile_count.pskarch",
             framed(archive::PayloadKind::kTrace, payload));

  // ------------------------------------------------------------ svc frames
  svc::RequestHeader request;
  request.id = 1;
  request.op = svc::RequestOp::kPredict;
  request.validate = svc::ValidateMode::kSalvage;
  request.deadline_seconds = 2.0;
  request.seed = 7;
  request.repetitions = 2;
  request.scenario = "dedicated";
  request.archive_bytes = skel_arch;
  std::string body;
  svc::encode_request(body, request);
  std::string stream;
  svc::append_frame(stream, svc::FrameKind::kRequest, body);
  write_file(root + "/svc_frame/request.pskf", stream);
  write_file(root + "/svc_frame/request_truncated.pskf",
             stream.substr(0, stream.size() * 2 / 3));
  std::string frame_flipped = stream;
  frame_flipped[frame_flipped.size() / 2] ^= 0x20;
  write_file(root + "/svc_frame/request_bitflip.pskf", frame_flipped);

  // Server-side construction: a trace upload with a compression target.
  svc::RequestHeader construct;
  construct.id = 2;
  construct.op = svc::RequestOp::kConstruct;
  construct.seed = 7;
  construct.target_k = 25.0;
  construct.archive_bytes = trace_arch;
  body.clear();
  svc::encode_request(body, construct);
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kRequest, body);
  write_file(root + "/svc_frame/construct_request.pskf", stream);

  // Hot-skeleton reuse: a predict naming a retained skeleton by content
  // hash, with no container embedded.
  svc::RequestHeader by_hash;
  by_hash.id = 3;
  by_hash.op = svc::RequestOp::kPredict;
  by_hash.seed = 7;
  by_hash.repetitions = 1;
  by_hash.skeleton_hash = archive::fingerprint64(skel_arch);
  by_hash.scenario = "dedicated";
  body.clear();
  svc::encode_request(body, by_hash);
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kRequest, body);
  write_file(root + "/svc_frame/hash_predict_request.pskf", stream);

  body.clear();
  svc::RequestHeader ping;
  ping.op = svc::RequestOp::kPing;
  svc::encode_request(body, ping);
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kRequest, body);
  svc::append_frame(stream, svc::FrameKind::kFlush, "");
  write_file(root + "/svc_frame/ping_then_flush.pskf", stream);

  svc::ResponseHeader response;
  response.id = 1;
  response.status = svc::StatusCode::kOk;
  response.values = {0.25, 0.5};
  body.clear();
  svc::encode_response(body, response);
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kResponse, body);
  write_file(root + "/svc_frame/response.pskf", stream);

  // A construct response carrying the canonical skeleton bytes + hash, and
  // the explicit predict-by-hash miss.
  svc::ResponseHeader constructed;
  constructed.id = 2;
  constructed.status = svc::StatusCode::kOk;
  constructed.skeleton_hash = archive::fingerprint64(skel_arch);
  constructed.skeleton_bytes = skel_arch;
  body.clear();
  svc::encode_response(body, constructed);
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kResponse, body);
  write_file(root + "/svc_frame/construct_response.pskf", stream);

  svc::ResponseHeader miss;
  miss.id = 3;
  miss.status = svc::StatusCode::kNotFound;
  miss.message = "skeleton not resident; re-upload the container";
  body.clear();
  svc::encode_response(body, miss);
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kResponse, body);
  write_file(root + "/svc_frame/notfound_response.pskf", stream);

  // Health exchange (PR 10): the client-facing liveness probe and its
  // answer.  The probe is an empty body; the answer is the fixed-layout
  // snapshot clients decode for backoff decisions.
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kHealth, "");
  write_file(root + "/svc_frame/health_probe.pskf", stream);

  svc::HealthInfo health;
  health.uptime_seconds = 12.5;
  health.queue_depth = 3;
  health.queue_capacity = 64;
  health.inflight = 2;
  health.workers = 4;
  health.completed = 100;
  health.shed = 5;
  health.hung_detected = 1;
  health.workers_replaced = 1;
  body.clear();
  svc::encode_health(body, health);
  stream.clear();
  svc::append_frame(stream, svc::FrameKind::kHealth, body);
  write_file(root + "/svc_frame/health_answer.pskf", stream);
  write_file(root + "/svc_frame/health_truncated.pskf",
             stream.substr(0, stream.size() - 7));

  // Header declaring a ~4 GiB body: the parser must reject at the length
  // field, before buffering anything.
  std::string huge("PSKF");
  archive::put_u8(huge, svc::kProtocolVersion);
  archive::put_u8(huge, static_cast<std::uint8_t>(svc::FrameKind::kRequest));
  archive::put_u32(huge, 0xFFFFFFF0u);
  write_file(root + "/svc_frame/huge_declared_length.pskf", huge);
  write_file(root + "/svc_frame/bad_magic.pskf", "XSKF\x01\x01junk");
  write_file(root + "/svc_frame/garbage.pskf",
             std::string("\x00\xff\x7f pskf?", 8));
  write_file(root + "/svc_frame/empty.pskf", "");

  // ----------------------------------------------------- store entries
  // The durable tier's on-disk framing (PSKS1): one valid entry, the
  // classic crash shapes (truncation at each structural boundary), bit
  // rot in the payload, and a checksum-consistent entry filed under the
  // wrong hash (the content-address invariant must still reject it).
  const std::string entry =
      svc::encode_store_entry(archive::fingerprint64(skel_arch), skel_arch);
  write_file(root + "/store_entry/valid.psks", entry);
  write_file(root + "/store_entry/magic_only.psks", entry.substr(0, 5));
  write_file(root + "/store_entry/header_only.psks", entry.substr(0, 17));
  write_file(root + "/store_entry/torn_payload.psks",
             entry.substr(0, entry.size() * 2 / 3));
  write_file(root + "/store_entry/missing_checksum.psks",
             entry.substr(0, entry.size() - 8));
  std::string rotted = entry;
  rotted[entry.size() / 2] ^= 0x01;
  write_file(root + "/store_entry/payload_bitrot.psks", rotted);
  write_file(root + "/store_entry/wrong_hash.psks",
             svc::encode_store_entry(archive::fingerprint64(skel_arch) ^ 1,
                                     skel_arch));
  write_file(root + "/store_entry/trailing_junk.psks", entry + "x");
  write_file(root + "/store_entry/empty.psks", "");

  std::printf("seed corpus written under %s\n", root.c_str());
  return 0;
}
