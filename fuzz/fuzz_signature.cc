// libFuzzer harness for the signature / skeleton text codec.
//
// Skeleton files embed the signature node format, so one harness feeds the
// same input to both parsers: any byte string either parses or throws
// psk::Error.  Parsed values are run through the guard validators so their
// recursive walks see fuzzer-shaped loop nests as well, and the same bytes
// are pushed through the salvage layer, whose job is precisely to survive
// arbitrary damage (it must recover, reject, or throw psk::Error -- never
// crash).
#include <cstddef>
#include <cstdint>
#include <string>

#include "guard/salvage.h"
#include "guard/validate.h"
#include "sig/io.h"
#include "skeleton/io.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const psk::sig::Signature signature =
        psk::sig::signature_from_string(text);
    (void)psk::guard::validate_signature(signature).render();
  } catch (const psk::Error&) {
  }
  try {
    const psk::skeleton::Skeleton skeleton =
        psk::skeleton::skeleton_from_string(text);
    (void)psk::guard::validate_skeleton(skeleton).render();
  } catch (const psk::Error&) {
  }
  try {
    psk::guard::SalvageReport report;
    (void)psk::guard::salvage_signature_bytes(text, report);
    (void)report.render();
    (void)psk::guard::salvage_skeleton_bytes(text, report);
    (void)report.render();
  } catch (const psk::Error&) {
  }
  return 0;
}
