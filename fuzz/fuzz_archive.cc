// libFuzzer harness for the PSKARCH1 container and payload codecs.
//
// Exercises the full untrusted-bytes surface: frame parsing (magic,
// versions, size, checksum), the strict payload decoders, and the prefix
// decoders the salvage layer leans on.  The archive API reports errors
// through Result, so nothing here should throw at all; the prefix decoders
// additionally promise to never fail on mere truncation, which makes every
// mutated frame a meaningful input for them.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "archive/archive.h"
#include "archive/codec.h"
#include "util/error.h"

namespace {

void decode_payload(psk::archive::PayloadKind kind, std::string_view payload,
                    std::uint32_t version) {
  using psk::archive::PayloadKind;
  psk::archive::PrefixStats stats;
  switch (kind) {
    case PayloadKind::kTrace:
      (void)psk::archive::decode_trace(payload, version);
      (void)psk::archive::decode_trace_prefix(payload, version, stats);
      break;
    case PayloadKind::kSignature:
      (void)psk::archive::decode_signature(payload, version);
      (void)psk::archive::decode_signature_prefix(payload, version, stats);
      break;
    case PayloadKind::kSkeleton:
      (void)psk::archive::decode_skeleton(payload, version);
      (void)psk::archive::decode_skeleton_prefix(payload, version, stats);
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    (void)psk::archive::looks_like_archive(bytes);
    psk::archive::Result<psk::archive::Frame> frame =
        psk::archive::read_frame(bytes);
    if (frame.ok()) {
      const psk::archive::Frame f = frame.take();
      decode_payload(f.kind, f.payload, f.payload_version);
    }
    // The decoders also accept raw payload bytes (the salvage layer hands
    // them clamped slices of damaged files), so feed the whole input as a
    // bare payload of every kind too.
    decode_payload(psk::archive::PayloadKind::kTrace, bytes, 1);
    decode_payload(psk::archive::PayloadKind::kSignature, bytes, 1);
    decode_payload(psk::archive::PayloadKind::kSkeleton, bytes, 1);
  } catch (const psk::Error&) {
    // Result-based API; an Error here is tolerated but unexpected.
  }
  return 0;
}
