// libFuzzer harness for the pskd session wire protocol (svc/frame.h).
//
// Exercises the incremental frame parser and the request/response body
// codecs with arbitrary bytes.  Invariants checked beyond "does not crash":
//   - the parser never reports a frame longer than the buffer it was given,
//   - the declared-size cap rejects hostile lengths without allocating,
//   - anything decode_request accepts must re-encode and decode to the
//     same header (canonical round-trip), and likewise for responses and
//     health snapshots.
// The codecs report errors through Result, so nothing here should throw.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "svc/frame.h"
#include "util/error.h"

namespace {

void check_request_roundtrip(std::string_view body) {
  psk::archive::Result<psk::svc::RequestHeader> first =
      psk::svc::decode_request(body);
  if (!first.ok()) return;
  std::string encoded;
  psk::svc::encode_request(encoded, first.value());
  psk::archive::Result<psk::svc::RequestHeader> second =
      psk::svc::decode_request(encoded);
  if (!second.ok() || second.value().id != first.value().id ||
      second.value().seed != first.value().seed ||
      second.value().target_k != first.value().target_k ||
      second.value().skeleton_hash != first.value().skeleton_hash ||
      second.value().scenario != first.value().scenario ||
      second.value().archive_bytes != first.value().archive_bytes) {
    std::abort();  // accepted bytes must round-trip canonically
  }
  // The hash/container exclusivity rule is a decoder invariant: anything
  // accepted with a hash must be a bare predict.
  if (first.value().skeleton_hash != 0 &&
      (first.value().op != psk::svc::RequestOp::kPredict ||
       !first.value().archive_bytes.empty())) {
    std::abort();
  }
}

void check_response_roundtrip(std::string_view body) {
  psk::archive::Result<psk::svc::ResponseHeader> first =
      psk::svc::decode_response(body);
  if (!first.ok()) return;
  std::string encoded;
  psk::svc::encode_response(encoded, first.value());
  psk::archive::Result<psk::svc::ResponseHeader> second =
      psk::svc::decode_response(encoded);
  if (!second.ok() || second.value().id != first.value().id ||
      second.value().skeleton_hash != first.value().skeleton_hash ||
      second.value().skeleton_bytes != first.value().skeleton_bytes ||
      second.value().values != first.value().values) {
    std::abort();
  }
}

void check_health_roundtrip(std::string_view body) {
  psk::archive::Result<psk::svc::HealthInfo> first =
      psk::svc::decode_health(body);
  if (!first.ok()) return;
  if (!(first.value().uptime_seconds >= 0)) {
    std::abort();  // the decoder's own range check must have held
  }
  std::string encoded;
  psk::svc::encode_health(encoded, first.value());
  psk::archive::Result<psk::svc::HealthInfo> second =
      psk::svc::decode_health(encoded);
  if (!second.ok() ||
      second.value().uptime_seconds != first.value().uptime_seconds ||
      second.value().queue_depth != first.value().queue_depth ||
      second.value().queue_capacity != first.value().queue_capacity ||
      second.value().inflight != first.value().inflight ||
      second.value().workers != first.value().workers ||
      second.value().completed != first.value().completed ||
      second.value().shed != first.value().shed ||
      second.value().hung_detected != first.value().hung_detected ||
      second.value().workers_replaced != first.value().workers_replaced) {
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    // Parse as a frame stream, the way the pskd read loop does; also at a
    // tiny cap so the declared-size rejection branch is always reachable.
    for (const std::size_t cap : {psk::svc::kMaxFrameBytes,
                                  static_cast<std::size_t>(64)}) {
      std::string_view rest = bytes;
      while (true) {
        psk::svc::Frame frame;
        std::size_t consumed = 0;
        psk::archive::Error error;
        const psk::svc::ParseProgress progress =
            psk::svc::try_parse_frame(rest, cap, frame, consumed, error);
        if (progress != psk::svc::ParseProgress::kFrame) break;
        if (consumed == 0 || consumed > rest.size()) std::abort();
        check_request_roundtrip(frame.body);
        check_response_roundtrip(frame.body);
        check_health_roundtrip(frame.body);
        rest.remove_prefix(consumed);
      }
    }
    // The body codecs also see raw bytes (a frame that parsed but carries
    // junk), so feed the whole input to both directly.
    check_request_roundtrip(bytes);
    check_response_roundtrip(bytes);
    check_health_roundtrip(bytes);
  } catch (const psk::Error&) {
    // Result-based API; an Error here is tolerated but unexpected.
  }
  return 0;
}
