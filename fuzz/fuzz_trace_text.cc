// libFuzzer harness for the text trace parser.
//
// The parser's contract is: any byte string either parses into a Trace or
// throws psk::Error (FormatError for malformed documents).  Crashes, hangs,
// unbounded allocations and any *other* exception type are findings.  A
// document that does parse is pushed through guard::validate_trace too, so
// the semantic validator is fuzzed with structurally valid inputs for free,
// and every input is also fed to the salvage layer, which must recover,
// reject, or throw psk::Error -- never crash -- on arbitrary damage.
#include <cstddef>
#include <cstdint>
#include <string>

#include "guard/salvage.h"
#include "guard/validate.h"
#include "trace/io.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const psk::trace::Trace trace = psk::trace::trace_from_string(text);
    const psk::guard::ValidationReport report =
        psk::guard::validate_trace(trace);
    (void)report.render();  // rendering must not throw either
  } catch (const psk::Error&) {
    // Graceful rejection: the documented behaviour for bad input.
  }
  try {
    psk::guard::SalvageReport report;
    (void)psk::guard::salvage_trace_bytes(text, report);
    (void)report.render();
  } catch (const psk::Error&) {
  }
  return 0;
}
