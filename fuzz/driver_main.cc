// Standalone corpus replay driver.
//
// Links against a fuzz harness when the toolchain has no libFuzzer (GCC):
// each command-line argument is read as one input file and fed to
// LLVMFuzzerTestOneInput once.  The interface matches libFuzzer's own
// positional-argument replay mode, so the ctest corpus-replay targets work
// identically in both builds; a harness crash aborts the process and fails
// the test either way.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], bytes.size());
  }
  std::printf("replayed %d file(s)\n", argc - 1);
  return 0;
}
