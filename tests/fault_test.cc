// Tests for the fault subsystem: sim-layer stall/link-fault primitives,
// Machine crash composition, the psk::fault scheduler (including the
// coordinated checkpoint/restart model), MPI timed waits, the engine's
// wall-clock watchdog, and the fault scenario registry.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/framework.h"
#include "fault/fault.h"
#include "mpi/world.h"
#include "scenario/scenario.h"
#include "sim/machine.h"
#include "util/error.h"

namespace psk {
namespace {

sim::Task compute_task(sim::Machine& machine, int node, double work,
                       double& done_at) {
  co_await machine.compute_await(node, work);
  done_at = machine.engine().now();
}

sim::Task transfer_task(sim::Machine& machine, int src, int dst,
                        std::uint64_t bytes, double& done_at) {
  co_await machine.transfer_await(src, dst, bytes);
  done_at = machine.engine().now();
}

sim::ClusterConfig quiet_cluster(int nodes) {
  sim::ClusterConfig config = sim::ClusterConfig::paper_testbed(nodes);
  config.cores_per_node = 1;
  return config;  // jitters default to 0: exact arithmetic below
}

// ---------------------------------------------------------- CpuNode stalls

TEST(CpuStall, PausesAndResumesJob) {
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  double done_at = -1;
  node.submit(2.0, [&] { done_at = engine.now(); });
  engine.at(1.0, [&] { node.push_stall(); });
  engine.at(4.0, [&] { node.pop_stall(); });
  engine.run();
  // 1s of work, 3s stalled, then the remaining 1s.
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(CpuStall, DepthsNest) {
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  double done_at = -1;
  node.submit(1.0, [&] { done_at = engine.now(); });
  engine.at(0.5, [&] { node.push_stall(); });
  engine.at(1.0, [&] { node.push_stall(); });  // overlapping second cause
  engine.at(2.0, [&] { node.pop_stall(); });
  engine.at(3.0, [&] { node.pop_stall(); });   // only now does work resume
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 3.5);
  EXPECT_FALSE(node.stalled());
}

TEST(CpuStall, SubmitWhileStalledWaits) {
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  node.push_stall();
  double done_at = -1;
  node.submit(1.0, [&] { done_at = engine.now(); });
  engine.at(2.0, [&] { node.pop_stall(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST(CpuStall, PopWithoutPushThrows) {
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  EXPECT_THROW(node.pop_stall(), ConfigError);
}

// ------------------------------------------------------ Network link fault

TEST(LinkFault, PausesTransferBytes) {
  sim::Machine machine(quiet_cluster(2));
  double done_at = -1;
  // 6 MB at 60 MB/s = 0.1 s on the wire, after 50 us latency.
  machine.engine().spawn(transfer_task(machine, 0, 1, 6'000'000, done_at));
  machine.engine().at(0.02, [&] { machine.network().push_link_fault(1); });
  machine.engine().at(0.12, [&] { machine.network().pop_link_fault(1); });
  machine.engine().run();
  EXPECT_NEAR(done_at, 0.2 + 50e-6, 1e-9);
  EXPECT_TRUE(machine.network().link_up(1));
}

TEST(LinkFault, PausedFlowDoesNotCompleteAnotherEarly) {
  // A nearly-finished flow stuck behind a link fault must not complete, nor
  // drag an unrelated active flow's completion early.
  sim::Machine machine(quiet_cluster(3));
  double paused_done = -1;
  double active_done = -1;
  // Paused flow: 0 -> 1, would finish at ~0.01 s but the link goes dark
  // almost immediately and stays dark until t=1.
  machine.engine().spawn(transfer_task(machine, 0, 1, 600'000, paused_done));
  machine.engine().at(0.001, [&] { machine.network().push_link_fault(1); });
  machine.engine().at(1.0, [&] { machine.network().pop_link_fault(1); });
  // Active flow: 0 -> 2, 6 MB.  After the fault it owns the whole uplink.
  machine.engine().spawn(transfer_task(machine, 0, 2, 6'000'000, active_done));
  machine.engine().run();
  // The active flow finishes long before t=1; the paused one only after.
  EXPECT_GT(paused_done, 1.0);
  EXPECT_LT(active_done, 0.5);
  EXPECT_LT(active_done, paused_done);
}

TEST(LinkFault, PopWithoutPushThrows) {
  sim::Machine machine(quiet_cluster(2));
  EXPECT_THROW(machine.network().pop_link_fault(0), ConfigError);
}

// -------------------------------------------------- Machine crash/restore

TEST(MachineCrash, StopsComputeAndLink) {
  sim::Machine machine(quiet_cluster(2));
  double compute_done = -1;
  double transfer_done = -1;
  machine.engine().spawn(compute_task(machine, 0, 2.0, compute_done));
  // 60 MB at 60 MB/s: one second on the wire, so the crash window below
  // lands squarely inside the transfer.
  machine.engine().spawn(
      transfer_task(machine, 1, 0, 60'000'000, transfer_done));
  machine.engine().at(0.5, [&] {
    machine.crash_node(0);
    EXPECT_FALSE(machine.node_up(0));
  });
  machine.engine().at(1.5, [&] { machine.restore_node(0); });
  machine.engine().run();
  EXPECT_TRUE(machine.node_up(0));
  EXPECT_DOUBLE_EQ(compute_done, 3.0);  // 2s of work + 1s down
  EXPECT_GT(transfer_done, 1.5);        // bytes waited for the link
}

TEST(MachineCrash, NestsWithGlobalStall) {
  sim::Machine machine(quiet_cluster(2));
  double done_at = -1;
  machine.engine().spawn(compute_task(machine, 0, 1.0, done_at));
  machine.engine().at(0.25, [&] { machine.crash_node(0); });
  machine.engine().at(0.50, [&] { machine.stall_all_nodes(); });
  machine.engine().at(1.00, [&] { machine.restore_node(0); });  // still stalled
  machine.engine().at(2.00, [&] { machine.resume_all_nodes(); });
  machine.engine().run();
  EXPECT_DOUBLE_EQ(done_at, 2.75);
}

TEST(MachineCrash, RestoreWithoutCrashThrows) {
  sim::Machine machine(quiet_cluster(2));
  EXPECT_THROW(machine.restore_node(0), ConfigError);
}

// ------------------------------------------------------------ fault::install

TEST(FaultInstall, CrashWindowExtendsComputeAndCounts) {
  sim::Machine machine(quiet_cluster(2));
  fault::FaultSchedule schedule;
  schedule.crashes.push_back({0, 1.0, 2.0, 0.0, 0.0});  // one-shot
  const auto stats = fault::install(machine, schedule);
  double done_at = -1;
  machine.engine().spawn(compute_task(machine, 0, 3.0, done_at));
  machine.engine().run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);  // 3s work + 2s downtime
  EXPECT_EQ(stats->crashes, 1);
  EXPECT_EQ(stats->restarts, 1);
  EXPECT_TRUE(machine.node_up(0));
}

TEST(FaultInstall, RecurringOutageFiresRepeatedly) {
  sim::Machine machine(quiet_cluster(2));
  fault::FaultSchedule schedule;
  schedule.outages.push_back({1, 0.5, 0.1, 1.0, 0.0});
  const auto stats = fault::install(machine, schedule);
  double done_at = -1;
  machine.engine().spawn(compute_task(machine, 0, 3.6, done_at));
  machine.engine().run();
  // Outages at 0.5, 1.5, 2.5, 3.5 before the task ends at 3.6.
  EXPECT_EQ(stats->outages, 4);
}

TEST(FaultInstall, CheckpointRollbackAccounting) {
  sim::Machine machine(quiet_cluster(2));
  fault::FaultSchedule schedule;
  schedule.crashes.push_back({0, 2.5, 1.0, 0.0, 0.0});
  schedule.checkpoint.enabled = true;
  schedule.checkpoint.interval = 2.0;
  schedule.checkpoint.checkpoint_cost = 0.0;
  schedule.checkpoint.restart_cost = 0.25;
  const auto stats = fault::install(machine, schedule);
  double done_at = -1;
  machine.engine().spawn(compute_task(machine, 1, 5.0, done_at));
  machine.engine().run();
  // Crash at 2.5 with the last checkpoint at 2.0: 0.5 s of progress is
  // re-executed after the restart at 3.5, so all nodes stall for
  // 0.25 + 0.5 = 0.75 s and node 1's 5 s of work ends at 5.75.
  EXPECT_DOUBLE_EQ(done_at, 5.75);
  EXPECT_EQ(stats->rollbacks, 1);
  EXPECT_DOUBLE_EQ(stats->reexecuted, 0.5);
  EXPECT_EQ(stats->checkpoints, 2);  // t=2 and t=4
}

TEST(FaultInstall, CheckpointSkippedWhileCrashed) {
  sim::Machine machine(quiet_cluster(2));
  fault::FaultSchedule schedule;
  schedule.crashes.push_back({0, 1.5, 1.0, 0.0, 0.0});  // down 1.5 .. 2.5
  schedule.checkpoint.enabled = true;
  schedule.checkpoint.interval = 1.0;
  schedule.checkpoint.checkpoint_cost = 0.0;
  schedule.checkpoint.restart_cost = 0.0;
  const auto stats = fault::install(machine, schedule);
  double done_at = -1;
  machine.engine().spawn(compute_task(machine, 1, 4.0, done_at));
  machine.engine().run();
  // t=1 counts, t=2 is skipped (node 0 is down), t=3 and t=4 count.
  EXPECT_EQ(stats->checkpoints, 3);
  EXPECT_EQ(stats->rollbacks, 1);
  EXPECT_DOUBLE_EQ(stats->reexecuted, 0.5);  // crash 1.5 - checkpoint 1.0
}

TEST(FaultInstall, ValidatesSpecs) {
  sim::Machine machine(quiet_cluster(2));
  fault::FaultSchedule bad_node;
  bad_node.crashes.push_back({7, 1.0, 1.0, 0.0, 0.0});
  EXPECT_THROW(fault::install(machine, bad_node), ConfigError);
  fault::FaultSchedule bad_duration;
  bad_duration.stalls.push_back({0, 1.0, 0.0, 0.0, 0.0});
  EXPECT_THROW(fault::install(machine, bad_duration), ConfigError);
  fault::FaultSchedule bad_checkpoint;
  bad_checkpoint.checkpoint.enabled = true;
  bad_checkpoint.checkpoint.interval = 0.0;
  EXPECT_THROW(fault::install(machine, bad_checkpoint), ConfigError);
}

double jittered_stall_run(std::uint64_t seed) {
  sim::ClusterConfig config = quiet_cluster(2);
  config.seed = seed;
  sim::Machine machine(config);
  fault::FaultSchedule schedule;
  schedule.stalls.push_back({1, 0.5, 0.4, 1.0, 0.5});  // heavy period jitter
  fault::install(machine, schedule);
  double done_at = -1;
  machine.engine().spawn(compute_task(machine, 1, 8.0, done_at));
  machine.engine().run();
  return done_at;
}

TEST(FaultInstall, JitteredScheduleIsSeedDeterministic) {
  const double a = jittered_stall_run(42);
  const double b = jittered_stall_run(42);
  const double c = jittered_stall_run(43);
  EXPECT_DOUBLE_EQ(a, b);   // same seed: bit-identical
  EXPECT_NE(a, c);          // different seed: different fault alignment
  EXPECT_GT(a, 8.0);        // the stalls actually cost time
}

// ----------------------------------------------------------- MPI timed waits

TEST(MpiTimeout, TransientFaultSurvivesWithRetries) {
  sim::Machine machine(quiet_cluster(2));
  mpi::MpiConfig config;
  config.op_timeout = 1.0;
  config.op_max_retries = 8;
  mpi::World world(machine, 2, config);
  // Rank 1 posts its receive immediately; rank 0 only sends at t=5, so the
  // wait's 1s window expires and backs off (1 + 2 + ...) until the message
  // lands.
  world.launch([](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.compute(5.0);  // the receiver's 1s window expires twice
      co_await comm.send(1, 1024);
    } else {
      co_await comm.recv(0, 1024);
    }
  });
  const double elapsed = world.run();
  EXPECT_GT(elapsed, 5.0);
  EXPECT_GE(world.message_engine().wait_timeouts(), 2u);
  EXPECT_EQ(world.message_engine().messages_delivered(), 1u);
}

TEST(MpiTimeout, PermanentLossThrowsTimeoutError) {
  sim::Machine machine(quiet_cluster(2));
  mpi::MpiConfig config;
  config.op_timeout = 0.5;
  config.op_max_retries = 3;
  mpi::World world(machine, 2, config);
  // Rank 1 waits for a message nobody ever sends.
  world.launch([](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 1) co_await comm.recv(0, 64);
  });
  EXPECT_THROW(world.run(), TimeoutError);
}

TEST(MpiTimeout, ZeroTimeoutKeepsLegacyDeadlock) {
  sim::Machine machine(quiet_cluster(2));
  mpi::World world(machine, 2);  // op_timeout = 0: wait forever
  world.launch([](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 1) co_await comm.recv(0, 64);
  });
  EXPECT_THROW(world.run(), DeadlockError);
}

// ------------------------------------------------------ engine wall deadline

TEST(WallDeadline, ConvertsEventChurnIntoTimeoutError) {
  sim::Engine engine;
  engine.set_wall_deadline(0.05);
  // A daemon that reschedules itself forever: without the watchdog, run()
  // would spin until the (enormous) simulated time limit.
  std::function<void()> churn = [&] { engine.after(1e-9, churn); };
  engine.after(0.0, churn);
  EXPECT_THROW(engine.run(), TimeoutError);
}

TEST(WallDeadline, DisabledByDefault) {
  sim::Engine engine;
  EXPECT_DOUBLE_EQ(engine.wall_deadline(), 0.0);
  bool fired = false;
  engine.at(1.0, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
}

// ---------------------------------------------------- fault scenario registry

TEST(FaultScenarios, RegistryIsFindableByName) {
  ASSERT_EQ(scenario::fault_scenarios().size(), 6u);
  for (const scenario::Scenario& s : scenario::fault_scenarios()) {
    EXPECT_TRUE(s.has_fault()) << s.name;
    const scenario::Scenario& found = scenario::find_scenario(s.name);
    EXPECT_EQ(&found, &s);
  }
  EXPECT_FALSE(scenario::dedicated().has_fault());
}

TEST(FaultScenarios, CompositesKeepSharingKind) {
  const scenario::Scenario& composite =
      scenario::find_scenario("crash-plus-cpu");
  EXPECT_EQ(composite.kind, scenario::Kind::kCpuOneNode);
  EXPECT_EQ(composite.fault.kind, scenario::FaultKind::kCrashNode);
  const scenario::Scenario& net = scenario::find_scenario("flap-plus-net");
  EXPECT_EQ(net.kind, scenario::Kind::kNetOneLink);
  EXPECT_EQ(net.fault.kind, scenario::FaultKind::kLinkOutage);
}

mpi::RankMain ring_app() {
  return [](mpi::Comm& comm) -> sim::Task {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
    for (int round = 0; round < 40; ++round) {
      co_await comm.compute(0.8);
      co_await comm.sendrecv(next, 32 * 1024, prev, 32 * 1024);
    }
    co_await comm.barrier();
  };
}

TEST(FaultScenarios, RunsAreSeedDeterministic) {
  core::SkeletonFramework framework;
  const scenario::Scenario& crash = scenario::find_scenario("crash-one-node");
  const double a = framework.run_app(ring_app(), crash, 0);
  const double b = framework.run_app(ring_app(), crash, 0);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = framework.run_app(ring_app(), crash, 1);
  EXPECT_NE(a, c);
  // The crash windows genuinely slow the run down versus dedicated.
  const double dedicated =
      framework.run_app(ring_app(), scenario::dedicated(), 0);
  EXPECT_GT(a, dedicated);
}

TEST(FaultScenarios, DistinctFaultScenariosGetDistinctSeeds) {
  // crash-one-node and flap-one-link both carry Kind::kDedicated; without
  // the name-hash mixing they would share a seed stream with each other
  // (and with the dedicated baseline's fast path).
  core::SkeletonFramework framework;
  const double crash =
      framework.run_app(ring_app(), scenario::find_scenario("crash-one-node"),
                        0);
  const double flap =
      framework.run_app(ring_app(), scenario::find_scenario("flap-one-link"),
                        0);
  EXPECT_NE(crash, flap);
}

TEST(FaultScenarios, CheckpointedRunCompletesAndCostsTime) {
  core::SkeletonFramework framework;
  const double plain = framework.run_app(
      ring_app(), scenario::find_scenario("crash-one-node"), 0);
  const double checkpointed = framework.run_app(
      ring_app(), scenario::find_scenario("crash-checkpointed"), 0);
  // Checkpoint freezes and rollback re-execution make the checkpointed run
  // strictly slower than the bare crash run on this deterministic testbed.
  EXPECT_GT(checkpointed, plain * 0.5);  // sanity: same order of magnitude
  EXPECT_GT(checkpointed, 0.0);
}

}  // namespace
}  // namespace psk
