// Tests for psk::guard: deterministic deadlock detection, semantic
// validation, salvage of damaged files -- plus the robustness satellites
// that ride with them (cache disk-failure degradation, journal replay
// accounting).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "cache/cache.h"
#include "guard/deadlock.h"
#include "guard/salvage.h"
#include "guard/validate.h"
#include "mpi/comm.h"
#include "mpi/world.h"
#include "obs/metrics.h"
#include "runner/journal.h"
#include "sig/io.h"
#include "sig/signature.h"
#include "sim/machine.h"
#include "skeleton/io.h"
#include "skeleton/skeleton.h"
#include "trace/event.h"
#include "trace/io.h"
#include "util/error.h"

namespace psk {
namespace {

namespace fs = std::filesystem;

sim::ClusterConfig test_cluster(int nodes = 4) {
  sim::ClusterConfig config;
  config.nodes = nodes;
  config.cores_per_node = 1;
  config.cpu_speed = 1.0;
  config.link_bandwidth_bps = 100.0;
  config.latency = 0.1;
  config.local_bandwidth_bps = 1e9;
  config.local_latency = 0.0;
  return config;
}

mpi::MpiConfig no_overhead_mpi() {
  mpi::MpiConfig config;
  config.per_call_overhead = 0.0;
  config.trace_overhead = 0.0;
  config.eager_threshold = 1000;
  config.rendezvous_handshake_latencies = 2.0;
  return config;
}

/// A unique scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("psk_guard_" + tag + "_" +
               std::to_string(::testing::UnitTest::GetInstance()
                                  ->random_seed()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------ deadlock detection

/// Runs a 2-rank world where rank 1 posts a Recv rank 0 never matches.
guard::DeadlockReport run_unmatched_recv() {
  sim::Machine machine(test_cluster(2));
  mpi::World world(machine, 2, no_overhead_mpi());
  guard::DeadlockMonitor monitor(world);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 1) {
      co_await comm.compute(1.0);
      co_await comm.recv(0, 100, 42);  // never sent
    } else {
      co_await comm.compute(0.5);
    }
  });
  try {
    world.run();
  } catch (const guard::DeadlockDetected& e) {
    return e.report();
  }
  ADD_FAILURE() << "expected DeadlockDetected";
  return {};
}

TEST(Deadlock, UnmatchedRecvYieldsStructuredReport) {
  const guard::DeadlockReport report = run_unmatched_recv();
  EXPECT_EQ(report.total_ranks, 2);
  ASSERT_EQ(report.blocked.size(), 1u);
  EXPECT_EQ(report.blocked[0].rank, 1);
  EXPECT_EQ(report.blocked[0].peer, 0);
  EXPECT_EQ(report.blocked[0].tag, 42);
  EXPECT_FALSE(report.blocked[0].is_send);
  // Rank 0 finished; the wait chain leads to a rank that never posted.
  EXPECT_TRUE(report.cycle.empty());
  // Detection fires the moment the sim goes globally idle -- after rank 1's
  // 1 s compute -- not at some engine time limit.
  EXPECT_NEAR(report.time, 1.0, 1e-9);
  EXPECT_NE(report.render().find("rank 1"), std::string::npos);
  EXPECT_NE(report.render().find("wait-for cycle: none"), std::string::npos);
}

TEST(Deadlock, DetectsUnderDaemonEvents) {
  // Daemon events (load flutter, fault timers) keep the event queue busy
  // forever; detection must key off *progress* work only and still fire at
  // the same simulated instant.
  sim::Machine machine(test_cluster(2));
  mpi::World world(machine, 2, no_overhead_mpi());
  guard::DeadlockMonitor monitor(world);
  sim::Engine& engine = machine.engine();
  std::function<void()> tick = [&] { engine.daemon_after(0.25, tick); };
  engine.daemon_after(0.25, tick);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 1) {
      co_await comm.compute(1.0);
      co_await comm.recv(0, 7);
    }
  });
  try {
    world.run();
    FAIL() << "expected DeadlockDetected";
  } catch (const guard::DeadlockDetected& e) {
    EXPECT_NEAR(e.report().time, 1.0, 1e-9);
  }
}

TEST(Deadlock, CircularWaitNamesTheCycle) {
  // 0 waits on 1, 1 waits on 2, 2 waits on 0: a real wait-for cycle.
  sim::Machine machine(test_cluster(3));
  mpi::World world(machine, 3, no_overhead_mpi());
  guard::DeadlockMonitor monitor(world);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    co_await comm.recv((comm.rank() + 1) % 3, 0);
  });
  try {
    world.run();
    FAIL() << "expected DeadlockDetected";
  } catch (const guard::DeadlockDetected& e) {
    const guard::DeadlockReport& report = e.report();
    EXPECT_EQ(report.total_ranks, 3);
    EXPECT_EQ(report.blocked.size(), 3u);
    ASSERT_EQ(report.cycle.size(), 3u);
    // The cycle is a rotation of 0 -> 1 -> 2 -> 0; walking it must follow
    // each rank's wait-for edge.
    for (std::size_t i = 0; i < report.cycle.size(); ++i) {
      const int rank = report.cycle[i];
      const int next = report.cycle[(i + 1) % report.cycle.size()];
      EXPECT_EQ(next, (rank + 1) % 3);
    }
    EXPECT_NE(std::string(e.what()).find("wait-for cycle: "),
              std::string::npos);
  }
}

TEST(Deadlock, SameSimulatedTimeAcrossJobs) {
  // The acceptance bar: detection is a pure function of simulated state, so
  // a sweep of deadlocking cells reports bit-identical times and renderings
  // whether it runs serial or on a pool.
  auto run_cells = [](int jobs) {
    std::vector<std::string> cells{"a", "b", "c", "d"};
    runner::JournaledSweepOptions options;
    options.jobs = jobs;
    return runner::journaled_sweep(
        cells,
        [&](std::size_t) {
          const guard::DeadlockReport report = run_unmatched_recv();
          char time_bits[32];
          std::snprintf(time_bits, sizeof time_bits, "%a", report.time);
          return std::string(time_bits) + "\n" + report.render();
        },
        options);
  };
  const std::vector<runner::CellResult> serial = run_cells(1);
  const std::vector<runner::CellResult> pooled = run_cells(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, runner::CellResult::Status::kOk);
    EXPECT_EQ(serial[i], pooled[i]) << "cell " << i;
  }
}

// ------------------------------------------------------------- validation

trace::Trace matched_pair_trace() {
  trace::Trace trace;
  trace.app_name = "t";
  for (int rank = 0; rank < 2; ++rank) {
    trace::RankTrace rt;
    rt.rank = rank;
    rt.total_time = 1.0;
    trace::TraceEvent event;
    event.type = rank == 0 ? mpi::CallType::kSend : mpi::CallType::kRecv;
    event.peer = 1 - rank;
    event.bytes = 100;
    event.tag = 3;
    event.t_start = 0.1;
    event.t_end = 0.2;
    rt.events.push_back(event);
    trace.ranks.push_back(rt);
  }
  return trace;
}

TEST(Validate, CleanTracePasses) {
  const guard::ValidationReport report =
      guard::validate_trace(matched_pair_trace());
  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_NO_THROW(guard::require_valid(report));
}

TEST(Validate, UnmatchedSendIsAnError) {
  trace::Trace trace = matched_pair_trace();
  trace.ranks[1].events.clear();  // drop the matching recv
  const guard::ValidationReport report = guard::validate_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.render().find("deadlock"), std::string::npos);
  EXPECT_THROW(guard::require_valid(report), guard::ValidationError);
}

TEST(Validate, NegativeGapAndBadPeerAreErrors) {
  trace::Trace trace = matched_pair_trace();
  trace.ranks[0].events[0].pre_compute = -1.0;
  trace.ranks[1].events[0].peer = 9;  // outside the 2-rank world
  const guard::ValidationReport report = guard::validate_trace(trace);
  EXPECT_GE(report.error_count(), 2u);
}

TEST(Validate, NonFiniteTimesAreErrors) {
  trace::Trace trace = matched_pair_trace();
  trace.ranks[0].events[0].pre_compute =
      std::numeric_limits<double>::infinity();
  trace.ranks[1].total_time = std::numeric_limits<double>::quiet_NaN();
  const guard::ValidationReport report = guard::validate_trace(trace);
  EXPECT_GE(report.error_count(), 2u) << report.render();
}

TEST(Validate, ValidationErrorCarriesReport) {
  trace::Trace trace = matched_pair_trace();
  trace.ranks[0].events[0].pre_compute = -1.0;
  try {
    guard::require_valid(guard::validate_trace(trace));
    FAIL() << "expected ValidationError";
  } catch (const guard::ValidationError& e) {
    EXPECT_FALSE(e.report().ok());
    EXPECT_NE(std::string(e.what()).find("pre_compute"), std::string::npos);
  }
}

sig::Signature tiny_signature() {
  sig::Signature signature;
  signature.app_name = "s";
  signature.threshold = 0.1;
  sig::RankSignature rank;
  rank.rank = 0;
  rank.total_time = 1.0;
  sig::SigEvent event;
  event.type = mpi::CallType::kBarrier;
  event.peer = -1;
  event.mean_duration = 0.1;
  rank.roots.push_back(sig::SigNode::leaf(event));
  signature.ranks.push_back(rank);
  return signature;
}

TEST(Validate, ZeroIterationLoopIsAnError) {
  sig::Signature signature = tiny_signature();
  signature.ranks[0].roots.push_back(sig::SigNode::loop(0, {}));
  const guard::ValidationReport report =
      guard::validate_signature(signature);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.render().find("0 iterations"), std::string::npos)
      << report.render();
}

TEST(Validate, SkeletonScalingFactorBelowOneIsAnError) {
  skeleton::Skeleton skeleton;
  skeleton.app_name = "k";
  skeleton.scaling_factor = 0.5;
  skeleton.ranks = tiny_signature().ranks;
  const guard::ValidationReport report =
      guard::validate_skeleton(skeleton);
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------- salvage

TEST(Salvage, CleanTraceFileIsClean) {
  ScratchDir dir("salvage_clean");
  const std::string path = dir.file("t.trace");
  trace::save_trace(path, matched_pair_trace());
  guard::SalvageReport report;
  const auto trace = guard::salvage_trace_file(path, report);
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(trace->rank_count(), 2);
}

TEST(Salvage, TruncatedTextTraceKeepsEventPrefix) {
  ScratchDir dir("salvage_trunc");
  const std::string path = dir.file("t.trace");
  trace::Trace trace = matched_pair_trace();
  // Give rank 1 a second event so truncating mid-line drops exactly it.
  trace.ranks[1].events.push_back(trace.ranks[1].events[0]);
  const std::string text = trace::trace_to_string(trace);
  // Cut inside the last event line.
  write_file(path, text.substr(0, text.size() - 10));
  guard::SalvageReport report;
  const auto salvaged = guard::salvage_trace_file(path, report);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_FALSE(report.clean);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.events_kept + 1, report.events_expected);
  EXPECT_GT(report.line, 0u);  // text diagnostics carry a line number
  EXPECT_EQ(salvaged->event_count(), trace.event_count() - 1);
}

TEST(Salvage, TruncatedArchiveKeepsDecodedPrefix) {
  ScratchDir dir("salvage_arch");
  const std::string path = dir.file("t.pskarch");
  ASSERT_TRUE(archive::save(path, matched_pair_trace()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Drop the checksum trailer and a little payload: strict load fails,
  // salvage decodes the surviving whole events.
  write_file(path, bytes.substr(0, bytes.size() - 12));
  guard::SalvageReport report;
  const auto salvaged = guard::salvage_trace_file(path, report);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_FALSE(report.clean);
  EXPECT_GT(report.byte_offset, 0u);  // binary diagnostics carry an offset
  EXPECT_LT(salvaged->event_count(), matched_pair_trace().event_count() + 1);
}

TEST(Salvage, TornSignatureDropsWholeRanks) {
  ScratchDir dir("salvage_sig");
  const std::string path = dir.file("s.sig");
  sig::Signature signature = tiny_signature();
  sig::RankSignature second = signature.ranks[0];
  second.rank = 1;
  signature.ranks.push_back(second);
  const std::string text = sig::signature_to_string(signature);
  write_file(path, text.substr(0, text.size() - 5));
  guard::SalvageReport report;
  const auto salvaged = guard::salvage_signature_file(path, report);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.ranks_expected, 2u);
  EXPECT_EQ(report.ranks_kept, 1u);
  EXPECT_EQ(salvaged->rank_count(), 1);
  EXPECT_NE(report.render().find("rank"), std::string::npos);
}

TEST(Salvage, RanksLineTornBeforeCountIsRejected) {
  // A file torn exactly mid-"ranks N" leaves "ranks " with no count field;
  // salvage must diagnose it, not index past the end of the split fields.
  ScratchDir dir("salvage_torn_ranks");
  const std::string path = dir.file("s.sig");
  write_file(path, "psk-signature 1\napp x\nthreshold 0.1\nratio 1\nranks ");
  guard::SalvageReport report;
  EXPECT_FALSE(guard::salvage_signature_file(path, report).has_value());
  EXPECT_FALSE(report.recovered);
  EXPECT_NE(report.detail.find("bad ranks count"), std::string::npos)
      << report.render();
}

TEST(Salvage, ImplausibleRanksCountIsRejected) {
  // stoull would wrap "ranks -1" to 2^64-1; both text salvors must refuse
  // it instead of reporting absurd expectations.
  guard::SalvageReport report;
  EXPECT_FALSE(guard::salvage_signature_bytes(
                   "psk-signature 1\napp x\nthreshold 0.1\nratio 1\nranks -1\n",
                   report)
                   .has_value());
  EXPECT_NE(report.detail.find("bad ranks count"), std::string::npos)
      << report.render();
  EXPECT_EQ(report.ranks_expected, 0u);
  EXPECT_FALSE(
      guard::salvage_trace_bytes("psk-trace 1\napp x\nranks -1\n", report)
          .has_value());
  EXPECT_NE(report.detail.find("bad ranks count"), std::string::npos)
      << report.render();
  EXPECT_EQ(report.ranks_expected, 0u);
}

TEST(Salvage, BytesEntryPointRecoversTornSignature) {
  sig::Signature signature = tiny_signature();
  sig::RankSignature second = signature.ranks[0];
  second.rank = 1;
  signature.ranks.push_back(second);
  const std::string text = sig::signature_to_string(signature);
  guard::SalvageReport report;
  const auto salvaged =
      guard::salvage_signature_bytes(text.substr(0, text.size() - 5), report);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.ranks_kept, 1u);
  EXPECT_EQ(salvaged->rank_count(), 1);
}

TEST(Salvage, HopelessFileReturnsNullopt) {
  ScratchDir dir("salvage_hopeless");
  const std::string path = dir.file("junk.trace");
  write_file(path, "not even close\n");
  guard::SalvageReport report;
  EXPECT_FALSE(guard::salvage_trace_file(path, report).has_value());
  EXPECT_FALSE(report.recovered);
  EXPECT_FALSE(report.detail.empty());
}

TEST(Salvage, MissingFileStillThrows) {
  guard::SalvageReport report;
  EXPECT_THROW(guard::salvage_trace_file("/nonexistent/x.trace", report),
               Error);
}

// ---------------------------------------------------- cache disk failures

TEST(CacheGuard, DiskWriteFailureDegradesToMemoryOnly) {
  ScratchDir dir("cache_fail");
  cache::CacheOptions options;
  options.disk_dir = dir.file("cache");
  cache::ResultCache cache(options);
  const cache::CacheKey key = cache::sweep_cell_key("guard-test/1", "cell");
  // Make the temp-file path un-creatable even for root: a directory already
  // occupies it, so ofstream(tmp, trunc) must fail.
  const std::string tmp = options.disk_dir + "/" +
                          archive::fingerprint_hex(key.hash) + ".pskc.tmp";
  fs::create_directories(tmp);
  cache.store(key, "payload");
  EXPECT_EQ(cache.stats().disk_write_failures, 1u);
  // The value still lives in the memory tier.
  EXPECT_EQ(cache.lookup(key).value_or(""), "payload");
  // Degradation is sticky and counted once: later stores skip the disk.
  const cache::CacheKey other = cache::sweep_cell_key("guard-test/1", "o");
  cache.store(other, "other");
  EXPECT_EQ(cache.stats().disk_write_failures, 1u);
  EXPECT_EQ(cache.lookup(other).value_or(""), "other");
  // Nothing landed on disk for the second key either.
  EXPECT_FALSE(fs::exists(options.disk_dir + "/" +
                          archive::fingerprint_hex(other.hash) + ".pskc"));
}

TEST(CacheGuard, DiskWriteFailureCounterInObsDump) {
  cache::CacheStats stats;
  stats.disk_write_failures = 1;
  EXPECT_NE(cache::stats_kv(stats).find("cache.disk_write_fail=1"),
            std::string::npos);
}

// ------------------------------------------------------ journal replay

TEST(JournalGuard, ReplayStatsClassifyDamage) {
  ScratchDir dir("journal");
  const std::string path = dir.file("sweep.journal");
  const std::vector<std::string> keys{"k0", "k1", "k2"};
  runner::JournaledSweepOptions options;
  options.jobs = 1;
  options.journal_path = path;
  options.domain = "guard-test/journal/1";
  int runs = 0;
  // Fresh run: journal every cell.
  runner::journaled_sweep(
      keys, [&](std::size_t i) { ++runs; return "v" + std::to_string(i); },
      options);
  EXPECT_EQ(runs, 3);
  // Damage the journal: keep k0's line, add garbage, a foreign-grid line,
  // and tear the final line mid-append (no trailing newline).
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_EQ(lines.size(), 3u);
  const std::string foreign =
      archive::fingerprint_hex(0x1234) + "\tother-key\tok\tvalue";
  write_file(path, lines[0] + "\nnot a journal line\n" + foreign + "\n" +
                       lines[2].substr(0, lines[2].size() / 2));
  runs = 0;
  options.resume = true;
  runner::JournalReplayStats stats;
  options.replay_stats = &stats;
  const std::vector<runner::CellResult> results = runner::journaled_sweep(
      keys, [&](std::size_t i) { ++runs; return "v" + std::to_string(i); },
      options);
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_EQ(stats.dropped_unparsable, 1u);
  EXPECT_EQ(stats.dropped_unknown, 1u);
  EXPECT_EQ(stats.torn_tail, 1u);
  EXPECT_EQ(stats.dropped(), 3u);
  EXPECT_EQ(runs, 2);  // k1 and k2 re-ran; k0 replayed
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(results[i].payload, "v" + std::to_string(i));
  }
  const std::string rendered = stats.render();
  EXPECT_NE(rendered.find("replayed 1"), std::string::npos);
  EXPECT_NE(rendered.find("1 torn tail"), std::string::npos);
  obs::MetricsRegistry metrics;
  stats.publish(metrics);
  EXPECT_EQ(metrics.counter("journal.replayed").value(), 1.0);
  EXPECT_EQ(metrics.counter("journal.dropped").value(), 3.0);
  EXPECT_EQ(metrics.counter("journal.torn").value(), 1.0);
}

}  // namespace
}  // namespace psk
