// Tests for trace analysis statistics (communication matrix, histogram,
// call profile) and an end-to-end exercise of the psk CLI binary.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/nas.h"
#include "core/framework.h"
#include "trace/fold.h"
#include "trace/stats.h"

namespace psk::trace {
namespace {

Trace toy_trace() {
  core::SkeletonFramework framework;
  return framework.record(
      [](mpi::Comm& comm) -> sim::Task {
        if (comm.rank() == 0) {
          co_await comm.send(1, 1000);
          co_await comm.send(1, 3000);
          co_await comm.send(2, 500);
        } else if (comm.rank() == 1) {
          co_await comm.recv(0, 1000);
          co_await comm.recv(0, 3000);
        } else if (comm.rank() == 2) {
          co_await comm.recv(0, 500);
        }
        co_await comm.barrier();
      },
      "toy");
}

TEST(CommMatrix, CountsSendsOnce) {
  const CommMatrix matrix = communication_matrix(toy_trace());
  ASSERT_EQ(matrix.ranks, 4);
  EXPECT_DOUBLE_EQ(matrix.bytes[0][1], 4000.0);
  EXPECT_DOUBLE_EQ(matrix.bytes[0][2], 500.0);
  EXPECT_EQ(matrix.messages[0][1], 2u);
  EXPECT_EQ(matrix.messages[0][2], 1u);
  // Receives do not double count; barriers contribute nothing.
  EXPECT_DOUBLE_EQ(matrix.bytes[1][0], 0.0);
  EXPECT_DOUBLE_EQ(matrix.total_bytes(), 4500.0);
  EXPECT_EQ(matrix.total_messages(), 3u);
}

TEST(CommMatrix, ExchangeRegionsCountOutgoingParts) {
  core::SkeletonFramework framework;
  const Trace trace = framework.record(
      [](mpi::Comm& comm) -> sim::Task {
        const int peer = comm.rank() ^ 1;
        std::vector<mpi::Request> reqs;
        reqs.push_back(comm.irecv(peer, 2048));
        reqs.push_back(comm.isend(peer, 2048));
        co_await comm.waitall(std::move(reqs));
      },
      "exchange");
  const CommMatrix matrix = communication_matrix(trace);
  EXPECT_DOUBLE_EQ(matrix.bytes[0][1], 2048.0);
  EXPECT_DOUBLE_EQ(matrix.bytes[1][0], 2048.0);
  EXPECT_EQ(matrix.total_messages(), 4u);  // one per rank pair direction
}

TEST(CommMatrix, RenderShowsCells) {
  const std::string text = communication_matrix(toy_trace()).render();
  EXPECT_NE(text.find("rank 0"), std::string::npos);
  EXPECT_NE(text.find("3.91 KB"), std::string::npos);  // 4000 bytes
}

TEST(Histogram, BucketsByPowerOfTwo) {
  const SizeHistogram histogram = message_size_histogram(toy_trace());
  // 1000 -> bucket 9; 3000 -> bucket 11; 500 -> bucket 8.
  EXPECT_EQ(histogram.buckets.at(9), 1u);
  EXPECT_EQ(histogram.buckets.at(11), 1u);
  EXPECT_EQ(histogram.buckets.at(8), 1u);
  EXPECT_FALSE(histogram.render().empty());
}

TEST(Profile, AggregatesPerCallType) {
  const CallProfile profile = call_profile(toy_trace());
  EXPECT_EQ(profile.entries.at(mpi::CallType::kSend).count, 3u);
  EXPECT_DOUBLE_EQ(profile.entries.at(mpi::CallType::kSend).bytes, 4500.0);
  EXPECT_EQ(profile.entries.at(mpi::CallType::kBarrier).count, 4u);
  EXPECT_GT(profile.entries.at(mpi::CallType::kBarrier).time, 0.0);
  EXPECT_NE(profile.render().find("Barrier"), std::string::npos);
}

// --------------------------------------------------------- CLI end to end

std::string binary_dir() {
  // Tests run from build/tests (ctest working dir varies); locate the psk
  // binary relative to this test binary via the PSK_BUILD_DIR definition.
  return std::string(PSK_BUILD_DIR);
}

int run_cli(const std::string& args) {
  const std::string command =
      binary_dir() + "/tools/psk " + args + " > /dev/null 2>&1";
  return std::system(command.c_str());
}

TEST(CliIntegration, FullPipelineThroughFiles) {
  const std::string dir = testing::TempDir();
  ASSERT_EQ(run_cli("trace --app=MG --class=S --out=" + dir + "/t.trace"), 0);
  ASSERT_EQ(run_cli("compress --trace=" + dir + "/t.trace --out=" + dir +
                    "/t.sig"),
            0);
  ASSERT_EQ(run_cli("skeleton --trace=" + dir + "/t.trace --target=0.05 "
                    "--out=" + dir + "/t.skel"),
            0);
  ASSERT_EQ(run_cli("info --skeleton=" + dir + "/t.skel"), 0);
  ASSERT_EQ(run_cli("run --skeleton=" + dir + "/t.skel "
                    "--scenario=cpu-one-node"),
            0);
  ASSERT_EQ(run_cli("codegen --skeleton=" + dir + "/t.skel --out=" + dir +
                    "/t.c"),
            0);
  ASSERT_EQ(run_cli("info --trace=" + dir + "/t.trace"), 0);
  ASSERT_EQ(run_cli("info --signature=" + dir + "/t.sig"), 0);
}

TEST(CliIntegration, UsageAndErrors) {
  EXPECT_NE(run_cli(""), 0);
  EXPECT_NE(run_cli("bogus-command"), 0);
  EXPECT_NE(run_cli("trace --app=NOPE --out=/tmp/x"), 0);
  EXPECT_NE(run_cli("info --trace=/nonexistent"), 0);
}

}  // namespace
}  // namespace psk::trace
