// Tests for the SkeletonFramework facade, consistency validation and the
// experiment driver.
#include <gtest/gtest.h>

#include <set>

#include "apps/nas.h"
#include "core/experiment.h"
#include "core/framework.h"
#include "trace/fold.h"
#include "skeleton/validate.h"
#include "util/error.h"

namespace psk::core {
namespace {

/// Class S grid keeps these tests fast while exercising every stage.
ExperimentConfig small_config(std::vector<std::string> benchmarks,
                              std::vector<double> sizes) {
  ExperimentConfig config;
  config.benchmarks = std::move(benchmarks);
  config.app_class = apps::NasClass::kS;
  config.skeleton_sizes = std::move(sizes);
  return config;
}

// ----------------------------------------------------------------- facade

TEST(Framework, RecordProducesFoldedTrace) {
  SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark("SP").make(apps::NasClass::kS), "SP");
  EXPECT_TRUE(trace::is_fully_folded(trace));
  EXPECT_EQ(trace.rank_count(), 4);
  EXPECT_GT(trace.elapsed(), 0);
}

TEST(Framework, RecordIsDeterministic) {
  SkeletonFramework framework;
  const auto program = apps::find_benchmark("MG").make(apps::NasClass::kS);
  const trace::Trace a = framework.record(program, "MG");
  const trace::Trace b = framework.record(program, "MG");
  EXPECT_DOUBLE_EQ(a.elapsed(), b.elapsed());
}

TEST(Framework, ConstructPipeline) {
  SkeletonFramework framework;
  const skeleton::Skeleton skeleton = framework.construct(
      apps::find_benchmark("SP").make(apps::NasClass::kS), "SP", 0.05);
  EXPECT_GT(skeleton.scaling_factor, 1.0);
  EXPECT_NEAR(skeleton.intended_time, 0.05, 0.01);
}

TEST(Framework, DedicatedRunsAreQuiet) {
  // run_app under the dedicated scenario must be close to the traced time.
  SkeletonFramework framework;
  const auto program = apps::find_benchmark("MG").make(apps::NasClass::kS);
  const trace::Trace trace = framework.record(program, "MG");
  const double untraced = framework.run_app(program, scenario::dedicated());
  EXPECT_NEAR(untraced, trace.elapsed(), trace.elapsed() * 0.05);
}

TEST(Framework, ScenarioRunsSlower) {
  SkeletonFramework framework;
  const auto program = apps::find_benchmark("SP").make(apps::NasClass::kS);
  const double dedicated =
      framework.run_app(program, scenario::dedicated());
  const double shared =
      framework.run_app(program, scenario::find_scenario("cpu-all-nodes"));
  EXPECT_GT(shared, dedicated);
}

TEST(Framework, SeedOffsetsChangeScenarioMeasurements) {
  SkeletonFramework framework;
  const auto program = apps::find_benchmark("MG").make(apps::NasClass::kS);
  const auto& scenario = scenario::find_scenario("cpu-one-node");
  const double a = framework.run_app(program, scenario, 1);
  const double b = framework.run_app(program, scenario, 2);
  EXPECT_NE(a, b);
  // But each offset is reproducible.
  EXPECT_DOUBLE_EQ(framework.run_app(program, scenario, 1), a);
}

// ------------------------------------------------------------- validation

TEST(Validate, ConsistentSkeletonPasses) {
  SkeletonFramework framework;
  const skeleton::Skeleton skeleton = framework.construct(
      apps::find_benchmark("SP").make(apps::NasClass::kS), "SP", 0.05);
  const skeleton::ConsistencyReport report =
      skeleton::check_consistency(skeleton);
  EXPECT_TRUE(report.consistent) << report.detail;
}

TEST(Validate, DetectsMismatchedCounts) {
  skeleton::Skeleton skeleton;
  sig::RankSignature rank0;
  rank0.rank = 0;
  sig::SigEvent send;
  send.type = mpi::CallType::kSend;
  send.peer = 1;
  rank0.roots.push_back(sig::SigNode::loop(
      3, sig::SigSeq{sig::SigNode::leaf(send)}));
  sig::RankSignature rank1;
  rank1.rank = 1;
  sig::SigEvent recv;
  recv.type = mpi::CallType::kRecv;
  recv.peer = 0;
  rank1.roots.push_back(sig::SigNode::loop(
      2, sig::SigSeq{sig::SigNode::leaf(recv)}));
  skeleton.ranks = {rank0, rank1};

  const skeleton::ConsistencyReport report =
      skeleton::check_consistency(skeleton);
  EXPECT_FALSE(report.consistent);
  EXPECT_EQ(report.mismatched_channels, 1u);
  EXPECT_NE(report.detail.find("3 sends vs 2 recvs"), std::string::npos);
}

TEST(Validate, DetectsCollectiveImbalance) {
  skeleton::Skeleton skeleton;
  sig::RankSignature rank0;
  rank0.rank = 0;
  sig::SigEvent barrier;
  barrier.type = mpi::CallType::kBarrier;
  rank0.roots.push_back(sig::SigNode::leaf(barrier));
  sig::RankSignature rank1;  // no barrier
  rank1.rank = 1;
  skeleton.ranks = {rank0, rank1};

  EXPECT_FALSE(skeleton::check_consistency(skeleton).consistent);
}

TEST(Validate, EveryBenchmarkSkeletonConsistentAcrossSizes) {
  ExperimentDriver driver(
      small_config({"BT", "CG", "IS", "LU", "MG", "SP"}, {0.1, 0.02}));
  for (const auto& def : apps::suite()) {
    for (double size : {0.1, 0.02}) {
      const skeleton::Skeleton& skeleton =
          driver.skeleton_for_size(def.name, size);
      const auto report = skeleton::check_consistency(skeleton);
      EXPECT_TRUE(report.consistent)
          << def.name << " size " << size << ": " << report.detail;
    }
  }
}

// ----------------------------------------------------------------- driver

TEST(Driver, CachesTraces) {
  ExperimentDriver driver(small_config({"MG"}, {0.1}));
  const trace::Trace& a = driver.app_trace("MG");
  const trace::Trace& b = driver.app_trace("MG");
  EXPECT_EQ(&a, &b);
}

TEST(Driver, PredictionRecordIsComplete) {
  ExperimentDriver driver(small_config({"SP"}, {0.1}));
  const PredictionRecord record =
      driver.predict("SP", 0.1, scenario::find_scenario("cpu-all-nodes"));
  EXPECT_EQ(record.app, "SP");
  EXPECT_GT(record.scaling_factor, 1.0);
  EXPECT_GT(record.app_dedicated, 0);
  EXPECT_GT(record.skeleton_dedicated, 0);
  EXPECT_GT(record.skeleton_scenario, record.skeleton_dedicated * 0.5);
  EXPECT_GT(record.app_scenario, record.app_dedicated);
  EXPECT_GT(record.predicted, 0);
  EXPECT_GE(record.error_percent, 0);
}

TEST(Driver, PredictionBeatsWildGuessing) {
  // Headline property at class S: skeleton predictions land within 35% for
  // every scenario.  (Class B does far better -- see the fig3 bench; class S
  // runs are fractions of a second and latency-dominated, so a single
  // bandwidth-flutter draw can move a tiny skeleton by ~20%.)
  ExperimentDriver driver(small_config({"SP", "MG"}, {0.05}));
  for (const char* app : {"SP", "MG"}) {
    for (const auto& scenario : scenario::paper_scenarios()) {
      const PredictionRecord record = driver.predict(app, 0.05, scenario);
      EXPECT_LT(record.error_percent, 35.0)
          << app << " under " << scenario.name;
    }
  }
}

TEST(Driver, GridCoversEverything) {
  ExperimentDriver driver(small_config({"MG", "IS"}, {0.1, 0.05}));
  const auto records = driver.run_grid();
  EXPECT_EQ(records.size(), 2u * 2u * 5u);
  std::set<std::string> scenarios;
  for (const auto& record : records) scenarios.insert(record.scenario);
  EXPECT_EQ(scenarios.size(), 5u);
  EXPECT_GT(mean_error(records), 0.0);
}

TEST(Driver, ActivityBreakdownsComparable) {
  // Figure 2's claim: skeleton compute/MPI ratio is broadly similar to the
  // application's.
  ExperimentDriver driver(small_config({"CG"}, {0.1}));
  const auto app = driver.app_activity("CG");
  const auto skel = driver.skeleton_activity("CG", 0.1);
  EXPECT_NEAR(skel.mpi_fraction, app.mpi_fraction, 0.20);
}

TEST(Driver, GoodEstimateStableAcrossCalls) {
  ExperimentDriver driver(small_config({"IS"}, {0.1}));
  const auto& a = driver.good_estimate("IS");
  const auto& b = driver.good_estimate("IS");
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.min_good_time, 0);
}

TEST(Driver, BaselinePredictorsRun) {
  ExperimentDriver driver(small_config({"MG", "IS"}, {0.1}));
  const auto& scenario = scenario::find_scenario("cpu-and-net");
  const PredictionRecord class_s = driver.predict_with_class_s("MG", scenario);
  EXPECT_GT(class_s.predicted, 0);
  const PredictionRecord average = driver.predict_with_average("MG", scenario);
  EXPECT_GT(average.predicted, 0);
  EXPECT_GE(average.error_percent, 0);
}

TEST(Driver, MeanErrorOfEmptyIsZero) {
  EXPECT_EQ(mean_error({}), 0.0);
}

}  // namespace
}  // namespace psk::core
