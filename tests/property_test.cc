// Property-based tests: invariants of the pipeline checked over families of
// random inputs (seeded, hence reproducible).
//
//   - loop folding never changes the expanded event stream;
//   - clustering preserves totals and emits valid symbols;
//   - randomly generated SPMD programs survive the whole pipeline: the
//     trace folds, the signature expands back to the trace, the skeleton is
//     cross-rank consistent and replays without deadlock for many K.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"
#include "mpi/world.h"
#include "sig/cluster.h"
#include "sig/compress.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "skeleton/validate.h"
#include "trace/fold.h"
#include "trace/recorder.h"
#include "util/rng.h"

namespace psk {
namespace {

// ------------------------------------------------------- folding invariants

sig::SigSeq random_symbol_seq(std::uint64_t seed, std::size_t length,
                              int alphabet) {
  util::Rng rng(seed);
  // Build from random repetition structure so that folds actually trigger:
  // emit runs and repeated blocks, not just uniform noise.
  std::vector<int> ids;
  while (ids.size() < length) {
    const int symbol = static_cast<int>(rng.below(static_cast<std::uint64_t>(alphabet)));
    const std::uint64_t repeat = 1 + rng.below(6);
    if (rng.below(3) == 0 && ids.size() >= 2) {
      // Repeat the last two symbols a few times (creates period-2 loops).
      const int a = ids[ids.size() - 2];
      const int b = ids[ids.size() - 1];
      for (std::uint64_t i = 0; i < repeat && ids.size() < length; ++i) {
        ids.push_back(a);
        ids.push_back(b);
      }
    } else {
      for (std::uint64_t i = 0; i < repeat && ids.size() < length; ++i) {
        ids.push_back(symbol);
      }
    }
  }
  sig::SigSeq seq;
  for (int id : ids) {
    sig::SigEvent event;
    event.cluster_id = id;
    event.pre_compute = 0.001 * (id + 1);
    seq.push_back(sig::SigNode::leaf(event));
  }
  return seq;
}

std::vector<int> expand_ids(const sig::SigSeq& seq) {
  std::vector<int> ids;
  for (const sig::SigEvent& event : sig::expand(seq)) {
    ids.push_back(event.cluster_id);
  }
  return ids;
}

class FoldProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FoldProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST_P(FoldProperty, ExpansionIsIdentity) {
  const sig::SigSeq original = random_symbol_seq(GetParam(), 400, 5);
  const std::vector<int> before = expand_ids(original);
  const sig::SigSeq folded = sig::fold_loops(original);
  EXPECT_EQ(expand_ids(folded), before);
}

TEST_P(FoldProperty, FoldNeverGrowsLeafCount) {
  const sig::SigSeq original = random_symbol_seq(GetParam(), 300, 4);
  const sig::SigSeq folded = sig::fold_loops(original);
  EXPECT_LE(sig::leaf_count(folded), original.size());
}

TEST_P(FoldProperty, FoldIsIdempotentOnExpansion) {
  // Folding a folded sequence cannot change what it expands to.
  sig::SigSeq folded = sig::fold_loops(random_symbol_seq(GetParam(), 300, 4));
  const std::vector<int> once = expand_ids(folded);
  const sig::SigSeq twice = sig::fold_loops(std::move(folded));
  EXPECT_EQ(expand_ids(twice), once);
}

TEST_P(FoldProperty, AnchoredFoldPreservesExpansionToo) {
  sig::SigSeq seq = random_symbol_seq(GetParam(), 300, 4);
  // Sprinkle collectives in (anchors).
  for (std::size_t i = 7; i < seq.size(); i += 23) {
    seq[i].event.type = mpi::CallType::kAllreduce;
    seq[i].event.cluster_id = 100 + static_cast<int>(i % 3);
    seq[i] = sig::SigNode::leaf(seq[i].event);
  }
  const std::vector<int> before = expand_ids(seq);
  const sig::SigSeq folded = sig::fold_anchored(std::move(seq));
  EXPECT_EQ(expand_ids(folded), before);
}

// ----------------------------------------------------- clustering invariants

class ClusterProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

std::vector<trace::TraceEvent> random_events(std::uint64_t seed,
                                             std::size_t count) {
  util::Rng rng(seed);
  std::vector<trace::TraceEvent> events;
  for (std::size_t i = 0; i < count; ++i) {
    trace::TraceEvent event;
    event.type = rng.below(2) == 0 ? mpi::CallType::kSend
                                   : mpi::CallType::kRecv;
    event.peer = static_cast<int>(rng.below(4));
    event.tag = static_cast<int>(rng.below(3));
    event.bytes = 500 + rng.below(1000);
    event.pre_compute = rng.uniform(0.0, 0.1);
    events.push_back(event);
  }
  return events;
}

TEST_P(ClusterProperty, SymbolsAreValidAndCountsAdd) {
  const auto events = random_events(GetParam(), 300);
  sig::ClusterOptions options;
  options.threshold = 0.2;
  const sig::ClusterResult result = sig::cluster_events(events, options);

  ASSERT_EQ(result.symbols.size(), events.size());
  std::size_t total = 0;
  for (std::size_t count : result.counts) total += count;
  EXPECT_EQ(total, events.size());
  for (int symbol : result.symbols) {
    ASSERT_GE(symbol, 0);
    ASSERT_LT(symbol, static_cast<int>(result.cluster_count()));
  }
}

TEST_P(ClusterProperty, TotalsPreserved) {
  const auto events = random_events(GetParam(), 300);
  sig::ClusterOptions options;
  options.threshold = 0.25;
  const sig::ClusterResult result = sig::cluster_events(events, options);

  double original_bytes = 0;
  double original_compute = 0;
  for (const auto& event : events) {
    original_bytes += static_cast<double>(event.bytes);
    original_compute += event.pre_compute;
  }
  double clustered_bytes = 0;
  double clustered_compute = 0;
  for (std::size_t c = 0; c < result.cluster_count(); ++c) {
    const double n = static_cast<double>(result.counts[c]);
    clustered_bytes += result.prototypes[c].bytes * n;
    clustered_compute += result.prototypes[c].pre_compute * n;
  }
  EXPECT_NEAR(clustered_bytes, original_bytes, original_bytes * 1e-9);
  EXPECT_NEAR(clustered_compute, original_compute, original_compute * 1e-9);
}

TEST_P(ClusterProperty, EveryMemberWithinThresholdOfItsPrototype) {
  const auto events = random_events(GetParam(), 200);
  sig::ClusterOptions options;
  options.threshold = 0.15;
  const sig::ClusterResult result = sig::cluster_events(events, options);
  // Against the *final* prototype the distance can exceed the admission
  // threshold slightly (the mean moved after admission), but never wildly.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const double d = sig::dissimilarity(
        events[i],
        result.prototypes[static_cast<std::size_t>(result.symbols[i])],
        options);
    EXPECT_LT(d, options.threshold * 2 + 1e-9) << "event " << i;
  }
}

// ------------------------------------------------- random-program pipeline

/// Specification of a random SPMD program, shared by all ranks so the
/// program stays symmetric (peers are derived from each rank's position).
struct OpSpec {
  enum class Kind {
    kCompute,
    kBarrier,
    kBcast,
    kReduce,
    kAllreduce,
    kAllgather,
    kAlltoall,
    kGather,
    kScatter,
    kScan,
    kRingExchange,   // nonblocking halo with both ring neighbours
    kPairSendrecv,   // sendrecv with the rank^1 partner
    kLoop,
  };
  Kind kind = Kind::kCompute;
  double work = 0;
  mpi::Bytes bytes = 0;
  int root = 0;
  int tag = 0;
  std::uint64_t iterations = 0;
  std::vector<OpSpec> body;
};

std::vector<OpSpec> random_ops(util::Rng& rng, int depth,
                               std::size_t max_ops) {
  std::vector<OpSpec> ops;
  const std::size_t count = 2 + rng.below(max_ops);
  for (std::size_t i = 0; i < count; ++i) {
    OpSpec op;
    const std::uint64_t pick = rng.below(depth > 0 ? 13 : 12);
    op.work = rng.uniform(0.001, 0.03);
    op.bytes = 64 + rng.below(300'000);
    op.root = static_cast<int>(rng.below(4));
    op.tag = static_cast<int>(rng.below(4));
    switch (pick) {
      case 0: op.kind = OpSpec::Kind::kCompute; break;
      case 1: op.kind = OpSpec::Kind::kBarrier; break;
      case 2: op.kind = OpSpec::Kind::kBcast; break;
      case 3: op.kind = OpSpec::Kind::kReduce; break;
      case 4: op.kind = OpSpec::Kind::kAllreduce; break;
      case 5: op.kind = OpSpec::Kind::kAllgather; break;
      case 6: op.kind = OpSpec::Kind::kAlltoall; break;
      case 7: op.kind = OpSpec::Kind::kGather; break;
      case 8: op.kind = OpSpec::Kind::kScatter; break;
      case 9: op.kind = OpSpec::Kind::kScan; break;
      case 10: op.kind = OpSpec::Kind::kRingExchange; break;
      case 11: op.kind = OpSpec::Kind::kPairSendrecv; break;
      default:
        op.kind = OpSpec::Kind::kLoop;
        op.iterations = 2 + rng.below(40);
        op.body = random_ops(rng, depth - 1, 4);
        break;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

sim::Task execute_ops(mpi::Comm& comm, const std::vector<OpSpec>& ops) {
  for (const OpSpec& op : ops) {
    switch (op.kind) {
      case OpSpec::Kind::kCompute:
        co_await comm.compute(op.work);
        break;
      case OpSpec::Kind::kBarrier:
        co_await comm.barrier();
        break;
      case OpSpec::Kind::kBcast:
        co_await comm.bcast(op.root, op.bytes);
        break;
      case OpSpec::Kind::kReduce:
        co_await comm.reduce(op.root, op.bytes);
        break;
      case OpSpec::Kind::kAllreduce:
        co_await comm.allreduce(op.bytes % 4096);
        break;
      case OpSpec::Kind::kAllgather:
        co_await comm.allgather(op.bytes);
        break;
      case OpSpec::Kind::kAlltoall:
        co_await comm.alltoall(op.bytes);
        break;
      case OpSpec::Kind::kGather:
        co_await comm.gather(op.root, op.bytes);
        break;
      case OpSpec::Kind::kScatter:
        co_await comm.scatter(op.root, op.bytes);
        break;
      case OpSpec::Kind::kScan:
        co_await comm.scan(op.bytes);
        break;
      case OpSpec::Kind::kRingExchange: {
        const int right = (comm.rank() + 1) % comm.size();
        const int left = (comm.rank() + comm.size() - 1) % comm.size();
        std::vector<mpi::Request> requests;
        requests.push_back(comm.irecv(left, op.bytes, op.tag));
        requests.push_back(comm.irecv(right, op.bytes, op.tag + 10));
        co_await comm.compute(op.work * 0.25);
        requests.push_back(comm.isend(right, op.bytes, op.tag));
        requests.push_back(comm.isend(left, op.bytes, op.tag + 10));
        co_await comm.waitall(std::move(requests));
        break;
      }
      case OpSpec::Kind::kPairSendrecv: {
        const int partner = comm.rank() ^ 1;
        co_await comm.sendrecv(partner, op.bytes, partner, op.bytes,
                               op.tag + 20);
        break;
      }
      case OpSpec::Kind::kLoop:
        for (std::uint64_t i = 0; i < op.iterations; ++i) {
          co_await execute_ops(comm, op.body);
        }
        break;
    }
  }
}

mpi::RankMain random_program(std::uint64_t seed) {
  auto rng = std::make_shared<util::Rng>(seed);
  auto ops = std::make_shared<std::vector<OpSpec>>(random_ops(*rng, 2, 7));
  return [ops](mpi::Comm& comm) -> sim::Task {
    return execute_ops(comm, *ops);
  };
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(100, 112));

TEST_P(PipelineFuzz, RandomProgramSurvivesWholePipeline) {
  const std::uint64_t seed = GetParam();
  core::SkeletonFramework framework;
  const mpi::RankMain program = random_program(seed);

  // Trace and fold.
  const trace::Trace trace =
      framework.record(program, "fuzz-" + std::to_string(seed));
  ASSERT_TRUE(trace::is_fully_folded(trace));
  ASSERT_GT(trace.elapsed(), 0);

  // Signature expands back to the folded trace exactly.
  const sig::Signature signature = framework.make_signature(trace, 8.0);
  for (int r = 0; r < trace.rank_count(); ++r) {
    ASSERT_EQ(
        sig::expanded_count(signature.ranks[static_cast<std::size_t>(r)].roots),
        trace.ranks[static_cast<std::size_t>(r)].events.size())
        << "rank " << r;
  }

  // Skeletons for several K: consistent and replayable.
  for (double k : {1.0, 3.0, 17.0, 64.0}) {
    const skeleton::Skeleton skeleton =
        framework.make_consistent_skeleton(trace, k);
    ASSERT_TRUE(skeleton::check_consistency(skeleton).consistent)
        << "seed " << seed << " K=" << k;
    double replayed = -1;
    ASSERT_NO_THROW({
      replayed = framework.run_skeleton(skeleton, scenario::dedicated());
    }) << "seed " << seed << " K=" << k;
    ASSERT_GT(replayed, 0);
  }
}

TEST_P(PipelineFuzz, KEqualOneReplayMatchesApplication) {
  // A skeleton with K=1 replays the full signature; its dedicated runtime
  // must track the traced application closely.
  const std::uint64_t seed = GetParam();
  core::SkeletonFramework framework;
  const mpi::RankMain program = random_program(seed);
  const trace::Trace trace =
      framework.record(program, "fuzz-" + std::to_string(seed));
  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, 1.0);
  const double replayed =
      framework.run_skeleton(skeleton, scenario::dedicated());
  EXPECT_NEAR(replayed, trace.elapsed(), trace.elapsed() * 0.15)
      << "seed " << seed;
}

}  // namespace
}  // namespace psk
