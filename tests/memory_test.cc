// Tests for the memory-activity model: bus contention in the simulator and
// memory behaviour through trace, signature, skeleton and replay.
#include <gtest/gtest.h>

#include "apps/nas.h"
#include "codegen/emit_c.h"
#include "core/framework.h"
#include "mpi/world.h"
#include "scenario/scenario.h"
#include "sig/compress.h"
#include "sig/io.h"
#include "sim/cpu.h"
#include "sim/machine.h"
#include "skeleton/skeleton.h"
#include "trace/fold.h"
#include "trace/recorder.h"

namespace psk {
namespace {

// ----------------------------------------------------------- bus mechanics

TEST(MemoryBus, NoThrottleBelowCapacity) {
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  node.set_memory_bandwidth(10.0);
  double done_at = -1;
  // One job at rate 1.0 demanding 8 bytes/work-s: under the 10 B/s bus.
  node.submit(2.0, [&] { done_at = engine.now(); }, 8.0);
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST(MemoryBus, ThrottleAboveCapacity) {
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  node.set_memory_bandwidth(10.0);
  double done_at = -1;
  // Demand 20 B/s on a 10 B/s bus: rate halves.
  node.submit(2.0, [&] { done_at = engine.now(); }, 20.0);
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 4.0);
}

TEST(MemoryBus, MemoryHogSlowsMemoryJobOnly) {
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  node.set_memory_bandwidth(10.0);
  node.add_load(1, /*mem_bytes_per_work=*/8.0);  // hog on the second core
  double mem_done = -1;
  double cpu_done = -1;
  // Memory job: demand 8 (job) + 8 (hog) = 16 > 10: throttle 10/16 = 0.625.
  node.submit(2.0, [&] { mem_done = engine.now(); }, 8.0);
  engine.run();
  EXPECT_NEAR(mem_done, 2.0 / 0.625, 1e-9);

  sim::Engine engine2;
  sim::CpuNode node2(engine2, 2, 1.0);
  node2.set_memory_bandwidth(10.0);
  node2.add_load(1, 8.0);
  // Cache-resident job: unaffected by the bus (two cores, two jobs).
  node2.submit(2.0, [&] { cpu_done = engine2.now(); }, 0.0);
  engine2.run();
  EXPECT_DOUBLE_EQ(cpu_done, 2.0);
}

TEST(MemoryBus, ThrottleLiftsWhenHogLeaves) {
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  node.set_memory_bandwidth(10.0);
  node.add_load(1, 12.0);
  double done_at = -1;
  // Demand 8+12=20 -> throttle 0.5 -> progresses at 0.5 until the hog
  // leaves at t=2 (1.0 work done), then full speed for the last 1.0.
  node.submit(2.0, [&] { done_at = engine.now(); }, 8.0);
  engine.at(2.0, [&node] { node.remove_load(1); });
  engine.run();
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(MemoryBus, DefaultBandwidthIsUnlimited) {
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  double done_at = -1;
  node.submit(1.0, [&] { done_at = engine.now(); }, 1e18);
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 1.0);
}

// -------------------------------------------------------- pipeline carry

TEST(MemoryPipeline, TraceRecordsMemoryTraffic) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      [](mpi::Comm& comm) -> sim::Task {
        co_await comm.compute(0.5, 1'000'000);
        co_await comm.allreduce(8);
      },
      "memtoy");
  const trace::TraceEvent& event = trace.ranks[0].events[0];
  EXPECT_DOUBLE_EQ(event.pre_mem_bytes, 1'000'000.0);
}

TEST(MemoryPipeline, FoldAttributesInteriorMemory) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      [](mpi::Comm& comm) -> sim::Task {
        const int peer = comm.rank() ^ 1;
        std::vector<mpi::Request> reqs;
        reqs.push_back(comm.irecv(peer, 1024));
        co_await comm.compute(0.1, 500'000);  // packing inside the region
        reqs.push_back(comm.isend(peer, 1024));
        co_await comm.waitall(std::move(reqs));
      },
      "memfold");
  const trace::TraceEvent& region = trace.ranks[0].events[0];
  ASSERT_EQ(region.type, mpi::CallType::kExchange);
  EXPECT_DOUBLE_EQ(region.interior_mem_bytes, 500'000.0);
}

TEST(MemoryPipeline, SignatureAveragesAndScalesMemory) {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      [](mpi::Comm& comm) -> sim::Task {
        for (int i = 0; i < 40; ++i) {
          co_await comm.compute(0.05, 2'000'000);
          co_await comm.barrier();
        }
      },
      "memsig");
  const sig::Signature signature = framework.make_signature(trace, 4.0);
  // Find the barrier leaf and verify the memory mean survived clustering.
  double seen = 0;
  for (const sig::SigEvent& event :
       sig::expand(signature.ranks[0].roots)) {
    seen = std::max(seen, event.pre_mem_bytes);
  }
  EXPECT_NEAR(seen, 2'000'000.0, 1.0);

  const skeleton::Skeleton skeleton =
      framework.make_skeleton(signature, 8.0);
  // Residual-scaled leftovers carry proportionally reduced bytes; the loop
  // body's full iterations keep full-size phases.
  double kept = 0;
  for (const sig::SigEvent& event : sig::expand(skeleton.ranks[0].roots)) {
    kept = std::max(kept, event.pre_mem_bytes);
  }
  EXPECT_NEAR(kept, 2'000'000.0, 1.0);
}

TEST(MemoryPipeline, SignatureIoRoundTripsMemory) {
  sig::Signature signature;
  sig::RankSignature rank;
  sig::SigEvent event;
  event.type = mpi::CallType::kBarrier;
  event.pre_mem_bytes = 123456.0;
  event.interior_mem_bytes = 789.0;
  rank.roots.push_back(sig::SigNode::leaf(event));
  signature.ranks.push_back(rank);
  const sig::Signature parsed =
      sig::signature_from_string(sig::signature_to_string(signature));
  EXPECT_DOUBLE_EQ(parsed.ranks[0].roots[0].event.pre_mem_bytes, 123456.0);
  EXPECT_DOUBLE_EQ(parsed.ranks[0].roots[0].event.interior_mem_bytes, 789.0);
}

TEST(MemoryPipeline, CodegenEmitsMemoryWalkingCompute) {
  core::SkeletonFramework framework;
  const skeleton::Skeleton skeleton = framework.construct(
      apps::find_benchmark("MG").make(apps::NasClass::kS), "MG", 0.05);
  const std::string source = codegen::emit_c_program(skeleton);
  EXPECT_NE(source.find("psk_compute_mem("), std::string::npos);
}

// ------------------------------------------------------ end-to-end effect

TEST(MemoryScenario, HogSlowsMemoryBoundAppNotComputeBound) {
  core::SkeletonFramework framework;
  const auto mg = apps::find_benchmark("MG").make(apps::NasClass::kS);
  const auto ep = apps::find_benchmark("EP").make(apps::NasClass::kS);
  const auto& hog = scenario::memory_hog();

  const double mg_dedicated =
      framework.run_app(mg, scenario::dedicated());
  const double mg_hog = framework.run_app(mg, hog);
  EXPECT_GT(mg_hog, mg_dedicated * 1.2);

  const double ep_dedicated =
      framework.run_app(ep, scenario::dedicated());
  const double ep_hog = framework.run_app(ep, hog);
  EXPECT_LT(ep_hog, ep_dedicated * 1.08);
}

TEST(MemoryScenario, MemoryAwareSkeletonPredictsHog) {
  core::SkeletonFramework framework;
  const auto program = apps::find_benchmark("MG").make(apps::NasClass::kS);
  const trace::Trace trace = framework.record(program, "MG");
  const skeleton::Skeleton skeleton =
      framework.make_consistent_skeleton(trace, 5.0);

  skeleton::Calibration calibration;
  calibration.app_dedicated_time = trace.elapsed();
  calibration.skeleton_dedicated_time =
      framework.run_skeleton(skeleton, scenario::dedicated());
  const double shared =
      framework.run_skeleton(skeleton, scenario::memory_hog(), 1);
  const double predicted =
      skeleton::predict_app_time(calibration, shared);
  const double actual =
      framework.run_app(program, scenario::memory_hog());
  EXPECT_LT(skeleton::prediction_error_percent(predicted, actual), 12.0);
}

TEST(MemoryScenario, PaperScenariosUnaffectedByAnnotations) {
  // The paper's CPU scenarios use cache-resident spinners; with one rank
  // per dual-core node no benchmark saturates the 6 GB/s bus on its own,
  // so the class S dedicated times still match pre-memory calibrations.
  sim::Machine machine(sim::ClusterConfig::paper_testbed());
  mpi::World world(machine, 4);
  world.launch(apps::find_benchmark("MG").make(apps::NasClass::kS));
  const double elapsed = world.run();
  EXPECT_GT(elapsed, 0.02);
  EXPECT_LT(elapsed, 0.06);  // unchanged ~0.034 s
}

}  // namespace
}  // namespace psk
