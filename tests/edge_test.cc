// Edge-case and failure-injection tests across the substrate layers.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "mpi/world.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "util/error.h"

namespace psk {
namespace {

// ------------------------------------------------------------- CPU edges

TEST(CpuEdge, BandwidthOfWorkConservedUnderChurn) {
  // Total work completed equals total work submitted regardless of how
  // often the membership (and thus the rate) changes.
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  double total_submitted = 0;
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    const double work = 0.1 + 0.01 * (i % 7);
    total_submitted += work;
    engine.at(0.05 * i, [&node, work, &completed] {
      node.submit(work, [&completed] { ++completed; });
    });
  }
  // Load toggles mid-run.
  engine.at(0.7, [&node] { node.add_load(2); });
  engine.at(1.9, [&node] { node.remove_load(1); });
  engine.run();
  EXPECT_EQ(completed, 50);
}

TEST(CpuEdge, RemoveMoreLoadThanPresentIsClamped) {
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  node.add_load(1);
  node.remove_load(5);
  EXPECT_EQ(node.load_processes(), 0);
}

TEST(CpuEdge, TiedCompletionsFireTogether) {
  sim::Engine engine;
  sim::CpuNode node(engine, 2, 1.0);
  std::vector<double> times;
  node.submit(1.0, [&] { times.push_back(engine.now()); });
  node.submit(1.0, [&] { times.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], times[1]);
}

TEST(CpuEdge, LongRunStaysNumericallyStable) {
  // Thousands of sequential jobs at large simulated times: the min-set
  // completion rule must avoid the ULP spin the naive epsilon test hits.
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  node.add_load(1);
  int remaining = 3000;
  std::function<void()> chain = [&] {
    if (--remaining > 0) node.submit(0.339 + 1e-7, chain);
  };
  node.submit(0.339, chain);
  engine.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_GT(engine.now(), 1000.0);
}

TEST(CpuEdge, SpeedChangeMidJobRerates) {
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  double done_at = -1;
  node.submit(2.0, [&] { done_at = engine.now(); });
  // After 1 s (1.0 work done) the node doubles its speed (DVFS / future
  // architecture studies): the remaining 1.0 work takes 0.5 s.
  engine.at(1.0, [&node] { node.set_speed(2.0); });
  engine.run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST(CpuEdge, SpeedSetterRejectsNonPositive) {
  sim::Engine engine;
  sim::CpuNode node(engine, 1, 1.0);
  EXPECT_THROW(node.set_speed(0.0), ConfigError);
}

// --------------------------------------------------------- network edges

TEST(NetworkEdge, BandwidthChangeMidFlowRerates) {
  sim::Engine engine;
  sim::Network net(engine, 2, 100.0, 0.0, 1e9, 0.0);
  double done_at = -1;
  net.transfer(0, 1, 200, [&] { done_at = engine.now(); });
  // After 1 s (100 bytes done), halve the uplink: remaining 100 bytes at
  // 50 B/s take 2 more seconds.
  engine.at(1.0, [&] { net.set_uplink_bandwidth(0, 50.0); });
  engine.run();
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(NetworkEdge, AsymmetricUpDownLinks) {
  sim::Engine engine;
  sim::Network net(engine, 2, 100.0, 0.0, 1e9, 0.0);
  net.set_downlink_bandwidth(1, 10.0);  // receiver is the bottleneck
  double done_at = -1;
  net.transfer(0, 1, 100, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_NEAR(done_at, 10.0, 1e-9);
}

TEST(NetworkEdge, ManyTinyFlowsDrainCompletely) {
  sim::Engine engine;
  sim::Network net(engine, 4, 1000.0, 1e-4, 1e9, 0.0);
  int done = 0;
  for (int i = 0; i < 400; ++i) {
    net.transfer(i % 4, (i + 1 + i / 4) % 4, 1 + i % 97, [&done] { ++done; });
  }
  engine.run();
  EXPECT_EQ(done, 400);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(NetworkEdge, BackgroundFlowOnlyAffectsItsLinks) {
  sim::Engine engine;
  sim::Network net(engine, 4, 100.0, 0.0, 1e9, 0.0);
  net.add_background_flow(0, 1);
  double other = -1;
  net.transfer(2, 3, 100, [&] { other = engine.now(); });
  engine.run();
  EXPECT_NEAR(other, 1.0, 1e-9);  // full bandwidth, unaffected
}

// ------------------------------------------------------------- MPI edges

sim::ClusterConfig tiny_cluster() {
  sim::ClusterConfig config;
  config.nodes = 2;
  config.cores_per_node = 2;
  config.link_bandwidth_bps = 100.0;
  config.latency = 0.1;
  config.local_bandwidth_bps = 1000.0;
  config.local_latency = 0.01;
  return config;
}

TEST(MpiEdge, CoLocatedRanksUseLocalChannel) {
  // Two ranks on one node: their messages must be far faster than the wire.
  sim::Machine machine(tiny_cluster());
  mpi::MpiConfig mpi_config;
  mpi_config.per_call_overhead = 0;
  mpi_config.trace_overhead = 0;
  mpi::World world(machine, std::vector<int>{0, 0}, mpi_config);
  double done_at = -1;
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 100);
    } else {
      co_await comm.recv(0, 100);
      done_at = comm.now();
    }
  });
  world.run();
  // Local: 0.01 + 100/1000 = 0.11 s rather than 0.1 + 1 = 1.1 s.
  EXPECT_NEAR(done_at, 0.11, 1e-9);
}

TEST(MpiEdge, MessageAtExactEagerThresholdIsEager) {
  sim::Machine machine(tiny_cluster());
  mpi::MpiConfig mpi_config;
  mpi_config.per_call_overhead = 0;
  mpi_config.trace_overhead = 0;
  mpi_config.eager_threshold = 100;
  mpi::World world(machine, 2, mpi_config);
  double send_done = -1;
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 100);  // == threshold: still eager
      send_done = comm.now();
    } else {
      co_await comm.compute(5.0);
      co_await comm.recv(0, 100);
    }
  });
  world.run();
  EXPECT_LT(send_done, 2.0);  // did not wait for the receiver
}

TEST(MpiEdge, MixedEagerAndRendezvousOnOneChannelStayFifo) {
  sim::Machine machine(tiny_cluster());
  mpi::MpiConfig mpi_config;
  mpi_config.per_call_overhead = 0;
  mpi_config.trace_overhead = 0;
  mpi_config.eager_threshold = 150;
  mpi::World world(machine, 2, mpi_config);
  std::vector<int> order;
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      const mpi::Request small = comm.isend(1, 100);   // eager
      const mpi::Request large = comm.isend(1, 5000);  // rendezvous
      std::vector<mpi::Request> reqs{small, large};
      co_await comm.waitall(reqs);
    } else {
      co_await comm.recv(0, 100);
      order.push_back(1);
      co_await comm.recv(0, 5000);
      order.push_back(2);
    }
  });
  EXPECT_NO_THROW(world.run());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MpiEdge, ZeroByteMessagesMatchNormally) {
  sim::Machine machine(tiny_cluster());
  mpi::World world(machine, 2);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      co_await comm.send(1, 0);
      co_await comm.recv(1, 0);
    } else {
      co_await comm.recv(0, 0);
      co_await comm.send(0, 0);
    }
  });
  EXPECT_NO_THROW(world.run());
}

TEST(MpiEdge, SelfMessagingWorks) {
  sim::Machine machine(tiny_cluster());
  mpi::World world(machine, 2);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    const mpi::Request recv = comm.irecv(comm.rank(), 64);
    const mpi::Request send = comm.isend(comm.rank(), 64);
    std::vector<mpi::Request> reqs{recv, send};
    co_await comm.waitall(reqs);
  });
  EXPECT_NO_THROW(world.run());
}

TEST(MpiEdge, UnmatchedIrecvWaitIsDetectedAsDeadlock) {
  sim::Machine machine(tiny_cluster());
  mpi::World world(machine, 2);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      const mpi::Request r = comm.irecv(1, 64);  // rank 1 never sends
      co_await comm.wait(r);
    } else {
      co_await comm.compute(0.1);
    }
  });
  EXPECT_THROW(world.run(), DeadlockError);
}

TEST(MpiEdge, WaitingTwiceOnCompletedRequestIsFine) {
  sim::Machine machine(tiny_cluster());
  mpi::World world(machine, 2);
  world.launch([&](mpi::Comm& comm) -> sim::Task {
    if (comm.rank() == 0) {
      const mpi::Request r = comm.isend(1, 64);
      co_await comm.wait(r);
      co_await comm.wait(r);  // already done: returns immediately
    } else {
      co_await comm.recv(0, 64);
    }
  });
  EXPECT_NO_THROW(world.run());
}

TEST(MpiEdge, SingleRankWorldRunsCollectives) {
  sim::ClusterConfig config = tiny_cluster();
  config.nodes = 1;
  sim::Machine machine(config);
  mpi::World world(machine, 1);
  world.launch([](mpi::Comm& comm) -> sim::Task {
    co_await comm.barrier();
    co_await comm.bcast(0, 1000);
    co_await comm.allreduce(8);
    co_await comm.alltoall(100);
    co_await comm.gather(0, 100);
    co_await comm.scan(100);
  });
  EXPECT_NO_THROW(world.run());
}

}  // namespace
}  // namespace psk
