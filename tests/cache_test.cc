// Tests for the content-addressed result cache (psk::cache): key building,
// cold->warm bit-identity, collision verification, LRU eviction order, the
// on-disk tier, and torn-entry handling.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "archive/wire.h"
#include "cache/cache.h"
#include "obs/metrics.h"

namespace psk::cache {
namespace {

CacheKey key_of(const std::string& tag) {
  KeyBuilder builder("test/1");
  builder.text(tag);
  return std::move(builder).finish();
}

std::string fresh_dir(const char* name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string entry_file(const std::string& dir, const CacheKey& key) {
  return dir + "/" + archive::fingerprint_hex(key.hash) + ".pskc";
}

// ------------------------------------------------------------------- keys

TEST(KeyBuilder, DeterministicAndDomainSeparated) {
  const CacheKey a = key_of("cell");
  const CacheKey b = key_of("cell");
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.bytes, b.bytes);
  KeyBuilder other("test/2");
  other.text("cell");
  const CacheKey c = std::move(other).finish();
  EXPECT_NE(a.bytes, c.bytes);
  EXPECT_NE(a.hash, c.hash);
}

TEST(KeyBuilder, FieldBoundariesCannotAlias) {
  // Length prefixes keep ("ab","c") and ("a","bc") from serializing to the
  // same bytes.
  KeyBuilder one("d");
  one.text("ab").text("c");
  KeyBuilder two("d");
  two.text("a").text("bc");
  EXPECT_NE(std::move(one).finish().bytes, std::move(two).finish().bytes);
}

TEST(KeyBuilder, TypedFieldsFeedTheHash) {
  KeyBuilder a("d");
  a.f64(1.0).u64(2).i64(-3).flag(true).raw("bytes");
  KeyBuilder b("d");
  b.f64(1.0).u64(2).i64(-3).flag(false).raw("bytes");
  EXPECT_NE(std::move(a).finish().hash, std::move(b).finish().hash);
}

TEST(SweepCellKey, DomainSeparatesSweeps) {
  EXPECT_EQ(sweep_cell_hash("grid/1", "cell"),
            sweep_cell_hash("grid/1", "cell"));
  EXPECT_NE(sweep_cell_hash("grid/1", "cell"),
            sweep_cell_hash("grid/2", "cell"));
}

// ------------------------------------------------------------ value codec

TEST(ValueCodec, RoundTripAndRejectsGarbage) {
  const std::vector<double> values = {0.0, -1.5, 3.14159, 1e300};
  const std::string bytes = encode_values(values);
  const auto decoded = decode_values(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, values);
  EXPECT_FALSE(decode_values("junk").has_value());
  EXPECT_FALSE(decode_values(bytes.substr(0, bytes.size() - 1)).has_value());
  EXPECT_FALSE(decode_values(bytes + "x").has_value());
}

// ---------------------------------------------------------------- memory

TEST(ResultCache, ColdThenWarmIsBitIdentical) {
  ResultCache cache;
  const CacheKey key = key_of("measure");
  int calls = 0;
  const auto compute = [&] {
    ++calls;
    return 0.12345678901234567;
  };
  const double cold = memoize_scalar(&cache, key, compute);
  const double warm = memoize_scalar(&cache, key, compute);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(std::memcmp(&cold, &warm, sizeof cold), 0);  // bit identity
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCache, NullCacheComputesEveryTime) {
  int calls = 0;
  const CacheKey key = key_of("x");
  const auto compute = [&] {
    ++calls;
    return 1.0;
  };
  EXPECT_EQ(memoize_scalar(nullptr, key, compute), 1.0);
  EXPECT_EQ(memoize_scalar(nullptr, key, compute), 1.0);
  EXPECT_EQ(calls, 2);
}

TEST(ResultCache, HashCollisionIsVerifyFailureNotWrongResult) {
  ResultCache cache;
  const CacheKey stored = key_of("original");
  cache.store(stored, encode_values({1.0}));
  CacheKey collider = key_of("impostor");
  collider.hash = stored.hash;  // forge a 64-bit collision
  EXPECT_FALSE(cache.lookup(collider).has_value());
  EXPECT_EQ(cache.stats().verify_failures, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The original entry still serves.
  EXPECT_TRUE(cache.lookup(stored).has_value());
}

TEST(ResultCache, LruEvictsLeastRecentlyUsed) {
  CacheOptions options;
  options.memory_entries = 2;
  ResultCache cache(options);
  cache.store(key_of("a"), "A");
  cache.store(key_of("b"), "B");
  // Touch "a" so "b" becomes the eviction candidate.
  EXPECT_TRUE(cache.lookup(key_of("a")).has_value());
  cache.store(key_of("c"), "C");
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(key_of("a")).has_value());
  EXPECT_FALSE(cache.lookup(key_of("b")).has_value());
  EXPECT_TRUE(cache.lookup(key_of("c")).has_value());
}

TEST(ResultCache, ZeroCapacityDisablesMemoryTier) {
  CacheOptions options;
  options.memory_entries = 0;
  ResultCache cache(options);
  cache.store(key_of("a"), "A");
  EXPECT_FALSE(cache.lookup(key_of("a")).has_value());
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// ------------------------------------------------------------------- disk

TEST(ResultCache, DiskTierSurvivesProcessRestart) {
  const std::string dir = fresh_dir("psk_cache_disk");
  const CacheKey key = key_of("persisted");
  CacheOptions options;
  options.disk_dir = dir;
  {
    ResultCache writer(options);
    writer.store(key, encode_values({42.5}));
  }
  ResultCache reader(options);
  const auto hit = reader.lookup(key);
  ASSERT_TRUE(hit.has_value());
  const auto values = decode_values(*hit);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(values->at(0), 42.5);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // The disk hit was promoted into memory: the next lookup is a memory hit.
  EXPECT_TRUE(reader.lookup(key).has_value());
  EXPECT_EQ(reader.stats().hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, TornDiskEntryIsIgnoredAsMiss) {
  const std::string dir = fresh_dir("psk_cache_torn");
  const CacheKey key = key_of("torn");
  CacheOptions options;
  options.disk_dir = dir;
  {
    ResultCache writer(options);
    writer.store(key, encode_values({7.0}));
  }
  // Truncate the entry mid-payload: a crashed disk, not a crashed writer
  // (atomic rename prevents the latter).
  const std::string path = entry_file(dir, key);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 4u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();

  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(key).has_value());
  EXPECT_EQ(reader.stats().verify_failures, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
  // A store repairs the entry.
  reader.store(key, encode_values({7.0}));
  EXPECT_TRUE(reader.lookup(key).has_value());
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, CorruptDiskByteIsVerifyFailure) {
  const std::string dir = fresh_dir("psk_cache_corrupt");
  const CacheKey key = key_of("flip");
  CacheOptions options;
  options.disk_dir = dir;
  {
    ResultCache writer(options);
    writer.store(key, encode_values({9.0}));
  }
  const std::string path = entry_file(dir, key);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(
      std::filesystem::file_size(path) / 2));
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(-1, std::ios::cur);
  byte = static_cast<char>(byte ^ 0x40);
  file.write(&byte, 1);
  file.close();

  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(key).has_value());
  EXPECT_EQ(reader.stats().verify_failures, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, MissingDiskEntryIsPlainMissNotVerifyFailure) {
  const std::string dir = fresh_dir("psk_cache_missing");
  CacheOptions options;
  options.disk_dir = dir;
  ResultCache cache(options);
  EXPECT_FALSE(cache.lookup(key_of("never-stored")).has_value());
  EXPECT_EQ(cache.stats().verify_failures, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, UnusableDiskDirectoryDegradesToMemoryOnly) {
  CacheOptions options;
  options.disk_dir = "/proc/definitely/not/creatable";
  ResultCache cache(options);
  EXPECT_TRUE(cache.options().disk_dir.empty());
  cache.store(key_of("a"), "A");
  EXPECT_TRUE(cache.lookup(key_of("a")).has_value());
}

// ------------------------------------------------------------------ stats

TEST(ResultCache, PublishAndKvExposeCounters) {
  ResultCache cache;
  cache.store(key_of("k"), "v");
  cache.lookup(key_of("k"));
  obs::MetricsRegistry metrics;
  cache.publish(metrics);
  EXPECT_EQ(metrics.counter("cache.hit").value(), 1.0);
  EXPECT_EQ(metrics.counter("cache.store").value(), 1.0);
  const std::string kv = stats_kv(cache.stats());
  EXPECT_NE(kv.find("cache.hit=1"), std::string::npos);
  EXPECT_NE(kv.find("cache.lookup=1"), std::string::npos);
  EXPECT_NE(kv.find("cache.hit_rate=1"), std::string::npos);
}

}  // namespace
}  // namespace psk::cache
