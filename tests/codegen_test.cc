// Tests for the C skeleton code generator, including a real compile check
// against a minimal mpi.h stub (no MPI implementation is installed in CI).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "apps/nas.h"
#include "codegen/emit_c.h"
#include "core/framework.h"
#include "util/error.h"

namespace psk::codegen {
namespace {

skeleton::Skeleton sample_skeleton(const char* app = "SP",
                                   double target = 0.05) {
  core::SkeletonFramework framework;
  return framework.construct(
      apps::find_benchmark(app).make(apps::NasClass::kS), app, target);
}

TEST(EmitC, ContainsProgramScaffolding) {
  const std::string source = emit_c_program(sample_skeleton());
  EXPECT_NE(source.find("#include <mpi.h>"), std::string::npos);
  EXPECT_NE(source.find("MPI_Init"), std::string::npos);
  EXPECT_NE(source.find("MPI_Finalize"), std::string::npos);
  EXPECT_NE(source.find("psk_compute"), std::string::npos);
  EXPECT_NE(source.find("int main"), std::string::npos);
}

TEST(EmitC, OneFunctionPerRank) {
  const std::string source = emit_c_program(sample_skeleton());
  for (int rank = 0; rank < 4; ++rank) {
    const std::string name = "psk_rank" + std::to_string(rank);
    EXPECT_NE(source.find("static void " + name + "(void)"),
              std::string::npos)
        << name;
    EXPECT_NE(source.find("case " + std::to_string(rank) + ": " + name),
              std::string::npos);
  }
}

TEST(EmitC, LoopsAndExchangesEmitted) {
  const std::string source = emit_c_program(sample_skeleton());
  EXPECT_NE(source.find("for (long i0 = 0;"), std::string::npos);
  EXPECT_NE(source.find("MPI_Irecv"), std::string::npos);
  EXPECT_NE(source.find("MPI_Isend"), std::string::npos);
  EXPECT_NE(source.find("MPI_Waitall"), std::string::npos);
}

TEST(EmitC, BalancedBraces) {
  const std::string source = emit_c_program(sample_skeleton());
  long depth = 0;
  for (char c : source) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(EmitC, WarnsWhenNotGood) {
  core::SkeletonFramework framework;
  // Absurdly small target: below any app's smallest good skeleton.
  skeleton::Skeleton tiny = sample_skeleton("IS", 0.0001);
  tiny.good = false;
  tiny.min_good_time = 0.5;
  const std::string source = emit_c_program(tiny);
  EXPECT_NE(source.find("WARNING"), std::string::npos);
}

TEST(EmitC, PrefixIsConfigurable) {
  EmitOptions options;
  options.prefix = "myskel";
  const std::string source = emit_c_program(sample_skeleton(), options);
  EXPECT_NE(source.find("myskel_compute"), std::string::npos);
  EXPECT_EQ(source.find("psk_compute"), std::string::npos);
}

TEST(EmitC, Deterministic) {
  const skeleton::Skeleton skeleton = sample_skeleton();
  EXPECT_EQ(emit_c_program(skeleton), emit_c_program(skeleton));
}

TEST(EmitC, RejectsEmptySkeleton) {
  EXPECT_THROW(emit_c_program(skeleton::Skeleton{}), psk::ConfigError);
}

TEST(EmitC, AlltoallvCountsPerPeer) {
  const skeleton::Skeleton skeleton = sample_skeleton("IS", 0.02);
  const std::string source = emit_c_program(skeleton);
  EXPECT_NE(source.find("MPI_Alltoallv"), std::string::npos);
  EXPECT_NE(source.find("int counts[] = {"), std::string::npos);
}

/// Minimal mpi.h stub: just enough declarations to syntax- and type-check
/// the generated translation unit with a plain C compiler.
constexpr const char* kMpiStub = R"(#ifndef PSK_TEST_MPI_H
#define PSK_TEST_MPI_H
typedef int MPI_Comm;
typedef int MPI_Datatype;
typedef int MPI_Op;
typedef int MPI_Request;
typedef struct { int source; } MPI_Status;
#define MPI_COMM_WORLD 0
#define MPI_BYTE 1
#define MPI_BOR 2
#define MPI_DATATYPE_NULL 0
#define MPI_IN_PLACE ((void *)1)
#define MPI_STATUS_IGNORE ((MPI_Status *)0)
#define MPI_STATUSES_IGNORE ((MPI_Status *)0)
int MPI_Init(int *, char ***);
int MPI_Finalize(void);
int MPI_Abort(MPI_Comm, int);
int MPI_Comm_rank(MPI_Comm, int *);
int MPI_Comm_size(MPI_Comm, int *);
double MPI_Wtime(void);
int MPI_Send(const void *, int, MPI_Datatype, int, int, MPI_Comm);
int MPI_Recv(void *, int, MPI_Datatype, int, int, MPI_Comm, MPI_Status *);
int MPI_Sendrecv(const void *, int, MPI_Datatype, int, int, void *, int,
                 MPI_Datatype, int, int, MPI_Comm, MPI_Status *);
int MPI_Isend(const void *, int, MPI_Datatype, int, int, MPI_Comm,
              MPI_Request *);
int MPI_Irecv(void *, int, MPI_Datatype, int, int, MPI_Comm, MPI_Request *);
int MPI_Waitall(int, MPI_Request *, MPI_Status *);
int MPI_Barrier(MPI_Comm);
int MPI_Bcast(void *, int, MPI_Datatype, int, MPI_Comm);
int MPI_Reduce(const void *, void *, int, MPI_Datatype, MPI_Op, int, MPI_Comm);
int MPI_Allreduce(const void *, void *, int, MPI_Datatype, MPI_Op, MPI_Comm);
int MPI_Allgather(const void *, int, MPI_Datatype, void *, int, MPI_Datatype,
                  MPI_Comm);
int MPI_Alltoall(const void *, int, MPI_Datatype, void *, int, MPI_Datatype,
                 MPI_Comm);
int MPI_Alltoallv(const void *, const int *, const int *, MPI_Datatype,
                  void *, const int *, const int *, MPI_Datatype, MPI_Comm);
#endif
)";

TEST(EmitC, GeneratedSourceCompiles) {
  const std::string dir = testing::TempDir();
  const std::string stub_path = dir + "/mpi.h";
  const std::string src_path = dir + "/psk_skeleton_test.c";
  {
    std::ofstream stub(stub_path);
    stub << kMpiStub;
  }
  write_c_program(src_path, sample_skeleton());

  const std::string command = "cc -std=c99 -Wall -Werror -fsyntax-only -I" +
                              dir + " " + src_path + " 2>/dev/null";
  EXPECT_EQ(std::system(command.c_str()), 0)
      << "generated C failed to compile: " << src_path;
}

TEST(EmitC, EveryBenchmarkSkeletonCompiles) {
  const std::string dir = testing::TempDir();
  const std::string stub_path = dir + "/mpi.h";
  {
    std::ofstream stub(stub_path);
    stub << kMpiStub;
  }
  for (const auto& def : apps::suite()) {
    const std::string src_path =
        dir + "/psk_" + std::string(def.name) + ".c";
    write_c_program(src_path, sample_skeleton(def.name, 0.05));
    const std::string command = "cc -std=c99 -Wall -Werror -fsyntax-only -I" +
                                dir + " " + src_path + " 2>/dev/null";
    EXPECT_EQ(std::system(command.c_str()), 0) << def.name;
  }
}

}  // namespace
}  // namespace psk::codegen
