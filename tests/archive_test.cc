// Tests for the unified versioned archive (psk::archive): wire primitives,
// container framing, round-trips for all three payload kinds, the legacy
// format fallback, and corruption detection.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "apps/nas.h"
#include "archive/archive.h"
#include "archive/wire.h"
#include "core/framework.h"
#include "sig/compress.h"
#include "sig/io.h"
#include "sig/signature.h"
#include "skeleton/io.h"
#include "skeleton/skeleton.h"
#include "trace/io.h"

namespace psk {
namespace {

trace::Trace sample_trace(const char* app = "MG") {
  core::SkeletonFramework framework;
  return framework.record(
      apps::find_benchmark(app).make(apps::NasClass::kS), app);
}

sig::Signature sample_signature(const char* app = "MG") {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark(app).make(apps::NasClass::kS), app);
  return framework.make_signature(trace, 10.0);
}

skeleton::Skeleton sample_skeleton(const char* app = "MG") {
  core::SkeletonFramework framework;
  const trace::Trace trace = framework.record(
      apps::find_benchmark(app).make(apps::NasClass::kS), app);
  return framework.make_skeleton(framework.make_signature(trace, 10.0), 10.0);
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------------- wire

TEST(Wire, PrimitivesRoundTrip) {
  std::string bytes;
  archive::put_u8(bytes, 0xAB);
  archive::put_u16(bytes, 0xBEEF);
  archive::put_u32(bytes, 0xDEADBEEFu);
  archive::put_u64(bytes, 0x0123456789ABCDEFull);
  archive::put_i32(bytes, -12345);
  archive::put_i64(bytes, -9876543210LL);
  archive::put_f64(bytes, -0.1);
  archive::put_bool(bytes, true);
  archive::put_string(bytes, "hello\0world");

  archive::Cursor in(bytes);
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u16(), 0xBEEF);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i32(), -12345);
  EXPECT_EQ(in.i64(), -9876543210LL);
  EXPECT_EQ(in.f64(), -0.1);  // exact: bit-pattern round-trip
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.string(), std::string("hello"));  // literal truncates at NUL
  EXPECT_TRUE(in.ok());
  EXPECT_TRUE(in.at_end());
}

TEST(Wire, CursorFailsStickilyOnTruncation) {
  std::string bytes;
  archive::put_u32(bytes, 7);
  archive::Cursor in(bytes.substr(0, 2));
  EXPECT_EQ(in.u32(), 0u);
  EXPECT_FALSE(in.ok());
  // Every later read keeps failing instead of reading garbage.
  EXPECT_EQ(in.u64(), 0u);
  EXPECT_EQ(in.string(), "");
  EXPECT_FALSE(in.ok());
}

TEST(Wire, FingerprintIsStableAndHexFixedWidth) {
  // FNV-1a is stable by contract: pin a known vector so an accidental
  // algorithm change (which would orphan every cache entry) fails loudly.
  EXPECT_EQ(archive::fingerprint64(""), 14695981039346656037ull);
  EXPECT_EQ(archive::fingerprint_hex(0x1ull).size(), 16u);
  EXPECT_EQ(archive::fingerprint_hex(0xABCDull),
            std::string("000000000000abcd"));
}

// ------------------------------------------------------------------ frame

TEST(Archive, FrameRoundTrip) {
  std::string bytes;
  archive::write_frame(bytes, archive::PayloadKind::kSignature, 3, "payload");
  const auto frame = archive::read_frame(bytes);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().kind, archive::PayloadKind::kSignature);
  EXPECT_EQ(frame.value().payload_version, 3u);
  EXPECT_EQ(frame.value().payload, "payload");
  EXPECT_TRUE(archive::looks_like_archive(bytes));
  EXPECT_FALSE(archive::looks_like_archive("PSKTRB01..."));
}

TEST(Archive, FutureContainerVersionRejected) {
  std::string bytes;
  archive::write_frame(bytes, archive::PayloadKind::kTrace, 1, "p");
  bytes[8] = '\xFF';  // container version field (offset 8, LE u16)
  const auto frame = archive::read_frame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, archive::ErrorCode::kBadVersion);
}

TEST(Archive, PayloadCorruptionFailsChecksum) {
  std::string bytes;
  archive::write_frame(bytes, archive::PayloadKind::kTrace, 1, "payload");
  bytes[26] = static_cast<char>(bytes[26] ^ 0x01);  // inside the payload
  const auto frame = archive::read_frame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, archive::ErrorCode::kCorrupt);
}

// ------------------------------------------------------------ round-trips

TEST(Archive, TraceRoundTrip) {
  const trace::Trace original = sample_trace();
  const std::string path = temp_path("psk_archive.trace");
  archive::save(path, original).or_throw();
  const trace::Trace loaded = archive::load_trace(path).or_throw();
  EXPECT_EQ(loaded.app_name, original.app_name);
  EXPECT_EQ(loaded.rank_count(), original.rank_count());
  EXPECT_EQ(loaded.event_count(), original.event_count());
  EXPECT_EQ(loaded.elapsed(), original.elapsed());  // doubles: exact
  std::remove(path.c_str());
}

TEST(Archive, SignatureRoundTrip) {
  const sig::Signature original = sample_signature("SP");
  const std::string path = temp_path("psk_archive.sig");
  archive::save(path, original).or_throw();
  const sig::Signature loaded = archive::load_signature(path).or_throw();
  EXPECT_EQ(loaded.app_name, original.app_name);
  EXPECT_EQ(loaded.threshold, original.threshold);
  EXPECT_EQ(loaded.compression_ratio, original.compression_ratio);
  ASSERT_EQ(loaded.ranks.size(), original.ranks.size());
  for (std::size_t r = 0; r < loaded.ranks.size(); ++r) {
    EXPECT_EQ(loaded.ranks[r].rank, original.ranks[r].rank);
    EXPECT_EQ(loaded.ranks[r].total_time, original.ranks[r].total_time);
    EXPECT_EQ(loaded.ranks[r].roots, original.ranks[r].roots);
  }
  std::remove(path.c_str());
}

TEST(Archive, SkeletonRoundTrip) {
  const skeleton::Skeleton original = sample_skeleton("CG");
  const std::string path = temp_path("psk_archive.skel");
  archive::save(path, original).or_throw();
  const skeleton::Skeleton loaded = archive::load_skeleton(path).or_throw();
  EXPECT_EQ(loaded.app_name, original.app_name);
  EXPECT_EQ(loaded.scaling_factor, original.scaling_factor);
  EXPECT_EQ(loaded.intended_time, original.intended_time);
  EXPECT_EQ(loaded.min_good_time, original.min_good_time);
  EXPECT_EQ(loaded.good, original.good);
  ASSERT_EQ(loaded.ranks.size(), original.ranks.size());
  for (std::size_t r = 0; r < loaded.ranks.size(); ++r) {
    EXPECT_EQ(loaded.ranks[r].roots, original.ranks[r].roots);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- legacy fallback

TEST(Archive, LegacyTextTraceStillLoads) {
  const trace::Trace original = sample_trace();
  const std::string path = temp_path("psk_legacy_text.trace");
  trace::save_trace(path, original);  // pre-archive text format
  const auto loaded = archive::load_trace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().app_name, original.app_name);
  EXPECT_EQ(loaded.value().event_count(), original.event_count());
  std::remove(path.c_str());
}

TEST(Archive, LegacyBinaryTraceStillLoads) {
  const trace::Trace original = sample_trace();
  const std::string path = temp_path("psk_legacy_bin.trace");
  trace::save_trace_binary(path, original);  // pre-archive binary format
  const auto loaded = archive::load_trace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().event_count(), original.event_count());
  std::remove(path.c_str());
}

TEST(Archive, LegacySignatureStillLoads) {
  const sig::Signature original = sample_signature();
  const std::string path = temp_path("psk_legacy.sig");
  sig::save_signature(path, original);
  const auto loaded = archive::load_signature(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().app_name, original.app_name);
  std::remove(path.c_str());
}

TEST(Archive, LegacySkeletonStillLoads) {
  const skeleton::Skeleton original = sample_skeleton();
  const std::string path = temp_path("psk_legacy.skel");
  skeleton::save_skeleton(path, original);
  const auto loaded = archive::load_skeleton(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().scaling_factor, original.scaling_factor);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ error paths

TEST(Archive, KindMismatchIsTypedError) {
  const sig::Signature signature = sample_signature();
  const std::string path = temp_path("psk_kind.sig");
  archive::save(path, signature).or_throw();
  const auto as_trace = archive::load_trace(path);
  ASSERT_FALSE(as_trace.ok());
  EXPECT_EQ(as_trace.error().code, archive::ErrorCode::kBadKind);
  std::remove(path.c_str());
}

TEST(Archive, MissingFileIsIoError) {
  const auto missing = archive::load_trace(temp_path("psk_no_such_file"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, archive::ErrorCode::kIo);
}

TEST(Archive, GarbageFileIsTypedErrorNotThrow) {
  const std::string path = temp_path("psk_garbage");
  spit(path, "neither archive nor any legacy format\n");
  const auto loaded = archive::load_trace(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(Archive, CorruptedArchiveFileReportsCorrupt) {
  const trace::Trace original = sample_trace();
  const std::string path = temp_path("psk_corrupt.trace");
  archive::save(path, original).or_throw();
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  spit(path, bytes);
  const auto loaded = archive::load_trace(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, archive::ErrorCode::kCorrupt);
  std::remove(path.c_str());
}

// ------------------------------------------------- hostile declared sizes
//
// Declared sizes and counts are validated against the bytes actually
// present *before* any decode loop or allocation, and report kTruncated
// (distinct from kCorrupt: the data present may be fine, the rest is gone).

TEST(Archive, TruncatedFrameReportsTruncated) {
  std::string bytes;
  archive::write_frame(bytes, archive::PayloadKind::kTrace, 1, "payload");
  bytes.resize(bytes.size() - 10);  // torn mid-payload
  const auto frame = archive::read_frame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, archive::ErrorCode::kTruncated);
}

TEST(Archive, TrailingBytesReportCorrupt) {
  std::string bytes;
  archive::write_frame(bytes, archive::PayloadKind::kTrace, 1, "payload");
  bytes.push_back('\0');
  const auto frame = archive::read_frame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, archive::ErrorCode::kCorrupt);
}

TEST(Archive, HostileRankCountFailsFastAsTruncated) {
  // A tiny payload declaring 60000 ranks (within the plausibility cap) must
  // fail at the count field, not after a long failing decode loop.
  std::string payload;
  archive::put_string(payload, "app");
  archive::put_u32(payload, 60000);
  const auto trace = archive::decode_trace(payload, 1);
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.error().code, archive::ErrorCode::kTruncated);
  EXPECT_NE(trace.error().message.find("rank count"), std::string::npos);
}

TEST(Archive, HostileEventCountFailsFastAsTruncated) {
  std::string payload;
  archive::put_string(payload, "app");
  archive::put_u32(payload, 1);                      // one rank
  archive::put_i32(payload, 0);                      // rank id
  archive::put_f64(payload, 1.0);                    // total_time
  archive::put_f64(payload, 0.0);                    // final_compute
  archive::put_u64(payload, std::uint64_t{1} << 31); // events, bytes absent
  const auto trace = archive::decode_trace(payload, 1);
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.error().code, archive::ErrorCode::kTruncated);
}

TEST(Archive, OrThrowBridgesToFormatError) {
  EXPECT_THROW(
      archive::load_trace(temp_path("psk_no_such_file")).or_throw(),
      psk::FormatError);
}

}  // namespace
}  // namespace psk
